//! Homa-style packet types and control packets.
//!
//! SMT reuses Homa's packet taxonomy (paper §2.2): DATA packets carry message
//! payload, GRANT packets implement the receiver-driven congestion control (the
//! receiver grants the sender permission to transmit more bytes of a message),
//! RESEND packets request retransmission of a byte range, ACK packets confirm
//! complete message delivery so the sender can release state, and BUSY packets
//! tell the receiver that a granted message is still queued at the sender.
//!
//! NDP maps naturally onto these types (NACK ↔ RESEND, PULL ↔ GRANT), which is
//! why the paper argues the Homa stack generalizes to other message-based
//! datacenter transports.

use crate::{WireError, WireResult};
use serde::{Deserialize, Serialize};

/// Packet type carried in the SMT/Homa overlay header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum PacketType {
    /// Message payload (possibly one MTU-sized slice of a TSO segment).
    Data = 0x10,
    /// Receiver grants the sender permission to send more bytes (receiver-driven).
    Grant = 0x11,
    /// Receiver requests retransmission of a byte range of a message.
    Resend = 0x12,
    /// Receiver acknowledges complete receipt of a message.
    Ack = 0x13,
    /// Sender signals it is still working on a granted message.
    Busy = 0x14,
    /// Handshake / session-control payload (TLS handshake flights ride on these).
    Control = 0x15,
}

impl PacketType {
    /// Decodes a packet type from its wire discriminant.
    pub fn from_u8(v: u8) -> WireResult<Self> {
        match v {
            0x10 => Ok(PacketType::Data),
            0x11 => Ok(PacketType::Grant),
            0x12 => Ok(PacketType::Resend),
            0x13 => Ok(PacketType::Ack),
            0x14 => Ok(PacketType::Busy),
            0x15 => Ok(PacketType::Control),
            other => Err(WireError::UnknownPacketType(other)),
        }
    }

    /// True for packet types that carry application payload.
    pub fn carries_payload(self) -> bool {
        matches!(self, PacketType::Data | PacketType::Control)
    }
}

/// GRANT control packet: the receiver allows the sender to transmit message bytes
/// up to `granted_offset`, at network priority `priority`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HomaGrant {
    /// Message being granted.
    pub message_id: u64,
    /// Byte offset (exclusive) up to which the sender may now transmit.
    pub granted_offset: u32,
    /// Network priority the sender should use for the granted bytes.
    pub priority: u8,
}

/// RESEND control packet: the receiver asks for retransmission of
/// `[offset, offset + length)` of a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HomaResend {
    /// Message whose bytes are missing.
    pub message_id: u64,
    /// First missing byte.
    pub offset: u32,
    /// Number of missing bytes.
    pub length: u32,
    /// Priority for the retransmitted data.
    pub priority: u8,
}

/// ACK control packet: the receiver has fully received (and, for SMT, fully
/// authenticated) the message, so the sender can release its state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HomaAck {
    /// The completed message.
    pub message_id: u64,
}

/// BUSY control packet: response to a RESEND when the sender has not finished
/// transmitting the requested range yet (prevents spurious timeouts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HomaBusy {
    /// The message the sender is still working on.
    pub message_id: u64,
}

const GRANT_LEN: usize = 8 + 4 + 1;
const RESEND_LEN: usize = 8 + 4 + 4 + 1;
const ACK_LEN: usize = 8;
const BUSY_LEN: usize = 8;

macro_rules! check_space {
    ($out:expr, $need:expr) => {
        if $out.len() < $need {
            return Err(WireError::NoSpace {
                needed: $need,
                available: $out.len(),
            });
        }
    };
}

macro_rules! check_len {
    ($buf:expr, $need:expr) => {
        if $buf.len() < $need {
            return Err(WireError::Truncated {
                needed: $need,
                available: $buf.len(),
            });
        }
    };
}

impl HomaGrant {
    /// Encoded length in bytes.
    pub const LEN: usize = GRANT_LEN;

    /// Encodes into `out`, returning the bytes written.
    pub fn encode(&self, out: &mut [u8]) -> WireResult<usize> {
        check_space!(out, GRANT_LEN);
        out[0..8].copy_from_slice(&self.message_id.to_be_bytes());
        out[8..12].copy_from_slice(&self.granted_offset.to_be_bytes());
        out[12] = self.priority;
        Ok(GRANT_LEN)
    }

    /// Decodes from `buf`, returning the value and bytes consumed.
    pub fn decode(buf: &[u8]) -> WireResult<(Self, usize)> {
        check_len!(buf, GRANT_LEN);
        Ok((
            Self {
                message_id: u64::from_be_bytes(buf[0..8].try_into().unwrap()),
                granted_offset: u32::from_be_bytes(buf[8..12].try_into().unwrap()),
                priority: buf[12],
            },
            GRANT_LEN,
        ))
    }
}

impl HomaResend {
    /// Encoded length in bytes.
    pub const LEN: usize = RESEND_LEN;

    /// Encodes into `out`, returning the bytes written.
    pub fn encode(&self, out: &mut [u8]) -> WireResult<usize> {
        check_space!(out, RESEND_LEN);
        out[0..8].copy_from_slice(&self.message_id.to_be_bytes());
        out[8..12].copy_from_slice(&self.offset.to_be_bytes());
        out[12..16].copy_from_slice(&self.length.to_be_bytes());
        out[16] = self.priority;
        Ok(RESEND_LEN)
    }

    /// Decodes from `buf`, returning the value and bytes consumed.
    pub fn decode(buf: &[u8]) -> WireResult<(Self, usize)> {
        check_len!(buf, RESEND_LEN);
        Ok((
            Self {
                message_id: u64::from_be_bytes(buf[0..8].try_into().unwrap()),
                offset: u32::from_be_bytes(buf[8..12].try_into().unwrap()),
                length: u32::from_be_bytes(buf[12..16].try_into().unwrap()),
                priority: buf[16],
            },
            RESEND_LEN,
        ))
    }
}

impl HomaAck {
    /// Encoded length in bytes.
    pub const LEN: usize = ACK_LEN;

    /// Encodes into `out`, returning the bytes written.
    pub fn encode(&self, out: &mut [u8]) -> WireResult<usize> {
        check_space!(out, ACK_LEN);
        out[0..8].copy_from_slice(&self.message_id.to_be_bytes());
        Ok(ACK_LEN)
    }

    /// Decodes from `buf`, returning the value and bytes consumed.
    pub fn decode(buf: &[u8]) -> WireResult<(Self, usize)> {
        check_len!(buf, ACK_LEN);
        Ok((
            Self {
                message_id: u64::from_be_bytes(buf[0..8].try_into().unwrap()),
            },
            ACK_LEN,
        ))
    }
}

impl HomaBusy {
    /// Encoded length in bytes.
    pub const LEN: usize = BUSY_LEN;

    /// Encodes into `out`, returning the bytes written.
    pub fn encode(&self, out: &mut [u8]) -> WireResult<usize> {
        check_space!(out, BUSY_LEN);
        out[0..8].copy_from_slice(&self.message_id.to_be_bytes());
        Ok(BUSY_LEN)
    }

    /// Decodes from `buf`, returning the value and bytes consumed.
    pub fn decode(buf: &[u8]) -> WireResult<(Self, usize)> {
        check_len!(buf, BUSY_LEN);
        Ok((
            Self {
                message_id: u64::from_be_bytes(buf[0..8].try_into().unwrap()),
            },
            BUSY_LEN,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_type_roundtrip() {
        for t in [
            PacketType::Data,
            PacketType::Grant,
            PacketType::Resend,
            PacketType::Ack,
            PacketType::Busy,
            PacketType::Control,
        ] {
            assert_eq!(PacketType::from_u8(t as u8).unwrap(), t);
        }
        assert!(matches!(
            PacketType::from_u8(0xff),
            Err(WireError::UnknownPacketType(0xff))
        ));
    }

    #[test]
    fn payload_carrying_types() {
        assert!(PacketType::Data.carries_payload());
        assert!(PacketType::Control.carries_payload());
        assert!(!PacketType::Grant.carries_payload());
        assert!(!PacketType::Ack.carries_payload());
    }

    #[test]
    fn grant_roundtrip() {
        let g = HomaGrant {
            message_id: 7,
            granted_offset: 131072,
            priority: 3,
        };
        let mut buf = [0u8; 32];
        let n = g.encode(&mut buf).unwrap();
        let (d, m) = HomaGrant::decode(&buf).unwrap();
        assert_eq!((d, m), (g, n));
    }

    #[test]
    fn resend_roundtrip() {
        let r = HomaResend {
            message_id: 9,
            offset: 3000,
            length: 1500,
            priority: 0,
        };
        let mut buf = [0u8; 32];
        let n = r.encode(&mut buf).unwrap();
        let (d, m) = HomaResend::decode(&buf).unwrap();
        assert_eq!((d, m), (r, n));
    }

    #[test]
    fn ack_busy_roundtrip() {
        let a = HomaAck { message_id: 1 };
        let b = HomaBusy { message_id: 2 };
        let mut buf = [0u8; 16];
        let n = a.encode(&mut buf).unwrap();
        assert_eq!(HomaAck::decode(&buf).unwrap(), (a, n));
        let n = b.encode(&mut buf).unwrap();
        assert_eq!(HomaBusy::decode(&buf).unwrap(), (b, n));
    }

    #[test]
    fn truncation_rejected() {
        assert!(HomaGrant::decode(&[0u8; 4]).is_err());
        assert!(HomaResend::decode(&[0u8; 4]).is_err());
        assert!(HomaAck::decode(&[0u8; 4]).is_err());
        let g = HomaGrant {
            message_id: 1,
            granted_offset: 2,
            priority: 3,
        };
        assert!(g.encode(&mut [0u8; 4]).is_err());
    }
}
