//! Property-based tests on the core data structures and invariants.

use proptest::prelude::*;
use smt::core::segment::{PathInfo, SmtSegmenter};
use smt::core::{reassembly::SmtReceiver, SmtConfig};
use smt::crypto::key_schedule::Secret;
use smt::crypto::record::RecordCipher;
use smt::crypto::{CipherSuite, SeqnoLayout};
use smt::wire::{ContentType, MessageHeader, SmtOverlayHeader, TlsRecordHeader};

fn cipher(byte: u8) -> RecordCipher {
    RecordCipher::from_secret(
        CipherSuite::Aes128GcmSha256,
        &Secret::from_slice(&[byte; 32]).unwrap(),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any (message id, record index) pair composes and decomposes losslessly,
    /// and distinct pairs never collide (non-replayability foundation, §4.4.1).
    #[test]
    fn composite_seqno_roundtrip(id in 0u64..(1 << 48), idx in 0u64..(1 << 16)) {
        let layout = SeqnoLayout::default();
        let s = layout.compose(id, idx).unwrap();
        prop_assert_eq!(s.message_id(), id);
        prop_assert_eq!(s.record_index(), idx);
        let (id2, idx2) = layout.decompose(s.value());
        prop_assert_eq!((id2, idx2), (id, idx));
    }

    /// Record protection round-trips arbitrary payloads and rejects any
    /// single-bit corruption of the ciphertext body.
    #[test]
    fn record_roundtrip_and_tamper(data in proptest::collection::vec(any::<u8>(), 0..4096),
                                   seq in any::<u64>(),
                                   flip in 0usize..4096) {
        let tx = cipher(1);
        let rx = cipher(1);
        let wire = tx.encrypt_record(seq, ContentType::ApplicationData, &data).unwrap();
        let (plain, used) = rx.decrypt_record(seq, &wire).unwrap();
        prop_assert_eq!(used, wire.len());
        prop_assert_eq!(plain.plaintext, data);

        let mut tampered = wire.clone();
        let idx = TlsRecordHeader::LEN + (flip % (tampered.len() - TlsRecordHeader::LEN));
        tampered[idx] ^= 0x01;
        prop_assert!(rx.decrypt_record(seq, &tampered).is_err());
    }

    /// Segmentation followed by reassembly is the identity for any payload and
    /// any packet delivery order (reversal as a worst case).
    #[test]
    fn segment_reassemble_identity(data in proptest::collection::vec(any::<u8>(), 0..100_000),
                                   reverse in any::<bool>(),
                                   queue in 0usize..4) {
        let config = SmtConfig::software();
        let segmenter = SmtSegmenter::new(config, SeqnoLayout::default());
        let tx = cipher(9);
        let out = segmenter.segment_message(
            PathInfo::loopback(1, 2), 3, &data, queue, Some(&tx), None, 1 << 20,
        ).unwrap();
        let mut rx = SmtReceiver::new(config, SeqnoLayout::default(), Some(cipher(9)));
        let mut packets: Vec<_> = out.segments.iter()
            .flat_map(|s| s.packetize(1500).unwrap())
            .collect();
        if reverse {
            packets.reverse();
        }
        let mut delivered = None;
        for p in &packets {
            if let Some(m) = rx.on_packet(p).unwrap() {
                delivered = Some(m);
            }
        }
        let m = delivered.expect("message must complete");
        prop_assert_eq!(m.data, data);
    }

    /// Wire headers decode exactly what they encoded.
    #[test]
    fn header_roundtrips(src in any::<u16>(), dst in any::<u16>(),
                         id in any::<u64>(), len in 0u32..(1 << 20),
                         off in 0u32..(1 << 20)) {
        let off = off.min(len);
        let mh = MessageHeader { src_port: src, dst_port: dst, message_id: id,
                                 message_length: len, message_offset: off };
        let mut buf = [0u8; 64];
        let n = mh.encode(&mut buf).unwrap();
        let (back, used) = MessageHeader::decode(&buf[..n]).unwrap();
        prop_assert_eq!(back, mh);
        prop_assert_eq!(used, n);

        let mut overlay = SmtOverlayHeader::data(src, dst, id, len);
        overlay.options.tso_offset = off;
        let n = overlay.encode(&mut buf).unwrap();
        let (back, _) = SmtOverlayHeader::decode(&buf[..n]).unwrap();
        prop_assert_eq!(back, overlay);
    }

    /// The replay guard accepts each message id exactly once regardless of
    /// completion order.
    #[test]
    fn replay_guard_uniqueness(mut ids in proptest::collection::vec(0u64..500, 1..200)) {
        let mut guard = smt::core::ReplayGuard::new();
        let mut accepted = std::collections::HashSet::new();
        for id in ids.drain(..) {
            let fresh = guard.mark_completed(id);
            prop_assert_eq!(fresh, accepted.insert(id));
            prop_assert!(guard.is_replayed(id));
        }
    }
}
