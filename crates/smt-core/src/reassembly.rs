//! Receiver-side reassembly and decryption (paper §4.3/§4.4).
//!
//! The receiver reverses the sender's two-stage segmentation:
//!
//! 1. **Packets → TSO segments.**  All packets generated from one TSO segment
//!    carry the same overlay header (message ID, TSO offset, record count, ...);
//!    their position inside the segment comes from the IPID (packet offset).  A
//!    segment is complete once a contiguous prefix of packets contains all of its
//!    records.
//! 2. **Segments → records → message.**  Each record is decrypted with the
//!    composite sequence number `(message ID, first record index + i)`; the
//!    framing header gives the application-data length; the decrypted bytes are
//!    placed at the segment's TSO offset.  The message is delivered once all
//!    `message_length` bytes are present.
//!
//! Replay protection (§4.4.1): packets whose message ID has already completed are
//! discarded **without decryption**; spurious retransmissions of packets already
//! received are ignored idempotently.

use crate::config::SmtConfig;
use crate::replay::ReplayGuard;
use crate::{SmtError, SmtResult};
use serde::{Deserialize, Serialize};
use smt_crypto::handshake::ratchet_secret;
use smt_crypto::key_schedule::Secret;
use smt_crypto::record::RecordProtector;
use smt_crypto::CipherSuite;
use smt_crypto::SeqnoLayout;
use smt_wire::{FramingHeader, Packet, PacketType, TlsRecordHeader};
use std::collections::{BTreeMap, HashMap};

/// A fully reassembled (and, when encrypted, authenticated) message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReceivedMessage {
    /// The message ID within the session.
    pub message_id: u64,
    /// Sender's port.
    pub src_port: u16,
    /// Receiver's port.
    pub dst_port: u16,
    /// The application payload.
    pub data: Vec<u8>,
}

/// Cap on the number of messages concurrently under reassembly.  Packets of
/// forged message IDs never complete, so without a cap an attacker grows one
/// `MessageBuf` per garbage datagram; beyond this many the receiver evicts
/// (DESIGN.md §8 state-bounds table).
pub const MAX_IN_PROGRESS_MESSAGES: usize = 1024;

/// Cap on the total bytes buffered across every in-progress message.  The
/// sender's flow control keeps legitimate traffic far below this; an
/// attacker spraying partial segments hits it and triggers eviction.
pub const MAX_TRACKED_BYTES: usize = 4 << 20;

/// Counters exposed for tests, the simulator and the experiment harness.
#[derive(Debug, Default, Clone, Copy, Serialize, Deserialize)]
pub struct ReceiverStats {
    /// Packets accepted and buffered or consumed.
    pub packets_accepted: u64,
    /// Packets dropped because their message ID was already completed (replay).
    pub packets_replayed: u64,
    /// Packets dropped as duplicates/spurious retransmissions within a message.
    pub packets_duplicate: u64,
    /// Messages delivered to the application.
    pub messages_delivered: u64,
    /// Records that failed authentication.
    pub auth_failures: u64,
    /// In-progress message buffers evicted to stay under the state caps.
    pub state_evictions: u64,
    /// High-water mark of bytes retained across all reassembly buffers.
    pub peak_tracked_bytes: u64,
    /// Packets dropped because their key epoch is outside the receive window
    /// (current, next, or the previous-epoch drain window).
    pub epoch_rejected: u64,
}

#[derive(Debug, Default)]
struct SegmentBuf {
    /// Payload chunks keyed by packet offset (IPID).
    chunks: BTreeMap<u16, Vec<u8>>,
    record_count: u16,
    first_record_index: u16,
    /// Key epoch declared by this segment's packets (all must agree).
    epoch: u16,
    decoded: bool,
}

impl SegmentBuf {
    fn contiguous_prefix(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let mut next = 0u16;
        for (&off, chunk) in &self.chunks {
            if off != next {
                break;
            }
            out.extend_from_slice(chunk);
            next = next.wrapping_add(1);
        }
        out
    }
}

#[derive(Debug, Default)]
struct MessageBuf {
    message_length: u32,
    src_port: u16,
    dst_port: u16,
    /// Decrypted application bytes keyed by application offset.
    app_chunks: BTreeMap<u32, Vec<u8>>,
    app_bytes: usize,
    /// Per-TSO-offset segment reassembly buffers.
    segments: HashMap<u32, SegmentBuf>,
    /// Bytes retained by this buffer (chunks + decrypted app bytes), kept as
    /// a running count so the eviction policy never rescans.
    buf_bytes: usize,
}

/// The receive-side engine for one direction of an SMT session.
#[derive(Debug)]
pub struct SmtReceiver {
    config: SmtConfig,
    layout: SeqnoLayout,
    cipher: Option<RecordProtector>,
    /// Traffic secret behind `cipher`; required to ratchet forward on a
    /// key-update (epoch bump).  `None` disables rekey support.
    recv_secret: Option<Secret>,
    suite: Option<CipherSuite>,
    /// Current receive key epoch.
    recv_epoch: u16,
    /// Previous-epoch protector kept for one epoch as a drain window, so
    /// retransmissions of packets sealed before a rekey still authenticate.
    prev_cipher: Option<RecordProtector>,
    replay: ReplayGuard,
    in_progress: HashMap<u64, MessageBuf>,
    /// Total bytes retained across every in-progress buffer.
    tracked_bytes: usize,
    /// Usage counters.
    pub stats: ReceiverStats,
}

impl SmtReceiver {
    /// Creates a receiver. `cipher` must be `Some` unless the mode is plaintext.
    pub fn new(config: SmtConfig, layout: SeqnoLayout, cipher: Option<RecordProtector>) -> Self {
        Self {
            config,
            layout,
            cipher,
            recv_secret: None,
            suite: None,
            recv_epoch: 0,
            prev_cipher: None,
            replay: ReplayGuard::new(),
            in_progress: HashMap::new(),
            tracked_bytes: 0,
            stats: ReceiverStats::default(),
        }
    }

    /// Enables key-update support: with the traffic secret retained, the
    /// receiver can ratchet to the next epoch when the sender stamps
    /// `epoch + 1` in the overlay (and keeps the old keys for a one-epoch
    /// drain window).  Without this, non-zero epochs are dropped.
    pub fn with_rekey(mut self, suite: CipherSuite, secret: &Secret) -> Self {
        self.suite = Some(suite);
        self.recv_secret = Some(secret.clone());
        self
    }

    /// Current receive key epoch.
    pub fn recv_epoch(&self) -> u16 {
        self.recv_epoch
    }

    /// Number of messages currently being reassembled.
    pub fn in_progress(&self) -> usize {
        self.in_progress.len()
    }

    /// Bytes currently retained across every reassembly buffer (bounded by
    /// [`MAX_TRACKED_BYTES`]).
    pub fn tracked_bytes(&self) -> usize {
        self.tracked_bytes
    }

    /// Forced low-water advances taken by the message-ID replay guard to
    /// stay under its cap.
    pub fn replay_guard_evictions(&self) -> u64 {
        self.replay.evictions()
    }

    /// True if `message_id` has already been delivered (replay detection).
    pub fn already_delivered(&self, message_id: u64) -> bool {
        self.replay.is_replayed(message_id)
    }

    /// Processes one received DATA packet.  Returns the completed message when
    /// this packet finishes its reassembly, `None` otherwise.
    pub fn on_packet(&mut self, packet: &Packet) -> SmtResult<Option<ReceivedMessage>> {
        if packet.overlay.tcp.packet_type != PacketType::Data {
            return Err(SmtError::malformed(format!(
                "receiver handed a {:?} packet",
                packet.overlay.tcp.packet_type
            )));
        }
        if packet.corrupted {
            // An out-of-sequence offload encryption produced undecryptable bytes
            // (paper Fig. 2 "Out-seq."); authentication necessarily fails.
            self.stats.auth_failures += 1;
            return Err(SmtError::Crypto(
                smt_crypto::CryptoError::AuthenticationFailed,
            ));
        }
        let opt = &packet.overlay.options;
        let message_id = opt.message_id;

        // Replay of a completed message: drop without decryption (§6.1).
        if self.replay.is_replayed(message_id) {
            self.stats.packets_replayed += 1;
            return Ok(None);
        }

        // Key-epoch window: accept the current epoch, the next one (the
        // sender rekeyed; we ratchet on first successful decrypt), and the
        // previous one while its drain-window protector is still held.
        // Anything else is undecryptable — drop without buffering so forged
        // epochs cannot occupy reassembly state.
        if self.config.crypto_mode.is_encrypted() {
            let cur = self.recv_epoch;
            let in_window = opt.epoch == cur
                || (opt.epoch == cur.wrapping_add(1) && self.recv_secret.is_some())
                || (opt.epoch == cur.wrapping_sub(1) && self.prev_cipher.is_some());
            if !in_window {
                self.stats.epoch_rejected += 1;
                return Ok(None);
            }
        }

        // Packet offset: IPID normally, the explicit resend offset for
        // retransmitted packets (§4.3).
        let packet_offset = if opt.is_retransmission() {
            opt.resend_packet_offset
        } else {
            packet
                .packet_offset()
                .ok_or_else(|| SmtError::malformed("IPv6 packet without explicit packet offset"))?
        };

        let payload = packet
            .payload
            .as_data()
            .ok_or_else(|| SmtError::malformed("DATA packet without data payload"))?
            .to_vec();

        let msg = self
            .in_progress
            .entry(message_id)
            .or_insert_with(|| MessageBuf {
                message_length: opt.message_length,
                src_port: packet.overlay.tcp.src_port,
                dst_port: packet.overlay.tcp.dst_port,
                ..MessageBuf::default()
            });
        if msg.message_length != opt.message_length {
            return Err(SmtError::malformed(
                "inconsistent message length across packets",
            ));
        }

        let seg = msg
            .segments
            .entry(opt.tso_offset)
            .or_insert_with(|| SegmentBuf {
                record_count: opt.record_count,
                first_record_index: opt.first_record_index,
                epoch: opt.epoch,
                ..SegmentBuf::default()
            });
        if seg.record_count != opt.record_count
            || seg.first_record_index != opt.first_record_index
            || seg.epoch != opt.epoch
        {
            // Geometry disagrees with what earlier packets of this segment
            // declared: forged or corrupted metadata.
            return Err(SmtError::malformed(
                "inconsistent segment geometry across packets",
            ));
        }
        if seg.decoded {
            self.stats.packets_duplicate += 1;
            return Ok(None);
        }
        if let Some(existing) = seg.chunks.get(&packet_offset) {
            if *existing == payload {
                // A spurious retransmission: byte-identical, idempotent.
                self.stats.packets_duplicate += 1;
                return Ok(None);
            }
            // A coalescing attack: a second, different payload for an offset
            // we already buffered.  Without per-packet authentication the
            // receiver cannot arbitrate, so it surfaces the conflict instead
            // of silently preferring either copy (DESIGN.md §8).
            return Err(SmtError::malformed(
                "conflicting payload for already-buffered packet offset",
            ));
        }
        let payload_len = payload.len();
        seg.chunks.insert(packet_offset, payload);
        msg.buf_bytes += payload_len;
        self.tracked_bytes += payload_len;
        self.stats.packets_accepted += 1;

        // Try to decode the segment, then check message completion.
        self.try_decode_segment(message_id, opt.tso_offset)?;
        let delivered = self.try_complete(message_id)?;
        self.enforce_bounds();
        self.stats.peak_tracked_bytes =
            self.stats.peak_tracked_bytes.max(self.tracked_bytes as u64);
        Ok(delivered)
    }

    /// Evicts in-progress buffers (fewest retained bytes first, newest
    /// message ID breaking ties — the profile of single-packet forgeries)
    /// until both state caps hold again.  Evicted messages are *not* marked
    /// replayed: a legitimate sender's retransmissions can still rebuild and
    /// deliver them.
    fn enforce_bounds(&mut self) {
        while self.in_progress.len() > MAX_IN_PROGRESS_MESSAGES
            || self.tracked_bytes > MAX_TRACKED_BYTES
        {
            let victim = self
                .in_progress
                .iter()
                .min_by_key(|(&id, m)| (m.buf_bytes, std::cmp::Reverse(id)))
                .map(|(&id, _)| id);
            let Some(id) = victim else {
                // No buffers left to evict; reset the byte count defensively.
                self.tracked_bytes = 0;
                return;
            };
            if let Some(evicted) = self.in_progress.remove(&id) {
                self.tracked_bytes = self.tracked_bytes.saturating_sub(evicted.buf_bytes);
            }
            self.stats.state_evictions += 1;
        }
    }

    fn try_decode_segment(&mut self, message_id: u64, tso_offset: u32) -> SmtResult<()> {
        let encrypted = self.config.crypto_mode.is_encrypted();
        let Some(msg) = self.in_progress.get_mut(&message_id) else {
            return Ok(());
        };
        let Some(seg) = msg.segments.get_mut(&tso_offset) else {
            return Ok(());
        };
        if seg.decoded {
            return Ok(());
        }
        let prefix = seg.contiguous_prefix();

        if !encrypted {
            // Plaintext (Homa baseline): bytes land directly at the TSO offset.
            // We only know a plaintext segment is complete when the whole message
            // byte count adds up, so place the contiguous prefix incrementally.
            let already: usize = msg
                .app_chunks
                .get(&tso_offset)
                .map(|c| c.len())
                .unwrap_or(0);
            if prefix.len() > already {
                let grown = prefix.len() - already;
                msg.app_bytes += grown;
                msg.buf_bytes += grown;
                msg.app_chunks.insert(tso_offset, prefix);
                self.tracked_bytes += grown;
            }
            return Ok(());
        }

        // Encrypted: parse whole records out of the contiguous prefix.
        let mut complete_records = 0u16;
        let mut consumed = 0usize;
        while complete_records < seg.record_count {
            let rest = &prefix[consumed..];
            let Ok((hdr, hdr_len)) = TlsRecordHeader::decode(rest) else {
                break;
            };
            if rest.len() < hdr_len + hdr.length as usize {
                break;
            }
            consumed += hdr_len + hdr.length as usize;
            complete_records += 1;
        }
        if complete_records < seg.record_count {
            return Ok(()); // not yet complete
        }

        // All records present: open the whole contiguous run in one batched
        // call through the shared datapath. Records of one segment carry
        // consecutive record indices, so their composite sequence numbers are
        // consecutive too; composing the first and last indices validates the
        // full range. Only the application bytes are then copied out of the
        // protector's scratch into the message assembly.
        //
        // Key selection is by the segment's declared epoch.  A next-epoch
        // segment is opened under a *candidate* ratcheted protector; the roll
        // is only committed once authentication succeeds, so a forged epoch
        // stamp cannot push the receiver's key schedule forward.
        let seg_epoch = seg.epoch;
        let cur = self.recv_epoch;
        let mut candidate: Option<(RecordProtector, Secret)> = None;
        let cipher: &mut RecordProtector = if seg_epoch == cur {
            self.cipher.as_mut().ok_or_else(|| {
                SmtError::Session("encrypted session without a receive cipher".into())
            })?
        } else if seg_epoch == cur.wrapping_add(1) {
            let (suite, secret) = match (self.suite, self.recv_secret.as_ref()) {
                (Some(s), Some(sec)) => (s, sec),
                _ => {
                    // Rekey material was never provided; the on_packet window
                    // should have filtered this.  Drop the segment defensively.
                    let held: usize = seg.chunks.values().map(|c| c.len()).sum();
                    msg.segments.remove(&tso_offset);
                    msg.buf_bytes = msg.buf_bytes.saturating_sub(held);
                    self.tracked_bytes = self.tracked_bytes.saturating_sub(held);
                    self.stats.epoch_rejected += 1;
                    return Ok(());
                }
            };
            let next = ratchet_secret(secret);
            let protector = RecordProtector::from_secret(suite, &next).map_err(SmtError::Crypto)?;
            candidate = Some((protector, next));
            &mut candidate.as_mut().expect("just set").0
        } else if let (true, Some(prev)) =
            (seg_epoch == cur.wrapping_sub(1), self.prev_cipher.as_mut())
        {
            prev
        } else {
            // The window moved between buffering and decode (e.g. the rekey
            // committed while this old segment was still partial and its
            // drain window has since closed).  Undecryptable: drop it.
            let held: usize = seg.chunks.values().map(|c| c.len()).sum();
            msg.segments.remove(&tso_offset);
            msg.buf_bytes = msg.buf_bytes.saturating_sub(held);
            self.tracked_bytes = self.tracked_bytes.saturating_sub(held);
            self.stats.epoch_rejected += 1;
            return Ok(());
        };
        let first_index = seg.first_record_index as u64;
        let first_seq = self
            .layout
            .compose(message_id, first_index)
            .map_err(SmtError::Crypto)?;
        let last_seq = self
            .layout
            .compose(message_id, first_index + seg.record_count.max(1) as u64 - 1)
            .map_err(SmtError::Crypto)?;
        debug_assert_eq!(
            last_seq.value() - first_seq.value(),
            seg.record_count.max(1) as u64 - 1,
            "contiguous record indices must compose to consecutive seqnos"
        );
        let batch = cipher
            .open_batch(first_seq.value(), seg.record_count as usize, &prefix)
            .map_err(|e| {
                self.stats.auth_failures += 1;
                SmtError::Crypto(e)
            })?;
        let mut app_offset = tso_offset;
        let mut delta = 0isize;
        for plain in batch.iter() {
            let app: &[u8] = if self.config.framing_header {
                let (framing, flen) = FramingHeader::decode(plain.plaintext)?;
                let end = flen + framing.app_data_len as usize;
                if plain.plaintext.len() < end {
                    return Err(SmtError::malformed("framing header exceeds record"));
                }
                &plain.plaintext[flen..end]
            } else {
                plain.plaintext
            };
            let len = app.len();
            let replaced = msg
                .app_chunks
                .insert(app_offset, app.to_vec())
                .map_or(0, |old| old.len());
            msg.app_bytes += len;
            delta += len as isize - replaced as isize;
            app_offset += len as u32;
        }
        seg.decoded = true;
        let cleared: usize = seg.chunks.values().map(|c| c.len()).sum();
        seg.chunks.clear();
        delta -= cleared as isize;
        msg.buf_bytes = msg.buf_bytes.saturating_add_signed(delta);
        self.tracked_bytes = self.tracked_bytes.saturating_add_signed(delta);
        if let Some((protector, next)) = candidate {
            // A next-epoch segment authenticated: commit the ratchet and keep
            // the outgoing keys for the drain window.
            self.prev_cipher = self.cipher.replace(protector);
            self.recv_secret = Some(next);
            self.recv_epoch = self.recv_epoch.wrapping_add(1);
        }
        Ok(())
    }

    fn try_complete(&mut self, message_id: u64) -> SmtResult<Option<ReceivedMessage>> {
        let done = {
            let Some(msg) = self.in_progress.get(&message_id) else {
                return Ok(None);
            };
            msg.app_bytes >= msg.message_length as usize
        };
        if !done {
            return Ok(None);
        }
        let Some(msg) = self.in_progress.remove(&message_id) else {
            return Ok(None);
        };
        self.tracked_bytes = self.tracked_bytes.saturating_sub(msg.buf_bytes);
        let mut data = Vec::with_capacity(msg.message_length as usize);
        let mut expected = 0u32;
        for (&off, chunk) in &msg.app_chunks {
            if off != expected {
                return Err(SmtError::malformed(format!(
                    "gap in reassembled message at offset {expected} (next chunk at {off})"
                )));
            }
            data.extend_from_slice(chunk);
            expected += chunk.len() as u32;
        }
        if data.len() != msg.message_length as usize {
            return Err(SmtError::malformed("reassembled length mismatch"));
        }
        let guard_evictions_before = self.replay.evictions();
        self.replay.mark_completed(message_id);
        self.stats.state_evictions += self.replay.evictions() - guard_evictions_before;
        self.stats.messages_delivered += 1;
        Ok(Some(ReceivedMessage {
            message_id,
            src_port: msg.src_port,
            dst_port: msg.dst_port,
            data,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::{PathInfo, SmtSegmenter};
    use crate::SmtConfig;
    use smt_crypto::key_schedule::Secret;
    use smt_crypto::CipherSuite;
    use smt_wire::DEFAULT_MTU;

    fn cipher() -> RecordProtector {
        RecordProtector::from_secret(
            CipherSuite::Aes128GcmSha256,
            &Secret::from_slice(&[7u8; 32]).unwrap(),
        )
        .unwrap()
    }

    fn send_receive(config: SmtConfig, data: &[u8], shuffle: bool) -> ReceivedMessage {
        let segmenter = SmtSegmenter::new(config, SeqnoLayout::default());
        let tx_cipher = cipher();
        let use_cipher = config.crypto_mode.is_encrypted();
        let msg = segmenter
            .segment_message(
                PathInfo::loopback(10, 20),
                5,
                data,
                0,
                use_cipher.then_some(&tx_cipher),
                None,
                4 << 20,
            )
            .unwrap();
        let mut rx = SmtReceiver::new(config, SeqnoLayout::default(), use_cipher.then(cipher));
        let mut packets: Vec<Packet> = msg
            .segments
            .iter()
            .flat_map(|s| s.packetize(DEFAULT_MTU).unwrap())
            .collect();
        if shuffle {
            packets.reverse();
        }
        let mut delivered = None;
        for p in &packets {
            if let Some(m) = rx.on_packet(p).unwrap() {
                delivered = Some(m);
            }
        }
        delivered.expect("message delivered")
    }

    #[test]
    fn roundtrip_small_encrypted() {
        let m = send_receive(SmtConfig::software(), b"hello world", false);
        assert_eq!(m.data, b"hello world");
        assert_eq!(m.message_id, 5);
        assert_eq!(m.src_port, 10);
        assert_eq!(m.dst_port, 20);
    }

    #[test]
    fn roundtrip_large_encrypted_out_of_order() {
        let data: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
        let m = send_receive(SmtConfig::software(), &data, true);
        assert_eq!(m.data, data);
    }

    #[test]
    fn roundtrip_plaintext() {
        let data = vec![3u8; 50_000];
        let m = send_receive(SmtConfig::plaintext(), &data, false);
        assert_eq!(m.data, data);
    }

    #[test]
    fn roundtrip_without_framing_header() {
        let mut config = SmtConfig::software();
        config.framing_header = false;
        let data = vec![9u8; 40_000];
        let m = send_receive(config, &data, false);
        assert_eq!(m.data, data);
    }

    #[test]
    fn roundtrip_without_tso() {
        let config = SmtConfig::software().without_tso();
        let data = vec![4u8; 20_000];
        let m = send_receive(config, &data, true);
        assert_eq!(m.data, data);
    }

    #[test]
    fn duplicate_packets_ignored() {
        let config = SmtConfig::software();
        let segmenter = SmtSegmenter::new(config, SeqnoLayout::default());
        let tx = cipher();
        let msg = segmenter
            .segment_message(
                PathInfo::loopback(1, 2),
                0,
                &vec![1u8; 10_000],
                0,
                Some(&tx),
                None,
                1 << 20,
            )
            .unwrap();
        let mut rx = SmtReceiver::new(config, SeqnoLayout::default(), Some(cipher()));
        let packets = msg.segments[0].packetize(DEFAULT_MTU).unwrap();
        // Deliver the first packet twice before the rest.
        rx.on_packet(&packets[0]).unwrap();
        rx.on_packet(&packets[0]).unwrap();
        assert_eq!(rx.stats.packets_duplicate, 1);
        let mut delivered = None;
        for p in &packets[1..] {
            if let Some(m) = rx.on_packet(p).unwrap() {
                delivered = Some(m);
            }
        }
        assert_eq!(delivered.unwrap().data, vec![1u8; 10_000]);
    }

    #[test]
    fn conflicting_duplicate_payload_rejected() {
        // Coalescing attack: a second copy of an already-buffered packet
        // offset carrying *different* bytes must surface a typed error, not
        // be silently dropped in favor of the first copy.
        let config = SmtConfig::software();
        let segmenter = SmtSegmenter::new(config, SeqnoLayout::default());
        let tx = cipher();
        let msg = segmenter
            .segment_message(
                PathInfo::loopback(1, 2),
                0,
                &vec![1u8; 10_000],
                0,
                Some(&tx),
                None,
                1 << 20,
            )
            .unwrap();
        let mut rx = SmtReceiver::new(config, SeqnoLayout::default(), Some(cipher()));
        let packets = msg.segments[0].packetize(DEFAULT_MTU).unwrap();
        rx.on_packet(&packets[0]).unwrap();
        // Same packet offset, tampered payload bytes.
        let mut forged = packets[0].clone();
        if let smt_wire::PacketPayload::Data(b) = &forged.payload {
            let mut v = b.to_vec();
            v[0] ^= 0x55;
            forged.payload = smt_wire::PacketPayload::Data(v.into());
        }
        assert!(matches!(
            rx.on_packet(&forged),
            Err(SmtError::MalformedPacket(_))
        ));
        // A byte-identical retransmission is still absorbed idempotently.
        assert!(rx.on_packet(&packets[0]).unwrap().is_none());
        assert_eq!(rx.stats.packets_duplicate, 1);
    }

    #[test]
    fn inconsistent_segment_geometry_rejected() {
        let config = SmtConfig::software();
        let segmenter = SmtSegmenter::new(config, SeqnoLayout::default());
        let tx = cipher();
        let msg = segmenter
            .segment_message(
                PathInfo::loopback(1, 2),
                0,
                &vec![1u8; 10_000],
                0,
                Some(&tx),
                None,
                1 << 20,
            )
            .unwrap();
        let mut rx = SmtReceiver::new(config, SeqnoLayout::default(), Some(cipher()));
        let packets = msg.segments[0].packetize(DEFAULT_MTU).unwrap();
        rx.on_packet(&packets[0]).unwrap();
        // A later packet of the same segment claiming different geometry.
        let mut forged = packets[1].clone();
        forged.overlay.options.first_record_index += 7;
        assert!(matches!(
            rx.on_packet(&forged),
            Err(SmtError::MalformedPacket(_))
        ));
    }

    #[test]
    fn garbage_message_flood_stays_bounded() {
        // One packet per forged message ID: without the cap this grows one
        // MessageBuf per datagram forever.
        let config = SmtConfig::software();
        let segmenter = SmtSegmenter::new(config, SeqnoLayout::default());
        let tx = cipher();
        let mut rx = SmtReceiver::new(config, SeqnoLayout::default(), Some(cipher()));
        for id in 0..3 * MAX_IN_PROGRESS_MESSAGES as u64 {
            // A real first packet of a large message that never completes.
            let msg = segmenter
                .segment_message(
                    PathInfo::loopback(1, 2),
                    id,
                    &vec![0xab; 4000],
                    0,
                    Some(&tx),
                    None,
                    1 << 20,
                )
                .unwrap();
            let packets = msg.segments[0].packetize(DEFAULT_MTU).unwrap();
            rx.on_packet(&packets[0]).unwrap();
        }
        assert!(rx.in_progress() <= MAX_IN_PROGRESS_MESSAGES);
        assert!(rx.tracked_bytes() <= MAX_TRACKED_BYTES);
        assert!(rx.stats.state_evictions > 0);
        assert!(rx.stats.peak_tracked_bytes <= MAX_TRACKED_BYTES as u64);
        // The receiver still works: a fresh complete message delivers.
        let id = 4 * MAX_IN_PROGRESS_MESSAGES as u64;
        let msg = segmenter
            .segment_message(
                PathInfo::loopback(1, 2),
                id,
                b"still alive",
                0,
                Some(&tx),
                None,
                1 << 20,
            )
            .unwrap();
        let mut delivered = None;
        for p in msg.segments[0].packetize(DEFAULT_MTU).unwrap() {
            if let Some(m) = rx.on_packet(&p).unwrap() {
                delivered = Some(m);
            }
        }
        assert_eq!(delivered.unwrap().data, b"still alive");
    }

    #[test]
    fn eviction_recovers_via_retransmission() {
        // An evicted legitimate message is not marked replayed: resending it
        // from scratch still delivers.
        let config = SmtConfig::software();
        let segmenter = SmtSegmenter::new(config, SeqnoLayout::default());
        let tx = cipher();
        let mut rx = SmtReceiver::new(config, SeqnoLayout::default(), Some(cipher()));
        let victim = segmenter
            .segment_message(
                PathInfo::loopback(1, 2),
                0,
                &vec![7u8; 9000],
                0,
                Some(&tx),
                None,
                1 << 20,
            )
            .unwrap();
        let victim_packets = victim.segments[0].packetize(DEFAULT_MTU).unwrap();
        // Buffer only the (short) final packet, so the victim holds the
        // fewest bytes and is deterministically first in eviction order,
        // then flood until it gets evicted.
        rx.on_packet(victim_packets.last().unwrap()).unwrap();
        for id in 1..=MAX_IN_PROGRESS_MESSAGES as u64 + 8 {
            let msg = segmenter
                .segment_message(
                    PathInfo::loopback(1, 2),
                    id,
                    &vec![0xcd; 6000],
                    0,
                    Some(&tx),
                    None,
                    1 << 20,
                )
                .unwrap();
            let packets = msg.segments[0].packetize(DEFAULT_MTU).unwrap();
            rx.on_packet(&packets[0]).unwrap();
        }
        assert!(rx.stats.state_evictions > 0);
        // Full retransmission of the victim delivers it.
        let mut delivered = None;
        for p in &victim_packets {
            let mut retx = p.clone();
            SmtSegmenter::mark_retransmission(&mut retx);
            if let Some(m) = rx.on_packet(&retx).unwrap() {
                delivered = Some(m);
            }
        }
        assert_eq!(delivered.unwrap().data, vec![7u8; 9000]);
    }

    #[test]
    fn replayed_message_dropped_without_decryption() {
        let config = SmtConfig::software();
        let segmenter = SmtSegmenter::new(config, SeqnoLayout::default());
        let tx = cipher();
        let msg = segmenter
            .segment_message(
                PathInfo::loopback(1, 2),
                9,
                b"only once",
                0,
                Some(&tx),
                None,
                1 << 20,
            )
            .unwrap();
        let mut rx = SmtReceiver::new(config, SeqnoLayout::default(), Some(cipher()));
        let packets = msg.segments[0].packetize(DEFAULT_MTU).unwrap();
        let mut count = 0;
        for p in &packets {
            if rx.on_packet(p).unwrap().is_some() {
                count += 1;
            }
        }
        assert_eq!(count, 1);
        assert!(rx.already_delivered(9));
        // Replaying the entire message yields nothing and is counted.
        for p in &packets {
            assert!(rx.on_packet(p).unwrap().is_none());
        }
        assert_eq!(rx.stats.packets_replayed as usize, packets.len());
        assert_eq!(rx.stats.messages_delivered, 1);
    }

    #[test]
    fn tampered_payload_detected() {
        let config = SmtConfig::software();
        let segmenter = SmtSegmenter::new(config, SeqnoLayout::default());
        let tx = cipher();
        let msg = segmenter
            .segment_message(
                PathInfo::loopback(1, 2),
                0,
                b"sensitive",
                0,
                Some(&tx),
                None,
                1 << 20,
            )
            .unwrap();
        let mut rx = SmtReceiver::new(config, SeqnoLayout::default(), Some(cipher()));
        let mut packets = msg.segments[0].packetize(DEFAULT_MTU).unwrap();
        // Flip a ciphertext byte.
        if let smt_wire::PacketPayload::Data(b) = &packets[0].payload {
            let mut v = b.to_vec();
            let last = v.len() - 1;
            v[last] ^= 0xff;
            packets[0].payload = smt_wire::PacketPayload::Data(v.into());
        }
        let err = rx.on_packet(&packets[0]);
        assert!(matches!(
            err,
            Err(SmtError::Crypto(
                smt_crypto::CryptoError::AuthenticationFailed
            ))
        ));
        assert_eq!(rx.stats.auth_failures, 1);
    }

    #[test]
    fn corrupted_offload_packet_rejected() {
        let config = SmtConfig::software();
        let segmenter = SmtSegmenter::new(config, SeqnoLayout::default());
        let tx = cipher();
        let msg = segmenter
            .segment_message(PathInfo::loopback(1, 2), 0, b"x", 0, Some(&tx), None, 1024)
            .unwrap();
        let mut rx = SmtReceiver::new(config, SeqnoLayout::default(), Some(cipher()));
        let mut packets = msg.segments[0].packetize(DEFAULT_MTU).unwrap();
        packets[0].corrupted = true;
        assert!(rx.on_packet(&packets[0]).is_err());
    }

    #[test]
    fn interleaved_messages_reassemble_independently() {
        // The property that motivates SMT: different messages of one session can
        // arrive interleaved and out of order without head-of-line blocking.
        let config = SmtConfig::software();
        let segmenter = SmtSegmenter::new(config, SeqnoLayout::default());
        let tx = cipher();
        let data_a: Vec<u8> = vec![0xaa; 60_000];
        let data_b: Vec<u8> = vec![0xbb; 45_000];
        let msg_a = segmenter
            .segment_message(
                PathInfo::loopback(1, 2),
                1,
                &data_a,
                0,
                Some(&tx),
                None,
                1 << 20,
            )
            .unwrap();
        let msg_b = segmenter
            .segment_message(
                PathInfo::loopback(1, 2),
                2,
                &data_b,
                1,
                Some(&tx),
                None,
                1 << 20,
            )
            .unwrap();
        let pkts_a: Vec<Packet> = msg_a
            .segments
            .iter()
            .flat_map(|s| s.packetize(DEFAULT_MTU).unwrap())
            .collect();
        let pkts_b: Vec<Packet> = msg_b
            .segments
            .iter()
            .flat_map(|s| s.packetize(DEFAULT_MTU).unwrap())
            .collect();

        let mut rx = SmtReceiver::new(config, SeqnoLayout::default(), Some(cipher()));
        let mut delivered = Vec::new();
        // Interleave: one packet of A, one of B, alternating; B finishes first.
        let mut ia = pkts_a.iter();
        let mut ib = pkts_b.iter();
        loop {
            let mut progressed = false;
            if let Some(p) = ib.next() {
                if let Some(m) = rx.on_packet(p).unwrap() {
                    delivered.push(m);
                }
                progressed = true;
            }
            if let Some(p) = ia.next() {
                if let Some(m) = rx.on_packet(p).unwrap() {
                    delivered.push(m);
                }
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        assert_eq!(delivered.len(), 2);
        let a = delivered.iter().find(|m| m.message_id == 1).unwrap();
        let b = delivered.iter().find(|m| m.message_id == 2).unwrap();
        assert_eq!(a.data, data_a);
        assert_eq!(b.data, data_b);
        // The shorter message B completed before the larger A.
        assert_eq!(delivered[0].message_id, 2);
    }

    #[test]
    fn retransmitted_packet_fills_gap() {
        let config = SmtConfig::software();
        let segmenter = SmtSegmenter::new(config, SeqnoLayout::default());
        let tx = cipher();
        let data = vec![7u8; 12_000];
        let msg = segmenter
            .segment_message(
                PathInfo::loopback(1, 2),
                0,
                &data,
                0,
                Some(&tx),
                None,
                1 << 20,
            )
            .unwrap();
        let packets = msg.segments[0].packetize(DEFAULT_MTU).unwrap();
        let mut rx = SmtReceiver::new(config, SeqnoLayout::default(), Some(cipher()));
        // Deliver all but packet 3 (simulated loss).
        for (i, p) in packets.iter().enumerate() {
            if i != 3 {
                assert!(rx.on_packet(p).unwrap().is_none());
            }
        }
        // Retransmit packet 3 with the resend-offset marking.
        let mut retx = packets[3].clone();
        SmtSegmenter::mark_retransmission(&mut retx);
        let m = rx.on_packet(&retx).unwrap().expect("message completes");
        assert_eq!(m.data, data);
    }

    #[test]
    fn wrong_packet_type_rejected() {
        let config = SmtConfig::software();
        let mut rx = SmtReceiver::new(config, SeqnoLayout::default(), Some(cipher()));
        let overlay = smt_wire::SmtOverlayHeader {
            tcp: smt_wire::OverlayTcpHeader::new(1, 2, PacketType::Grant),
            options: smt_wire::SmtOptionArea::new(0, 0),
        };
        let pkt = Packet {
            ip: smt_wire::IpHeader::V4(smt_wire::Ipv4Header::new(
                [1, 1, 1, 1],
                [2, 2, 2, 2],
                smt_wire::IPPROTO_SMT,
                60,
            )),
            overlay,
            payload: smt_wire::PacketPayload::Grant(smt_wire::HomaGrant {
                message_id: 0,
                granted_offset: 0,
                priority: 0,
            }),
            corrupted: false,
        };
        assert!(rx.on_packet(&pkt).is_err());
    }
}
