//! Driver binary for the in-repo fuzz harness.
//!
//! ```text
//! smt-fuzz [--target NAME|all] [--iters N] [--seed S] [--list]
//! ```
//!
//! Runs each selected target for N seeded iterations and prints one summary
//! line per target.  A panic in any parser aborts the process with a
//! backtrace — the failure signal; reproduce with the printed seed.

use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: smt-fuzz [--target NAME|all] [--iters N] [--seed S] [--list]");
    eprintln!("targets: {}", smt_fuzz::target_names().join(", "));
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut target = String::from("all");
    let mut iters: u64 = 10_000;
    let mut seed: u64 = 1;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--target" => match args.next() {
                Some(v) => target = v,
                None => return usage(),
            },
            "--iters" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => iters = v,
                None => return usage(),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return usage(),
            },
            "--list" => {
                for name in smt_fuzz::target_names() {
                    println!("{name}");
                }
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }

    let reports = if target == "all" {
        smt_fuzz::run_all(iters, seed)
    } else {
        match smt_fuzz::run_target(&target, iters, seed) {
            Some(report) => vec![report],
            None => {
                eprintln!("unknown target '{target}'");
                return usage();
            }
        }
    };
    for report in &reports {
        println!("{report}");
    }
    println!(
        "ok: {} target(s), {} iterations each, seed {}",
        reports.len(),
        iters,
        seed
    );
    ExitCode::SUCCESS
}
