//! 256-bit modular arithmetic via Montgomery multiplication (CIOS).
//!
//! One [`Modulus`] instance carries the precomputed Montgomery constants for a
//! fixed odd modulus; the P-256 field prime and group order instances are
//! created lazily. Values passed to and returned from the `mont_*` helpers are
//! in Montgomery form unless stated otherwise; `to_mont` / `from_mont` convert.

/// A 256-bit unsigned integer, little-endian u64 limbs.
pub type U256 = [u64; 4];

/// Comparison: a < b.
pub fn lt(a: &U256, b: &U256) -> bool {
    for i in (0..4).rev() {
        if a[i] != b[i] {
            return a[i] < b[i];
        }
    }
    false
}

/// True if a == 0.
pub fn is_zero(a: &U256) -> bool {
    a.iter().all(|&l| l == 0)
}

/// a + b with carry out.
pub fn add(a: &U256, b: &U256) -> (U256, bool) {
    let mut out = [0u64; 4];
    let mut carry = 0u128;
    for i in 0..4 {
        let s = a[i] as u128 + b[i] as u128 + carry;
        out[i] = s as u64;
        carry = s >> 64;
    }
    (out, carry != 0)
}

/// a - b with borrow out.
pub fn sub(a: &U256, b: &U256) -> (U256, bool) {
    let mut out = [0u64; 4];
    let mut borrow = 0i128;
    for i in 0..4 {
        let d = a[i] as i128 - b[i] as i128 - borrow;
        if d < 0 {
            out[i] = (d + (1i128 << 64)) as u64;
            borrow = 1;
        } else {
            out[i] = d as u64;
            borrow = 0;
        }
    }
    (out, borrow != 0)
}

/// Parses a 32-byte big-endian integer.
pub fn from_be_bytes(b: &[u8; 32]) -> U256 {
    let mut out = [0u64; 4];
    for i in 0..4 {
        out[3 - i] = u64::from_be_bytes(b[i * 8..(i + 1) * 8].try_into().expect("8 bytes"));
    }
    out
}

/// Serializes to 32 big-endian bytes.
pub fn to_be_bytes(a: &U256) -> [u8; 32] {
    let mut out = [0u8; 32];
    for i in 0..4 {
        out[i * 8..(i + 1) * 8].copy_from_slice(&a[3 - i].to_be_bytes());
    }
    out
}

/// A fixed odd modulus with precomputed Montgomery constants.
pub struct Modulus {
    /// The modulus m.
    pub m: U256,
    /// -m⁻¹ mod 2⁶⁴.
    m_prime: u64,
    /// R² mod m where R = 2²⁵⁶ (converts into Montgomery form).
    r2: U256,
    /// R mod m (the Montgomery form of 1).
    pub one: U256,
}

impl Modulus {
    /// Builds the constants for an odd modulus.
    pub fn new(m: U256) -> Self {
        // m⁻¹ mod 2⁶⁴ by Newton iteration, then negate.
        let mut inv = 1u64;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(m[0].wrapping_mul(inv)));
        }
        let m_prime = inv.wrapping_neg();

        // R mod m: (2²⁵⁶ - m) mod m computed by subtracting m from zero with wrap.
        let (r_mod_m, _) = sub(&[0, 0, 0, 0], &m); // = 2²⁵⁶ - m ≡ R (mod m), already < m? not necessarily; reduce.
        let one = reduce_once(r_mod_m, &m);

        // R² mod m by 256 modular doublings of R.
        let mut r2 = one;
        for _ in 0..256 {
            r2 = mod_add(&r2, &r2, &m);
        }

        Self {
            m,
            m_prime,
            r2,
            one,
        }
    }

    /// Montgomery multiplication: returns a·b·R⁻¹ mod m.
    pub fn mont_mul(&self, a: &U256, b: &U256) -> U256 {
        // CIOS (coarsely integrated operand scanning).
        let mut t = [0u64; 6];
        for &ai in a.iter().take(4) {
            // t += ai * b
            let mut carry = 0u128;
            for j in 0..4 {
                let s = t[j] as u128 + ai as u128 * b[j] as u128 + carry;
                t[j] = s as u64;
                carry = s >> 64;
            }
            let s = t[4] as u128 + carry;
            t[4] = s as u64;
            t[5] = (s >> 64) as u64;

            // Reduce one limb: u = t[0]·m' mod 2⁶⁴; t += u·m; t >>= 64.
            let u = t[0].wrapping_mul(self.m_prime);
            let s = t[0] as u128 + u as u128 * self.m[0] as u128;
            let mut carry = s >> 64;
            for j in 1..4 {
                let s = t[j] as u128 + u as u128 * self.m[j] as u128 + carry;
                t[j - 1] = s as u64;
                carry = s >> 64;
            }
            let s = t[4] as u128 + carry;
            t[3] = s as u64;
            t[4] = t[5] + ((s >> 64) as u64);
            t[5] = 0;
        }
        let mut out = [t[0], t[1], t[2], t[3]];
        if t[4] != 0 || !lt(&out, &self.m) {
            let (r, _) = sub(&out, &self.m);
            out = r;
        }
        out
    }

    /// Converts into Montgomery form.
    pub fn to_mont(&self, a: &U256) -> U256 {
        self.mont_mul(a, &self.r2)
    }

    /// Converts out of Montgomery form.
    #[allow(clippy::wrong_self_convention)]
    pub fn from_mont(&self, a: &U256) -> U256 {
        self.mont_mul(a, &[1, 0, 0, 0])
    }

    /// Modular addition (plain or Montgomery form — it is linear).
    pub fn add(&self, a: &U256, b: &U256) -> U256 {
        mod_add(a, b, &self.m)
    }

    /// Modular subtraction.
    pub fn sub(&self, a: &U256, b: &U256) -> U256 {
        let (r, borrow) = sub(a, b);
        if borrow {
            let (r2, _) = add(&r, &self.m);
            r2
        } else {
            r
        }
    }

    /// Montgomery exponentiation: a^e mod m (a in Montgomery form; result too).
    pub fn mont_pow(&self, a: &U256, e: &U256) -> U256 {
        let mut result = self.one;
        for i in (0..256).rev() {
            result = self.mont_mul(&result, &result);
            if (e[i / 64] >> (i % 64)) & 1 == 1 {
                result = self.mont_mul(&result, a);
            }
        }
        result
    }

    /// Modular inverse via Fermat (m must be prime): a⁻¹ = a^(m-2).
    /// Input and output in Montgomery form.
    pub fn mont_inv(&self, a: &U256) -> U256 {
        let (e, _) = sub(&self.m, &[2, 0, 0, 0]);
        self.mont_pow(a, &e)
    }

    /// Reduces an arbitrary 256-bit value mod m (plain form).
    pub fn reduce(&self, a: &U256) -> U256 {
        reduce_once(*a, &self.m)
    }
}

fn reduce_once(a: U256, m: &U256) -> U256 {
    if lt(&a, m) {
        a
    } else {
        let (r, _) = sub(&a, m);
        // A single subtraction suffices for values < 2m; values up to 2²⁵⁶-1 may
        // need one more for small moduli, but both P-256 moduli exceed 2²⁵⁵ so
        // a < 2²⁵⁶ < 2m never needs a second pass... except a < 2²⁵⁶ ≤ 2m holds
        // exactly because m > 2²⁵⁵. Keep a defensive loop for clarity.
        if lt(&r, m) {
            r
        } else {
            let (r2, _) = sub(&r, m);
            r2
        }
    }
}

fn mod_add(a: &U256, b: &U256, m: &U256) -> U256 {
    let (s, carry) = add(a, b);
    if carry || !lt(&s, m) {
        let (r, _) = sub(&s, m);
        r
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p256_p() -> U256 {
        [
            0xFFFF_FFFF_FFFF_FFFF,
            0x0000_0000_FFFF_FFFF,
            0x0000_0000_0000_0000,
            0xFFFF_FFFF_0000_0001,
        ]
    }

    #[test]
    fn mont_roundtrip() {
        let md = Modulus::new(p256_p());
        let a: U256 = [0x1234_5678, 0x9abc_def0, 7, 42];
        let am = md.to_mont(&a);
        assert_eq!(md.from_mont(&am), a);
    }

    #[test]
    fn mul_matches_small_numbers() {
        let md = Modulus::new(p256_p());
        let a = md.to_mont(&[1_000_000_007, 0, 0, 0]);
        let b = md.to_mont(&[998_244_353, 0, 0, 0]);
        let c = md.from_mont(&md.mont_mul(&a, &b));
        assert_eq!(c, [1_000_000_007u64 * 998_244_353, 0, 0, 0]);
    }

    #[test]
    fn inverse_works() {
        let md = Modulus::new(p256_p());
        let a = md.to_mont(&[0xdead_beef, 0xcafe, 1, 0]);
        let inv = md.mont_inv(&a);
        let prod = md.mont_mul(&a, &inv);
        assert_eq!(prod, md.one);
    }

    #[test]
    fn add_sub_inverse_ops() {
        let md = Modulus::new(p256_p());
        let a: U256 = [5, 6, 7, 8];
        let b: U256 = [9, 10, 11, 12];
        let s = md.add(&a, &b);
        assert_eq!(md.sub(&s, &b), a);
        // Subtraction below zero wraps mod m.
        let z = md.sub(&a, &b);
        assert_eq!(md.add(&z, &b), a);
    }
}
