//! Property tests pinning the three backend tiers to each other and to the
//! scalar reference path.
//!
//! Every tier is an independent datapath — PCLMULQDQ aggregated GHASH with a
//! 16-block (VAES/AES-NI) keystream, Shoup byte tables with the 8-block
//! keystream, and the pure T-table fallback — yet all must produce identical
//! ciphertext and tags for identical inputs, and each must open what any
//! other sealed. On CPUs without the relevant features a forced tier degrades
//! to a supported backend, so these tests stay meaningful (they collapse to
//! re-checking the fallback against the reference) rather than vacuous.

use aes_gcm::{Aes128Gcm, Aes256Gcm, CryptoTier};
use proptest::prelude::*;

const TIERS: [CryptoTier; 3] = [
    CryptoTier::WideClmul,
    CryptoTier::AesNiShoup,
    CryptoTier::Portable,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random lengths spanning partial blocks, 128-byte strides and 256-byte
    /// wide strides: every tier's seal must equal the scalar reference
    /// bit-for-bit, and every tier must open every other tier's output.
    #[test]
    fn all_tiers_agree_with_scalar_reference(
        len in 0usize..4096,
        aad in proptest::collection::vec(any::<u8>(), 0..64),
        key_seed in any::<u8>(),
        nonce_seed in any::<u8>(),
    ) {
        let key: [u8; 16] = core::array::from_fn(|i| key_seed.wrapping_add((i as u8).wrapping_mul(31)));
        let nonce: [u8; 12] = core::array::from_fn(|i| nonce_seed.wrapping_mul(5).wrapping_add(i as u8));
        let pt: Vec<u8> = (0..len).map(|i| (i as u8).wrapping_mul(23).wrapping_add(nonce_seed)).collect();

        let ciphers: Vec<_> = TIERS
            .iter()
            .map(|&t| Aes128Gcm::new_with_tier(&key, t).unwrap())
            .collect();

        let mut reference = pt.clone();
        let ref_tag = ciphers[0].encrypt_in_place_detached_reference(&nonce, &aad, &mut reference);

        let mut sealed = Vec::new();
        for (cipher, tier) in ciphers.iter().zip(TIERS) {
            let mut buf = pt.clone();
            let tag = cipher.encrypt_in_place_detached(&nonce, &aad, &mut buf);
            prop_assert_eq!(&buf, &reference, "ciphertext diverges on tier {}", tier.name());
            prop_assert_eq!(tag, ref_tag, "tag diverges on tier {}", tier.name());
            sealed.push((buf, tag));
        }

        // Cross-open: tier i's output through tier j's open path.
        for (opener, tier) in ciphers.iter().zip(TIERS) {
            for (ct, tag) in &sealed {
                let mut buf = ct.clone();
                opener
                    .decrypt_in_place_detached(&nonce, &aad, &mut buf, tag)
                    .unwrap_or_else(|_| panic!("tier {} rejected authentic ct", tier.name()));
                prop_assert_eq!(&buf, &pt);
            }
        }
    }

    /// Empty plaintext with arbitrary-length AAD isolates pure GHASH: the tag
    /// is the masked digest of the AAD alone, so agreement here pins the
    /// CLMUL aggregated reduction == Shoup tables == scalar nibble tables
    /// across arbitrary block counts and partial final blocks.
    #[test]
    fn ghash_only_tags_agree_across_tiers(
        aad in proptest::collection::vec(any::<u8>(), 0..1024),
        key_seed in any::<u8>(),
    ) {
        let key: [u8; 32] = core::array::from_fn(|i| key_seed.wrapping_add((i as u8).wrapping_mul(41)));
        let nonce = [0x5au8; 12];
        let mut empty = [0u8; 0];
        let reference = Aes256Gcm::new_with_tier(&key, CryptoTier::Portable)
            .unwrap()
            .encrypt_in_place_detached_reference(&nonce, &aad, &mut empty);
        for tier in TIERS {
            let cipher = Aes256Gcm::new_with_tier(&key, tier).unwrap();
            let tag = cipher.encrypt_in_place_detached(&nonce, &aad, &mut empty);
            prop_assert_eq!(tag, reference, "GHASH diverges on tier {}", tier.name());
        }
    }

    /// Wide-stride boundaries specifically: lengths of the form
    /// `s·256 + t` for small `s` and `t` around the 128/256-byte seams, on
    /// both key sizes, must match the reference (catches tail hand-off bugs
    /// between the 16-block loop and the 8-block epilogue).
    #[test]
    fn wide_stride_seams_match_reference(
        strides in 0usize..3,
        tail in 0usize..256,
        key_seed in any::<u8>(),
    ) {
        let len = strides * 256 + tail;
        let key: [u8; 16] = core::array::from_fn(|i| key_seed.wrapping_add(i as u8));
        let nonce = [0x17u8; 12];
        let pt: Vec<u8> = (0..len).map(|i| (i as u8).wrapping_mul(11)).collect();
        for tier in TIERS {
            let cipher = Aes128Gcm::new_with_tier(&key, tier).unwrap();
            let mut fused = pt.clone();
            let fused_tag = cipher.encrypt_in_place_detached(&nonce, b"seam", &mut fused);
            let mut reference = pt.clone();
            let ref_tag =
                cipher.encrypt_in_place_detached_reference(&nonce, b"seam", &mut reference);
            prop_assert_eq!(&fused, &reference, "tier {}", tier.name());
            prop_assert_eq!(fused_tag, ref_tag, "tier {}", tier.name());
        }
    }
}
