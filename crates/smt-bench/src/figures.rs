//! One function per table/figure of the paper's evaluation.

use serde::{Deserialize, Serialize};
use smt_apps::{BlockStoreConfig, KvStore, YcsbConfig, YcsbGenerator, YcsbWorkload};
use smt_crypto::cert::CertificateAuthority;
use smt_crypto::handshake::zero_rtt::establish_zero_rtt;
use smt_crypto::handshake::{
    establish, ClientConfig, HandshakeTimings, ReplayCache, ServerConfig, SmtTicketIssuer,
};
use smt_crypto::seqno::SeqnoLayout;
use smt_crypto::CipherSuite;
use smt_transport::{RpcWorkload, StackKind, StackProfile};

/// One row of a figure: a labelled series point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// Series (legend) label, e.g. "SMT-hw".
    pub series: String,
    /// X value (RPC size, concurrency, iodepth, workload...).
    pub x: String,
    /// Y value.
    pub y: f64,
    /// Unit of the Y value.
    pub unit: String,
}

fn point(series: &str, x: impl ToString, y: f64, unit: &str) -> SeriesPoint {
    SeriesPoint {
        series: series.to_string(),
        x: x.to_string(),
        y,
        unit: unit.to_string(),
    }
}

/// Table 2: per-operation handshake latency breakdown (µs), measured on this
/// machine with the real ECDHE-P256 / ECDSA-P256 / HKDF implementations.
pub fn table2_handshake_breakdown(iterations: usize) -> Vec<(String, String, f64)> {
    let ca = CertificateAuthority::new("dc-internal-ca");
    let id = ca.issue_identity("server.dc.local");
    let mut merged = HandshakeTimings::new();
    for _ in 0..iterations.max(1) {
        let (ck, sk) = establish(
            ClientConfig::new(ca.verifying_key(), "server.dc.local"),
            ServerConfig::new(id.clone(), ca.verifying_key()),
        )
        .expect("handshake");
        merged.merge(&ck.timings);
        merged.merge(&sk.timings);
    }
    merged
        .rows()
        .map(|(op, d)| {
            (
                op.label().to_string(),
                op.description().to_string(),
                d.as_secs_f64() * 1e6 / iterations.max(1) as f64,
            )
        })
        .collect()
}

/// Fig. 5: the bit-allocation trade-off of the composite sequence number.
pub fn fig5_seqno_tradeoff() -> Vec<(u32, u32, u128, u128)> {
    SeqnoLayout::tradeoff_sweep(8, 17)
        .into_iter()
        .map(|r| {
            (
                r.record_index_bits,
                r.msg_id_bits,
                r.max_messages,
                r.max_message_size_small_records,
            )
        })
        .collect()
}

/// The RPC sizes plotted in Fig. 6.
pub fn fig6_sizes() -> Vec<usize> {
    vec![
        64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536,
    ]
}

/// Fig. 6: unloaded RTT (µs) for every stack and RPC size.
pub fn fig6_unloaded_rtt(mtu: usize) -> Vec<SeriesPoint> {
    let mut out = Vec::new();
    for stack in StackKind::figure6_set() {
        let profile = StackProfile::new(stack).with_mtu(mtu);
        for size in fig6_sizes() {
            out.push(point(
                stack.label(),
                size,
                profile.unloaded_rtt_us(size),
                "us",
            ));
        }
    }
    out
}

/// Fig. 7: concurrent RPC throughput (RPC/s) for 64 B / 1 KB / 8 KB RPCs over
/// 50–200 concurrent RPCs.
pub fn fig7_throughput(mtu: usize) -> Vec<SeriesPoint> {
    let mut out = Vec::new();
    for &size in &[64usize, 1024, 8192] {
        for stack in StackKind::figure6_set() {
            let profile = StackProfile::new(stack).with_mtu(mtu);
            for concurrency in [50usize, 100, 150, 200] {
                out.push(SeriesPoint {
                    series: format!("{}-{}B", stack.label(), size),
                    x: concurrency.to_string(),
                    y: profile.throughput_rps(size, concurrency),
                    unit: "rpc/s".into(),
                });
            }
        }
    }
    out
}

/// §5.2 "CPU usage": utilisation of each resource pool at a fixed offered
/// concurrency for 1 KB RPCs.
pub fn cpu_usage_at_load() -> Vec<SeriesPoint> {
    let mut out = Vec::new();
    for stack in [
        StackKind::KtlsSw,
        StackKind::KtlsHw,
        StackKind::SmtSw,
        StackKind::SmtHw,
    ] {
        let profile = StackProfile::new(stack);
        let costs = profile.rpc_costs(&RpcWorkload::echo(1024));
        let report = smt_sim::RpcPipelineSim::new(profile.pipeline_config(100), costs).run();
        out.push(point(
            stack.label(),
            "client app",
            report.client_app_util * 100.0,
            "%",
        ));
        out.push(point(
            stack.label(),
            "client softirq",
            report.client_softirq_util * 100.0,
            "%",
        ));
        out.push(point(
            stack.label(),
            "server softirq",
            report.server_softirq_util * 100.0,
            "%",
        ));
        out.push(point(
            stack.label(),
            "server app",
            report.server_app_util * 100.0,
            "%",
        ));
        out.push(point(
            stack.label(),
            "stack thread",
            report.server_pacer_util * 100.0,
            "%",
        ));
    }
    out
}

/// Fig. 8: KV-store throughput (ops/s) under YCSB A–E for several value sizes.
pub fn fig8_kv_ycsb(value_sizes: &[usize]) -> Vec<SeriesPoint> {
    let mut out = Vec::new();
    for &value_size in value_sizes {
        for workload in YcsbWorkload::all() {
            let mut gen = YcsbGenerator::new(
                workload,
                YcsbConfig {
                    value_size,
                    record_count: 10_000,
                    ..YcsbConfig::default()
                },
            );
            let (req, resp) = gen.mean_sizes(2000);
            for stack in StackKind::figure8_set() {
                let profile = StackProfile::new(stack);
                let workload_model = RpcWorkload {
                    request_bytes: req,
                    response_bytes: resp,
                    server_compute_ns: KvStore::compute_cost_ns(value_size),
                    server_fixed_latency_ns: 0,
                };
                let costs = profile.rpc_costs(&workload_model);
                // Redis is single threaded: one server application thread.
                let mut config = profile.pipeline_config(64);
                config.server_app_threads = 1;
                let report = smt_sim::RpcPipelineSim::new(config, costs).run();
                out.push(SeriesPoint {
                    series: format!("{}-{}B", stack.label(), value_size),
                    x: workload.label().to_string(),
                    y: report.throughput_rps,
                    unit: "ops/s".into(),
                });
            }
        }
    }
    out
}

/// Fig. 9: remote block storage P50/P99 read latency (µs) over iodepth 1–8.
pub fn fig9_blockstore() -> Vec<SeriesPoint> {
    let mut out = Vec::new();
    let store_cfg = BlockStoreConfig::default();
    for stack in StackKind::figure6_set() {
        let profile = StackProfile::new(stack);
        for iodepth in [1usize, 2, 4, 6, 8] {
            let workload = RpcWorkload {
                request_bytes: 64,
                response_bytes: store_cfg.block_size + 16,
                server_compute_ns: 2_500,
                server_fixed_latency_ns: store_cfg.read_latency_ns,
            };
            let costs = profile.rpc_costs(&workload);
            let mut config = profile.pipeline_config(iodepth);
            // FIO with one job: a single submitting thread; NVMe-oF target uses
            // a single queue in the paper's prototype.
            config.client_app_threads = 1;
            config.server_app_threads = 1;
            let report = smt_sim::RpcPipelineSim::new(config, costs).run();
            out.push(SeriesPoint {
                series: format!("{}-p50", stack.label()),
                x: iodepth.to_string(),
                y: report.latency.p50_us,
                unit: "us".into(),
            });
            out.push(SeriesPoint {
                series: format!("{}-p99", stack.label()),
                x: iodepth.to_string(),
                y: report.latency.p99_us,
                unit: "us".into(),
            });
        }
    }
    out
}

/// Fig. 10: unloaded RTT of TCPLS vs SMT-sw vs SMT-hw.
pub fn fig10_tcpls() -> Vec<SeriesPoint> {
    let mut out = Vec::new();
    for stack in [StackKind::Tcpls, StackKind::SmtSw, StackKind::SmtHw] {
        let profile = StackProfile::new(stack);
        for size in [64usize, 256, 1024, 4096, 16384] {
            out.push(point(
                stack.label(),
                size,
                profile.unloaded_rtt_us(size),
                "us",
            ));
        }
    }
    out
}

/// Fig. 11: effect of TSO on SMT-hw unloaded RTT.
pub fn fig11_tso() -> Vec<SeriesPoint> {
    let mut out = Vec::new();
    for size in [512usize, 1024, 2048, 4096, 8192] {
        let with = StackProfile::new(StackKind::SmtHw).unloaded_rtt_us(size);
        let without = StackProfile::new(StackKind::SmtHw)
            .without_tso()
            .unloaded_rtt_us(size);
        out.push(point("SMT-HW-TSO", size, with, "us"));
        out.push(point("SMT-HW-w/o-TSO", size, without, "us"));
    }
    out
}

/// Fig. 12: key-exchange latency (µs of crypto compute + simulated RTTs) for the
/// five handshake variants over different first-flight RPC sizes.
pub fn fig12_key_exchange(iterations: usize) -> Vec<SeriesPoint> {
    let ca = CertificateAuthority::new("dc-internal-ca");
    let id = ca.issue_identity("server.dc.local");
    let suite = CipherSuite::Aes128GcmSha256;
    let rtt_us = StackProfile::new(StackKind::SmtSw).unloaded_rtt_us(256);
    let mut out = Vec::new();

    let sizes = [64usize, 128, 256, 1024, 4096, 8192];
    for &size in &sizes {
        let payload = vec![0u8; size];
        // --- Init: SMT-ticket 0-RTT, no forward secrecy --------------------
        // --- Init-FS: SMT-ticket 0-RTT with forward secrecy ----------------
        for (label, fs) in [("Init", false), ("Init-FS", true)] {
            let mut total = 0.0;
            for i in 0..iterations.max(1) {
                let issuer = SmtTicketIssuer::new(id.clone(), 3600);
                let mut replay = ReplayCache::new(1 << 16);
                let start = std::time::Instant::now();
                let (ck, sk, _early) = establish_zero_rtt(
                    suite,
                    &ca.verifying_key(),
                    "server.dc.local",
                    &issuer,
                    &mut replay,
                    &payload,
                    fs,
                    i as u64,
                )
                .expect("0-RTT handshake");
                let crypto_us = start.elapsed().as_secs_f64() * 1e6;
                let _ = (ck, sk);
                // 0-RTT: data flows on the first flight — one RTT total to get
                // the response back.
                total += crypto_us + rtt_us;
            }
            out.push(point(label, size, total / iterations.max(1) as f64, "us"));
        }
        // --- Init-1RTT: standard TLS 1.3 handshake then data ----------------
        {
            let mut total = 0.0;
            for _ in 0..iterations.max(1) {
                let start = std::time::Instant::now();
                let (ck, sk) = establish(
                    ClientConfig::new(ca.verifying_key(), "server.dc.local"),
                    ServerConfig::new(id.clone(), ca.verifying_key()),
                )
                .expect("handshake");
                let crypto_us = start.elapsed().as_secs_f64() * 1e6;
                let _ = (ck, sk);
                // Handshake RTT plus the data RTT.
                total += crypto_us + 2.0 * rtt_us;
            }
            out.push(point(
                "Init-1RTT",
                size,
                total / iterations.max(1) as f64,
                "us",
            ));
        }
        // --- Rsmp / Rsmp-FS: session resumption ------------------------------
        for (label, fs) in [("Rsmp", false), ("Rsmp-FS", true)] {
            let mut total = 0.0;
            for _ in 0..iterations.max(1) {
                // Prior session provides the ticket (outside the timed window).
                let (ck0, sk0) = establish(
                    ClientConfig::new(ca.verifying_key(), "server.dc.local"),
                    ServerConfig::new(id.clone(), ca.verifying_key()),
                )
                .expect("initial handshake");
                let ticket = sk0.issued_ticket.clone().expect("ticket issued");
                let psk_c = ck0.resumption_psk(&ticket);
                let psk_s = sk0.resumption_psk(&ticket);

                let start = std::time::Instant::now();
                let mut client_cfg = ClientConfig::new(ca.verifying_key(), "server.dc.local");
                client_cfg.resumption = Some(smt_crypto::handshake::full::ClientResumption {
                    ticket_id: ticket.ticket_id,
                    psk: psk_c,
                    forward_secrecy: fs,
                });
                client_cfg.pregenerated_key = Some(smt_crypto::handshake::EcdhKeyPair::generate());
                let mut server_cfg = ServerConfig::new(id.clone(), ca.verifying_key());
                server_cfg.resumption_psks.insert(ticket.ticket_id, psk_s);
                server_cfg.resumption_forward_secrecy = fs;
                server_cfg.pregenerated_key = Some(smt_crypto::handshake::EcdhKeyPair::generate());
                let (ck, sk) = establish(client_cfg, server_cfg).expect("resumption");
                let crypto_us = start.elapsed().as_secs_f64() * 1e6;
                let _ = (ck, sk);
                total += crypto_us + 2.0 * rtt_us;
            }
            out.push(point(label, size, total / iterations.max(1) as f64, "us"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_all_rows() {
        let rows = table2_handshake_breakdown(2);
        assert!(rows.len() >= 14, "got {} rows", rows.len());
        // ECDH and certificate verification are the dominant client costs.
        let c32 = rows.iter().find(|(l, _, _)| l == "C3.2").unwrap();
        let c21 = rows.iter().find(|(l, _, _)| l == "C2.1").unwrap();
        assert!(c32.2 > c21.2);
    }

    #[test]
    fn fig5_rows() {
        let rows = fig5_seqno_tradeoff();
        assert_eq!(rows.len(), 10);
        assert_eq!(rows[0].0, 8);
    }

    #[test]
    fn fig6_has_all_series() {
        let rows = fig6_unloaded_rtt(1500);
        assert_eq!(rows.len(), 6 * fig6_sizes().len());
        assert!(rows.iter().all(|p| p.y > 0.0));
    }

    #[test]
    fn fig11_and_fig10_shapes() {
        let f11 = fig11_tso();
        assert_eq!(f11.len(), 10);
        let f10 = fig10_tcpls();
        assert_eq!(f10.len(), 15);
    }

    #[test]
    fn fig12_has_all_variants_and_sizes() {
        // Ordering between variants is asserted under `--release` conditions by
        // the Fig. 12 harness itself; in debug builds the pure-Rust P-256
        // operations are slow and noisy, so this test only checks structure.
        let rows = fig12_key_exchange(1);
        assert_eq!(rows.len(), 6 * 5, "6 sizes x 5 variants");
        for variant in ["Init", "Init-FS", "Init-1RTT", "Rsmp", "Rsmp-FS"] {
            assert!(rows.iter().any(|p| p.series == variant && p.y > 0.0));
        }
    }
}
