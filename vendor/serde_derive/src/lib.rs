//! Offline stand-in for [`serde_derive`](https://docs.rs/serde_derive).
//!
//! `#[derive(Serialize)]` generates an impl of this workspace's simplified
//! `serde::Serialize` trait (`fn to_value(&self) -> serde::Value`), covering
//! named structs, tuple structs and enums (unit, tuple and struct variants)
//! with serde's default externally-tagged representation.
//! `#[derive(Deserialize)]` implements the marker trait `serde::Deserialize`
//! (nothing in this workspace deserializes, but the derives must compile).
//!
//! Parsing is done directly on the token stream (no `syn`); generic types are
//! not supported — and not used by this workspace.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Item {
    kind: String,
    name: String,
    body: Option<proc_macro::Group>,
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip attributes.
    while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        i += 1;
        if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
        {
            i += 1;
        }
    }
    // Skip visibility.
    if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    let kind = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, got {other:?}"),
    };
    i += 1;
    // Find the body group (brace or paren), if any.
    let mut body = None;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Group(g)
                if g.delimiter() == Delimiter::Brace || g.delimiter() == Delimiter::Parenthesis =>
            {
                body = Some(g.clone());
                break;
            }
            TokenTree::Punct(p) if p.as_char() == ';' => break,
            TokenTree::Punct(p) if p.as_char() == '<' => {
                panic!("generic types are not supported by the offline serde_derive")
            }
            _ => i += 1,
        }
    }
    Item { kind, name, body }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        if matches!(&tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            *i += 1;
            if matches!(&tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
            {
                *i += 1;
            }
            continue;
        }
        if matches!(&tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            *i += 1;
            if matches!(&tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                *i += 1;
            }
            continue;
        }
        break;
    }
}

/// Field names of a named-field body.
fn named_field_names(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(field)) = tokens.get(i) else {
            break;
        };
        names.push(field.to_string());
        i += 1;
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                TokenTree::Punct(p) => {
                    if p.as_char() == '<' {
                        depth += 1;
                    }
                    if p.as_char() == '>' {
                        depth -= 1;
                    }
                    i += 1;
                }
                _ => i += 1,
            }
        }
    }
    names
}

/// Number of fields in a tuple body.
fn tuple_field_count(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1usize;
    let mut depth = 0i32;
    for t in &tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' | '(' | '[' => depth += 1,
                '>' | ')' | ']' => depth -= 1,
                ',' if depth == 0 => count += 1,
                _ => {}
            }
        }
    }
    // A trailing comma creates a phantom field; detect it.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        count -= 1;
    }
    count
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn parse_enum_variants(stream: TokenStream) -> Vec<(String, VariantShape)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(tuple_field_count(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Named(named_field_names(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push((name, shape));
    }
    variants
}

/// Derives the workspace `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match item.kind.as_str() {
        "struct" => match &item.body {
            None => "::serde::Value::Null".to_string(),
            Some(g) if g.delimiter() == Delimiter::Brace => {
                let fields = named_field_names(g.stream());
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))")
                    })
                    .collect();
                format!("::serde::Value::Object(vec![{}])", entries.join(", "))
            }
            Some(g) => {
                let count = tuple_field_count(g.stream());
                if count == 1 {
                    "::serde::Serialize::to_value(&self.0)".to_string()
                } else {
                    let entries: Vec<String> = (0..count)
                        .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", entries.join(", "))
                }
            }
        },
        "enum" => {
            let variants = parse_enum_variants(item.body.as_ref().expect("enum body").stream());
            let arms: Vec<String> = variants
                .iter()
                .map(|(vn, shape)| match shape {
                    VariantShape::Unit => format!(
                        "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),"
                    ),
                    VariantShape::Tuple(count) => {
                        let bindings: Vec<String> =
                            (0..*count).map(|k| format!("arg{k}")).collect();
                        let inner = if *count == 1 {
                            "::serde::Serialize::to_value(arg0)".to_string()
                        } else {
                            let items: Vec<String> = bindings
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), {inner})]),",
                            bindings.join(", ")
                        )
                    }
                    VariantShape::Named(fields) => {
                        let pattern = fields.join(", ");
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{vn} {{ {pattern} }} => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Object(vec![{}]))]),",
                            entries.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
        other => panic!("cannot derive Serialize for {other}"),
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives the workspace `serde::Deserialize` marker trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    format!("impl ::serde::Deserialize for {} {{}}", item.name)
        .parse()
        .expect("generated Deserialize impl parses")
}
