//! A seeded, deterministic network adversary for the scenario harness.
//!
//! [`FaultyLink`](super::fabric::FaultyLink) models an *unlucky* network —
//! loss, reordering, duplication.  The [`Adversary`] models a *hostile* one:
//! an attacker who taps the fabric, records flights, and injects forged
//! traffic at the victim.  Its capabilities split along the classic threat
//! model line:
//!
//! * **In-path (recoverable)** — the adversary may withhold traffic for a
//!   bounded window ([`AdversaryConfig::stall_from_ns`] ..
//!   [`AdversaryConfig::stall_until_ns`]), releasing it verbatim at the
//!   window's end.  This stresses mid-handshake RTO paths without destroying
//!   data: an in-path attacker who drops forever is indistinguishable from a
//!   cut cable, which no transport survives.
//! * **Off-path forgery** — recorded packets are re-injected after
//!   [`AdversaryConfig::inject_delay_ns`] as verbatim replays, bit-corrupted
//!   copies, truncated copies, or copies whose payload is spliced from a
//!   *different* recorded packet (the coalescing attack against reassembly).
//!   Synthesized garbage datagrams carry fresh bogus message IDs and
//!   far-future stream offsets, so they land in receiver tracking state
//!   rather than colliding with live transfers — exactly the state-exhaustion
//!   vector the bounded-buffer hardening exists for.
//!
//! Forgeries mutate **payloads only**, never delivery coordinates of live
//! data: the original packets always pass untouched (modulo the stall
//! window), so a correct transport must deliver 100% of legitimate traffic
//! under any adversary profile — the invariant the chaos suite asserts.
//!
//! All randomness comes from one seeded [`StdRng`]; identical seeds reproduce
//! identical attack traces, so adversarial scenarios stay bit-deterministic
//! and diffable like every other scenario.

use super::event::EventQueue;
use super::fabric::PortId;
use crate::time::Nanos;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use smt_wire::{Packet, PacketPayload};
use std::collections::VecDeque;

/// Recorded payloads kept for splicing into coalesced forgeries.
const RECORD_DEPTH: usize = 64;

/// Declarative adversary parameters; lands in scenario JSON next to
/// [`FaultConfig`](super::fabric::FaultConfig).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AdversaryConfig {
    /// RNG seed; the same seed reproduces the same attack trace.
    pub seed: u64,
    /// Probability an observed packet is replayed verbatim.
    pub replay: f64,
    /// Copies injected per replayed packet (a replay *flood* when > 1).
    pub replay_depth: u32,
    /// Probability an observed data packet spawns a bit-corrupted copy.
    pub corrupt: f64,
    /// Probability an observed data packet spawns a truncated copy.
    pub truncate: f64,
    /// Probability an observed data packet spawns a copy whose payload is
    /// spliced from a different recorded packet (coalescing attack).
    pub coalesce: f64,
    /// Probability an observed packet triggers a garbage burst at its
    /// destination.
    pub garbage: f64,
    /// Garbage datagrams injected per triggered burst.
    pub garbage_burst: u32,
    /// Delay between observing a packet and injecting forgeries derived from
    /// it.  Must exceed the propagation delay so originals land first; the
    /// default (50 µs) is ~50 RTTs of headroom on the default link.
    pub inject_delay_ns: Nanos,
    /// Start of the in-path stall window (virtual time).
    pub stall_from_ns: Nanos,
    /// End of the in-path stall window; traffic withheld during the window is
    /// released verbatim at this instant.  Zero disables stalling.
    pub stall_until_ns: Nanos,
}

impl Default for AdversaryConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            replay: 0.0,
            replay_depth: 1,
            corrupt: 0.0,
            truncate: 0.0,
            coalesce: 0.0,
            garbage: 0.0,
            garbage_burst: 1,
            inject_delay_ns: 50_000,
            stall_from_ns: 0,
            stall_until_ns: 0,
        }
    }
}

impl AdversaryConfig {
    /// Corrupts, truncates and coalesces recorded flights — the wire-format
    /// forgery profile.
    pub fn corruptor(seed: u64) -> Self {
        Self {
            seed,
            corrupt: 0.4,
            truncate: 0.2,
            coalesce: 0.2,
            ..Self::default()
        }
    }

    /// Replays half of everything it sees, several copies deep — the replay
    /// flood (0-RTT ClientHello replays included when aimed at a handshake
    /// scenario).
    pub fn replay_flood(seed: u64) -> Self {
        Self {
            seed,
            replay: 0.5,
            replay_depth: 4,
            ..Self::default()
        }
    }

    /// Answers every observed packet with a burst of synthesized garbage —
    /// the state-exhaustion profile.
    pub fn garbage_storm(seed: u64) -> Self {
        Self {
            seed,
            garbage: 1.0,
            garbage_burst: 4,
            ..Self::default()
        }
    }

    /// Withholds all traffic inside `[from_ns, until_ns)`, releasing it at
    /// the window's end — the mid-handshake stall profile.
    pub fn staller(seed: u64, from_ns: Nanos, until_ns: Nanos) -> Self {
        Self {
            seed,
            stall_from_ns: from_ns,
            stall_until_ns: until_ns,
            ..Self::default()
        }
    }

    /// Everything at once: forgery, replay, garbage and an early stall.
    pub fn chaos(seed: u64) -> Self {
        Self {
            seed,
            replay: 0.25,
            replay_depth: 2,
            corrupt: 0.2,
            truncate: 0.1,
            coalesce: 0.1,
            garbage: 0.25,
            garbage_burst: 2,
            ..Self::default()
        }
    }
}

/// What the adversary did to the traffic so far.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdversaryStats {
    /// Packets observed on the tap.
    pub observed: u64,
    /// Verbatim copies injected.
    pub replayed: u64,
    /// Bit-corrupted copies injected.
    pub corrupted: u64,
    /// Truncated copies injected.
    pub truncated: u64,
    /// Spliced-payload (coalescing-attack) copies injected.
    pub coalesced: u64,
    /// Synthesized garbage datagrams injected.
    pub garbage: u64,
    /// Packets withheld in the stall window (all released at its end).
    pub stalled: u64,
}

impl AdversaryStats {
    /// Total forged datagrams injected (everything except stalls, which
    /// delay originals rather than adding traffic).
    pub fn injected(&self) -> u64 {
        self.replayed + self.corrupted + self.truncated + self.coalesced + self.garbage
    }
}

/// The attack engine: taps outgoing flights, schedules forged injections.
///
/// The scenario runner calls [`tap`](Self::tap) on every flight before it
/// enters the fabric and treats [`next_injection`](Self::next_injection) /
/// [`pop_due`](Self::pop_due) as one more event source; injected packets
/// enter the fabric from the recorded source port, i.e. the adversary spoofs
/// the victim's peer.
#[derive(Debug)]
pub struct Adversary {
    config: AdversaryConfig,
    rng: StdRng,
    injections: EventQueue<(PortId, Packet)>,
    /// Recently observed data payloads, the splice donors for coalesced
    /// forgeries (bounded).
    recent: VecDeque<bytes::Bytes>,
    /// What happened so far.
    pub stats: AdversaryStats,
}

impl Adversary {
    /// Builds the attack engine from its declarative config (seeded RNG).
    pub fn new(config: AdversaryConfig) -> Self {
        Self {
            config,
            rng: StdRng::seed_from_u64(config.seed ^ 0xbad0_5eed_f0e5_c0de),
            injections: EventQueue::new(),
            recent: VecDeque::new(),
            stats: AdversaryStats::default(),
        }
    }

    /// The configuration this adversary was built from.
    pub fn config(&self) -> AdversaryConfig {
        self.config
    }

    /// Observes one outgoing flight from `src` at time `now`, scheduling
    /// forged injections.  Inside the stall window the flight is withheld
    /// (drained from `packets`) and re-scheduled verbatim for the window's
    /// end; otherwise the originals pass untouched.
    pub fn tap(&mut self, now: Nanos, src: PortId, packets: &mut Vec<Packet>) {
        let c = self.config;
        self.stats.observed += packets.len() as u64;
        if c.stall_until_ns > 0 && now >= c.stall_from_ns && now < c.stall_until_ns {
            for p in packets.drain(..) {
                self.stats.stalled += 1;
                self.injections.push(c.stall_until_ns, (src, p));
            }
            return;
        }
        for p in packets.iter() {
            if let Some(b) = p.payload.as_data() {
                if !b.is_empty() {
                    self.recent.push_back(b.clone());
                    if self.recent.len() > RECORD_DEPTH {
                        self.recent.pop_front();
                    }
                }
            }
            let at = now + c.inject_delay_ns;
            if c.replay > 0.0 && self.rng.gen::<f64>() < c.replay {
                for i in 0..c.replay_depth.max(1) as Nanos {
                    self.stats.replayed += 1;
                    self.injections.push(at + i, (src, p.clone()));
                }
            }
            if c.corrupt > 0.0 && self.rng.gen::<f64>() < c.corrupt {
                if let Some(forged) = self.corrupt_copy(p) {
                    self.stats.corrupted += 1;
                    self.injections.push(at, (src, forged));
                }
            }
            if c.truncate > 0.0 && self.rng.gen::<f64>() < c.truncate {
                if let Some(forged) = Self::truncate_copy(p) {
                    self.stats.truncated += 1;
                    self.injections.push(at, (src, forged));
                }
            }
            if c.coalesce > 0.0 && self.rng.gen::<f64>() < c.coalesce {
                if let Some(forged) = self.coalesce_copy(p) {
                    self.stats.coalesced += 1;
                    self.injections.push(at, (src, forged));
                }
            }
            if c.garbage > 0.0 && self.rng.gen::<f64>() < c.garbage {
                for i in 0..c.garbage_burst.max(1) as Nanos {
                    let forged = self.garbage_packet(p);
                    self.stats.garbage += 1;
                    self.injections.push(at + i, (src, forged));
                }
            }
        }
    }

    /// Time of the next pending injection, if any — one more candidate cause
    /// for the scenario event loop.
    pub fn next_injection(&self) -> Option<Nanos> {
        self.injections.next_at()
    }

    /// Pops every injection due at or before `now` as `(src_port, packet)`
    /// pairs ready for `Fabric::send`.
    pub fn pop_due(&mut self, now: Nanos) -> Vec<(PortId, Packet)> {
        let mut out = Vec::new();
        while self.injections.next_at().is_some_and(|t| t <= now) {
            if let Some((_, inj)) = self.injections.pop() {
                out.push(inj);
            }
        }
        out
    }

    /// A copy with one payload byte flipped: wire-valid coordinates, broken
    /// content — must fail authentication (encrypted stacks) or surface as a
    /// conflicting duplicate (typed rejection), never panic.
    fn corrupt_copy(&mut self, p: &Packet) -> Option<Packet> {
        let data = p.payload.as_data()?;
        if data.is_empty() {
            return None;
        }
        let mut bytes = data.to_vec();
        let at = self.rng.gen_range(0..bytes.len());
        bytes[at] ^= 1 << self.rng.gen_range(0..8u8);
        let mut forged = p.clone();
        forged.payload = PacketPayload::Data(bytes.into());
        Some(forged)
    }

    /// A copy with the payload cut short (headers still declare the original
    /// lengths) — the length-consistency attack.
    fn truncate_copy(p: &Packet) -> Option<Packet> {
        let data = p.payload.as_data()?;
        if data.len() < 2 {
            return None;
        }
        let mut forged = p.clone();
        forged.payload = PacketPayload::Data(data.slice(0..data.len() / 2));
        Some(forged)
    }

    /// A copy whose payload is spliced from a *different* recorded packet:
    /// same delivery coordinates, inconsistent content — the coalescing
    /// attack against reassembly's duplicate handling.
    fn coalesce_copy(&mut self, p: &Packet) -> Option<Packet> {
        let data = p.payload.as_data()?;
        if data.is_empty() || self.recent.is_empty() {
            return None;
        }
        let donor = &self.recent[self.rng.gen_range(0..self.recent.len())];
        if donor == data || donor.is_empty() {
            return None;
        }
        // Splice the donor's bytes at the victim's length so declared and
        // actual lengths still agree (pure content conflict).
        let take = data.len().min(donor.len());
        let mut bytes = donor.slice(0..take).to_vec();
        bytes.resize(data.len(), 0xa5);
        let mut forged = p.clone();
        forged.payload = PacketPayload::Data(bytes.into());
        Some(forged)
    }

    /// A synthesized garbage datagram aimed at `template`'s destination:
    /// fresh bogus message ID (≥ 2^40), far-future segment coordinates and
    /// random payload bytes.  Lands in receiver tracking state instead of
    /// colliding with live transfers — the state-exhaustion probe.
    fn garbage_packet(&mut self, template: &Packet) -> Packet {
        let mut forged = template.clone();
        forged.overlay.options.message_id = (1u64 << 40) | self.rng.gen::<u32>() as u64;
        let len = self.rng.gen_range(1..=1200usize);
        forged.overlay.options.message_length = len as u32;
        // Far-future stream offset (reserved:tso_offset ≥ 2^40 combined) so
        // stream stacks buffer it out of order instead of desyncing in-order
        // delivery.
        forged.overlay.options.reserved = (1u32 << 8) | self.rng.gen_range(0..256u32);
        forged.overlay.options.tso_offset = self.rng.gen::<u32>();
        forged.overlay.options.resend_packet_offset = 0;
        let mut bytes = vec![0u8; len];
        for b in &mut bytes {
            *b = self.rng.gen();
        }
        forged.payload = PacketPayload::Data(bytes.into());
        forged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_wire::{
        IpHeader, Ipv4Header, OverlayTcpHeader, PacketType, SmtOptionArea, SmtOverlayHeader,
        IPPROTO_SMT, IPV4_HEADER_LEN, SMT_OVERLAY_LEN,
    };

    fn packet(id: u64, len: usize) -> Packet {
        Packet {
            ip: IpHeader::V4(Ipv4Header::new(
                [10, 0, 0, 1],
                [10, 0, 0, 2],
                IPPROTO_SMT,
                (IPV4_HEADER_LEN + SMT_OVERLAY_LEN + len) as u16,
            )),
            overlay: SmtOverlayHeader {
                tcp: OverlayTcpHeader::new(1, 2, PacketType::Data),
                options: SmtOptionArea::new(id, len as u32),
            },
            payload: PacketPayload::Data(vec![0x42u8; len].into()),
            corrupted: false,
        }
    }

    fn drain(adv: &mut Adversary) -> Vec<(PortId, Packet)> {
        adv.pop_due(Nanos::MAX)
    }

    #[test]
    fn originals_pass_untouched_outside_the_stall_window() {
        let mut adv = Adversary::new(AdversaryConfig::chaos(1));
        let mut flight = vec![packet(0, 100), packet(1, 200)];
        let orig = flight.clone();
        adv.tap(0, 0, &mut flight);
        assert_eq!(flight, orig, "live packets are never mutated in place");
    }

    #[test]
    fn forgeries_inject_after_the_configured_delay() {
        let mut adv = Adversary::new(AdversaryConfig::replay_flood(7));
        let mut flight: Vec<Packet> = (0..32).map(|i| packet(i, 64)).collect();
        adv.tap(1_000, 3, &mut flight);
        assert!(adv.stats.replayed > 0);
        let t = adv.next_injection().unwrap();
        assert!(t >= 1_000 + AdversaryConfig::default().inject_delay_ns);
        assert!(
            adv.pop_due(t - 1).is_empty(),
            "nothing due before the delay"
        );
        let due = drain(&mut adv);
        assert_eq!(due.len() as u64, adv.stats.replayed);
        assert!(due.iter().all(|(port, _)| *port == 3), "spoofs the source");
    }

    #[test]
    fn corrupt_and_truncate_mutate_payload_only() {
        let mut adv = Adversary::new(AdversaryConfig {
            corrupt: 1.0,
            truncate: 1.0,
            ..AdversaryConfig::default()
        });
        let mut flight = vec![packet(9, 400)];
        adv.tap(0, 0, &mut flight);
        let due = drain(&mut adv);
        assert_eq!(due.len(), 2);
        for (_, forged) in &due {
            assert_eq!(forged.overlay.options, flight[0].overlay.options);
            assert_ne!(forged.payload, flight[0].payload);
        }
        assert_eq!(adv.stats.corrupted, 1);
        assert_eq!(adv.stats.truncated, 1);
    }

    #[test]
    fn garbage_never_collides_with_live_message_ids() {
        let mut adv = Adversary::new(AdversaryConfig::garbage_storm(3));
        let mut flight = vec![packet(5, 100)];
        adv.tap(0, 0, &mut flight);
        let due = drain(&mut adv);
        assert!(!due.is_empty());
        for (_, g) in &due {
            assert!(g.overlay.options.message_id >= 1 << 40);
            assert!(g.overlay.options.reserved >= 1 << 8, "far-future offset");
        }
    }

    #[test]
    fn stall_window_withholds_then_releases_verbatim() {
        let mut adv = Adversary::new(AdversaryConfig::staller(0, 1_000, 5_000));
        let mut flight = vec![packet(0, 50)];
        let orig = flight.clone();
        adv.tap(2_000, 1, &mut flight);
        assert!(flight.is_empty(), "withheld in the window");
        assert_eq!(adv.stats.stalled, 1);
        assert_eq!(adv.next_injection(), Some(5_000));
        let released = drain(&mut adv);
        assert_eq!(released, vec![(1, orig[0].clone())]);
        // Outside the window traffic passes.
        let mut after = vec![packet(1, 50)];
        adv.tap(6_000, 1, &mut after);
        assert_eq!(after.len(), 1);
    }

    #[test]
    fn identical_seeds_reproduce_identical_attack_traces() {
        let run = |seed| {
            let mut adv = Adversary::new(AdversaryConfig::chaos(seed));
            for i in 0..64 {
                let mut flight = vec![packet(i, 64 + i as usize)];
                adv.tap(i * 1_000, (i % 4) as PortId, &mut flight);
            }
            let due: Vec<_> = drain(&mut adv);
            (adv.stats, due)
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11).0, run(12).0);
    }
}
