//! Criterion micro-benchmarks of the record layer: software AES-128-GCM record
//! protection with composite sequence numbers (the SMT data-path hot loop).
//!
//! Each size is measured through both API levels of the shared datapath:
//! the allocating `encrypt_record`/`decrypt_record` conveniences and the
//! zero-copy `seal_into`/`open` hot path that the segmenter, reassembler and
//! kTLS baseline drive in steady state.
use bytes::BytesMut;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use smt_crypto::key_schedule::Secret;
use smt_crypto::record::RecordProtector;
use smt_crypto::{CipherSuite, SeqnoLayout};
use smt_wire::ContentType;

fn bench_record_protection(c: &mut Criterion) {
    let secret = Secret::from_slice(&[7u8; 32]).unwrap();
    let tx = RecordProtector::from_secret(CipherSuite::Aes128GcmSha256, &secret).unwrap();
    let mut rx = RecordProtector::from_secret(CipherSuite::Aes128GcmSha256, &secret).unwrap();
    let layout = SeqnoLayout::default();

    let mut group = c.benchmark_group("record_layer");
    for size in [64usize, 1024, 4096, 16 * 1024 - 256] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("encrypt", size), &data, |b, data| {
            let mut i = 0u64;
            b.iter(|| {
                let seq = layout.compose(1, i % 65_536).unwrap().value();
                i += 1;
                tx.encrypt_record(seq, ContentType::ApplicationData, data)
                    .unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("seal_into", size), &data, |b, data| {
            let mut i = 0u64;
            let mut out = BytesMut::with_capacity(size + 64);
            b.iter(|| {
                let seq = layout.compose(1, i % 65_536).unwrap().value();
                i += 1;
                out.clear();
                tx.seal_into(seq, ContentType::ApplicationData, data, &mut out)
                    .unwrap()
            });
        });
        let seq = layout.compose(1, 0).unwrap().value();
        let wire = tx
            .encrypt_record(seq, ContentType::ApplicationData, &data)
            .unwrap();
        group.bench_with_input(BenchmarkId::new("decrypt", size), &wire, |b, wire| {
            b.iter(|| rx.decrypt_record(seq, wire).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("open", size), &wire, |b, wire| {
            b.iter(|| {
                let (opened, used) = rx.open(seq, wire).unwrap();
                (opened.plaintext.len(), used)
            });
        });
    }
    group.finish();
}

fn bench_segmentation(c: &mut Criterion) {
    use smt_core::segment::{PathInfo, SmtSegmenter};
    use smt_core::SmtConfig;
    let secret = Secret::from_slice(&[7u8; 32]).unwrap();
    let cipher = RecordProtector::from_secret(CipherSuite::Aes128GcmSha256, &secret).unwrap();
    let segmenter = SmtSegmenter::new(SmtConfig::software(), SeqnoLayout::default());
    let mut group = c.benchmark_group("segmentation");
    for size in [1024usize, 65_536, 512 * 1024] {
        let data = vec![1u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("segment_message", size), &data, |b, d| {
            let mut id = 0u64;
            b.iter(|| {
                id += 1;
                segmenter
                    .segment_message(
                        PathInfo::loopback(1, 2),
                        id,
                        d,
                        0,
                        Some(&cipher),
                        None,
                        4 << 20,
                    )
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_record_protection, bench_segmentation);
criterion_main!(benches);
