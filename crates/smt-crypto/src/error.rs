//! Error type shared by all cryptographic operations.

use thiserror::Error;

/// Errors produced by the SMT cryptography layer.
#[derive(Debug, Error, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// AEAD decryption failed: the ciphertext or tag was tampered with, the wrong
    /// key/nonce was used, or an out-of-sequence NIC offload corrupted the record.
    #[error("AEAD authentication failed")]
    AuthenticationFailed,

    /// A key, IV or other parameter had the wrong length.
    #[error("invalid {what} length: expected {expected}, got {got}")]
    InvalidLength {
        /// What was being checked.
        what: &'static str,
        /// Expected byte length.
        expected: usize,
        /// Actual byte length.
        got: usize,
    },

    /// The composite sequence number space was exhausted or mis-used.
    #[error("sequence number error: {0}")]
    Seqno(String),

    /// A handshake message was malformed or arrived out of order.
    #[error("handshake error: {0}")]
    Handshake(String),

    /// Signature creation or verification failed.
    #[error("signature error: {0}")]
    Signature(String),

    /// Certificate validation failed (unknown issuer, expired ticket, bad chain).
    #[error("certificate error: {0}")]
    Certificate(String),

    /// A record exceeded the maximum TLS record size.
    #[error("record too large: {size} > {max}")]
    RecordTooLarge {
        /// Attempted record size.
        size: usize,
        /// Maximum allowed.
        max: usize,
    },

    /// Wire-format error bubbled up from `smt-wire`.
    #[error("wire error: {0}")]
    Wire(#[from] smt_wire::WireError),

    /// Replay detected: a message ID or record sequence number was reused.
    #[error("replay detected: {0}")]
    Replay(String),

    /// Batch crypto engine misuse (unknown connection, stale handle).
    #[error("crypto engine error: {0}")]
    Engine(String),
}

impl CryptoError {
    /// Convenience constructor for handshake errors.
    pub fn handshake(msg: impl Into<String>) -> Self {
        CryptoError::Handshake(msg.into())
    }

    /// Convenience constructor for seqno errors.
    pub fn seqno(msg: impl Into<String>) -> Self {
        CryptoError::Seqno(msg.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CryptoError::AuthenticationFailed
            .to_string()
            .contains("authentication"));
        assert!(CryptoError::handshake("bad flight")
            .to_string()
            .contains("bad flight"));
        let e = CryptoError::InvalidLength {
            what: "key",
            expected: 16,
            got: 5,
        };
        assert!(e.to_string().contains("16"));
    }

    #[test]
    fn wire_error_converts() {
        let w = smt_wire::WireError::UnknownPacketType(3);
        let c: CryptoError = w.into();
        assert!(matches!(c, CryptoError::Wire(_)));
    }
}
