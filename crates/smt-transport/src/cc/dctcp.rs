//! DCTCP-style ECN-reaction window (Alizadeh et al., SIGCOMM 2010).
//!
//! The sender keeps an EWMA `alpha` of the fraction of its packets the
//! network CE-marked and, once per window, cuts the congestion window by
//! `alpha / 2` — a proportional backoff that keeps queues short without the
//! throughput collapse of halving on every mark.  Loss events (RTO, SACK
//! holes) still halve, as in the original.

use super::{CcConfig, CcSnapshot, CongestionController};
use smt_sim::Nanos;

/// Fixed-point scale for `alpha` (1.0 == `ALPHA_ONE`).
const ALPHA_ONE: u64 = 1024;

/// The DCTCP window machine driven by SACK ECN echoes.
#[derive(Debug, Clone, Copy)]
pub struct DctcpWindow {
    config: CcConfig,
    cwnd: u64,
    ssthresh: u64,
    /// Smoothed CE fraction, fixed-point over [`ALPHA_ONE`].
    alpha: u64,
    /// CE-marked / total packets accumulated in the current observation
    /// window (roughly one RTT of acks).
    window_marked: u64,
    window_total: u64,
    /// Bytes acked since the window opened; at `cwnd` the window closes.
    window_acked: u64,
    ecn_marks_seen: u64,
    loss_events: u64,
}

impl DctcpWindow {
    /// Creates a window at the configured initial cwnd.
    pub fn new(config: CcConfig) -> Self {
        let cwnd = config
            .initial_cwnd_bytes
            .clamp(config.min_cwnd_bytes.max(1), config.max_cwnd_bytes);
        Self {
            config,
            cwnd,
            ssthresh: config.max_cwnd_bytes,
            alpha: 0,
            window_marked: 0,
            window_total: 0,
            window_acked: 0,
            ecn_marks_seen: 0,
            loss_events: 0,
        }
    }

    fn clamp(&mut self) {
        self.cwnd = self.cwnd.clamp(
            self.config.min_cwnd_bytes.max(1),
            self.config.max_cwnd_bytes,
        );
    }

    /// Closes the current observation window: folds the mark fraction into
    /// `alpha` and applies the proportional cut if anything was marked.
    fn end_window(&mut self) {
        if self.window_total > 0 {
            // u128 intermediate and a cap at 1.0: the counts come off the
            // wire and must not be able to overflow or overshoot the EWMA.
            let frac = ((u128::from(self.window_marked) * u128::from(ALPHA_ONE))
                / u128::from(self.window_total))
            .min(u128::from(ALPHA_ONE)) as u64;
            // alpha += (frac - alpha) >> gain_shift, in signed arithmetic.
            let shifted = (frac as i64 - self.alpha as i64) >> self.config.gain_shift;
            self.alpha = (self.alpha as i64 + shifted).max(0) as u64;
            if self.window_marked > 0 {
                // cwnd *= 1 - alpha/2.
                let cut = (self.cwnd * self.alpha) / (2 * ALPHA_ONE);
                self.cwnd -= cut;
                self.ssthresh = self.cwnd;
                self.clamp();
            }
        }
        self.window_marked = 0;
        self.window_total = 0;
        self.window_acked = 0;
    }

    /// Current DCTCP alpha in permille, for stats.
    pub fn alpha_permille(&self) -> u64 {
        (self.alpha * 1000) / ALPHA_ONE
    }
}

impl CongestionController for DctcpWindow {
    fn on_ack(&mut self, newly_acked: u64, marked: u64, total: u64, _now: Nanos) {
        self.ecn_marks_seen += marked;
        self.window_marked += marked;
        self.window_total += total;
        self.window_acked += newly_acked;

        // Growth: slow start below ssthresh, one MSS per window above it.
        if self.cwnd < self.ssthresh {
            self.cwnd = self.cwnd.saturating_add(newly_acked);
        } else {
            let gain = self
                .config
                .min_cwnd_bytes
                .max(1)
                .saturating_mul(newly_acked)
                .checked_div(self.cwnd)
                .unwrap_or(0);
            self.cwnd = self.cwnd.saturating_add(gain);
        }
        self.clamp();

        if self.window_acked >= self.cwnd {
            self.end_window();
        }
    }

    fn on_loss(&mut self, _now: Nanos) {
        self.loss_events += 1;
        self.cwnd /= 2;
        self.ssthresh = self.cwnd;
        self.clamp();
        // The observation window restarts: a loss already carries the
        // strongest congestion signal this RTT had to offer.
        self.window_marked = 0;
        self.window_total = 0;
        self.window_acked = 0;
    }

    fn window(&self) -> u64 {
        self.cwnd
    }

    fn snapshot(&self) -> CcSnapshot {
        CcSnapshot {
            cwnd_bytes: self.cwnd,
            ecn_marks_seen: self.ecn_marks_seen,
            alpha_permille: self.alpha_permille(),
            loss_events: self.loss_events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window() -> DctcpWindow {
        DctcpWindow::new(CcConfig::default())
    }

    #[test]
    fn slow_start_doubles_until_ceiling() {
        let mut w = window();
        let start = w.window();
        for _ in 0..200 {
            let acked = w.window();
            w.on_ack(acked, 0, 10, 0);
        }
        assert!(w.window() > start);
        assert_eq!(w.window(), CcConfig::default().max_cwnd_bytes, "ceiling");
    }

    #[test]
    fn marks_cut_proportionally_not_by_half() {
        let mut w = window();
        // Grow to the ceiling mark-free first.
        for _ in 0..200 {
            w.on_ack(w.window(), 0, 10, 0);
        }
        let before = w.window();
        // One fully-marked window: alpha jumps, window cut follows alpha.
        w.on_ack(before, 100, 100, 0);
        let after = w.window();
        assert!(after < before, "marked window shrinks cwnd");
        assert!(
            after > before / 4,
            "first proportional cut is gentler than a halving: {after} vs {before}"
        );
        assert!(w.alpha_permille() > 0);
        assert_eq!(w.snapshot().ecn_marks_seen, 100);
    }

    #[test]
    fn sustained_marks_converge_alpha_to_one() {
        let mut w = window();
        for _ in 0..100 {
            w.on_ack(w.window(), 50, 50, 0);
        }
        assert!(
            w.alpha_permille() > 900,
            "alpha {} after sustained full marking",
            w.alpha_permille()
        );
    }

    #[test]
    fn loss_halves_and_floors() {
        let mut w = window();
        w.on_loss(0);
        let half = w.window();
        assert!(half < CcConfig::default().initial_cwnd_bytes);
        for _ in 0..64 {
            w.on_loss(0);
        }
        assert_eq!(w.window(), CcConfig::default().min_cwnd_bytes, "floor");
        assert_eq!(w.snapshot().loss_events, 65);
    }

    #[test]
    fn hostile_ack_cannot_inflate_past_ceiling() {
        let mut w = window();
        // An attacker-controlled SACK claiming absurd progress and totals.
        w.on_ack(u64::MAX / 2, 0, u64::MAX / 2, 0);
        assert!(w.window() <= CcConfig::default().max_cwnd_bytes);
        w.on_ack(u64::MAX / 2, u64::MAX / 2, u64::MAX / 2, 0);
        assert!(w.window() >= CcConfig::default().min_cwnd_bytes);
    }
}
