//! The kTLS/TCP baseline record layer (paper §2.1, evaluated as kTLS-sw/kTLS-hw).
//!
//! TLS over TCP maps the connection's single in-order bytestream onto a single
//! record sequence number space.  The sender cuts application data into records
//! with a monotonically increasing sequence number; the receiver must consume the
//! bytestream **in order**, which is exactly the property that causes
//! head-of-line blocking on packet loss and on a CPU core (§2).  This module
//! implements that record layer so the evaluation can compare SMT against it over
//! the simulated TCP transport.
//!
//! The crypto is *identical* to SMT's — both drive the shared
//! [`RecordProtector`] seal/open datapath in `smt-crypto`; only the
//! sequence-number space (per-connection counter here, composite message‖index
//! there) and the delivery model differ.  Whole sends and whole runs of
//! received records go through the **batched** record API
//! (`seal_batch_into`/`open_batch`): one reservation, one scratch fill and one
//! fused-AEAD drive per call instead of per record.

use crate::config::CryptoMode;
use crate::{SmtError, SmtResult};
use bytes::BytesMut;
use smt_crypto::handshake::{ratchet_secret, SessionKeys};
use smt_crypto::key_schedule::Secret;
use smt_crypto::record::{Padding, RecordProtector, SealRequest};
use smt_crypto::{CipherSuite, CryptoError};
use smt_wire::{ContentType, TlsRecordHeader, MAX_TLS_RECORD};

/// The TLS 1.3 KeyUpdate handshake message with `update_not_requested`
/// (RFC 8446 §4.6.3): msg_type 24, 3-byte length 1, request field 0. Sent
/// in-band as a Handshake record to signal "subsequent records from me are
/// under the next-epoch traffic secret".
const KEY_UPDATE_MESSAGE: [u8; 5] = [24, 0, 0, 1, 0];

/// Maximum application bytes per kTLS record (leave room for framing overhead).
const KTLS_RECORD_PAYLOAD: usize = MAX_TLS_RECORD - 256;

/// Caps on one batched receive-open run: at most this many records and (soft)
/// this many wire bytes per `open_batch` call, so the protector's reusable
/// scratch stays burst-independent while still amortizing across a run.
const KTLS_OPEN_BATCH_RECORDS: usize = 16;
const KTLS_OPEN_BATCH_BYTES: usize = 64 * 1024;

/// Sender half: application bytes → TLS record stream appended to the TCP
/// bytestream.
pub struct KtlsSender {
    protector: RecordProtector,
    seq: u64,
    suite: CipherSuite,
    secret: Secret,
    epoch: u16,
    crypto_mode: CryptoMode,
    /// Raw traffic secret + suite retained for NIC offload registration
    /// (kTLS-hw), mirroring the kernel TLS offload interface.
    offload_key: Option<(CipherSuite, Secret)>,
    /// Bytes of application data sent.
    pub bytes_sent: u64,
    /// Records produced.
    pub records_sent: u64,
}

impl std::fmt::Debug for KtlsSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KtlsSender")
            .field("seq", &self.seq)
            .finish_non_exhaustive()
    }
}

impl KtlsSender {
    /// Creates a sender from a traffic secret.
    pub fn new(suite: CipherSuite, secret: &Secret, crypto_mode: CryptoMode) -> SmtResult<Self> {
        Ok(Self {
            protector: RecordProtector::from_secret(suite, secret)?,
            seq: 0,
            suite,
            secret: secret.clone(),
            epoch: 0,
            crypto_mode,
            offload_key: crypto_mode.is_offloaded().then(|| (suite, secret.clone())),
            bytes_sent: 0,
            records_sent: 0,
        })
    }

    /// Emits an in-band TLS KeyUpdate record sealed under the *current* keys,
    /// then ratchets the send traffic secret forward one epoch and resets the
    /// record sequence number (RFC 8446 §4.6.3 / §7.2). The returned bytes
    /// must be appended to the send stream before any post-rekey record.
    pub fn key_update(&mut self) -> SmtResult<Vec<u8>> {
        let wire =
            self.protector
                .encrypt_record(self.seq, ContentType::Handshake, &KEY_UPDATE_MESSAGE)?;
        self.records_sent += 1;
        self.secret = ratchet_secret(&self.secret);
        self.protector = RecordProtector::from_secret(self.suite, &self.secret)?;
        self.seq = 0;
        self.epoch += 1;
        if self.offload_key.is_some() {
            // Re-program the NIC flow context with the new-epoch key, exactly
            // as the kernel re-issues the kTLS setsockopt after a KeyUpdate.
            self.offload_key = Some((self.suite, self.secret.clone()));
        }
        Ok(wire)
    }

    /// The current send-direction key epoch (number of KeyUpdates emitted).
    pub fn epoch(&self) -> u16 {
        self.epoch
    }

    /// The key material to program into the NIC for kTLS-hw.
    pub fn offload_key(&self) -> Option<(CipherSuite, &Secret)> {
        self.offload_key.as_ref().map(|(s, k)| (*s, k))
    }

    /// The next record sequence number (the NIC's self-incrementing counter
    /// tracks this value for offloaded connections).
    pub fn next_seq(&self) -> u64 {
        self.seq
    }

    /// Encrypts `data` into one or more records, appending the wire bytes to
    /// `out`. The whole send is cut into records up front and sealed through
    /// the batched [`RecordProtector`] datapath in one call, so `out` grows at
    /// most once and every record runs the fused AEAD pass back to back.
    /// Returns the number of bytes appended.
    pub fn send_into(&mut self, data: &[u8], out: &mut BytesMut) -> SmtResult<usize> {
        // Record chunking: every KTLS_RECORD_PAYLOAD bytes, with one (possibly
        // empty) record for an empty send.
        let chunks: Vec<&[u8]> = if data.is_empty() {
            vec![&[]]
        } else {
            data.chunks(KTLS_RECORD_PAYLOAD).collect()
        };
        let batch: Vec<SealRequest<'_>> = chunks
            .iter()
            .enumerate()
            .map(|(i, chunk)| SealRequest {
                seq: self.seq + i as u64,
                content_type: ContentType::ApplicationData,
                parts: std::slice::from_ref(chunk),
                padding: Padding::Default,
            })
            .collect();
        let appended = self.protector.seal_batch_into(&batch, out)?;
        self.seq += chunks.len() as u64;
        self.records_sent += chunks.len() as u64;
        self.bytes_sent += data.len() as u64;
        Ok(appended)
    }

    /// Cuts `data` into records exactly like [`Self::send_into`] but *stages*
    /// them into the shared crypto engine instead of sealing inline. Returns
    /// the exact number of wire bytes the staged records will produce once the
    /// engine flushes (equal to [`Self::wire_len_for`]), so the caller can do
    /// stream-offset bookkeeping before the ciphertext exists. Software-mode
    /// senders only — an offloaded sender's crypto belongs to the NIC.
    pub fn stage_into(
        &mut self,
        data: &[u8],
        engine: &smt_crypto::CryptoEngineHandle,
        conn: smt_crypto::EngineConn,
    ) -> SmtResult<usize> {
        if self.crypto_mode != CryptoMode::Software {
            return Err(SmtError::Session(
                "the batch crypto engine only drives software-mode senders".into(),
            ));
        }
        let chunks: Vec<&[u8]> = if data.is_empty() {
            vec![&[]]
        } else {
            data.chunks(KTLS_RECORD_PAYLOAD).collect()
        };
        let batch: Vec<SealRequest<'_>> = chunks
            .iter()
            .enumerate()
            .map(|(i, chunk)| SealRequest {
                seq: self.seq + i as u64,
                content_type: ContentType::ApplicationData,
                parts: std::slice::from_ref(chunk),
                padding: Padding::Default,
            })
            .collect();
        let staged = engine
            .stage_batch(conn, &batch)
            .map_err(|e| SmtError::Session(format!("engine staging failed: {e}")))?;
        debug_assert_eq!(staged, self.wire_len_for(data.len()));
        self.seq += chunks.len() as u64;
        self.records_sent += chunks.len() as u64;
        self.bytes_sent += data.len() as u64;
        Ok(staged)
    }

    /// The seal half of this sender's protector, for registering with a shared
    /// [`CryptoEngine`](smt_crypto::CryptoEngine).
    pub fn sealer(&self) -> smt_crypto::RecordSealer {
        self.protector.sealer()
    }

    /// Encrypts `data` into one or more records and returns the bytes to append
    /// to the TCP send stream (allocating convenience over [`Self::send_into`]).
    pub fn send(&mut self, data: &[u8]) -> SmtResult<Vec<u8>> {
        let mut out = BytesMut::with_capacity(self.wire_len_for(data.len()));
        self.send_into(data, &mut out)?;
        Ok(out.into_vec())
    }

    /// Number of wire bytes `send` would produce for `len` application bytes
    /// (used by the cost model without materialising the ciphertext).
    pub fn wire_len_for(&self, len: usize) -> usize {
        if len == 0 {
            return self.protector.wire_record_len(0);
        }
        let full = len / KTLS_RECORD_PAYLOAD;
        let rem = len % KTLS_RECORD_PAYLOAD;
        let mut total = full * self.protector.wire_record_len(KTLS_RECORD_PAYLOAD);
        if rem > 0 {
            total += self.protector.wire_record_len(rem);
        }
        total
    }

    /// Whether this sender's crypto is performed by the NIC.
    pub fn crypto_mode(&self) -> CryptoMode {
        self.crypto_mode
    }
}

/// Receiver half: in-order TCP bytestream → decrypted application bytes.
pub struct KtlsReceiver {
    protector: RecordProtector,
    seq: u64,
    suite: CipherSuite,
    secret: Secret,
    epoch: u16,
    buffer: BytesMut,
    /// Bytes of application data delivered.
    pub bytes_delivered: u64,
    /// Records decrypted.
    pub records_received: u64,
}

impl std::fmt::Debug for KtlsReceiver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KtlsReceiver")
            .field("seq", &self.seq)
            .field("buffered", &self.buffer.len())
            .finish_non_exhaustive()
    }
}

impl KtlsReceiver {
    /// Creates a receiver from a traffic secret.
    pub fn new(suite: CipherSuite, secret: &Secret) -> SmtResult<Self> {
        Ok(Self {
            protector: RecordProtector::from_secret(suite, secret)?,
            seq: 0,
            suite,
            secret: secret.clone(),
            epoch: 0,
            buffer: BytesMut::new(),
            bytes_delivered: 0,
            records_received: 0,
        })
    }

    /// The current receive-direction key epoch (KeyUpdates processed).
    pub fn epoch(&self) -> u16 {
        self.epoch
    }

    /// Appends in-order bytes from the TCP stream and returns any application
    /// data that became available.  Partial records stay buffered (this is the
    /// stream reassembly the application would otherwise do itself, §2).
    ///
    /// Complete records in the buffer are opened in batched calls under their
    /// consecutive sequence numbers, capped at `KTLS_OPEN_BATCH_RECORDS` /
    /// `KTLS_OPEN_BATCH_BYTES` per call so the protector's reusable scratch
    /// stays bounded regardless of burst size.
    ///
    /// A Handshake record carrying a TLS KeyUpdate ratchets the receive
    /// traffic secret forward one epoch and resets the sequence number, so
    /// records after it open under the next-epoch keys.  When a KeyUpdate sits
    /// mid-run, the records behind it fail to authenticate under the old keys
    /// and the run is retried one record at a time from the head; every other
    /// failure poisons the delivery (the TCP stream is dead at that point
    /// anyway).
    pub fn on_bytes(&mut self, bytes: &[u8]) -> SmtResult<Vec<u8>> {
        self.buffer.extend_from_slice(bytes);
        let mut out = Vec::new();
        loop {
            // Scan one capped run of complete records at the head.
            let mut run_records = 0usize;
            let mut run_len = 0usize;
            let mut first_len = 0usize;
            while run_records < KTLS_OPEN_BATCH_RECORDS && run_len < KTLS_OPEN_BATCH_BYTES {
                let rest = &self.buffer[run_len..];
                let Ok((hdr, hdr_len)) = TlsRecordHeader::decode(rest) else {
                    break;
                };
                if rest.len() < hdr_len + hdr.length as usize {
                    break;
                }
                run_len += hdr_len + hdr.length as usize;
                if run_records == 0 {
                    first_len = run_len;
                }
                run_records += 1;
            }
            if run_records == 0 {
                break;
            }

            let before = out.len();
            let (records, len, rekey) = match Self::open_run(
                &mut self.protector,
                self.seq,
                run_records,
                &self.buffer[..run_len],
                &mut out,
            ) {
                Ok(rekey) => (run_records, run_len, rekey),
                // A KeyUpdate mid-run makes the records behind it fail under
                // the pre-update keys; if the head record alone opens we are
                // in that case (the rekey below re-syncs), otherwise the
                // stream is genuinely corrupt.
                Err(e) if run_records > 1 => {
                    out.truncate(before);
                    match Self::open_run(
                        &mut self.protector,
                        self.seq,
                        1,
                        &self.buffer[..first_len],
                        &mut out,
                    ) {
                        Ok(rekey) => (1, first_len, rekey),
                        Err(_) => return Err(SmtError::Crypto(e)),
                    }
                }
                Err(e) => return Err(SmtError::Crypto(e)),
            };
            self.seq += records as u64;
            self.records_received += records as u64;
            self.bytes_delivered += (out.len() - before) as u64;
            // Drop the fully-processed run from the stream buffer, keeping any
            // partial tail for the next delivery.
            let _ = self.buffer.split_to(len);
            if rekey {
                self.secret = ratchet_secret(&self.secret);
                self.protector = RecordProtector::from_secret(self.suite, &self.secret)?;
                self.seq = 0;
                self.epoch += 1;
            }
        }
        Ok(out)
    }

    /// Opens one run of records and appends the application bytes to `out`,
    /// returning whether the run ended with a KeyUpdate.  A KeyUpdate can only
    /// authenticate as the *last* record of an opened run: anything the peer
    /// sealed after it used the next-epoch keys and fails under the current
    /// protector, so the caller's run simply ends there.
    fn open_run(
        protector: &mut RecordProtector,
        seq: u64,
        records: usize,
        wire: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<bool, CryptoError> {
        let batch = protector.open_batch(seq, records, wire)?;
        debug_assert_eq!(batch.consumed, wire.len());
        out.reserve(batch.plaintext_len());
        let mut rekey = false;
        for record in batch.iter() {
            match record.content_type {
                ContentType::ApplicationData => out.extend_from_slice(record.plaintext),
                ContentType::Handshake => {
                    if record.plaintext != KEY_UPDATE_MESSAGE {
                        return Err(CryptoError::handshake(
                            "unexpected handshake record on kTLS stream",
                        ));
                    }
                    rekey = true;
                }
                _ => {
                    return Err(CryptoError::handshake(
                        "unexpected content type on kTLS stream",
                    ))
                }
            }
        }
        Ok(rekey)
    }

    /// Bytes currently buffered waiting for the rest of a record.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }
}

/// A bidirectional kTLS endpoint (sender + receiver halves) built from handshake
/// keys — the moral equivalent of a kTLS-enabled TCP socket.
#[derive(Debug)]
pub struct KtlsSession {
    /// Sender half (our traffic secret).
    pub sender: KtlsSender,
    /// Receiver half (peer's traffic secret).
    pub receiver: KtlsReceiver,
}

impl KtlsSession {
    /// Builds an endpoint from handshake keys.
    pub fn new(keys: &SessionKeys, crypto_mode: CryptoMode) -> SmtResult<Self> {
        Ok(Self {
            sender: KtlsSender::new(keys.suite, &keys.send_secret, crypto_mode)?,
            receiver: KtlsReceiver::new(keys.suite, &keys.recv_secret)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_crypto::cert::CertificateAuthority;
    use smt_crypto::handshake::{establish, ClientConfig, ServerConfig};

    fn keys() -> (SessionKeys, SessionKeys) {
        let ca = CertificateAuthority::new("ca");
        let id = ca.issue_identity("server");
        establish(
            ClientConfig::new(ca.verifying_key(), "server"),
            ServerConfig::new(id, ca.verifying_key()),
        )
        .unwrap()
    }

    #[test]
    fn stream_roundtrip() {
        let (ck, sk) = keys();
        let mut client = KtlsSession::new(&ck, CryptoMode::Software).unwrap();
        let mut server = KtlsSession::new(&sk, CryptoMode::Software).unwrap();

        let wire = client.sender.send(b"GET /index").unwrap();
        let got = server.receiver.on_bytes(&wire).unwrap();
        assert_eq!(got, b"GET /index");

        let wire = server.sender.send(b"200 OK").unwrap();
        let got = client.receiver.on_bytes(&wire).unwrap();
        assert_eq!(got, b"200 OK");
    }

    #[test]
    fn send_into_reuses_stream_buffer() {
        let (ck, sk) = keys();
        let mut client = KtlsSession::new(&ck, CryptoMode::Software).unwrap();
        let mut server = KtlsSession::new(&sk, CryptoMode::Software).unwrap();
        let mut stream = BytesMut::with_capacity(16 * 1024);
        let n1 = client.sender.send_into(b"first", &mut stream).unwrap();
        let n2 = client.sender.send_into(b"second", &mut stream).unwrap();
        assert_eq!(stream.len(), n1 + n2);
        let got = server.receiver.on_bytes(&stream).unwrap();
        assert_eq!(got, b"firstsecond");
    }

    #[test]
    fn partial_delivery_buffers_until_complete() {
        let (ck, sk) = keys();
        let mut client = KtlsSession::new(&ck, CryptoMode::Software).unwrap();
        let mut server = KtlsSession::new(&sk, CryptoMode::Software).unwrap();
        let wire = client.sender.send(&vec![7u8; 5000]).unwrap();
        // Deliver in small chunks as TCP would after segmentation.
        let mut got = Vec::new();
        for chunk in wire.chunks(1448) {
            got.extend_from_slice(&server.receiver.on_bytes(chunk).unwrap());
        }
        assert_eq!(got, vec![7u8; 5000]);
        assert_eq!(server.receiver.buffered(), 0);
    }

    #[test]
    fn out_of_order_bytes_break_the_stream() {
        // The defining limitation of TLS-over-TCP: records must arrive in order.
        let (ck, sk) = keys();
        let mut client = KtlsSession::new(&ck, CryptoMode::Software).unwrap();
        let mut server = KtlsSession::new(&sk, CryptoMode::Software).unwrap();
        let w1 = client.sender.send(b"first record").unwrap();
        let w2 = client.sender.send(b"second record").unwrap();
        // Deliver the second record first: decryption under seq 0 fails.
        assert!(server.receiver.on_bytes(&w2).is_err());
        drop(w1);
    }

    #[test]
    fn large_send_splits_into_records() {
        let (ck, sk) = keys();
        let mut client = KtlsSession::new(&ck, CryptoMode::Software).unwrap();
        let mut server = KtlsSession::new(&sk, CryptoMode::Software).unwrap();
        let data = vec![1u8; 100_000];
        let wire = client.sender.send(&data).unwrap();
        assert!(client.sender.records_sent > 1);
        assert_eq!(client.sender.wire_len_for(data.len()), wire.len());
        let got = server.receiver.on_bytes(&wire).unwrap();
        assert_eq!(got, data);
        assert_eq!(server.receiver.records_received, client.sender.records_sent);
    }

    #[test]
    fn tampered_stream_detected() {
        let (ck, sk) = keys();
        let mut client = KtlsSession::new(&ck, CryptoMode::Software).unwrap();
        let mut server = KtlsSession::new(&sk, CryptoMode::Software).unwrap();
        let mut wire = client.sender.send(b"payload").unwrap();
        let mid = wire.len() / 2;
        wire[mid] ^= 1;
        assert!(server.receiver.on_bytes(&wire).is_err());
    }

    #[test]
    fn offload_key_only_in_hw_mode() {
        let (ck, _) = keys();
        let sw = KtlsSession::new(&ck, CryptoMode::Software).unwrap();
        let hw = KtlsSession::new(&ck, CryptoMode::HardwareOffload).unwrap();
        assert!(sw.sender.offload_key().is_none());
        assert!(hw.sender.offload_key().is_some());
        assert_eq!(hw.sender.crypto_mode(), CryptoMode::HardwareOffload);
    }

    #[test]
    fn sequence_numbers_increment_per_record() {
        let (ck, _) = keys();
        let mut s = KtlsSender::new(ck.suite, &ck.send_secret, CryptoMode::Software).unwrap();
        assert_eq!(s.next_seq(), 0);
        s.send(b"one").unwrap();
        s.send(b"two").unwrap();
        assert_eq!(s.next_seq(), 2);
    }

    #[test]
    fn key_update_roundtrip_mid_stream() {
        let (ck, sk) = keys();
        let mut client = KtlsSession::new(&ck, CryptoMode::Software).unwrap();
        let mut server = KtlsSession::new(&sk, CryptoMode::Software).unwrap();

        let mut stream = BytesMut::new();
        client
            .sender
            .send_into(b"before rekey ", &mut stream)
            .unwrap();
        let ku = client.sender.key_update().unwrap();
        stream.extend_from_slice(&ku);
        client
            .sender
            .send_into(b"after rekey", &mut stream)
            .unwrap();

        // The whole run (old-epoch data, KeyUpdate, new-epoch data) arrives in
        // one delivery; the receiver ratchets mid-buffer.
        let got = server.receiver.on_bytes(&stream).unwrap();
        assert_eq!(got, b"before rekey after rekey");
        assert_eq!(client.sender.epoch(), 1);
        assert_eq!(server.receiver.epoch(), 1);
        // Both sides restarted their per-epoch sequence space.
        assert_eq!(client.sender.next_seq(), 1);

        // The new keys keep working in both directions of time.
        let wire = client.sender.send(b"still alive").unwrap();
        assert_eq!(server.receiver.on_bytes(&wire).unwrap(), b"still alive");
    }

    #[test]
    fn key_update_survives_byte_at_a_time_delivery() {
        let (ck, sk) = keys();
        let mut client = KtlsSession::new(&ck, CryptoMode::Software).unwrap();
        let mut server = KtlsSession::new(&sk, CryptoMode::Software).unwrap();
        let mut stream = BytesMut::new();
        for i in 0..3u8 {
            client.sender.send_into(&[i; 100], &mut stream).unwrap();
            stream.extend_from_slice(&client.sender.key_update().unwrap());
        }
        client.sender.send_into(b"tail", &mut stream).unwrap();
        let mut got = Vec::new();
        for chunk in stream.chunks(7) {
            got.extend_from_slice(&server.receiver.on_bytes(chunk).unwrap());
        }
        let mut want = Vec::new();
        for i in 0..3u8 {
            want.extend_from_slice(&[i; 100]);
        }
        want.extend_from_slice(b"tail");
        assert_eq!(got, want);
        assert_eq!(server.receiver.epoch(), 3);
    }

    #[test]
    fn forged_handshake_record_rejected() {
        // A Handshake-typed record that is not a KeyUpdate must surface a
        // typed error, not silently ratchet the receiver.
        let (ck, sk) = keys();
        let client = KtlsSession::new(&ck, CryptoMode::Software).unwrap();
        let mut server = KtlsSession::new(&sk, CryptoMode::Software).unwrap();
        let wire = client
            .sender
            .protector
            .encrypt_record(0, ContentType::Handshake, b"not a key update")
            .unwrap();
        assert!(server.receiver.on_bytes(&wire).is_err());
    }

    #[test]
    fn corruption_after_key_update_still_detected() {
        // The single-record fallback must not mask genuine corruption: tamper
        // with the record after the KeyUpdate and the stream still dies.
        let (ck, sk) = keys();
        let mut client = KtlsSession::new(&ck, CryptoMode::Software).unwrap();
        let mut server = KtlsSession::new(&sk, CryptoMode::Software).unwrap();
        let mut stream = BytesMut::new();
        client.sender.send_into(b"ok", &mut stream).unwrap();
        stream.extend_from_slice(&client.sender.key_update().unwrap());
        client.sender.send_into(b"tampered", &mut stream).unwrap();
        let last = stream.len() - 1;
        stream[last] ^= 0xff;
        assert!(server.receiver.on_bytes(&stream).is_err());
    }

    #[test]
    fn empty_send_produces_one_record() {
        let (ck, sk) = keys();
        let mut client = KtlsSession::new(&ck, CryptoMode::Software).unwrap();
        let mut server = KtlsSession::new(&sk, CryptoMode::Software).unwrap();
        let wire = client.sender.send(b"").unwrap();
        assert!(!wire.is_empty());
        let got = server.receiver.on_bytes(&wire).unwrap();
        assert!(got.is_empty());
    }
}
