//! The TLS 1.3 key schedule (RFC 8446 §7.1) used by SMT sessions.
//!
//! SMT performs the handshake with standard TLS 1.3 semantics (§4.2), so the key
//! schedule is the usual HKDF-SHA256 ladder:
//!
//! ```text
//!              0
//!              |
//!   PSK ->  HKDF-Extract = Early Secret
//!              |
//!              +--> Derive-Secret(., "ext binder" | "res binder", "") = binder_key
//!              +--> Derive-Secret(., "c e traffic", CH)              = 0-RTT keys
//!              |
//!        Derive-Secret(., "derived", "")
//!              |
//! (EC)DHE -> HKDF-Extract = Handshake Secret
//!              |
//!              +--> Derive-Secret(., "c hs traffic", CH..SH) = client hs keys
//!              +--> Derive-Secret(., "s hs traffic", CH..SH) = server hs keys
//!              |
//!        Derive-Secret(., "derived", "")
//!              |
//!     0 -> HKDF-Extract = Master Secret
//!              |
//!              +--> Derive-Secret(., "c ap traffic", CH..Fin) = client app keys
//!              +--> Derive-Secret(., "s ap traffic", CH..Fin) = server app keys
//!              +--> Derive-Secret(., "res master",  CH..Fin) = resumption secret
//! ```
//!
//! The SMT 0-RTT variant (§4.5.2) reuses the same ladder with the *SMT-key* —
//! derived from the server's long-term DH share and the client's ephemeral share —
//! taking the place of the PSK.

use crate::aead::{AeadKey, Iv, NONCE_LEN};
use crate::suite::CipherSuite;
use crate::{CryptoError, CryptoResult};
use hkdf::Hkdf;
use sha2::{Digest, Sha256};

/// Length of SHA-256 output, the hash used by both supported suites.
pub const HASH_LEN: usize = 32;

/// An opaque secret in the key-schedule ladder.
#[derive(Clone, PartialEq, Eq)]
pub struct Secret(pub(crate) [u8; HASH_LEN]);

impl std::fmt::Debug for Secret {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Secret(..)")
    }
}

impl Secret {
    /// Builds a secret from raw bytes (must be exactly the hash length).
    pub fn from_slice(s: &[u8]) -> CryptoResult<Self> {
        if s.len() != HASH_LEN {
            return Err(CryptoError::InvalidLength {
                what: "secret",
                expected: HASH_LEN,
                got: s.len(),
            });
        }
        let mut out = [0u8; HASH_LEN];
        out.copy_from_slice(s);
        Ok(Self(out))
    }

    /// The all-zero secret (used where RFC 8446 feeds zeros into Extract).
    pub fn zero() -> Self {
        Self([0u8; HASH_LEN])
    }

    /// Raw bytes of the secret (used to build tickets / PSKs).
    pub fn as_bytes(&self) -> &[u8; HASH_LEN] {
        &self.0
    }
}

/// HKDF-Expand-Label from RFC 8446 §7.1 (with the "tls13 " label prefix).
pub fn hkdf_expand_label(secret: &Secret, label: &str, context: &[u8], len: usize) -> Vec<u8> {
    let hk = Hkdf::<Sha256>::from_prk(&secret.0).expect("prk is hash-sized");
    let mut info = Vec::with_capacity(4 + 6 + label.len() + 1 + context.len());
    info.extend_from_slice(&(len as u16).to_be_bytes());
    let full_label = format!("tls13 {label}");
    info.push(full_label.len() as u8);
    info.extend_from_slice(full_label.as_bytes());
    info.push(context.len() as u8);
    info.extend_from_slice(context);
    let mut out = vec![0u8; len];
    hk.expand(&info, &mut out)
        .expect("output length within HKDF limits");
    out
}

/// Derive-Secret from RFC 8446 §7.1: Expand-Label with a transcript hash context.
pub fn derive_secret(secret: &Secret, label: &str, transcript_hash: &[u8]) -> Secret {
    let out = hkdf_expand_label(secret, label, transcript_hash, HASH_LEN);
    Secret::from_slice(&out).expect("hash-sized output")
}

/// HKDF-Extract.
pub fn hkdf_extract(salt: &Secret, ikm: &[u8]) -> Secret {
    let (prk, _) = Hkdf::<Sha256>::extract(Some(&salt.0), ikm);
    Secret::from_slice(&prk).expect("hash-sized prk")
}

/// Computes the SHA-256 hash of a transcript.
pub fn transcript_hash(transcript: &[u8]) -> [u8; HASH_LEN] {
    let mut h = Sha256::new();
    h.update(transcript);
    h.finalize()
}

/// HMAC-SHA256, used for Finished message verification.
pub fn hmac(key: &[u8], data: &[u8]) -> [u8; HASH_LEN] {
    // HMAC via the HKDF crate is not exposed; implement the standard construction.
    const BLOCK: usize = 64;
    let mut k = [0u8; BLOCK];
    if key.len() > BLOCK {
        let d: [u8; HASH_LEN] = Sha256::digest(key);
        k[..HASH_LEN].copy_from_slice(&d);
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }
    let mut inner = Sha256::new();
    inner.update(ipad);
    inner.update(data);
    let inner: [u8; HASH_LEN] = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(opad);
    outer.update(inner);
    outer.finalize()
}

/// Per-direction traffic keys: AEAD key + static IV.
pub struct TrafficKeys {
    /// The AEAD key.
    pub key: AeadKey,
    /// The static write IV (XORed with record sequence numbers).
    pub iv: Iv,
    /// Raw key bytes, retained so they can be programmed into simulated NIC flow
    /// contexts (mirrors the kTLS `setsockopt` interface the paper reuses, §4.2).
    pub raw_key: Vec<u8>,
}

impl std::fmt::Debug for TrafficKeys {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrafficKeys").finish_non_exhaustive()
    }
}

impl TrafficKeys {
    /// Derives traffic keys from a traffic secret (RFC 8446 §7.3).
    pub fn derive(suite: CipherSuite, traffic_secret: &Secret) -> CryptoResult<Self> {
        let raw_key = hkdf_expand_label(traffic_secret, "key", b"", suite.key_len());
        let iv_bytes = hkdf_expand_label(traffic_secret, "iv", b"", NONCE_LEN);
        Ok(Self {
            key: AeadKey::new(suite.aead(), &raw_key)?,
            iv: Iv::from_slice(&iv_bytes)?,
            raw_key,
        })
    }
}

/// The state of the TLS 1.3 key-schedule ladder for one session.
#[derive(Debug)]
pub struct KeySchedule {
    suite: CipherSuite,
    current: Secret,
    stage: Stage,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    Early,
    Handshake,
    Master,
}

/// Secrets derived at the handshake stage.
#[derive(Debug)]
pub struct HandshakeSecrets {
    /// Client handshake traffic secret.
    pub client: Secret,
    /// Server handshake traffic secret.
    pub server: Secret,
}

/// Secrets derived at the application stage.
#[derive(Debug)]
pub struct ApplicationSecrets {
    /// Client application traffic secret.
    pub client: Secret,
    /// Server application traffic secret.
    pub server: Secret,
    /// Resumption master secret (used to mint session tickets).
    pub resumption: Secret,
}

impl KeySchedule {
    /// Starts the ladder with an optional PSK (resumption or SMT-key).
    pub fn new(suite: CipherSuite, psk: Option<&Secret>) -> Self {
        let zero = Secret::zero();
        let ikm = psk
            .map(|p| p.0.to_vec())
            .unwrap_or_else(|| vec![0u8; HASH_LEN]);
        let early = hkdf_extract(&zero, &ikm);
        Self {
            suite,
            current: early,
            stage: Stage::Early,
        }
    }

    /// The cipher suite this schedule derives keys for.
    pub fn suite(&self) -> CipherSuite {
        self.suite
    }

    /// Derives the 0-RTT ("client early traffic") secret from the early secret.
    pub fn early_traffic_secret(&self, client_hello_hash: &[u8]) -> CryptoResult<Secret> {
        if self.stage != Stage::Early {
            return Err(CryptoError::handshake("early secret already consumed"));
        }
        Ok(derive_secret(
            &self.current,
            "c e traffic",
            client_hello_hash,
        ))
    }

    /// Derives the binder key used to authenticate a PSK / SMT-ticket.
    pub fn binder_key(&self) -> CryptoResult<Secret> {
        if self.stage != Stage::Early {
            return Err(CryptoError::handshake("early secret already consumed"));
        }
        Ok(derive_secret(
            &self.current,
            "res binder",
            &transcript_hash(b""),
        ))
    }

    /// Feeds the (EC)DHE shared secret, moving to the handshake stage, and returns
    /// the handshake traffic secrets.
    pub fn into_handshake(
        &mut self,
        dhe_shared: &[u8],
        transcript_ch_sh: &[u8],
    ) -> CryptoResult<HandshakeSecrets> {
        if self.stage != Stage::Early {
            return Err(CryptoError::handshake("key schedule not at early stage"));
        }
        let derived = derive_secret(&self.current, "derived", &transcript_hash(b""));
        let hs = hkdf_extract(&derived, dhe_shared);
        let secrets = HandshakeSecrets {
            client: derive_secret(&hs, "c hs traffic", transcript_ch_sh),
            server: derive_secret(&hs, "s hs traffic", transcript_ch_sh),
        };
        self.current = hs;
        self.stage = Stage::Handshake;
        Ok(secrets)
    }

    /// Moves to the master-secret stage and returns the application secrets.
    pub fn into_application(
        &mut self,
        transcript_ch_fin: &[u8],
    ) -> CryptoResult<ApplicationSecrets> {
        if self.stage != Stage::Handshake {
            return Err(CryptoError::handshake(
                "key schedule not at handshake stage",
            ));
        }
        let derived = derive_secret(&self.current, "derived", &transcript_hash(b""));
        let master = hkdf_extract(&derived, &[0u8; HASH_LEN]);
        let secrets = ApplicationSecrets {
            client: derive_secret(&master, "c ap traffic", transcript_ch_fin),
            server: derive_secret(&master, "s ap traffic", transcript_ch_fin),
            resumption: derive_secret(&master, "res master", transcript_ch_fin),
        };
        self.current = master;
        self.stage = Stage::Master;
        Ok(secrets)
    }

    /// Derives the Finished MAC key from a handshake traffic secret.
    pub fn finished_key(traffic_secret: &Secret) -> Vec<u8> {
        hkdf_expand_label(traffic_secret, "finished", b"", HASH_LEN)
    }

    /// Computes a Finished verify-data MAC over a transcript hash.
    pub fn finished_mac(traffic_secret: &Secret, transcript_hash: &[u8]) -> [u8; HASH_LEN] {
        let key = Self::finished_key(traffic_secret);
        hmac(&key, transcript_hash)
    }

    /// Derives a per-ticket resumption PSK from the resumption master secret.
    pub fn resumption_psk(resumption_master: &Secret, ticket_nonce: &[u8]) -> Secret {
        let out = hkdf_expand_label(resumption_master, "resumption", ticket_nonce, HASH_LEN);
        Secret::from_slice(&out).expect("hash-sized")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_ladder(psk: Option<&Secret>, dhe: &[u8]) -> (ApplicationSecrets, HandshakeSecrets) {
        let mut ks = KeySchedule::new(CipherSuite::Aes128GcmSha256, psk);
        let hs = ks.into_handshake(dhe, b"CH..SH-hash").unwrap();
        let app = ks.into_application(b"CH..Fin-hash").unwrap();
        (app, hs)
    }

    #[test]
    fn ladder_is_deterministic() {
        let (a1, h1) = run_ladder(None, b"shared-secret");
        let (a2, h2) = run_ladder(None, b"shared-secret");
        assert_eq!(a1.client.0, a2.client.0);
        assert_eq!(a1.server.0, a2.server.0);
        assert_eq!(h1.client.0, h2.client.0);
        assert_eq!(h1.server.0, h2.server.0);
    }

    #[test]
    fn different_dhe_different_keys() {
        let (a1, _) = run_ladder(None, b"shared-secret-1");
        let (a2, _) = run_ladder(None, b"shared-secret-2");
        assert_ne!(a1.client.0, a2.client.0);
    }

    #[test]
    fn psk_changes_early_ladder() {
        let psk = Secret([0x11; HASH_LEN]);
        let (a1, _) = run_ladder(Some(&psk), b"dhe");
        let (a2, _) = run_ladder(None, b"dhe");
        assert_ne!(a1.client.0, a2.client.0);
    }

    #[test]
    fn client_and_server_secrets_differ() {
        let (app, hs) = run_ladder(None, b"dhe");
        assert_ne!(app.client.0, app.server.0);
        assert_ne!(hs.client.0, hs.server.0);
        assert_ne!(app.client.0, hs.client.0);
    }

    #[test]
    fn stage_misuse_rejected() {
        let mut ks = KeySchedule::new(CipherSuite::Aes128GcmSha256, None);
        assert!(ks.into_application(b"x").is_err());
        ks.into_handshake(b"dhe", b"t").unwrap();
        assert!(ks.early_traffic_secret(b"t").is_err());
        assert!(ks.into_handshake(b"dhe", b"t").is_err());
        ks.into_application(b"t2").unwrap();
        assert!(ks.into_application(b"t2").is_err());
    }

    #[test]
    fn traffic_keys_derivable_and_usable() {
        let (app, _) = run_ladder(None, b"dhe");
        let client = TrafficKeys::derive(CipherSuite::Aes128GcmSha256, &app.client).unwrap();
        let server = TrafficKeys::derive(CipherSuite::Aes128GcmSha256, &app.client).unwrap();
        // Same secret -> same keys: client seals, server opens.
        let nonce = client.iv.nonce_for(1);
        let ct = client.key.seal(&nonce, b"aad", b"hello");
        assert_eq!(server.key.open(&nonce, b"aad", &ct).unwrap(), b"hello");
        assert_eq!(client.raw_key.len(), 16);
    }

    #[test]
    fn finished_mac_depends_on_transcript_and_key() {
        let s1 = Secret([1u8; HASH_LEN]);
        let s2 = Secret([2u8; HASH_LEN]);
        let m1 = KeySchedule::finished_mac(&s1, b"transcript-a");
        let m2 = KeySchedule::finished_mac(&s1, b"transcript-b");
        let m3 = KeySchedule::finished_mac(&s2, b"transcript-a");
        assert_ne!(m1, m2);
        assert_ne!(m1, m3);
        assert_eq!(m1, KeySchedule::finished_mac(&s1, b"transcript-a"));
    }

    #[test]
    fn hmac_known_answer() {
        // RFC 4231 test case 2: key = "Jefe", data = "what do ya want for nothing?"
        let mac = hmac(b"Jefe", b"what do ya want for nothing?");
        let expected = [
            0x5b, 0xdc, 0xc1, 0x46, 0xbf, 0x60, 0x75, 0x4e, 0x6a, 0x04, 0x24, 0x26, 0x08, 0x95,
            0x75, 0xc7, 0x5a, 0x00, 0x3f, 0x08, 0x9d, 0x27, 0x39, 0x83, 0x9d, 0xec, 0x58, 0xb9,
            0x64, 0xec, 0x38, 0x43,
        ];
        assert_eq!(mac, expected);
    }

    #[test]
    fn resumption_psk_varies_with_nonce() {
        let rm = Secret([7u8; HASH_LEN]);
        let p1 = KeySchedule::resumption_psk(&rm, &[0]);
        let p2 = KeySchedule::resumption_psk(&rm, &[1]);
        assert_ne!(p1.0, p2.0);
    }

    #[test]
    fn early_traffic_secret_and_binder() {
        let psk = Secret([9u8; HASH_LEN]);
        let ks = KeySchedule::new(CipherSuite::Aes128GcmSha256, Some(&psk));
        let e = ks.early_traffic_secret(b"ch-hash").unwrap();
        let b = ks.binder_key().unwrap();
        assert_ne!(e.0, b.0);
    }

    #[test]
    fn secret_debug_does_not_leak() {
        let s = Secret([0xAB; HASH_LEN]);
        assert_eq!(format!("{s:?}"), "Secret(..)");
        assert!(Secret::from_slice(&[0u8; 31]).is_err());
    }
}
