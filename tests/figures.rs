//! Figure-parity tier: the functional Fig. 6–9 pipeline (real apps over the
//! real datapath on the simulated fabric) must land inside the analytic
//! cross-check bands at smoke scale, every one of the eight stacks must obey
//! the same unloaded-RTT prediction, and a scenario's `trace_hash` must be
//! bit-identical for a given fault seed — the property the bench-diff CI gate
//! stands on.

use proptest::prelude::*;
use smt::apps::RpcApp;
use smt::crypto::cert::CertificateAuthority;
use smt::crypto::handshake::{establish, ClientConfig, ServerConfig, SessionKeys};
use smt::sim::net::{run_scenario_app, FaultConfig, FlowSpec, Scenario, ScheduledSend};
use smt::sim::{CostModel, Nanos};
use smt::transport::{scenario_endpoints, StackKind};
use smt_bench::functional::{
    fig6_functional, fig7_functional, fig8_functional, fig9_functional, FigRow, FigScale, Predictor,
};

fn handshake() -> (SessionKeys, SessionKeys) {
    let ca = CertificateAuthority::new("figures-ca");
    let id = ca.issue_identity("server");
    establish(
        ClientConfig::new(ca.verifying_key(), "server"),
        ServerConfig::new(id, ca.verifying_key()),
    )
    .unwrap()
}

/// One echo flow with `concurrency` closed-loop operations in flight and the
/// calibrated CPU charge — the same shape the functional figure pipeline
/// drives internally.
fn echo_scenario(concurrency: usize, size: usize, faults: FaultConfig) -> Scenario {
    let mut scenario = Scenario::new("figures-test", 2);
    scenario.flows.push(FlowSpec {
        src_host: 0,
        dst_host: 1,
    });
    scenario.link.buffer_packets = 4096;
    scenario.faults = faults;
    for i in 0..concurrency {
        scenario.sends.push(ScheduledSend {
            at: i as Nanos * 100,
            flow: 0,
            size,
        });
    }
    scenario.cpu = Some(CostModel::calibrated().cpu_charge());
    scenario.sort_sends();
    scenario
}

/// Figs. 6 and 9 at smoke scale: every functional row inside its analytic
/// band (the row's `check()` panics with the offending figure otherwise).
#[test]
fn fig6_and_fig9_rows_land_in_analytic_bands() {
    let keys = handshake();
    let scale = FigScale::smoke();
    for row in fig6_functional(&scale, &keys) {
        row.check();
    }
    for row in fig9_functional(&scale, &keys) {
        row.check();
    }
}

/// Figs. 7 and 8 at a reduced smoke scale (these are the loaded sweeps, so
/// the test tier trims the op counts the CI `figures --smoke` run uses).
#[test]
fn fig7_and_fig8_rows_land_in_analytic_bands() {
    let keys = handshake();
    let scale = FigScale {
        fig7_ops: 200,
        fig8_ops: 150,
        fig8_records: 1_000,
        ..FigScale::smoke()
    };
    for row in fig7_functional(&scale, &keys) {
        row.check();
    }
    for row in fig8_functional(&scale, &keys) {
        row.check();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// All eight stacks (the figure sets cover six or seven) obey the same
    /// analytic unloaded-RTT prediction on the real datapath: one echo RPC
    /// in flight, measured p50 within the Fig. 6 tolerance band.
    #[test]
    fn all_eight_stacks_match_unloaded_rtt_prediction(
        size in 64usize..4096,
    ) {
        let keys = handshake();
        let ops = 20u64;
        for stack in StackKind::all() {
            let scenario = echo_scenario(1, size, FaultConfig::none());
            let predictor = Predictor::new(scenario.link);
            let mut app = RpcApp::new(1, size, size, ops - 1);
            let mut endpoints = scenario_endpoints(&scenario, stack, &keys.0, &keys.1);
            let report = run_scenario_app(&scenario, &mut endpoints, &mut app);
            prop_assert_eq!(report.replies_delivered, ops, "{} stalled", stack.label());
            let row = FigRow {
                figure: "fig6-all".into(),
                series: stack.label().into(),
                x: size.to_string(),
                measured: report.rpc_latency.p50_us,
                predicted: predictor.rtt_ns(stack, size, size, 0, 0) / 1e3,
                tol_rel: 0.35,
                tol_abs: 6.0,
                unit: "us".into(),
                ops: report.replies_delivered,
            };
            prop_assert!(
                row.within_band(),
                "{}: measured {:.2}us outside analytic band {:.2} ± {:.2}us",
                stack.label(), row.measured, row.predicted, row.band()
            );
        }
    }

    /// The figure pipeline is reproducible: for a given fault seed the
    /// scenario trace hash is bit-identical across runs, and a different
    /// seed perturbs the trace.  This is what lets CI gate the committed
    /// `BENCH_figures.json` with `bench_diff` — same inputs, same figures.
    #[test]
    fn trace_hash_is_bit_identical_per_seed(seed in any::<u64>()) {
        let keys = handshake();
        let faults = FaultConfig {
            reorder: 0.5,
            ..FaultConfig::lossy(0.25, seed)
        };
        let run = |faults: FaultConfig| {
            let scenario = echo_scenario(8, 1024, faults);
            let mut app = RpcApp::new(1, 1024, 1024, 40);
            let mut endpoints =
                scenario_endpoints(&scenario, StackKind::SmtSw, &keys.0, &keys.1);
            run_scenario_app(&scenario, &mut endpoints, &mut app)
        };
        let a = run(faults);
        let b = run(faults);
        prop_assert_eq!(a.trace_hash, b.trace_hash, "same seed must replay bit-identically");
        prop_assert_eq!(a.duration_ns, b.duration_ns);
        prop_assert_eq!(a.replies_delivered, b.replies_delivered);

        let other = FaultConfig {
            seed: seed.wrapping_add(1),
            ..faults
        };
        let c = run(other);
        prop_assert_ne!(
            a.trace_hash, c.trace_hash,
            "a different fault seed must perturb the trace"
        );
    }
}
