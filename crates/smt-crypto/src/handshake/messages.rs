//! Handshake messages exchanged by SMT endpoints.
//!
//! The message set mirrors TLS 1.3 (§4.2 "Session Initiation"): ClientHello,
//! ServerHello, EncryptedExtensions, Certificate, CertificateVerify, Finished and
//! NewSessionTicket, plus the paper's **SMT-ticket** (§4.5.2) — a DNS-distributed
//! bundle of the server's long-term ECDH share, its certificate chain and a
//! signature, which enables 0-RTT data.
//!
//! The encoding is a compact length-prefixed binary format (see `codec`); it is
//! not byte-compatible with RFC 8446 handshake framing, which is irrelevant to
//! the properties evaluated in the paper (the crypto operations are identical).

use crate::cert::CertificateChain;
use crate::codec::{Reader, Writer};
use crate::{CryptoError, CryptoResult};
use serde::{Deserialize, Serialize};

/// SMT protocol-level extensions negotiated in the handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SmtExtensions {
    /// Bits of the composite sequence number used for the message ID (§4.4.1).
    pub msg_id_bits: u8,
    /// Maximum message size the receiver accepts, in bytes.
    pub max_message_size: u32,
}

impl Default for SmtExtensions {
    fn default() -> Self {
        Self {
            msg_id_bits: smt_wire::DEFAULT_MSG_ID_BITS as u8,
            max_message_size: smt_wire::DEFAULT_MAX_MESSAGE_SIZE as u32,
        }
    }
}

/// ClientHello.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientHello {
    /// 32-byte client random (also the anti-replay handle for 0-RTT, §4.5.3).
    pub random: [u8; 32],
    /// Client ECDHE key share (SEC1).
    pub key_share: Vec<u8>,
    /// Offered cipher suites (IANA code points).
    pub cipher_suites: Vec<u16>,
    /// Requested SMT extensions.
    pub extensions: SmtExtensions,
    /// Pre-shared-key identity (session-resumption ticket id), if resuming.
    pub psk_identity: Option<u64>,
    /// PSK binder (HMAC proving possession of the PSK).
    pub psk_binder: Option<[u8; 32]>,
    /// SMT-ticket identity for the 0-RTT handshake, if used.
    pub smt_ticket_id: Option<u64>,
    /// Whether 0-RTT early data follows this hello.
    pub early_data: bool,
    /// Whether the client offers mutual authentication (mTLS).
    pub offer_client_auth: bool,
}

/// ServerHello.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerHello {
    /// 32-byte server random.
    pub random: [u8; 32],
    /// Server ECDHE key share; `None` when a non-forward-secret 0-RTT or pure-PSK
    /// exchange was accepted and no ephemeral exchange is performed.
    pub key_share: Option<Vec<u8>>,
    /// Selected cipher suite.
    pub cipher_suite: u16,
    /// Whether the offered PSK (resumption) was accepted.
    pub psk_accepted: bool,
    /// Whether 0-RTT early data was accepted.
    pub early_data_accepted: bool,
}

/// EncryptedExtensions (sent under handshake keys).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncryptedExtensions {
    /// Negotiated SMT extensions (authoritative values chosen by the server).
    pub extensions: SmtExtensions,
    /// Whether the server requests a client certificate (mTLS).
    pub request_client_auth: bool,
}

/// Certificate message carrying a chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertificateMsg {
    /// The certificate chain.
    pub chain: CertificateChain,
}

/// CertificateVerify: an ECDSA signature over the transcript hash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertificateVerify {
    /// DER-encoded ECDSA signature.
    pub signature: Vec<u8>,
}

/// Finished: HMAC over the transcript hash under the finished key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Finished {
    /// 32-byte verify data.
    pub verify_data: [u8; 32],
}

/// NewSessionTicket: enables PSK resumption (§4.5.2 "We retain TLS 1.3's session
/// resumption mechanism").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NewSessionTicket {
    /// Ticket identity presented in a future ClientHello.
    pub ticket_id: u64,
    /// Nonce mixed into the resumption PSK derivation.
    pub nonce: Vec<u8>,
    /// Ticket lifetime in seconds.
    pub lifetime_secs: u32,
}

/// The DNS-distributed SMT-ticket enabling 0-RTT data (§4.5.2).
///
/// Contains (i) the server's long-term ECDH public share, (ii) its certificate
/// chain, and (iii) a signature over the ticket by the certificate's private key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmtTicket {
    /// Identity the client echoes in its ClientHello so the server can find the
    /// matching long-term key.
    pub ticket_id: u64,
    /// Server's long-term ECDH public share (SEC1).
    pub server_dh_public: Vec<u8>,
    /// Server certificate chain.
    pub chain: CertificateChain,
    /// Ticket validity in seconds (the paper recommends at most one hour, §4.5.3).
    pub validity_secs: u32,
    /// Issue timestamp (seconds since the epoch of the issuing resolver).
    pub issued_at: u64,
    /// Signature over the to-be-signed ticket by the certificate's private key.
    pub signature: Vec<u8>,
}

impl SmtTicket {
    /// The byte string covered by the ticket signature.
    pub fn to_be_signed(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u64(self.ticket_id)
            .put_vec16(&self.server_dh_public)
            .put_vec32(&self.chain.encode())
            .put_u32(self.validity_secs)
            .put_u64(self.issued_at);
        w.finish()
    }

    /// True if the ticket has expired relative to `now` (same clock as
    /// `issued_at`).
    pub fn expired(&self, now: u64) -> bool {
        now > self.issued_at + self.validity_secs as u64
    }
}

/// Any handshake message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HandshakeMessage {
    /// ClientHello.
    ClientHello(ClientHello),
    /// ServerHello.
    ServerHello(ServerHello),
    /// EncryptedExtensions.
    EncryptedExtensions(EncryptedExtensions),
    /// Certificate.
    Certificate(CertificateMsg),
    /// CertificateVerify.
    CertificateVerify(CertificateVerify),
    /// Finished.
    Finished(Finished),
    /// NewSessionTicket.
    NewSessionTicket(NewSessionTicket),
    /// SMT-ticket (distributed out of band; also usable in-band for testing).
    SmtTicket(SmtTicket),
}

impl HandshakeMessage {
    fn type_byte(&self) -> u8 {
        match self {
            HandshakeMessage::ClientHello(_) => 1,
            HandshakeMessage::ServerHello(_) => 2,
            HandshakeMessage::EncryptedExtensions(_) => 8,
            HandshakeMessage::Certificate(_) => 11,
            HandshakeMessage::CertificateVerify(_) => 15,
            HandshakeMessage::Finished(_) => 20,
            HandshakeMessage::NewSessionTicket(_) => 4,
            HandshakeMessage::SmtTicket(_) => 0xF0,
        }
    }

    /// Serializes the message, including its type byte and length prefix.
    pub fn encode(&self) -> Vec<u8> {
        let body = self.encode_body();
        let mut w = Writer::new();
        w.put_u8(self.type_byte());
        w.put_vec32(&body);
        w.finish()
    }

    fn encode_body(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            HandshakeMessage::ClientHello(m) => {
                w.put_vec16(&m.random);
                w.put_vec16(&m.key_share);
                w.put_u16(m.cipher_suites.len() as u16);
                for c in &m.cipher_suites {
                    w.put_u16(*c);
                }
                w.put_u8(m.extensions.msg_id_bits);
                w.put_u32(m.extensions.max_message_size);
                w.put_u8(m.psk_identity.is_some() as u8);
                w.put_u64(m.psk_identity.unwrap_or(0));
                w.put_u8(m.psk_binder.is_some() as u8);
                w.put_vec16(m.psk_binder.as_ref().map(|b| &b[..]).unwrap_or(&[]));
                w.put_u8(m.smt_ticket_id.is_some() as u8);
                w.put_u64(m.smt_ticket_id.unwrap_or(0));
                w.put_u8(m.early_data as u8);
                w.put_u8(m.offer_client_auth as u8);
            }
            HandshakeMessage::ServerHello(m) => {
                w.put_vec16(&m.random);
                w.put_u8(m.key_share.is_some() as u8);
                w.put_vec16(m.key_share.as_deref().unwrap_or(&[]));
                w.put_u16(m.cipher_suite);
                w.put_u8(m.psk_accepted as u8);
                w.put_u8(m.early_data_accepted as u8);
            }
            HandshakeMessage::EncryptedExtensions(m) => {
                w.put_u8(m.extensions.msg_id_bits);
                w.put_u32(m.extensions.max_message_size);
                w.put_u8(m.request_client_auth as u8);
            }
            HandshakeMessage::Certificate(m) => {
                w.put_vec32(&m.chain.encode());
            }
            HandshakeMessage::CertificateVerify(m) => {
                w.put_vec16(&m.signature);
            }
            HandshakeMessage::Finished(m) => {
                w.put_vec16(&m.verify_data);
            }
            HandshakeMessage::NewSessionTicket(m) => {
                w.put_u64(m.ticket_id);
                w.put_vec16(&m.nonce);
                w.put_u32(m.lifetime_secs);
            }
            HandshakeMessage::SmtTicket(m) => {
                w.put_u64(m.ticket_id);
                w.put_vec16(&m.server_dh_public);
                w.put_vec32(&m.chain.encode());
                w.put_u32(m.validity_secs);
                w.put_u64(m.issued_at);
                w.put_vec16(&m.signature);
            }
        }
        w.finish()
    }

    /// Decodes one message from the reader.
    pub fn decode_from(r: &mut Reader<'_>) -> CryptoResult<Self> {
        let ty = r.get_u8()?;
        let body = r.get_vec32()?;
        let mut b = Reader::new(&body);
        let msg = match ty {
            1 => {
                let random = fixed32(&b.get_vec16()?)?;
                let key_share = b.get_vec16()?;
                let n = b.get_u16()? as usize;
                let mut cipher_suites = Vec::with_capacity(n);
                for _ in 0..n {
                    cipher_suites.push(b.get_u16()?);
                }
                let extensions = SmtExtensions {
                    msg_id_bits: b.get_u8()?,
                    max_message_size: b.get_u32()?,
                };
                let has_psk = b.get_bool()?;
                let psk_id = b.get_u64()?;
                let has_binder = b.get_bool()?;
                let binder_raw = b.get_vec16()?;
                let has_smt_ticket = b.get_bool()?;
                let smt_ticket = b.get_u64()?;
                let early_data = b.get_bool()?;
                let offer_client_auth = b.get_bool()?;
                HandshakeMessage::ClientHello(ClientHello {
                    random,
                    key_share,
                    cipher_suites,
                    extensions,
                    psk_identity: has_psk.then_some(psk_id),
                    psk_binder: if has_binder {
                        Some(fixed32(&binder_raw)?)
                    } else {
                        None
                    },
                    smt_ticket_id: has_smt_ticket.then_some(smt_ticket),
                    early_data,
                    offer_client_auth,
                })
            }
            2 => {
                let random = fixed32(&b.get_vec16()?)?;
                let has_share = b.get_bool()?;
                let share = b.get_vec16()?;
                HandshakeMessage::ServerHello(ServerHello {
                    random,
                    key_share: has_share.then_some(share),
                    cipher_suite: b.get_u16()?,
                    psk_accepted: b.get_bool()?,
                    early_data_accepted: b.get_bool()?,
                })
            }
            8 => HandshakeMessage::EncryptedExtensions(EncryptedExtensions {
                extensions: SmtExtensions {
                    msg_id_bits: b.get_u8()?,
                    max_message_size: b.get_u32()?,
                },
                request_client_auth: b.get_bool()?,
            }),
            11 => HandshakeMessage::Certificate(CertificateMsg {
                chain: CertificateChain::decode(&b.get_vec32()?)?,
            }),
            15 => HandshakeMessage::CertificateVerify(CertificateVerify {
                signature: b.get_vec16()?,
            }),
            20 => HandshakeMessage::Finished(Finished {
                verify_data: fixed32(&b.get_vec16()?)?,
            }),
            4 => HandshakeMessage::NewSessionTicket(NewSessionTicket {
                ticket_id: b.get_u64()?,
                nonce: b.get_vec16()?,
                lifetime_secs: b.get_u32()?,
            }),
            0xF0 => HandshakeMessage::SmtTicket(SmtTicket {
                ticket_id: b.get_u64()?,
                server_dh_public: b.get_vec16()?,
                chain: CertificateChain::decode(&b.get_vec32()?)?,
                validity_secs: b.get_u32()?,
                issued_at: b.get_u64()?,
                signature: b.get_vec16()?,
            }),
            other => {
                return Err(CryptoError::handshake(format!(
                    "unknown handshake message type {other}"
                )))
            }
        };
        b.expect_end()?;
        Ok(msg)
    }

    /// Decodes a single message from a byte slice.
    pub fn decode(bytes: &[u8]) -> CryptoResult<Self> {
        let mut r = Reader::new(bytes);
        let m = Self::decode_from(&mut r)?;
        r.expect_end()?;
        Ok(m)
    }
}

/// A handshake flight: an ordered list of messages serialized back to back.
pub fn encode_flight(messages: &[HandshakeMessage]) -> Vec<u8> {
    let mut out = Vec::new();
    for m in messages {
        out.extend_from_slice(&m.encode());
    }
    out
}

/// Decodes a flight into its messages.
pub fn decode_flight(bytes: &[u8]) -> CryptoResult<Vec<HandshakeMessage>> {
    let mut r = Reader::new(bytes);
    let mut out = Vec::new();
    while r.remaining() > 0 {
        out.push(HandshakeMessage::decode_from(&mut r)?);
    }
    Ok(out)
}

fn fixed32(v: &[u8]) -> CryptoResult<[u8; 32]> {
    v.try_into()
        .map_err(|_| CryptoError::handshake(format!("expected 32-byte field, got {}", v.len())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::CertificateAuthority;

    fn sample_chain() -> CertificateChain {
        CertificateAuthority::new("test-ca")
            .issue_identity("server")
            .chain
    }

    fn sample_client_hello() -> ClientHello {
        ClientHello {
            random: [7u8; 32],
            key_share: vec![4u8; 65],
            cipher_suites: vec![0x1301, 0x1302],
            extensions: SmtExtensions::default(),
            psk_identity: Some(99),
            psk_binder: Some([1u8; 32]),
            smt_ticket_id: None,
            early_data: true,
            offer_client_auth: false,
        }
    }

    #[test]
    fn client_hello_roundtrip() {
        let m = HandshakeMessage::ClientHello(sample_client_hello());
        let d = HandshakeMessage::decode(&m.encode()).unwrap();
        assert_eq!(d, m);
    }

    #[test]
    fn server_hello_roundtrip_with_and_without_share() {
        for share in [Some(vec![9u8; 65]), None] {
            let m = HandshakeMessage::ServerHello(ServerHello {
                random: [3u8; 32],
                key_share: share,
                cipher_suite: 0x1301,
                psk_accepted: true,
                early_data_accepted: false,
            });
            assert_eq!(HandshakeMessage::decode(&m.encode()).unwrap(), m);
        }
    }

    #[test]
    fn certificate_and_verify_roundtrip() {
        let c = HandshakeMessage::Certificate(CertificateMsg {
            chain: sample_chain(),
        });
        let v = HandshakeMessage::CertificateVerify(CertificateVerify {
            signature: vec![0xaa; 70],
        });
        assert_eq!(HandshakeMessage::decode(&c.encode()).unwrap(), c);
        assert_eq!(HandshakeMessage::decode(&v.encode()).unwrap(), v);
    }

    #[test]
    fn flight_roundtrip() {
        let msgs = vec![
            HandshakeMessage::ClientHello(sample_client_hello()),
            HandshakeMessage::Finished(Finished {
                verify_data: [5u8; 32],
            }),
            HandshakeMessage::NewSessionTicket(NewSessionTicket {
                ticket_id: 1,
                nonce: vec![0, 1, 2],
                lifetime_secs: 3600,
            }),
        ];
        let wire = encode_flight(&msgs);
        let decoded = decode_flight(&wire).unwrap();
        assert_eq!(decoded, msgs);
    }

    #[test]
    fn smt_ticket_roundtrip_and_expiry() {
        let t = SmtTicket {
            ticket_id: 5,
            server_dh_public: vec![4u8; 65],
            chain: sample_chain(),
            validity_secs: 3600,
            issued_at: 1000,
            signature: vec![1, 2, 3],
        };
        let m = HandshakeMessage::SmtTicket(t.clone());
        assert_eq!(HandshakeMessage::decode(&m.encode()).unwrap(), m);
        assert!(!t.expired(1000 + 3600));
        assert!(t.expired(1000 + 3601));
    }

    #[test]
    fn unknown_type_rejected() {
        let mut w = Writer::new();
        w.put_u8(0x77);
        w.put_vec32(b"junk");
        assert!(HandshakeMessage::decode(&w.finish()).is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let m = HandshakeMessage::Finished(Finished {
            verify_data: [0u8; 32],
        });
        let mut bytes = m.encode();
        bytes.push(0);
        assert!(HandshakeMessage::decode(&bytes).is_err());
    }

    #[test]
    fn truncated_flight_rejected() {
        let m = HandshakeMessage::Finished(Finished {
            verify_data: [0u8; 32],
        });
        let bytes = m.encode();
        assert!(decode_flight(&bytes[..bytes.len() - 1]).is_err());
    }
}
