//! The endpoint conformance matrix: every evaluated stack, driven through the
//! unified [`SecureEndpoint`] trait, must deliver the same message set under
//! packet reordering and duplication — and must detect the duplicates.
//!
//! This is the property the endpoint API exists to guarantee: the eight stacks
//! are interchangeable behind one interface, and chaos on the wire (within
//! what a datacenter fabric can do to packets: reorder, duplicate) never
//! changes what the application observes.
//!
//! The chaos comes from the seeded `smt_sim::net::FaultyLink` — the *same*
//! fault model the discrete-event scenarios inject — applied per flight via
//! [`FaultyLink::scramble_flight`], so tests and scenarios agree on what a
//! misbehaving network does.

use proptest::prelude::*;
use smt::crypto::cert::CertificateAuthority;
use smt::crypto::handshake::{establish, ClientConfig, ServerConfig, SessionKeys};
use smt::sim::net::{FaultConfig, FaultyLink};
use smt::transport::{take_delivered, Endpoint, SecureEndpoint, StackKind};

fn handshake() -> (SessionKeys, SessionKeys) {
    let ca = CertificateAuthority::new("matrix-ca");
    let id = ca.issue_identity("server");
    establish(
        ClientConfig::new(ca.verifying_key(), "server"),
        ServerConfig::new(id, ca.verifying_key()),
    )
    .unwrap()
}

/// Drives the pair flight by flight, scrambling every flight through the
/// shared fault model (duplicate + shuffle, no loss), until both sides
/// quiesce (two consecutive idle rounds after timeout recovery).  Flights are
/// delivered instantaneously; virtual time advances only to run the
/// endpoints' retransmission timers when the wire goes idle.
fn pump_chaotic(client: &mut Endpoint, server: &mut Endpoint, seed: u64, max_rounds: usize) {
    let mut chaos = FaultyLink::new(FaultConfig::chaotic(seed));
    let mut now = 0u64;
    let mut idle = 0;
    for _ in 0..max_rounds {
        let mut to_server = Vec::new();
        client.poll_transmit(now, &mut to_server);
        let mut to_client = Vec::new();
        server.poll_transmit(now, &mut to_client);

        if to_server.is_empty() && to_client.is_empty() {
            idle += 1;
            if idle >= 2 {
                return;
            }
            // Jump the clock to the earliest armed timer and fire both ends.
            if let Some(deadline) = [client.next_timeout(), server.next_timeout()]
                .into_iter()
                .flatten()
                .min()
            {
                now = now.max(deadline);
            }
            client.on_timeout(now);
            server.on_timeout(now);
            continue;
        }
        idle = 0;
        chaos.scramble_flight(&mut to_server);
        chaos.scramble_flight(&mut to_client);
        for p in &to_server {
            let _ = server.handle_datagram(p, now);
        }
        for p in &to_client {
            let _ = client.handle_datagram(p, now);
        }
    }
    panic!("pair did not quiesce within {max_rounds} rounds");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The same message set, pushed through all eight stacks via the trait
    /// under reordering + duplication, is delivered identically everywhere,
    /// and every stack's replay counter records the injected duplicates.
    #[test]
    fn all_stacks_agree_under_reordering_and_duplication(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..6000), 1..4),
        seed in any::<u64>(),
    ) {
        let mut per_stack: Vec<(StackKind, Vec<Vec<u8>>)> = Vec::new();
        for stack in StackKind::all() {
            let (ck, sk) = handshake();
            let (mut client, mut server) = Endpoint::builder()
                .stack(stack)
                .pair(&ck, &sk, 4000, 5201)
                .unwrap();
            for p in &payloads {
                client.send(p, 0).unwrap();
            }
            pump_chaotic(&mut client, &mut server, seed, 10_000);

            let mut got = take_delivered(&mut server);
            got.sort_by_key(|(id, _)| *id);
            let datas: Vec<Vec<u8>> = got.into_iter().map(|(_, d)| d).collect();
            prop_assert_eq!(
                &datas, &payloads,
                "stack {} delivered a different message set", stack.label()
            );
            prop_assert!(
                server.stats().replays_rejected > 0,
                "stack {} did not count the injected duplicates", stack.label()
            );
            per_stack.push((stack, datas));
        }
        // Identical delivered payloads across every stack.
        let (first_stack, reference) = &per_stack[0];
        for (stack, datas) in &per_stack[1..] {
            prop_assert_eq!(
                datas, reference,
                "stacks {} and {} disagree", stack.label(), first_stack.label()
            );
        }
    }
}
