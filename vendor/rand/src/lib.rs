//! Offline stand-in for the [`rand`](https://docs.rs/rand) crate.
//!
//! Implements the subset of the `rand` 0.8 API the workspace uses:
//! [`RngCore`], [`SeedableRng`], the [`Rng`] extension trait (`gen`,
//! `gen_range`), a deterministic [`rngs::StdRng`] (xoshiro256**), and
//! [`rngs::OsRng`] backed by `/dev/urandom` with a hashed-entropy fallback.
//!
//! The generators are *not* cryptographically audited; within this workspace
//! they supply nonces, test vectors and workload distributions, while all
//! security-relevant randomness flows through the key schedule.

#![forbid(unsafe_code)]

/// Core RNG interface: raw random words and byte filling.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let word = self.next_u64().to_le_bytes();
            let take = (dest.len() - i).min(8);
            dest[i..i + take].copy_from_slice(&word[..take]);
            i += take;
        }
    }
}

/// Marker trait for RNGs suitable for cryptographic key generation.
pub trait CryptoRng {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Creates an RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates an RNG from a 64-bit seed (splitmix64 expansion).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let take = chunk.len();
            chunk.copy_from_slice(&bytes[..take]);
        }
        Self::from_seed(seed)
    }

    /// Creates an RNG seeded from the operating system.
    fn from_entropy() -> Self {
        let mut seed = Self::Seed::default();
        rngs::OsRng.fill_bytes(seed.as_mut());
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}
impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i64);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Uniform value in `[0, bound)` by rejection sampling (no modulo bias).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

/// Convenience extension methods on any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// True with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The RNG implementations.
pub mod rngs {
    use super::{CryptoRng, RngCore, SeedableRng};

    /// A deterministic xoshiro256** generator, the stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // All-zero state is a fixed point of xoshiro; avoid it.
            if s == [0; 4] {
                s = [0x9e3779b97f4a7c15, 0x6a09e667f3bcc909, 1, 2];
            }
            Self { s }
        }
    }

    /// An operating-system entropy source (reads `/dev/urandom`).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct OsRng;

    impl CryptoRng for OsRng {}

    fn os_entropy(dest: &mut [u8]) -> bool {
        use std::io::Read;
        match std::fs::File::open("/dev/urandom") {
            Ok(mut f) => f.read_exact(dest).is_ok(),
            Err(_) => false,
        }
    }

    fn fallback_entropy(dest: &mut [u8]) {
        // Hash process-unique state through splitmix as a last resort. Not
        // cryptographically strong, but only reached on platforms without
        // /dev/urandom, which this workspace does not target in production.
        use std::time::{SystemTime, UNIX_EPOCH};
        let now = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let addr = &now as *const _ as usize as u64;
        let mut rng = StdRng::seed_from_u64(now ^ addr.rotate_left(32) ^ std::process::id() as u64);
        rng.fill_bytes(dest);
    }

    impl RngCore for OsRng {
        fn next_u32(&mut self) -> u32 {
            let mut b = [0u8; 4];
            self.fill_bytes(&mut b);
            u32::from_le_bytes(b)
        }

        fn next_u64(&mut self) -> u64 {
            let mut b = [0u8; 8];
            self.fill_bytes(&mut b);
            u64::from_le_bytes(b)
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            if !os_entropy(dest) {
                fallback_entropy(dest);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{OsRng, StdRng};
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn std_rng_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(1usize..=3);
            assert!((1..=3).contains(&w));
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean} implausible");
    }

    #[test]
    fn os_rng_fills_and_varies() {
        let mut a = [0u8; 32];
        let mut b = [0u8; 32];
        OsRng.fill_bytes(&mut a);
        OsRng.fill_bytes(&mut b);
        assert_ne!(a, b);
        assert_ne!(a, [0u8; 32]);
    }
}
