//! The generalized message-based transport header (paper Fig. 1).
//!
//! Every packet of a message-based transport (Homa, MTP, SMT) carries the source
//! and destination ports, a message ID, the total message length and this packet's
//! offset within the message, so the receiver can reassemble arbitrary-sized,
//! unordered messages.  The shaded parts of Fig. 1 — everything except the message
//! offset — are identical across all packets of one message.

use crate::{WireError, WireResult};
use serde::{Deserialize, Serialize};

/// Generalized message-transport header (16 bytes src/dst port + msg id/len/off).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MessageHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Message identifier, unique per (5-tuple, direction) within a session.
    pub message_id: u64,
    /// Total message length in bytes.
    pub message_length: u32,
    /// Offset of this packet's payload within the message.
    pub message_offset: u32,
}

/// Encoded size of a [`MessageHeader`].
pub const MESSAGE_HEADER_LEN: usize = 2 + 2 + 8 + 4 + 4;

impl MessageHeader {
    /// Creates a header for the first packet of a message.
    pub fn new(src_port: u16, dst_port: u16, message_id: u64, message_length: u32) -> Self {
        Self {
            src_port,
            dst_port,
            message_id,
            message_length,
            message_offset: 0,
        }
    }

    /// Returns a copy of this header positioned at `offset` within the message.
    pub fn at_offset(mut self, offset: u32) -> Self {
        self.message_offset = offset;
        self
    }

    /// Encoded length in bytes.
    pub const fn len(&self) -> usize {
        MESSAGE_HEADER_LEN
    }

    /// Returns true if the encoded representation would be empty (it never is).
    pub const fn is_empty(&self) -> bool {
        false
    }

    /// Encodes the header into `out`, returning the number of bytes written.
    pub fn encode(&self, out: &mut [u8]) -> WireResult<usize> {
        if out.len() < MESSAGE_HEADER_LEN {
            return Err(WireError::NoSpace {
                needed: MESSAGE_HEADER_LEN,
                available: out.len(),
            });
        }
        out[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        out[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        out[4..12].copy_from_slice(&self.message_id.to_be_bytes());
        out[12..16].copy_from_slice(&self.message_length.to_be_bytes());
        out[16..20].copy_from_slice(&self.message_offset.to_be_bytes());
        Ok(MESSAGE_HEADER_LEN)
    }

    /// Decodes a header from `buf`, returning it and the bytes consumed.
    pub fn decode(buf: &[u8]) -> WireResult<(Self, usize)> {
        if buf.len() < MESSAGE_HEADER_LEN {
            return Err(WireError::Truncated {
                needed: MESSAGE_HEADER_LEN,
                available: buf.len(),
            });
        }
        let hdr = Self {
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            message_id: u64::from_be_bytes(buf[4..12].try_into().unwrap()),
            message_length: u32::from_be_bytes(buf[12..16].try_into().unwrap()),
            message_offset: u32::from_be_bytes(buf[16..20].try_into().unwrap()),
        };
        if hdr.message_offset > hdr.message_length {
            return Err(WireError::invalid(
                "message_offset",
                format!(
                    "offset {} exceeds message length {}",
                    hdr.message_offset, hdr.message_length
                ),
            ));
        }
        Ok((hdr, MESSAGE_HEADER_LEN))
    }

    /// True when this header belongs to the same message as `other` (all the
    /// shaded fields of Fig. 1 are equal; only the offset may differ).
    pub fn same_message(&self, other: &Self) -> bool {
        self.src_port == other.src_port
            && self.dst_port == other.dst_port
            && self.message_id == other.message_id
            && self.message_length == other.message_length
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let h = MessageHeader::new(4000, 5201, 0xdead_beef_cafe, 1 << 20).at_offset(4096);
        let mut buf = [0u8; 64];
        let n = h.encode(&mut buf).unwrap();
        assert_eq!(n, MESSAGE_HEADER_LEN);
        let (d, consumed) = MessageHeader::decode(&buf).unwrap();
        assert_eq!(consumed, n);
        assert_eq!(d, h);
    }

    #[test]
    fn same_message_ignores_offset() {
        let a = MessageHeader::new(1, 2, 42, 1000);
        let b = a.at_offset(500);
        assert!(a.same_message(&b));
        let c = MessageHeader::new(1, 2, 43, 1000);
        assert!(!a.same_message(&c));
    }

    #[test]
    fn offset_beyond_length_rejected() {
        let h = MessageHeader {
            src_port: 1,
            dst_port: 2,
            message_id: 3,
            message_length: 100,
            message_offset: 101,
        };
        let mut buf = [0u8; 64];
        h.encode(&mut buf).unwrap();
        assert!(matches!(
            MessageHeader::decode(&buf),
            Err(WireError::InvalidField { .. })
        ));
    }

    #[test]
    fn truncated_rejected() {
        assert!(matches!(
            MessageHeader::decode(&[0u8; 10]),
            Err(WireError::Truncated { .. })
        ));
    }
}
