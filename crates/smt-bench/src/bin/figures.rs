//! Runs the functional figure pipeline — Figs. 6–9 + Table 2 on the real
//! datapath — and emits `BENCH_figures.json`.
//!
//! ```text
//! figures [--smoke] [--json] [--out <path>]
//! ```
//!
//! * `--smoke` — the CI subset: every figure exercised end to end at small
//!   scale.
//! * `--json` — print the rows as JSON instead of tables.
//! * `--out <path>` — where to write the bench-diff-compatible report
//!   (default `BENCH_figures.json` in the current directory).
//!
//! Every row is asserted in process against its analytic cross-check band
//! before anything is written; the emitted JSON gates regressions in CI via
//! `bench_diff --max-regress`, like the scenario matrix.

use smt_bench::functional::{bench_json, fig_table, run_figures, FIG_TABLE_HEADER};
use smt_bench::output::{maybe_json, print_table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_figures.json".to_string());

    // `run_figures` asserts every cross-check band internally.
    let figs = run_figures(smoke);

    if !maybe_json(&figs) {
        print_table(
            if smoke {
                "functional figures (smoke scale)"
            } else {
                "functional figures (full scale)"
            },
            &FIG_TABLE_HEADER,
            &fig_table(&figs.rows),
        );

        let t2: Vec<Vec<String>> = figs
            .table2
            .ops
            .iter()
            .map(|(label, desc, us)| vec![label.clone(), desc.clone(), format!("{us:.1}")])
            .collect();
        print_table(
            "Table 2 (functional, in-band SMT-sw cold handshake)",
            &["op", "description", "us"],
            &t2,
        );

        let setup: Vec<Vec<String>> = figs
            .table2
            .setup
            .iter()
            .map(|p| {
                vec![
                    p.stack.clone(),
                    p.mode.to_string(),
                    format!("{:.1}", p.ttfb_ns as f64 / 1e3),
                    format!("{:.1}", p.hs_rtt_ns as f64 / 1e3),
                    format!("{:.1}", p.crypto_us),
                    p.resumed.to_string(),
                ]
            })
            .collect();
        print_table(
            "connection setup (in-band, cold vs resumed vs derived)",
            &[
                "stack",
                "mode",
                "ttfb(us)",
                "hs-rtt(us)",
                "crypto(us)",
                "resumed",
            ],
            &setup,
        );
    }

    std::fs::write(&out_path, bench_json(&figs)).expect("write figures report");
    eprintln!("wrote {out_path}");
}
