//! 0-RTT connection setup **over the wire** (paper §4.5.2): a cold in-band
//! handshake mints an SMT-ticket, a resumed connection piggybacks its first
//! request on the ClientHello flight, and a replayed first flight is
//! rejected by the listener's shared anti-replay cache (§4.5.3).
//!
//! Run with: `cargo run --example zero_rtt`

use smt::crypto::cert::CertificateAuthority;
use smt::crypto::handshake::SmtTicketIssuer;
use smt::transport::endpoint::{AcceptConfig, ConnectConfig, ZeroRttAcceptor};
use smt::transport::{drive_pair, Endpoint, Event, PairFabric, SecureEndpoint, StackKind};

fn main() {
    let ca = CertificateAuthority::new("dc-internal-ca");
    let id = ca.issue_identity("api.dc.local");
    // One listener worth of shared 0-RTT state: the long-term ticket issuer
    // (rotated hourly, §4.5.3) plus the ClientHello-random replay cache.
    let acceptor = ZeroRttAcceptor::new(SmtTicketIssuer::new(id.clone(), 3600), 1 << 16);

    // --- Cold connection: full 1-RTT handshake, in-band ticket minting. ----
    let (mut client, mut server) = Endpoint::builder()
        .stack(StackKind::SmtSw)
        .handshake_pair(
            ConnectConfig::new(ca.verifying_key(), "api.dc.local"),
            AcceptConfig::new(id.clone(), ca.verifying_key())
                .zero_rtt(acceptor.clone())
                .ticket_time(1_000),
            4100,
            4430,
        )
        .expect("endpoints");
    client.send(b"GET /config?v=3", 0).expect("queue request");
    let mut link = PairFabric::reliable();
    drive_pair(&mut client, &mut server, &mut link, 1_000_000);

    let mut ticket = None;
    let mut cold_rtt = 0;
    while let Some(ev) = client.poll_event() {
        match ev {
            Event::HandshakeComplete {
                rtt_ns, resumed, ..
            } => {
                cold_rtt = rtt_ns;
                assert!(!resumed);
            }
            Event::TicketReceived(t) => ticket = Some(*t),
            _ => {}
        }
    }
    let ticket = ticket.expect("server spliced an SMT-ticket into its flight");
    println!("cold setup: handshake took {cold_rtt} ns (virtual); in-band ticket received");

    // --- Resumed connection: 0-RTT, first request rides the first flight. --
    let (mut client, mut server) = Endpoint::builder()
        .stack(StackKind::SmtSw)
        .handshake_pair(
            ConnectConfig::new(ca.verifying_key(), "api.dc.local").resume(ticket, 1_060),
            AcceptConfig::new(id.clone(), ca.verifying_key()).zero_rtt(acceptor.clone()),
            4102,
            4432,
        )
        .expect("endpoints");
    client.send(b"GET /config?v=4", 0).expect("queue request");
    let mut link = PairFabric::reliable();
    // Step one event at a time so the early delivery's virtual time is exact.
    let mut delivered_at = None;
    loop {
        let processed = drive_pair(&mut client, &mut server, &mut link, 1);
        while let Some(ev) = server.poll_event() {
            if let Event::MessageDelivered { data, .. } = ev {
                delivered_at.get_or_insert(link.now());
                println!(
                    "resumed setup: server delivered {:?} at t={} ns — before the handshake finished",
                    String::from_utf8_lossy(&data),
                    link.now(),
                );
            }
        }
        if processed == 0 {
            break;
        }
    }
    while let Some(ev) = client.poll_event() {
        if let Event::HandshakeComplete { resumed, .. } = ev {
            assert!(resumed, "resumed connection reports resumption");
        }
    }
    println!(
        "resumed setup: request delivered at {} ns vs cold handshake alone {} ns — 0-RTT saves ≥ 1 RTT",
        delivered_at.expect("early data delivered"),
        cold_rtt,
    );

    // --- Replay: the same first flight, captured and replayed. -------------
    let ticket2 = acceptor.ticket(1_000);
    let mut replayer = Endpoint::builder()
        .stack(StackKind::SmtSw)
        .path(smt::core::segment::PathInfo::pair(4104, 4434).0)
        .connect(ConnectConfig::new(ca.verifying_key(), "api.dc.local").resume(ticket2, 1_060))
        .expect("endpoint");
    replayer
        .send(b"POST /transfer?amount=100", 0)
        .expect("queue request");
    let mut first_flight = Vec::new();
    replayer.poll_transmit(0, &mut first_flight);

    let mk_server = || {
        Endpoint::builder()
            .stack(StackKind::SmtSw)
            .path(smt::core::segment::PathInfo::pair(4104, 4434).1)
            .accept(AcceptConfig::new(id.clone(), ca.verifying_key()).zero_rtt(acceptor.clone()))
            .expect("endpoint")
    };
    let mut first_server = mk_server();
    for p in &first_flight {
        let _ = first_server.handle_datagram(p, 0);
    }
    let mut original_delivered = false;
    while let Some(ev) = first_server.poll_event() {
        original_delivered |= matches!(ev, Event::MessageDelivered { .. });
    }
    // A byte-identical replay against another endpoint of the same listener:
    // the shared ClientHello-random cache rejects it.
    let mut second_server = mk_server();
    for p in &first_flight {
        let _ = second_server.handle_datagram(p, 0);
    }
    let mut replay_rejected = false;
    let mut replay_delivered = false;
    while let Some(ev) = second_server.poll_event() {
        match ev {
            Event::Error(_) => replay_rejected = true,
            Event::MessageDelivered { .. } => replay_delivered = true,
            _ => {}
        }
    }
    assert!(original_delivered && replay_rejected && !replay_delivered);
    println!(
        "replay: original first flight delivered {original_delivered}, replayed delivery rejected {replay_rejected}"
    );
}
