//! # `smt_sim::net` — the discrete-event network harness
//!
//! The paper evaluates SMT against kTLS/TLS/TCPLS under load sweeps,
//! message-size mixes, loss and incast — scenarios a lossless two-endpoint
//! drive loop cannot express.  This module family is the scenario machine
//! (DESIGN.md §4):
//!
//! * [`event`] — the deterministic core: a virtual [`Clock`], a binary-heap
//!   [`EventQueue`] ordered by `(time, sequence)`, and the [`TraceHash`]
//!   digest the determinism tests compare;
//! * [`fabric`] — a multi-host big-switch fabric of queued links (bandwidth,
//!   propagation, finite tail-drop buffers) with one seeded [`FaultyLink`]
//!   fault model (loss / reordering / duplication) shared with the
//!   conformance tests;
//! * [`adversary`] — a seeded hostile-network model on top of the fault
//!   model: records flights and injects forged replays, corrupted/truncated
//!   copies, coalescing-attack splices and garbage floods, plus an in-path
//!   stall window (the chaos suite's substrate);
//! * [`workload`] — open-loop generators: Poisson arrivals over the paper's
//!   message-size mixes, N→1 incast, all-to-all mesh;
//! * [`scenario`] — the [`SimEndpoint`] hosting contract, the [`Scenario`]
//!   description and the [`run_scenario`] event loop producing a
//!   [`ScenarioReport`] (latency percentiles, goodput, retransmit counts,
//!   trace hash).
//!
//! The protocol engines are *hosted*, not simulated: `smt-transport`
//! implements [`SimEndpoint`] for its unified `Endpoint`, so every evaluated
//! stack runs its real code over these modeled links, with only time being
//! virtual.

pub mod adversary;
pub mod event;
pub mod fabric;
pub mod scenario;
pub mod workload;

pub use adversary::{Adversary, AdversaryConfig, AdversaryStats};
pub use event::{Clock, EventQueue, TraceHash};
pub use fabric::{
    Admission, EcnConfig, Fabric, FabricStats, FaultConfig, FaultStats, FaultyLink, HostId,
    LeafSpineConfig, LinkConfig, PortId, Topology,
};
pub use scenario::{
    run_scenario, run_scenario_app, AppReply, CpuCharge, FlowSpec, Scenario, ScenarioApp,
    ScenarioReport, ScheduledSend, SimEndpoint, SimEndpointStats,
};
pub use workload::{
    all_to_all_scenario, background_elephants, incast_scenario, poisson_flow,
    poisson_pair_scenario, SizeMix,
};
