//! The scenario matrix: every evaluated stack driven through the
//! discrete-event network harness (`smt_sim::net`) over the canonical
//! multi-host workloads — N→1 incast, an all-to-all RPC mesh with echo
//! replies, and an open-loop Poisson load sweep — plus a lossy incast that
//! exercises loss recovery.
//!
//! The `scenarios` binary prints the matrix and emits `BENCH_scenarios.json`
//! in the same `{"benchmarks": [...]}` shape the criterion shim writes, so
//! `bench_diff --max-regress` gates scenario regressions in CI exactly like
//! the record-layer microbenches.  Simulation results are deterministic per
//! seed, so any delta in the gate is a behavioural change, not noise.

use smt_apps::EchoServer;
use smt_crypto::cert::CertificateAuthority;
use smt_crypto::handshake::{establish, ClientConfig, ServerConfig, SessionKeys};
use smt_sim::net::{
    all_to_all_scenario, incast_scenario, poisson_pair_scenario, run_scenario, FaultConfig,
    LinkConfig, Scenario, ScenarioReport, SizeMix,
};
use smt_sim::time::MILLISECOND;
use smt_sim::CostModel;
use smt_transport::{scenario_endpoints, StackKind};

/// One scenario of the matrix: the description plus whether delivered
/// requests are echoed back as RPC replies.
#[derive(Debug, Clone)]
pub struct ScenarioCase {
    /// The scenario description (topology, workload, faults).
    pub scenario: Scenario,
    /// When true, every delivered request is echoed back on the same flow
    /// (the RPC mesh pattern).
    pub rpc_echo: bool,
}

/// One row of the matrix: a scenario run on one stack.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ScenarioRow {
    /// Scenario name.
    pub scenario: String,
    /// Stack label (paper legend).
    pub stack: String,
    /// Everything measured.
    pub report: ScenarioReport,
}

/// The scenario suite.  `smoke` restricts it to the CI subset: incast plus
/// one load point (run on two stacks by [`scenario_matrix`]).
pub fn suite(smoke: bool) -> Vec<ScenarioCase> {
    let link = LinkConfig::default();
    let mut cases = vec![
        // 8→1 incast: the workload TCP famously mishandles; all senders burst
        // into one receiver's ingress link.
        ScenarioCase {
            scenario: incast_scenario(8, 16 * 1024, 4, link, FaultConfig::none()),
            rpc_echo: false,
        },
        // One flow under open-loop Poisson load at a medium rate.
        ScenarioCase {
            scenario: load_point(200_000.0),
            rpc_echo: false,
        },
    ];
    if !smoke {
        cases.push(ScenarioCase {
            // The same incast under 1% uniform loss: recovery must not lose
            // messages, and the retransmit counters become meaningful.
            scenario: {
                let mut s = incast_scenario(8, 16 * 1024, 4, link, FaultConfig::lossy(0.01, 4242));
                s.name = "incast8-loss1pct".into();
                s
            },
            rpc_echo: false,
        });
        cases.push(ScenarioCase {
            // 4-host all-to-all RPC mesh with echo replies (via smt-apps).
            scenario: all_to_all_scenario(
                4,
                20_000.0,
                2 * MILLISECOND,
                &SizeMix::rpc_small(),
                7,
                link,
                FaultConfig::none(),
            ),
            rpc_echo: true,
        });
        // The rest of the load sweep.
        for rate in [50_000.0, 800_000.0] {
            cases.push(ScenarioCase {
                scenario: load_point(rate),
                rpc_echo: false,
            });
        }
    }
    // Every case charges the sender CPU the calibrated cost model measured
    // for software record sealing (the `calibrate` binary's numbers), so
    // software-crypto stacks pay real protocol CPU in their latency while
    // offloaded stacks — which seal no records on the host — do not.
    let cpu = CostModel::calibrated().cpu_charge();
    for case in &mut cases {
        case.scenario.cpu = Some(cpu);
    }
    cases
}

fn load_point(rate: f64) -> Scenario {
    poisson_pair_scenario(
        rate,
        2 * MILLISECOND,
        &SizeMix::rpc_medium(),
        11,
        LinkConfig::default(),
        FaultConfig::none(),
    )
}

/// Performs one handshake whose keys every scenario endpoint pair reuses
/// (each pair is an independent session; see `scenario_endpoints`).
pub fn scenario_keys() -> (SessionKeys, SessionKeys) {
    let ca = CertificateAuthority::new("scenario-ca");
    let id = ca.issue_identity("scenario.dc.local");
    establish(
        ClientConfig::new(ca.verifying_key(), "scenario.dc.local"),
        ServerConfig::new(id, ca.verifying_key()),
    )
    .expect("scenario handshake")
}

/// Runs one scenario case on one stack.
pub fn run_case(
    case: &ScenarioCase,
    stack: StackKind,
    keys: &(SessionKeys, SessionKeys),
) -> ScenarioReport {
    let mut endpoints = scenario_endpoints(&case.scenario, stack, &keys.0, &keys.1);
    let mut echo = EchoServer::new();
    let rpc = case.rpc_echo;
    run_scenario(&case.scenario, &mut endpoints, |_flow, _id, req, _now| {
        rpc.then(|| echo.handle(req))
    })
}

/// Runs the full matrix: every suite scenario on every stack (`smoke`: the
/// reduced suite on SMT-sw and kTLS-sw only).
pub fn scenario_matrix(smoke: bool) -> Vec<ScenarioRow> {
    let stacks: Vec<StackKind> = if smoke {
        vec![StackKind::SmtSw, StackKind::KtlsSw]
    } else {
        StackKind::all().to_vec()
    };
    let keys = scenario_keys();
    let mut rows = Vec::new();
    for case in suite(smoke) {
        for &stack in &stacks {
            let report = run_case(&case, stack, &keys);
            rows.push(ScenarioRow {
                scenario: case.scenario.name.clone(),
                stack: stack.label().to_string(),
                report,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_matrix_delivers_everything() {
        for row in scenario_matrix(true) {
            assert_eq!(
                row.report.messages_sent, row.report.messages_delivered,
                "{}/{} lost messages",
                row.scenario, row.stack
            );
            assert!(!row.report.truncated, "{}/{}", row.scenario, row.stack);
            assert!(row.report.latency.p99_us >= row.report.latency.p50_us);
        }
    }

    #[test]
    fn mesh_echo_produces_replies() {
        let keys = scenario_keys();
        let case = ScenarioCase {
            scenario: all_to_all_scenario(
                3,
                10_000.0,
                MILLISECOND,
                &SizeMix::rpc_small(),
                5,
                LinkConfig::default(),
                FaultConfig::none(),
            ),
            rpc_echo: true,
        };
        let report = run_case(&case, StackKind::SmtSw, &keys);
        assert_eq!(report.replies_delivered, report.messages_delivered);
        assert!(report.replies_delivered > 0);
    }
}
