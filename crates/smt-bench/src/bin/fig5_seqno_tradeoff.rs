//! Regenerates Fig. 5: composite sequence-number bit-allocation trade-off.
use smt_bench::{fig5_seqno_tradeoff, output};

fn main() {
    let rows = fig5_seqno_tradeoff();
    if output::maybe_json(&rows) {
        return;
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(idx_bits, id_bits, max_msgs, max_size)| {
            vec![
                idx_bits.to_string(),
                id_bits.to_string(),
                format!("{:.1}P", *max_msgs as f64 / 1e15),
                format!("{:.1} MB", *max_size as f64 / 1e6),
            ]
        })
        .collect();
    output::print_table(
        "Fig. 5: message-size bits vs message-ID bits",
        &[
            "size bits",
            "ID bits",
            "max messages",
            "max msg size (1.5KB rec)",
        ],
        &table,
    );
}
