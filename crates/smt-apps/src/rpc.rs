//! The RPC echo application used by the latency/throughput experiments.
//!
//! The paper uses "our custom application" (§5.1) that issues fixed-size RPCs and
//! echoes them back.  The functional implementation here runs each request
//! through a real SMT session pair, so the examples and integration tests
//! exercise encryption, segmentation and reassembly end to end.

use smt_core::reassembly::ReceivedMessage;
use smt_core::{SmtConfig, SmtSession};
use smt_crypto::handshake::SessionKeys;
use smt_wire::DEFAULT_MTU;

/// A trivial echo server: every received message is returned verbatim.
#[derive(Debug, Default)]
pub struct EchoServer {
    /// Requests served.
    pub served: u64,
    /// Bytes echoed.
    pub bytes: u64,
}

impl EchoServer {
    /// Creates an echo server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Handles one request, producing the response payload.
    pub fn handle(&mut self, request: &ReceivedMessage) -> Vec<u8> {
        self.served += 1;
        self.bytes += request.data.len() as u64;
        request.data.clone()
    }
}

/// A connected RPC pair: a client session and a server session with an echo
/// server behind it, with packets carried in memory.
pub struct EchoPair {
    /// Client-side SMT session.
    pub client: SmtSession,
    /// Server-side SMT session.
    pub server: SmtSession,
    /// The echo application.
    pub app: EchoServer,
    mtu: usize,
}

impl EchoPair {
    /// Builds a pair from handshake keys.
    pub fn new(client_keys: &SessionKeys, server_keys: &SessionKeys, config: SmtConfig) -> Self {
        let (client, server) =
            smt_core::session::session_pair(client_keys, server_keys, config, 4000, 5201)
                .expect("valid keys");
        Self {
            client,
            server,
            app: EchoServer::new(),
            mtu: config.mtu,
        }
    }

    /// Performs one echo RPC of `payload`, returning the response bytes.
    pub fn call(&mut self, payload: &[u8]) -> Vec<u8> {
        let out = self.client.send_message(payload, 0).expect("send");
        let mut request = None;
        for seg in &out.segments {
            for pkt in seg
                .packetize(self.mtu.max(DEFAULT_MTU.min(self.mtu)))
                .unwrap()
            {
                if let Some(m) = self.server.receive_packet(&pkt).expect("receive") {
                    request = Some(m);
                }
            }
        }
        let request = request.expect("request delivered");
        let response_payload = self.app.handle(&request);
        let out = self
            .server
            .send_message(&response_payload, 1)
            .expect("send response");
        let mut response = None;
        for seg in &out.segments {
            for pkt in seg.packetize(self.mtu).unwrap() {
                if let Some(m) = self.client.receive_packet(&pkt).expect("receive response") {
                    response = Some(m);
                }
            }
        }
        response.expect("response delivered").data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_crypto::cert::CertificateAuthority;
    use smt_crypto::handshake::{establish, ClientConfig, ServerConfig};

    fn keys() -> (SessionKeys, SessionKeys) {
        let ca = CertificateAuthority::new("ca");
        let id = ca.issue_identity("echo.dc.local");
        establish(
            ClientConfig::new(ca.verifying_key(), "echo.dc.local"),
            ServerConfig::new(id, ca.verifying_key()),
        )
        .unwrap()
    }

    #[test]
    fn echo_roundtrip_various_sizes() {
        let (ck, sk) = keys();
        let mut pair = EchoPair::new(&ck, &sk, SmtConfig::software());
        for size in [0usize, 1, 64, 1500, 9000, 65536] {
            let payload: Vec<u8> = (0..size).map(|i| (i % 253) as u8).collect();
            let echoed = pair.call(&payload);
            assert_eq!(echoed, payload, "size {size}");
        }
        assert_eq!(pair.app.served, 6);
    }

    #[test]
    fn echo_with_hardware_offload_config() {
        let (ck, sk) = keys();
        let mut pair = EchoPair::new(&ck, &sk, SmtConfig::hardware_offload());
        let payload = vec![7u8; 10_000];
        assert_eq!(pair.call(&payload), payload);
    }
}
