//! Regenerates Table 2: TLS handshake per-operation latency breakdown — the
//! isolated micro-measurement, then the functional version: the breakdown
//! captured from real in-band handshakes over the simulated fabric, with the
//! cold / resumed / derived setup comparison asserted in process (resumed and
//! derived must beat cold on every encrypted stack).  `--analytic-only`
//! skips the functional section.
use smt_bench::functional::table2_functional;
use smt_bench::{output, table2_handshake_breakdown};

fn main() {
    let analytic_only = std::env::args().any(|a| a == "--analytic-only");
    let rows = table2_handshake_breakdown(50);
    if output::maybe_json(&rows) {
        return;
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(id, op, us)| vec![id.clone(), op.clone(), output::f2(*us)])
        .collect();
    output::print_table(
        "Table 2: handshake per-operation latency (ECDSA-P256, measured)",
        &["ID", "Operation", "Overhead (us)"],
        &table,
    );

    if analytic_only {
        return;
    }
    // Asserts internally: resumed/derived faster than cold on every
    // encrypted stack, and the resumed flag reported on both fast paths.
    let functional = table2_functional();
    let t2: Vec<Vec<String>> = functional
        .ops
        .iter()
        .map(|(label, desc, us)| vec![label.clone(), desc.clone(), format!("{us:.1}")])
        .collect();
    output::print_table(
        "Table 2 (functional, in-band SMT-sw cold handshake)",
        &["op", "description", "us"],
        &t2,
    );
    let setup: Vec<Vec<String>> = functional
        .setup
        .iter()
        .map(|p| {
            vec![
                p.stack.clone(),
                p.mode.to_string(),
                format!("{:.1}", p.ttfb_ns as f64 / 1e3),
                format!("{:.1}", p.hs_rtt_ns as f64 / 1e3),
                format!("{:.1}", p.crypto_us),
                p.resumed.to_string(),
            ]
        })
        .collect();
    output::print_table(
        "connection setup (in-band, cold vs resumed vs derived)",
        &[
            "stack",
            "mode",
            "ttfb(us)",
            "hs-rtt(us)",
            "crypto(us)",
            "resumed",
        ],
        &setup,
    );
}
