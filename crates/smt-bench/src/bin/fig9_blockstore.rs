//! Regenerates Fig. 9: remote block storage latency vs iodepth.
use smt_bench::{fig9_blockstore, output};

fn main() {
    let rows = fig9_blockstore();
    if output::maybe_json(&rows) {
        return;
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|p| vec![p.series.clone(), p.x.clone(), output::f2(p.y)])
        .collect();
    output::print_table(
        "Fig. 9: remote block store 4 KB random-read latency (us)",
        &["stack-percentile", "iodepth", "latency (us)"],
        &table,
    );
}
