//! Complete packets and TSO segments.
//!
//! A [`Packet`] is one on-the-wire datagram: an IP header, the SMT overlay header
//! (TCP common header + option area) and a payload.  A [`TsoSegment`] is the unit
//! the host stack hands to the NIC: up to 64 KB of payload behind a single set of
//! headers, which the NIC (or the software GSO fallback) splits into MTU-sized
//! packets, replicating the overlay header and incrementing the IPID on each
//! generated packet (paper §2.2, §4.3).

use crate::homa::{HomaAck, HomaBusy, HomaGrant, HomaResend, SmtSack};
use crate::ip::{IpHeader, Ipv4Header};
use crate::overlay::{SmtOptionArea, SmtOverlayHeader};
use crate::{PacketType, WireError, WireResult, IPV4_HEADER_LEN};
use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// The payload of a packet: either opaque (possibly encrypted) data bytes or a
/// decoded Homa-style control message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PacketPayload {
    /// DATA / CONTROL payload bytes (TLS records or handshake flights).
    Data(Bytes),
    /// GRANT control packet.
    Grant(HomaGrant),
    /// RESEND control packet.
    Resend(HomaResend),
    /// ACK control packet.
    Ack(HomaAck),
    /// BUSY control packet.
    Busy(HomaBusy),
    /// SACK control packet (stream transports: selective ack + ECN echo).
    Sack(SmtSack),
}

impl PacketPayload {
    /// Number of payload bytes this variant occupies on the wire.
    pub fn wire_len(&self) -> usize {
        match self {
            PacketPayload::Data(b) => b.len(),
            PacketPayload::Grant(_) => HomaGrant::LEN,
            PacketPayload::Resend(_) => HomaResend::LEN,
            PacketPayload::Ack(_) => HomaAck::LEN,
            PacketPayload::Busy(_) => HomaBusy::LEN,
            PacketPayload::Sack(s) => s.wire_len(),
        }
    }

    /// Returns the data bytes if this is a DATA/CONTROL payload.
    pub fn as_data(&self) -> Option<&Bytes> {
        match self {
            PacketPayload::Data(b) => Some(b),
            _ => None,
        }
    }
}

/// One on-the-wire packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Network-layer header; the IPv4 identification doubles as the packet offset
    /// within a TSO segment.
    pub ip: IpHeader,
    /// Overlay TCP header + SMT option area (identical across a segment's packets).
    pub overlay: SmtOverlayHeader,
    /// Payload.
    pub payload: PacketPayload,
    /// Marks the payload as corrupted by an out-of-sequence offload encryption
    /// (paper Fig. 2 "Out-seq."). Simulation-only flag; it never appears on a real
    /// wire but models the NIC producing undecryptable ciphertext.
    pub corrupted: bool,
}

impl Packet {
    /// Total wire length of this packet (IP + overlay + payload).
    pub fn wire_len(&self) -> usize {
        self.ip.len() + self.overlay.len() + self.payload.wire_len()
    }

    /// The packet offset within its TSO segment, from the IPID (IPv4 only).
    pub fn packet_offset(&self) -> Option<u16> {
        self.ip.packet_id()
    }

    /// Encodes the full packet (headers + payload) into `out`.
    pub fn encode(&self, out: &mut [u8]) -> WireResult<usize> {
        let need = self.wire_len();
        if out.len() < need {
            return Err(WireError::NoSpace {
                needed: need,
                available: out.len(),
            });
        }
        let mut at = self.ip.encode(out)?;
        at += self.overlay.encode(&mut out[at..])?;
        match &self.payload {
            PacketPayload::Data(b) => {
                out[at..at + b.len()].copy_from_slice(b);
                at += b.len();
            }
            PacketPayload::Grant(g) => at += g.encode(&mut out[at..])?,
            PacketPayload::Resend(r) => at += r.encode(&mut out[at..])?,
            PacketPayload::Ack(a) => at += a.encode(&mut out[at..])?,
            PacketPayload::Busy(b) => at += b.encode(&mut out[at..])?,
            PacketPayload::Sack(s) => at += s.encode(&mut out[at..])?,
        }
        Ok(at)
    }

    /// Decodes a packet from `buf`. The payload interpretation follows the packet
    /// type in the overlay header.
    pub fn decode(buf: &[u8]) -> WireResult<(Self, usize)> {
        let (ip, mut at) = IpHeader::decode(buf)?;
        let (overlay, n) = SmtOverlayHeader::decode(&buf[at..])?;
        at += n;
        let rest = &buf[at..];
        let (payload, used) = match overlay.tcp.packet_type {
            PacketType::Data | PacketType::Control => (
                PacketPayload::Data(Bytes::copy_from_slice(rest)),
                rest.len(),
            ),
            PacketType::Grant => {
                let (g, n) = HomaGrant::decode(rest)?;
                (PacketPayload::Grant(g), n)
            }
            PacketType::Resend => {
                let (r, n) = HomaResend::decode(rest)?;
                (PacketPayload::Resend(r), n)
            }
            PacketType::Ack => {
                let (a, n) = HomaAck::decode(rest)?;
                (PacketPayload::Ack(a), n)
            }
            PacketType::Busy => {
                let (b, n) = HomaBusy::decode(rest)?;
                (PacketPayload::Busy(b), n)
            }
            PacketType::Sack => {
                let (s, n) = SmtSack::decode(rest)?;
                (PacketPayload::Sack(s), n)
            }
        };
        Ok((
            Self {
                ip,
                overlay,
                payload,
                corrupted: false,
            },
            at + used,
        ))
    }
}

/// TLS-offload metadata attached to a TSO segment handed to the NIC.
///
/// This mirrors the descriptor contents of autonomous offload (paper §3.2): the
/// flow-context the NIC should use and the record sequence number the first record
/// of this segment must be encrypted with.  The actual keys live in the NIC's flow
/// context (programmed out-of-band), never in the descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlsOffloadDescriptor {
    /// Identifier of the NIC flow context to use.
    pub flow_context_id: u32,
    /// Composite record sequence number of the first record in this segment.
    pub first_record_seq: u64,
    /// Whether a resync descriptor precedes this segment in the queue, adjusting
    /// the context's expected sequence number to `first_record_seq`.
    pub resync: bool,
}

/// A TSO segment: one set of headers plus up to 64 KB of payload, to be split into
/// MTU-sized packets by the NIC TSO engine (or software GSO).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TsoSegment {
    /// Source IPv4 address (the substrate currently segments IPv4 only; IPv6 uses
    /// the reduced-TSO path, see paper §7).
    pub src: [u8; 4],
    /// Destination IPv4 address.
    pub dst: [u8; 4],
    /// Transport protocol number to stamp into generated packets.
    pub protocol: u8,
    /// Overlay header replicated onto every generated packet.
    pub overlay: SmtOverlayHeader,
    /// Segment payload (one or more TLS records, or plaintext for unencrypted
    /// transports). At most [`crate::MAX_TSO_SEGMENT`] bytes.
    pub payload: Bytes,
    /// Optional TLS autonomous-offload descriptor; `None` means the payload is
    /// already encrypted (software crypto) or not encrypted at all.
    pub offload: Option<TlsOffloadDescriptor>,
}

impl TsoSegment {
    /// Creates a plain (already-encrypted or plaintext) segment.
    pub fn new(
        src: [u8; 4],
        dst: [u8; 4],
        protocol: u8,
        overlay: SmtOverlayHeader,
        payload: Bytes,
    ) -> Self {
        Self {
            src,
            dst,
            protocol,
            overlay,
            payload,
            offload: None,
        }
    }

    /// Total payload length of the segment.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// True when the segment carries no payload (pure control segments).
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }

    /// Splits the segment into MTU-sized packets, replicating the overlay header
    /// and incrementing the IPID per packet — the wire-format half of what a NIC
    /// TSO engine does.  `mtu` is the network-layer MTU (IP header + transport
    /// header + payload per packet).
    ///
    /// Encryption is *not* performed here; the NIC model in `smt-sim` runs its
    /// offload engine over the segment before calling this.
    pub fn packetize(&self, mtu: usize) -> WireResult<Vec<Packet>> {
        let per_packet = crate::max_payload_per_packet(mtu);
        if per_packet == 0 || mtu <= IPV4_HEADER_LEN + SmtOverlayHeader::LEN {
            return Err(WireError::invalid("mtu", format!("mtu {mtu} too small")));
        }
        if self.payload.is_empty() {
            // Control-only segment: one packet with no payload.
            let ip = Ipv4Header::new(
                self.src,
                self.dst,
                self.protocol,
                (IPV4_HEADER_LEN + SmtOverlayHeader::LEN) as u16,
            );
            return Ok(vec![Packet {
                ip: IpHeader::V4(ip),
                overlay: self.overlay,
                payload: PacketPayload::Data(Bytes::new()),
                corrupted: false,
            }]);
        }

        let mut packets = Vec::with_capacity(self.payload.len().div_ceil(per_packet));
        let mut offset = 0usize;
        let mut packet_index: u16 = 0;
        while offset < self.payload.len() {
            let take = per_packet.min(self.payload.len() - offset);
            let chunk = self.payload.slice(offset..offset + take);
            let mut ip = Ipv4Header::new(
                self.src,
                self.dst,
                self.protocol,
                (IPV4_HEADER_LEN + SmtOverlayHeader::LEN + take) as u16,
            );
            // The NIC increments the IPID for each packet it generates from the
            // segment; the receiver uses it as the packet offset (§4.3).
            ip.identification = packet_index;
            packets.push(Packet {
                ip: IpHeader::V4(ip),
                overlay: self.overlay,
                payload: PacketPayload::Data(chunk),
                corrupted: false,
            });
            offset += take;
            packet_index = packet_index.wrapping_add(1);
        }
        Ok(packets)
    }

    /// Convenience: the option area of the overlay header.
    pub fn options(&self) -> &SmtOptionArea {
        &self.overlay.options
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DEFAULT_MTU, IPPROTO_SMT};

    fn segment(payload_len: usize) -> TsoSegment {
        let overlay = SmtOverlayHeader::data(1234, 5678, 42, payload_len as u32);
        TsoSegment::new(
            [10, 0, 0, 1],
            [10, 0, 0, 2],
            IPPROTO_SMT,
            overlay,
            Bytes::from(vec![0xabu8; payload_len]),
        )
    }

    #[test]
    fn packetize_splits_at_mtu() {
        let seg = segment(4000);
        let pkts = seg.packetize(DEFAULT_MTU).unwrap();
        let per = crate::max_payload_per_packet(DEFAULT_MTU);
        assert_eq!(pkts.len(), 4000usize.div_ceil(per));
        // Every packet carries the same overlay header (replicated by TSO) ...
        for p in &pkts {
            assert_eq!(p.overlay, seg.overlay);
            assert!(p.payload.wire_len() <= per);
        }
        // ... and consecutive IPIDs.
        for (i, p) in pkts.iter().enumerate() {
            assert_eq!(p.packet_offset(), Some(i as u16));
        }
        // Payload survives intact when reassembled in IPID order.
        let mut whole = Vec::new();
        for p in &pkts {
            whole.extend_from_slice(p.payload.as_data().unwrap());
        }
        assert_eq!(whole, seg.payload);
    }

    #[test]
    fn small_segment_single_packet() {
        let seg = segment(64);
        let pkts = seg.packetize(DEFAULT_MTU).unwrap();
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].payload.wire_len(), 64);
    }

    #[test]
    fn empty_segment_yields_control_packet() {
        let seg = segment(0);
        let pkts = seg.packetize(DEFAULT_MTU).unwrap();
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].payload.wire_len(), 0);
    }

    #[test]
    fn tiny_mtu_rejected() {
        let seg = segment(100);
        assert!(seg.packetize(40).is_err());
    }

    #[test]
    fn packet_encode_decode_data() {
        let seg = segment(300);
        let pkts = seg.packetize(DEFAULT_MTU).unwrap();
        let mut buf = vec![0u8; 2048];
        let n = pkts[0].encode(&mut buf).unwrap();
        let (decoded, consumed) = Packet::decode(&buf[..n]).unwrap();
        assert_eq!(consumed, n);
        assert_eq!(decoded.overlay, pkts[0].overlay);
        assert_eq!(decoded.payload, pkts[0].payload);
    }

    #[test]
    fn packet_encode_decode_control() {
        use crate::homa::{HomaGrant, PacketType};
        let overlay = SmtOverlayHeader {
            tcp: crate::overlay::OverlayTcpHeader::new(1, 2, PacketType::Grant),
            options: SmtOptionArea::new(77, 0),
        };
        let pkt = Packet {
            ip: IpHeader::V4(Ipv4Header::new([1, 1, 1, 1], [2, 2, 2, 2], IPPROTO_SMT, 81)),
            overlay,
            payload: PacketPayload::Grant(HomaGrant {
                message_id: 77,
                granted_offset: 4096,
                priority: 1,
            }),
            corrupted: false,
        };
        let mut buf = vec![0u8; 256];
        let n = pkt.encode(&mut buf).unwrap();
        let (decoded, consumed) = Packet::decode(&buf[..n]).unwrap();
        assert_eq!(consumed, n);
        assert_eq!(decoded.payload, pkt.payload);
    }

    #[test]
    fn wire_len_matches_encoding() {
        let seg = segment(777);
        for p in seg.packetize(DEFAULT_MTU).unwrap() {
            let mut buf = vec![0u8; p.wire_len()];
            let n = p.encode(&mut buf).unwrap();
            assert_eq!(n, p.wire_len());
        }
    }

    #[test]
    fn jumbo_mtu_fewer_packets() {
        let seg = segment(32 * 1024);
        let small = seg.packetize(DEFAULT_MTU).unwrap().len();
        let jumbo = seg.packetize(crate::JUMBO_MTU).unwrap().len();
        assert!(jumbo < small);
    }
}
