//! # smt-sim — simulated datacenter host/NIC/link substrate
//!
//! The paper evaluates SMT on two Xeon servers connected back-to-back with
//! ConnectX-7 100 Gb/s NICs running a patched Linux kernel.  That testbed is not
//! available to this reproduction, so this crate provides the substitute
//! substrate (see DESIGN.md §1):
//!
//! * [`cost`] — a calibrated **cost model** for host-stack operations: per-packet
//!   stack traversal, per-byte copies, per-byte software AES-GCM, per-record NIC
//!   offload descriptor handling, syscalls and interrupts;
//! * [`nic`] — a packet-level **NIC model** implementing TSO (header replication +
//!   IPID increment) and **TLS autonomous offload** semantics: per-queue flow
//!   contexts with self-incrementing record sequence numbers and resync
//!   descriptors; out-of-sequence segments without a resync produce corrupted
//!   records exactly as in paper Fig. 2;
//! * [`link`] — a full-duplex link with configurable bandwidth, propagation delay
//!   and MTU;
//! * [`resource`] — serial resources (CPU cores, NIC queues, links) with
//!   earliest-available-time semantics used by the queueing simulation;
//! * [`pipeline`] — a discrete-event, closed-loop **RPC pipeline simulator** that
//!   models application threads, softirq cores, the Homa-style single pacer
//!   thread, NIC queues and the wire on both hosts; the transport crates supply
//!   per-RPC stage costs derived from the real protocol engines;
//! * [`net`] — the **discrete-event network harness**: a virtual clock and
//!   deterministic event queue, a multi-host fabric of queued links with
//!   finite tail-drop buffers and seeded loss/reorder/duplication injection,
//!   open-loop workload generators (Poisson arrivals, incast, all-to-all
//!   mesh), and a scenario runner that hosts the *real* protocol engines in
//!   simulated time and reports latency percentiles / goodput / retransmits.
//!
//! The protocol engines themselves (`smt-core`, `smt-crypto`) are *not*
//! simulated — they run for real; only time is.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cost;
pub mod link;
pub mod net;
pub mod nic;
pub mod pipeline;
pub mod resource;
pub mod time;

pub use cost::CostModel;
pub use link::Link;
pub use net::{
    run_scenario, run_scenario_app, AppReply, EcnConfig, Fabric, FabricStats, FaultConfig,
    FaultyLink, LeafSpineConfig, LinkConfig, Scenario, ScenarioApp, ScenarioReport, SimEndpoint,
    SimEndpointStats, Topology,
};
pub use nic::{NicModel, NicStats};
pub use pipeline::{
    LatencySummary, PipelineConfig, RpcCosts, RpcPipelineSim, SimReport, SoftirqSteering,
};
pub use resource::{Resource, ResourcePool};
pub use time::Nanos;
