//! Homa-style packet types and control packets.
//!
//! SMT reuses Homa's packet taxonomy (paper §2.2): DATA packets carry message
//! payload, GRANT packets implement the receiver-driven congestion control (the
//! receiver grants the sender permission to transmit more bytes of a message),
//! RESEND packets request retransmission of a byte range, ACK packets confirm
//! complete message delivery so the sender can release state, and BUSY packets
//! tell the receiver that a granted message is still queued at the sender.
//!
//! NDP maps naturally onto these types (NACK ↔ RESEND, PULL ↔ GRANT), which is
//! why the paper argues the Homa stack generalizes to other message-based
//! datacenter transports.

use crate::{WireError, WireResult};
use serde::{Deserialize, Serialize};

/// Packet type carried in the SMT/Homa overlay header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum PacketType {
    /// Message payload (possibly one MTU-sized slice of a TSO segment).
    Data = 0x10,
    /// Receiver grants the sender permission to send more bytes (receiver-driven).
    Grant = 0x11,
    /// Receiver requests retransmission of a byte range of a message.
    Resend = 0x12,
    /// Receiver acknowledges complete receipt of a message.
    Ack = 0x13,
    /// Sender signals it is still working on a granted message.
    Busy = 0x14,
    /// Handshake / session-control payload (TLS handshake flights ride on these).
    Control = 0x15,
    /// Stream selective acknowledgement: cumulative ack, received ranges above
    /// it, and the DCTCP ECN echo (CE-marked / total packet counts).
    Sack = 0x16,
}

impl PacketType {
    /// Decodes a packet type from its wire discriminant.
    pub fn from_u8(v: u8) -> WireResult<Self> {
        match v {
            0x10 => Ok(PacketType::Data),
            0x11 => Ok(PacketType::Grant),
            0x12 => Ok(PacketType::Resend),
            0x13 => Ok(PacketType::Ack),
            0x14 => Ok(PacketType::Busy),
            0x15 => Ok(PacketType::Control),
            0x16 => Ok(PacketType::Sack),
            other => Err(WireError::UnknownPacketType(other)),
        }
    }

    /// True for packet types that carry application payload.
    pub fn carries_payload(self) -> bool {
        matches!(self, PacketType::Data | PacketType::Control)
    }
}

/// GRANT control packet: the receiver allows the sender to transmit message bytes
/// up to `granted_offset`, at network priority `priority`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HomaGrant {
    /// Message being granted.
    pub message_id: u64,
    /// Byte offset (exclusive) up to which the sender may now transmit.
    pub granted_offset: u32,
    /// Network priority the sender should use for the granted bytes.
    pub priority: u8,
}

/// RESEND control packet: the receiver asks for retransmission of
/// `[offset, offset + length)` of a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HomaResend {
    /// Message whose bytes are missing.
    pub message_id: u64,
    /// First missing byte.
    pub offset: u32,
    /// Number of missing bytes.
    pub length: u32,
    /// Priority for the retransmitted data.
    pub priority: u8,
}

/// ACK control packet: the receiver has fully received (and, for SMT, fully
/// authenticated) the message, so the sender can release its state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HomaAck {
    /// The completed message.
    pub message_id: u64,
}

/// BUSY control packet: response to a RESEND when the sender has not finished
/// transmitting the requested range yet (prevents spurious timeouts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HomaBusy {
    /// The message the sender is still working on.
    pub message_id: u64,
}

/// One received byte range above the cumulative ack in a [`SmtSack`]:
/// `[start, end)` in stream-offset space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SackRange {
    /// First byte of the received block.
    pub start: u64,
    /// One past the last byte of the received block.
    pub end: u64,
}

/// SACK control packet for the stream transports: carries the cumulative ack,
/// up to [`SmtSack::MAX_RANGES`] received byte ranges above it (from the
/// receiver's reorder buffer), and the DCTCP ECN echo — how many of the data
/// packets seen since the last SACK carried a CE mark.
///
/// The decoder *validates* rather than trusts: the range count is bounded,
/// every range must be non-empty, strictly above the cumulative ack, and
/// strictly increasing.  A mutated SACK therefore either fails to decode or
/// describes a well-formed (hence bounded) receive state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SmtSack {
    /// Cumulative acknowledgement: every stream byte below this offset has
    /// been received in order.
    pub ack_offset: u64,
    /// Data packets carrying an ECN CE mark seen since the last SACK.
    pub ecn_ce: u16,
    /// Total data packets seen since the last SACK (denominator of the
    /// DCTCP mark fraction; `ecn_ce <= ecn_total` after validation).
    pub ecn_total: u16,
    /// Received blocks above `ack_offset`, ascending and non-overlapping.
    pub ranges: Vec<SackRange>,
}

const GRANT_LEN: usize = 8 + 4 + 1;
const RESEND_LEN: usize = 8 + 4 + 4 + 1;
const ACK_LEN: usize = 8;
const BUSY_LEN: usize = 8;

macro_rules! check_space {
    ($out:expr, $need:expr) => {
        if $out.len() < $need {
            return Err(WireError::NoSpace {
                needed: $need,
                available: $out.len(),
            });
        }
    };
}

macro_rules! check_len {
    ($buf:expr, $need:expr) => {
        if $buf.len() < $need {
            return Err(WireError::Truncated {
                needed: $need,
                available: $buf.len(),
            });
        }
    };
}

impl SmtSack {
    /// Maximum number of SACK ranges carried per frame (mirrors TCP's
    /// options-space limit and bounds decoder allocation).
    pub const MAX_RANGES: usize = 4;

    /// Encoded length of the fixed part (before the ranges).
    pub const FIXED_LEN: usize = 8 + 2 + 2 + 1;

    /// Encoded length of this frame in bytes.
    pub fn wire_len(&self) -> usize {
        Self::FIXED_LEN + self.ranges.len() * 16
    }

    /// Validates the frame's invariants (used by both encode and decode so a
    /// locally-built frame cannot emit what the decoder would reject).
    fn validate(&self) -> WireResult<()> {
        if self.ranges.len() > Self::MAX_RANGES {
            return Err(WireError::invalid(
                "sack_ranges",
                format!(
                    "{} ranges exceeds max {}",
                    self.ranges.len(),
                    Self::MAX_RANGES
                ),
            ));
        }
        if self.ecn_ce > self.ecn_total {
            return Err(WireError::invalid(
                "ecn_ce",
                format!("{} CE marks out of {} packets", self.ecn_ce, self.ecn_total),
            ));
        }
        let mut floor = self.ack_offset;
        for r in &self.ranges {
            if r.start < floor || r.end <= r.start {
                return Err(WireError::invalid(
                    "sack_range",
                    format!(
                        "range [{}, {}) below floor {floor} or empty",
                        r.start, r.end
                    ),
                ));
            }
            floor = r.end;
        }
        Ok(())
    }

    /// Encodes into `out`, returning the bytes written.
    pub fn encode(&self, out: &mut [u8]) -> WireResult<usize> {
        self.validate()?;
        let need = self.wire_len();
        check_space!(out, need);
        out[0..8].copy_from_slice(&self.ack_offset.to_be_bytes());
        out[8..10].copy_from_slice(&self.ecn_ce.to_be_bytes());
        out[10..12].copy_from_slice(&self.ecn_total.to_be_bytes());
        out[12] = self.ranges.len() as u8;
        let mut at = Self::FIXED_LEN;
        for r in &self.ranges {
            out[at..at + 8].copy_from_slice(&r.start.to_be_bytes());
            out[at + 8..at + 16].copy_from_slice(&r.end.to_be_bytes());
            at += 16;
        }
        Ok(at)
    }

    /// Decodes from `buf`, returning the value and bytes consumed.  Rejects
    /// over-long range counts, empty or overlapping ranges, ranges at or
    /// below the cumulative ack, and an ECN numerator above its denominator.
    pub fn decode(buf: &[u8]) -> WireResult<(Self, usize)> {
        check_len!(buf, Self::FIXED_LEN);
        let count = buf[12] as usize;
        if count > Self::MAX_RANGES {
            return Err(WireError::invalid(
                "sack_ranges",
                format!("{count} ranges exceeds max {}", Self::MAX_RANGES),
            ));
        }
        let need = Self::FIXED_LEN + count * 16;
        check_len!(buf, need);
        let mut ranges = Vec::with_capacity(count);
        let mut at = Self::FIXED_LEN;
        for _ in 0..count {
            ranges.push(SackRange {
                start: u64::from_be_bytes(buf[at..at + 8].try_into().unwrap()),
                end: u64::from_be_bytes(buf[at + 8..at + 16].try_into().unwrap()),
            });
            at += 16;
        }
        let sack = Self {
            ack_offset: u64::from_be_bytes(buf[0..8].try_into().unwrap()),
            ecn_ce: u16::from_be_bytes(buf[8..10].try_into().unwrap()),
            ecn_total: u16::from_be_bytes(buf[10..12].try_into().unwrap()),
            ranges,
        };
        sack.validate()?;
        Ok((sack, at))
    }
}

impl HomaGrant {
    /// Encoded length in bytes.
    pub const LEN: usize = GRANT_LEN;

    /// Encodes into `out`, returning the bytes written.
    pub fn encode(&self, out: &mut [u8]) -> WireResult<usize> {
        check_space!(out, GRANT_LEN);
        out[0..8].copy_from_slice(&self.message_id.to_be_bytes());
        out[8..12].copy_from_slice(&self.granted_offset.to_be_bytes());
        out[12] = self.priority;
        Ok(GRANT_LEN)
    }

    /// Decodes from `buf`, returning the value and bytes consumed.
    pub fn decode(buf: &[u8]) -> WireResult<(Self, usize)> {
        check_len!(buf, GRANT_LEN);
        Ok((
            Self {
                message_id: u64::from_be_bytes(buf[0..8].try_into().unwrap()),
                granted_offset: u32::from_be_bytes(buf[8..12].try_into().unwrap()),
                priority: buf[12],
            },
            GRANT_LEN,
        ))
    }
}

impl HomaResend {
    /// Encoded length in bytes.
    pub const LEN: usize = RESEND_LEN;

    /// Encodes into `out`, returning the bytes written.
    pub fn encode(&self, out: &mut [u8]) -> WireResult<usize> {
        check_space!(out, RESEND_LEN);
        out[0..8].copy_from_slice(&self.message_id.to_be_bytes());
        out[8..12].copy_from_slice(&self.offset.to_be_bytes());
        out[12..16].copy_from_slice(&self.length.to_be_bytes());
        out[16] = self.priority;
        Ok(RESEND_LEN)
    }

    /// Decodes from `buf`, returning the value and bytes consumed.
    pub fn decode(buf: &[u8]) -> WireResult<(Self, usize)> {
        check_len!(buf, RESEND_LEN);
        Ok((
            Self {
                message_id: u64::from_be_bytes(buf[0..8].try_into().unwrap()),
                offset: u32::from_be_bytes(buf[8..12].try_into().unwrap()),
                length: u32::from_be_bytes(buf[12..16].try_into().unwrap()),
                priority: buf[16],
            },
            RESEND_LEN,
        ))
    }
}

impl HomaAck {
    /// Encoded length in bytes.
    pub const LEN: usize = ACK_LEN;

    /// Encodes into `out`, returning the bytes written.
    pub fn encode(&self, out: &mut [u8]) -> WireResult<usize> {
        check_space!(out, ACK_LEN);
        out[0..8].copy_from_slice(&self.message_id.to_be_bytes());
        Ok(ACK_LEN)
    }

    /// Decodes from `buf`, returning the value and bytes consumed.
    pub fn decode(buf: &[u8]) -> WireResult<(Self, usize)> {
        check_len!(buf, ACK_LEN);
        Ok((
            Self {
                message_id: u64::from_be_bytes(buf[0..8].try_into().unwrap()),
            },
            ACK_LEN,
        ))
    }
}

impl HomaBusy {
    /// Encoded length in bytes.
    pub const LEN: usize = BUSY_LEN;

    /// Encodes into `out`, returning the bytes written.
    pub fn encode(&self, out: &mut [u8]) -> WireResult<usize> {
        check_space!(out, BUSY_LEN);
        out[0..8].copy_from_slice(&self.message_id.to_be_bytes());
        Ok(BUSY_LEN)
    }

    /// Decodes from `buf`, returning the value and bytes consumed.
    pub fn decode(buf: &[u8]) -> WireResult<(Self, usize)> {
        check_len!(buf, BUSY_LEN);
        Ok((
            Self {
                message_id: u64::from_be_bytes(buf[0..8].try_into().unwrap()),
            },
            BUSY_LEN,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_type_roundtrip() {
        for t in [
            PacketType::Data,
            PacketType::Grant,
            PacketType::Resend,
            PacketType::Ack,
            PacketType::Busy,
            PacketType::Control,
            PacketType::Sack,
        ] {
            assert_eq!(PacketType::from_u8(t as u8).unwrap(), t);
        }
        assert!(matches!(
            PacketType::from_u8(0xff),
            Err(WireError::UnknownPacketType(0xff))
        ));
    }

    #[test]
    fn payload_carrying_types() {
        assert!(PacketType::Data.carries_payload());
        assert!(PacketType::Control.carries_payload());
        assert!(!PacketType::Grant.carries_payload());
        assert!(!PacketType::Ack.carries_payload());
    }

    #[test]
    fn grant_roundtrip() {
        let g = HomaGrant {
            message_id: 7,
            granted_offset: 131072,
            priority: 3,
        };
        let mut buf = [0u8; 32];
        let n = g.encode(&mut buf).unwrap();
        let (d, m) = HomaGrant::decode(&buf).unwrap();
        assert_eq!((d, m), (g, n));
    }

    #[test]
    fn resend_roundtrip() {
        let r = HomaResend {
            message_id: 9,
            offset: 3000,
            length: 1500,
            priority: 0,
        };
        let mut buf = [0u8; 32];
        let n = r.encode(&mut buf).unwrap();
        let (d, m) = HomaResend::decode(&buf).unwrap();
        assert_eq!((d, m), (r, n));
    }

    #[test]
    fn ack_busy_roundtrip() {
        let a = HomaAck { message_id: 1 };
        let b = HomaBusy { message_id: 2 };
        let mut buf = [0u8; 16];
        let n = a.encode(&mut buf).unwrap();
        assert_eq!(HomaAck::decode(&buf).unwrap(), (a, n));
        let n = b.encode(&mut buf).unwrap();
        assert_eq!(HomaBusy::decode(&buf).unwrap(), (b, n));
    }

    #[test]
    fn sack_roundtrip() {
        let s = SmtSack {
            ack_offset: 100_000,
            ecn_ce: 3,
            ecn_total: 17,
            ranges: vec![
                SackRange {
                    start: 101_448,
                    end: 104_344,
                },
                SackRange {
                    start: 110_000,
                    end: 111_448,
                },
            ],
        };
        let mut buf = [0u8; 128];
        let n = s.encode(&mut buf).unwrap();
        assert_eq!(n, s.wire_len());
        let (d, m) = SmtSack::decode(&buf).unwrap();
        assert_eq!((d, m), (s, n));
    }

    #[test]
    fn sack_empty_ranges_ok() {
        let s = SmtSack {
            ack_offset: 0,
            ecn_ce: 0,
            ecn_total: 0,
            ranges: Vec::new(),
        };
        let mut buf = [0u8; 32];
        let n = s.encode(&mut buf).unwrap();
        assert_eq!(n, SmtSack::FIXED_LEN);
        assert_eq!(SmtSack::decode(&buf).unwrap().0, s);
    }

    #[test]
    fn sack_malformed_rejected() {
        let good = SmtSack {
            ack_offset: 1000,
            ecn_ce: 0,
            ecn_total: 1,
            ranges: vec![SackRange {
                start: 2000,
                end: 3000,
            }],
        };
        let mut buf = [0u8; 128];
        good.encode(&mut buf).unwrap();

        // Range count above the bound.
        let mut bad = buf;
        bad[12] = (SmtSack::MAX_RANGES + 1) as u8;
        assert!(SmtSack::decode(&bad).is_err());

        // Empty range (end == start).
        let mut bad = buf;
        bad[SmtSack::FIXED_LEN + 8..SmtSack::FIXED_LEN + 16]
            .copy_from_slice(&2000u64.to_be_bytes());
        assert!(SmtSack::decode(&bad).is_err());

        // Range at or below the cumulative ack.
        let mut bad = buf;
        bad[SmtSack::FIXED_LEN..SmtSack::FIXED_LEN + 8].copy_from_slice(&500u64.to_be_bytes());
        assert!(SmtSack::decode(&bad).is_err());

        // CE count above the packet total.
        let mut bad = buf;
        bad[8..10].copy_from_slice(&9u16.to_be_bytes());
        assert!(SmtSack::decode(&bad).is_err());

        // Overlapping / non-ascending ranges never encode in the first place.
        let bad_frame = SmtSack {
            ack_offset: 0,
            ecn_ce: 0,
            ecn_total: 0,
            ranges: vec![
                SackRange { start: 10, end: 30 },
                SackRange { start: 20, end: 40 },
            ],
        };
        assert!(bad_frame.encode(&mut buf).is_err());
    }

    #[test]
    fn truncation_rejected() {
        assert!(HomaGrant::decode(&[0u8; 4]).is_err());
        assert!(HomaResend::decode(&[0u8; 4]).is_err());
        assert!(HomaAck::decode(&[0u8; 4]).is_err());
        assert!(SmtSack::decode(&[0u8; 4]).is_err());
        // Fixed part declaring ranges the buffer does not contain.
        let mut short = [0u8; SmtSack::FIXED_LEN];
        short[12] = 2;
        assert!(SmtSack::decode(&short).is_err());
        let g = HomaGrant {
            message_id: 1,
            granted_offset: 2,
            priority: 3,
        };
        assert!(g.encode(&mut [0u8; 4]).is_err());
    }
}
