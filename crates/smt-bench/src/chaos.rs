//! The chaos (hostile-network) scenario suite: every evaluated stack driven
//! through the discrete-event harness while a seeded [`AdversaryConfig`]
//! forges traffic on the fabric — replay floods, bit-corrupted and truncated
//! copies, spliced (coalesced) payloads and synthesized garbage bursts.
//!
//! Unlike the performance matrix in [`crate::scenarios`], correctness is the
//! headline here: [`verify_row`] asserts in-process that the attack actually
//! ran (`adversary.injected() > 0`), that the scenario quiesced, and that the
//! stacks delivered every legitimate byte.  Encrypted stacks must deliver
//! *exactly* the offered bytes — a forged record reaching the application
//! would inflate the count; the plaintext baselines (TCP, Homa) have no
//! authentication, so replayed datagrams may legitimately re-deliver and only
//! the lower bound holds.  That asymmetry **is** the paper's security
//! argument, stated as an executable invariant.
//!
//! A dedicated replay-flood case runs the **in-band 0-RTT handshake** through
//! the adversary: every flow resumes with an SMT ticket while its ClientHello
//! (early data included) is replayed several copies deep at the listener.  The
//! shared anti-replay cache must reject the copies, so delivery stays exact.
//!
//! The `chaos` binary prints the matrix and emits `BENCH_adversarial.json` in
//! the bench-diff-compatible `{"benchmarks": [...]}` shape, so CI gates the
//! latency-under-attack trajectory exactly like the benign scenario matrix.
//! Attack traces are seeded and deterministic — a gate delta is a behavioural
//! change, not noise.

use smt_crypto::cert::CertificateAuthority;
use smt_crypto::handshake::{SessionKeys, SmtTicketIssuer};
use smt_sim::net::{
    incast_scenario, run_scenario, AdversaryConfig, FaultConfig, LinkConfig, Scenario,
    ScenarioReport,
};
use smt_sim::CostModel;
use smt_transport::{handshake_scenario_endpoints, scenario_endpoints, StackKind, ZeroRttAcceptor};

use crate::scenarios::scenario_keys;

/// One chaos scenario: the adversarial workload plus how endpoints are built.
#[derive(Debug, Clone)]
pub struct ChaosCase {
    /// The scenario description (topology, workload, adversary profile).
    pub scenario: Scenario,
    /// When true the case runs through [`handshake_scenario_endpoints`]:
    /// every flow is its own connection resuming with a 0-RTT SMT ticket,
    /// and the adversary's replays include the ClientHello flights
    /// (encrypted stacks only — the plaintext baselines have no handshake).
    pub zero_rtt: bool,
}

/// One row of the chaos matrix: a case run on one stack.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ChaosRow {
    /// Case name.
    pub case: String,
    /// Stack label (paper legend).
    pub stack: String,
    /// Everything measured, defensive counters included.
    pub report: ScenarioReport,
}

/// The incast workload every profile attacks: 4 senders × 3 messages of 8 KiB.
fn attacked_incast(name: &str, adversary: AdversaryConfig) -> Scenario {
    let mut s = incast_scenario(4, 8192, 3, LinkConfig::default(), FaultConfig::none());
    s.name = name.into();
    s.adversary = Some(adversary);
    s
}

/// The chaos suite.  `smoke` restricts it to the CI subset: the everything-
/// at-once profile plus the 0-RTT replay flood (run on SMT-sw and kTLS-sw by
/// [`chaos_matrix`]).  The full suite isolates each capability so a
/// regression names the attack that broke containment.
pub fn suite(smoke: bool) -> Vec<ChaosCase> {
    let mut cases = Vec::new();
    if !smoke {
        // Each capability in isolation.
        cases.push(ChaosCase {
            scenario: attacked_incast("garbage-storm", AdversaryConfig::garbage_storm(101)),
            zero_rtt: false,
        });
        cases.push(ChaosCase {
            scenario: attacked_incast("replay-flood", AdversaryConfig::replay_flood(102)),
            zero_rtt: false,
        });
        cases.push(ChaosCase {
            scenario: attacked_incast("truncation", AdversaryConfig::corruptor(103)),
            zero_rtt: false,
        });
    }
    // Everything at once: forgery, replay and garbage against live transfers.
    cases.push(ChaosCase {
        scenario: attacked_incast("corrupted-flight", AdversaryConfig::chaos(104)),
        zero_rtt: false,
    });
    // Replay flood against in-band 0-RTT resumption: the ClientHello (early
    // data included) is itself replayed at the shared listener.
    cases.push(ChaosCase {
        scenario: {
            let mut s = incast_scenario(2, 8192, 2, LinkConfig::default(), FaultConfig::none());
            s.name = "replay-0rtt".into();
            s.adversary = Some(AdversaryConfig::replay_flood(105));
            s
        },
        zero_rtt: true,
    });
    // Same calibrated CPU charge as the benign matrix, so latency-under-attack
    // rows are comparable with their benign counterparts.
    let cpu = CostModel::calibrated().cpu_charge();
    for case in &mut cases {
        case.scenario.cpu = Some(cpu);
    }
    cases
}

/// Runs one chaos case on one stack (key-injected sessions).
pub fn run_case(
    case: &ChaosCase,
    stack: StackKind,
    keys: &(SessionKeys, SessionKeys),
) -> ScenarioReport {
    let mut endpoints = if case.zero_rtt {
        let ca = CertificateAuthority::new("chaos-ca");
        let identity = ca.issue_identity("chaos.dc.local");
        let acceptor = ZeroRttAcceptor::new(SmtTicketIssuer::new(identity.clone(), 3600), 1 << 12);
        let ticket = acceptor.ticket(10);
        handshake_scenario_endpoints(
            &case.scenario,
            stack,
            &ca.verifying_key(),
            "chaos.dc.local",
            &identity,
            &acceptor,
            Some(&ticket),
        )
    } else {
        scenario_endpoints(&case.scenario, stack, &keys.0, &keys.1)
    };
    run_scenario(&case.scenario, &mut endpoints, |_, _, _, _| None)
}

/// Asserts the chaos containment invariants for one row; panics with the
/// case/stack context on violation.  Called by the matrix itself so both the
/// `chaos` binary and the tests fail loudly, not just the CI latency gate.
pub fn verify_row(row: &ChaosRow, scenario: &Scenario, stack: StackKind) {
    let r = &row.report;
    let ctx = format!("{}/{}", row.case, row.stack);
    assert!(r.adversary.injected() > 0, "{ctx}: the attack never ran");
    assert!(!r.truncated, "{ctx}: scenario did not quiesce: {r:?}");
    let offered = scenario.offered_bytes();
    let expected = scenario.sends.len() as u64;
    assert_eq!(r.messages_sent, expected, "{ctx}: send refused");
    if stack.is_encrypted() {
        // Authenticated stacks deliver exactly the legitimate traffic: a
        // forged record reaching the application would inflate these.
        assert_eq!(
            r.messages_delivered, expected,
            "{ctx}: lost or forged messages: {r:?}"
        );
        assert_eq!(
            r.bytes_delivered, offered,
            "{ctx}: only legitimate bytes delivered"
        );
    } else {
        // The plaintext baselines cannot reject replays; re-delivery is the
        // expected (and the paper's motivating) failure mode — but nothing
        // legitimate may be lost and nothing may crash.
        assert!(
            r.messages_delivered >= expected,
            "{ctx}: lost legitimate messages: {r:?}"
        );
        assert!(
            r.bytes_delivered >= offered,
            "{ctx}: lost legitimate bytes: {r:?}"
        );
    }
}

/// Runs the chaos matrix: every suite case on every stack (`smoke`: the
/// reduced suite on SMT-sw and kTLS-sw only).  0-RTT cases run on encrypted
/// stacks only.  Every row is verified before it is returned.
pub fn chaos_matrix(smoke: bool) -> Vec<ChaosRow> {
    let stacks: Vec<StackKind> = if smoke {
        vec![StackKind::SmtSw, StackKind::KtlsSw]
    } else {
        StackKind::all().to_vec()
    };
    let keys = scenario_keys();
    let mut rows = Vec::new();
    for case in suite(smoke) {
        for &stack in &stacks {
            if case.zero_rtt && !stack.is_encrypted() {
                continue;
            }
            let report = run_case(&case, stack, &keys);
            let row = ChaosRow {
                case: case.scenario.name.clone(),
                stack: stack.label().to_string(),
                report,
            };
            verify_row(&row, &case.scenario, stack);
            rows.push(row);
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_matrix_contains_every_attack() {
        let rows = chaos_matrix(true);
        // corrupted-flight on both smoke stacks + replay-0rtt on both.
        assert_eq!(rows.len(), 4);
        // Rows are verified inside chaos_matrix; on top of that, the bounded-
        // state defenses must actually engage.  They are layered: forged
        // packets with impossible geometry are rejected before any receive
        // state is allocated (and show up as malformed rejections or dropped
        // datagrams), and only forgeries that pass the shape checks occupy
        // tracking state until the eviction cap fires.  The smoke bursts are
        // small enough that rejection alone can keep the tables under the
        // cap, so what must hold is that at least one layer repelled
        // something — a run where no defense engaged means the adversary's
        // traffic was silently absorbed.
        let repelled: u64 = rows
            .iter()
            .map(|r| {
                r.report.state_evictions
                    + r.report.malformed_rejected
                    + r.report.auth_failures
                    + r.report.endpoint_datagrams_dropped
            })
            .sum();
        assert!(repelled > 0, "no bounded-state defense engaged: {rows:?}");
        // And the tracked state stayed bounded despite hundreds of injected
        // garbage datagrams aimed at fresh bogus message IDs.
        for row in &rows {
            assert!(
                row.report.peak_tracked_bytes < 1 << 20,
                "{}/{}: tracking state grew unbounded: {}",
                row.case,
                row.stack,
                row.report.peak_tracked_bytes
            );
        }
    }

    #[test]
    fn chaos_rows_are_deterministic() {
        let keys = scenario_keys();
        let case = &suite(true)[0];
        let a = run_case(case, StackKind::SmtSw, &keys);
        let b = run_case(case, StackKind::SmtSw, &keys);
        assert_eq!(a.trace_hash, b.trace_hash);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_rtt_replays_are_rejected_not_redelivered() {
        let keys = scenario_keys();
        let case = suite(true)
            .into_iter()
            .find(|c| c.zero_rtt)
            .expect("the 0-RTT replay case is part of the smoke suite");
        let report = run_case(&case, StackKind::SmtSw, &keys);
        assert!(report.adversary.replayed > 0, "flights were replayed");
        assert_eq!(
            report.messages_delivered,
            case.scenario.sends.len() as u64,
            "replayed 0-RTT flights must not re-deliver early data: {report:?}"
        );
    }
}
