//! Minimal table/JSON output helpers shared by the experiment binaries.

use serde::Serialize;

/// Prints a header line plus aligned rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: Vec<String>| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(header.iter().map(|s| s.to_string()).collect())
    );
    for row in rows {
        println!("{}", fmt_row(row.clone()));
    }
}

/// Emits rows as JSON if `--json` was passed on the command line.
pub fn maybe_json<T: Serialize>(rows: &T) -> bool {
    if std::env::args().any(|a| a == "--json") {
        println!(
            "{}",
            serde_json::to_string_pretty(rows).expect("serializable")
        );
        true
    } else {
        false
    }
}

/// Formats a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a rate in thousands.
pub fn krate(v: f64) -> String {
    format!("{:.1}", v / 1000.0)
}
