//! # smt-fuzz — seeded structure-aware fuzz harness (DESIGN.md §8)
//!
//! The build environment has no registry access, so cargo-fuzz/libFuzzer are
//! unavailable; this crate implements the same discipline as a plain library
//! plus a driver binary.  Every target is a deterministic, seeded corpus
//! runner over one attacker-facing parser or state machine:
//!
//! * it feeds **arbitrary byte soup** (the unstructured half of the corpus),
//! * and **mutated copies of known-valid encodings** — bit flips, truncations,
//!   extensions, zeroed spans and splices — which reach far deeper into the
//!   parse tree than random bytes ever would,
//! * and checks the crash-safety contract on every input: malformed data
//!   returns a **typed error, never a panic**; valid encodings **round-trip
//!   to identical bytes**; and for the authenticated paths (handshake flights,
//!   record AEAD) **no tampered input is ever accepted**.
//!
//! A panic aborts the run with a backtrace — that *is* the fuzzer's failure
//! signal; there is no in-band crash report.  Each target is pure in its
//! `(iterations, seed)` inputs, so any failure reproduces exactly with the
//! printed seed.
//!
//! Run via the `smt-fuzz` binary: `smt-fuzz --target wire_packet --iters
//! 10000 --seed 1`, or `--target all`.  The CI `fuzz-smoke` job drives every
//! target for at least 10 000 iterations on both crypto tiers.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use bytes::BytesMut;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smt_crypto::cert::CertificateAuthority;
use smt_crypto::handshake::full::ClientResumption;
use smt_crypto::handshake::{
    decode_flight, derived_reject_flight, derived_server_respond, encode_flight, is_derived_flight,
    ClientConfig, ClientMachine, ClientMode, DerivedClient, DerivedClientOutcome,
    DerivedServerOutcome, HandshakeMessage, PathSecret, PathSecretMap, ReplayCache, ServerConfig,
    ServerMachine, SmtTicketIssuer, ZeroRttContext,
};
use smt_crypto::record::{Padding, RecordProtector, SealRequest};
use smt_crypto::{CipherSuite, Secret};
use smt_wire::{
    ContentType, FramingHeader, HomaAck, HomaBusy, HomaGrant, HomaResend, IpHeader, Ipv4Header,
    MessageHeader, Packet, PacketPayload, PacketType, SmtOptionArea, SmtOverlayHeader,
    TlsRecordHeader, TsoSegment, MAX_RECORD_BODY, MESSAGE_HEADER_LEN,
};

/// Outcome of one fuzz-target run: how many inputs the parser accepted
/// (decoded successfully) versus rejected with a typed error.  The absence of
/// a panic over `iterations` inputs is the property under test; the counters
/// exist so a run that silently stopped exercising the parser (e.g. every
/// input rejected at the first length check) is visible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzReport {
    /// Target name, as listed by [`target_names`].
    pub target: &'static str,
    /// Inputs fed to the parser.
    pub iterations: u64,
    /// Inputs the parser accepted (decoded / verified successfully).
    pub accepted: u64,
    /// Inputs the parser rejected with a typed error.
    pub rejected: u64,
}

impl std::fmt::Display for FuzzReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<22} {:>8} iterations  {:>8} accepted  {:>8} rejected",
            self.target, self.iterations, self.accepted, self.rejected
        )
    }
}

/// Seeded input generator: arbitrary bytes and structure-aware mutations of
/// valid encodings.
struct Mutator {
    rng: StdRng,
}

impl Mutator {
    fn new(seed: u64) -> Self {
        Self {
            // Decorrelate from other seeded components fed the same user seed.
            rng: StdRng::seed_from_u64(seed ^ 0xf002_2e5d_dead_beef),
        }
    }

    /// A uniformly random value below `bound` (`bound` ≥ 1).
    fn below(&mut self, bound: usize) -> usize {
        self.rng.gen_range(0..bound.max(1))
    }

    /// Arbitrary bytes, length in `0..=max_len`.
    fn arbitrary(&mut self, max_len: usize) -> Vec<u8> {
        let len = self.below(max_len + 1);
        let mut out = vec![0u8; len];
        for b in &mut out {
            *b = self.rng.gen();
        }
        out
    }

    /// A mutated copy of `base`: an in-place corruption, a random-prefix
    /// truncation, or an extension with random bytes.  May return bytes equal
    /// to `base` (e.g. a zeroed span that was already zero); callers that
    /// assert rejection must compare against the original first.
    fn mutate(&mut self, base: &[u8]) -> Vec<u8> {
        match self.below(5) {
            // Truncate to a random prefix (possibly the whole input).
            0 => base[..self.below(base.len() + 1)].to_vec(),
            // Extend with random bytes.
            1 => {
                let mut out = base.to_vec();
                let extra = self.arbitrary(64);
                out.extend_from_slice(&extra);
                out
            }
            _ => self.corrupt(base),
        }
    }

    /// Corrupts `base` **without growing it**: bit flips, a zeroed span, a
    /// self-splice, or a strict-prefix truncation.  Every altered byte lies
    /// within the original length, so on authenticated paths (handshake
    /// flights, record AEAD) a result that differs from `base` must be
    /// rejected — unlike [`Mutator::mutate`], whose extensions may land in
    /// trailing bytes a parser legitimately ignores.
    fn corrupt(&mut self, base: &[u8]) -> Vec<u8> {
        let mut out = base.to_vec();
        if out.is_empty() {
            return out;
        }
        match self.below(4) {
            // Flip 1..=8 random bits.
            0 => {
                for _ in 0..self.rng.gen_range(1..=8u32) {
                    let at = self.below(out.len());
                    out[at] ^= 1 << self.below(8);
                }
            }
            // Truncate to a strict prefix.
            1 => out.truncate(self.below(out.len())),
            // Zero a random span.
            2 => {
                let start = self.below(out.len());
                let end = (start + 1 + self.below(16)).min(out.len());
                out[start..end].fill(0);
            }
            // Splice: overwrite a span with bytes from another offset.
            _ => {
                if out.len() >= 2 {
                    let src = self.below(out.len());
                    let dst = self.below(out.len());
                    let n = (1 + self.below(32)).min(out.len() - src.max(dst));
                    let chunk: Vec<u8> = out[src..src + n].to_vec();
                    out[dst..dst + n].copy_from_slice(&chunk);
                }
            }
        }
        out
    }
}

/// One fuzz target: a name and its runner.
type Target = (&'static str, fn(u64, u64) -> FuzzReport);

/// All registered fuzz targets.
const TARGETS: &[Target] = &[
    ("wire_packet", fuzz_wire_packet),
    ("wire_overlay", fuzz_wire_overlay),
    ("wire_framing", fuzz_wire_framing),
    ("wire_tls_record", fuzz_wire_tls_record),
    ("crypto_handshake_msg", fuzz_crypto_handshake_msg),
    ("crypto_client_flight", fuzz_crypto_client_flight),
    ("crypto_server_flight", fuzz_crypto_server_flight),
    ("crypto_derived_flight", fuzz_crypto_derived_flight),
    ("record_open_batch", fuzz_record_open_batch),
    ("transport_listener_demux", fuzz_transport_listener_demux),
    ("cc_control_frames", fuzz_cc_control_frames),
    ("apps_codec", fuzz_apps_codec),
];

/// Names of every registered fuzz target.
pub fn target_names() -> Vec<&'static str> {
    TARGETS.iter().map(|(name, _)| *name).collect()
}

/// Runs one target for `iters` inputs derived from `seed`.  Returns `None`
/// for an unknown target name.
pub fn run_target(name: &str, iters: u64, seed: u64) -> Option<FuzzReport> {
    TARGETS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, f)| f(iters, seed))
}

/// Runs every registered target for `iters` inputs each.
pub fn run_all(iters: u64, seed: u64) -> Vec<FuzzReport> {
    TARGETS.iter().map(|(_, f)| f(iters, seed)).collect()
}

/// Decodes `buf` as a [`Packet`] and, on success, checks the decoded value
/// re-encodes without panicking.  Returns whether the input was accepted.
fn check_packet_decode(buf: &[u8]) -> bool {
    match Packet::decode(buf) {
        Ok((packet, consumed)) => {
            assert!(consumed <= buf.len(), "consumed past end of input");
            let mut out = vec![0u8; packet.wire_len()];
            // Re-encoding a decoded packet must succeed: decode only builds
            // values whose invariants encode relies on.
            let n = packet.encode(&mut out).expect("re-encode decoded packet");
            assert_eq!(n, packet.wire_len());
            true
        }
        Err(_) => false,
    }
}

fn fuzz_wire_packet(iters: u64, seed: u64) -> FuzzReport {
    let mut m = Mutator::new(seed);
    // Valid corpus: MTU-split data packets, a control packet for each Homa
    // control type, and an empty data packet.
    let overlay = SmtOverlayHeader::data(40_001, 40_002, 7, 4000);
    let seg = TsoSegment::new(
        [10, 0, 0, 1],
        [10, 0, 0, 2],
        smt_wire::IPPROTO_SMT,
        overlay,
        bytes::Bytes::from(vec![0x5a; 4000]),
    );
    let mut corpus_packets = seg.packetize(smt_wire::DEFAULT_MTU).expect("packetize");
    let control = |ptype, payload| Packet {
        ip: IpHeader::V4(Ipv4Header::new(
            [10, 0, 0, 1],
            [10, 0, 0, 2],
            smt_wire::IPPROTO_SMT,
            81,
        )),
        overlay: SmtOverlayHeader {
            tcp: smt_wire::OverlayTcpHeader::new(40_001, 40_002, ptype),
            options: SmtOptionArea::new(7, 4000),
        },
        payload,
        corrupted: false,
    };
    corpus_packets.push(control(
        PacketType::Grant,
        PacketPayload::Grant(HomaGrant {
            message_id: 7,
            granted_offset: 4096,
            priority: 1,
        }),
    ));
    corpus_packets.push(control(
        PacketType::Resend,
        PacketPayload::Resend(HomaResend {
            message_id: 7,
            offset: 0,
            length: 1200,
            priority: 2,
        }),
    ));
    corpus_packets.push(control(
        PacketType::Ack,
        PacketPayload::Ack(HomaAck { message_id: 7 }),
    ));
    corpus_packets.push(control(
        PacketType::Busy,
        PacketPayload::Busy(HomaBusy { message_id: 7 }),
    ));
    let corpus: Vec<Vec<u8>> = corpus_packets
        .iter()
        .map(|p| {
            let mut buf = vec![0u8; p.wire_len()];
            let n = p.encode(&mut buf).expect("encode corpus packet");
            buf.truncate(n);
            buf
        })
        .collect();

    let (mut accepted, mut rejected) = (0u64, 0u64);
    for i in 0..iters {
        let ok = match i % 3 {
            // Valid input: must decode, and round-trip to identical bytes.
            0 => {
                let valid = &corpus[m.below(corpus.len())];
                let (packet, consumed) = Packet::decode(valid).expect("valid packet decodes");
                assert_eq!(consumed, valid.len());
                let mut out = vec![0u8; packet.wire_len()];
                let n = packet.encode(&mut out).expect("re-encode");
                assert_eq!(&out[..n], &valid[..], "packet round-trip identity");
                true
            }
            1 => {
                let at = m.below(corpus.len());
                check_packet_decode(&m.mutate(&corpus[at]))
            }
            _ => check_packet_decode(&m.arbitrary(1600)),
        };
        if ok {
            accepted += 1;
        } else {
            rejected += 1;
        }
    }
    FuzzReport {
        target: "wire_packet",
        iterations: iters,
        accepted,
        rejected,
    }
}

fn fuzz_wire_overlay(iters: u64, seed: u64) -> FuzzReport {
    let mut m = Mutator::new(seed);
    let (mut accepted, mut rejected) = (0u64, 0u64);
    for i in 0..iters {
        let ok = match i % 3 {
            // A random but structurally valid header must round-trip.
            0 => {
                let header = SmtOverlayHeader {
                    tcp: smt_wire::OverlayTcpHeader::new(
                        m.rng.gen(),
                        m.rng.gen(),
                        [
                            PacketType::Data,
                            PacketType::Grant,
                            PacketType::Resend,
                            PacketType::Ack,
                            PacketType::Busy,
                            PacketType::Control,
                            PacketType::Sack,
                        ][m.below(7)],
                    ),
                    options: SmtOptionArea {
                        message_id: m.rng.gen(),
                        message_length: m.rng.gen(),
                        tso_offset: m.rng.gen(),
                        resend_packet_offset: m.rng.gen(),
                        record_count: m.rng.gen(),
                        first_record_index: m.rng.gen(),
                        flags: m.rng.gen(),
                        reserved: m.rng.gen(),
                        connection_id: m.rng.gen(),
                        epoch: m.rng.gen(),
                        priority: m.rng.gen(),
                    },
                };
                let mut buf = vec![0u8; SmtOverlayHeader::LEN];
                let n = header.encode(&mut buf).expect("encode overlay");
                let (decoded, consumed) = SmtOverlayHeader::decode(&buf).expect("decode overlay");
                assert_eq!(consumed, n);
                assert_eq!(decoded, header, "overlay round-trip identity");
                true
            }
            1 => {
                let header =
                    SmtOverlayHeader::data(m.rng.gen(), m.rng.gen(), m.rng.gen(), m.rng.gen());
                let mut buf = vec![0u8; SmtOverlayHeader::LEN];
                header.encode(&mut buf).expect("encode overlay");
                SmtOverlayHeader::decode(&m.mutate(&buf)).is_ok()
            }
            _ => SmtOverlayHeader::decode(&m.arbitrary(2 * SmtOverlayHeader::LEN)).is_ok(),
        };
        if ok {
            accepted += 1;
        } else {
            rejected += 1;
        }
    }
    FuzzReport {
        target: "wire_overlay",
        iterations: iters,
        accepted,
        rejected,
    }
}

fn fuzz_wire_framing(iters: u64, seed: u64) -> FuzzReport {
    let mut m = Mutator::new(seed);
    let (mut accepted, mut rejected) = (0u64, 0u64);
    for i in 0..iters {
        let ok = match i % 6 {
            0 => {
                let header = FramingHeader {
                    app_data_len: m.rng.gen(),
                };
                let mut buf = vec![0u8; FramingHeader::LEN];
                header.encode(&mut buf).expect("encode framing");
                let (decoded, _) = FramingHeader::decode(&buf).expect("decode framing");
                assert_eq!(decoded, header, "framing round-trip identity");
                true
            }
            1 => {
                let length: u32 = m.rng.gen();
                let header = MessageHeader {
                    src_port: m.rng.gen(),
                    dst_port: m.rng.gen(),
                    message_id: m.rng.gen(),
                    message_length: length,
                    message_offset: if length == 0 {
                        0
                    } else {
                        m.rng.gen_range(0..=length)
                    },
                };
                let mut buf = vec![0u8; MESSAGE_HEADER_LEN];
                header.encode(&mut buf).expect("encode message header");
                let (decoded, _) = MessageHeader::decode(&buf).expect("decode message header");
                assert_eq!(decoded, header, "message header round-trip identity");
                // A mutated copy must never panic.
                let _ = MessageHeader::decode(&m.mutate(&buf));
                true
            }
            2 => {
                let grant = HomaGrant {
                    message_id: m.rng.gen(),
                    granted_offset: m.rng.gen(),
                    priority: m.rng.gen(),
                };
                let mut buf = vec![0u8; HomaGrant::LEN];
                grant.encode(&mut buf).expect("encode grant");
                let (decoded, _) = HomaGrant::decode(&buf).expect("decode grant");
                assert_eq!(decoded, grant, "grant round-trip identity");
                true
            }
            3 => {
                let resend = HomaResend {
                    message_id: m.rng.gen(),
                    offset: m.rng.gen(),
                    length: m.rng.gen(),
                    priority: m.rng.gen(),
                };
                let mut buf = vec![0u8; HomaResend::LEN];
                resend.encode(&mut buf).expect("encode resend");
                let (decoded, _) = HomaResend::decode(&buf).expect("decode resend");
                assert_eq!(decoded, resend, "resend round-trip identity");
                true
            }
            4 => {
                let ip = Ipv4Header::new(
                    [m.rng.gen(), m.rng.gen(), m.rng.gen(), m.rng.gen()],
                    [m.rng.gen(), m.rng.gen(), m.rng.gen(), m.rng.gen()],
                    m.rng.gen(),
                    m.rng.gen(),
                );
                let mut buf = vec![0u8; 64];
                let n = ip.encode(&mut buf).expect("encode ipv4");
                let (decoded, _) = Ipv4Header::decode(&buf[..n]).expect("decode ipv4");
                assert_eq!(decoded.src, ip.src);
                assert_eq!(decoded.dst, ip.dst);
                let _ = IpHeader::decode(&m.mutate(&buf[..n]));
                true
            }
            _ => {
                let soup = m.arbitrary(64);
                let mut any = false;
                any |= FramingHeader::decode(&soup).is_ok();
                any |= MessageHeader::decode(&soup).is_ok();
                any |= HomaGrant::decode(&soup).is_ok();
                any |= HomaResend::decode(&soup).is_ok();
                any |= HomaAck::decode(&soup).is_ok();
                any |= HomaBusy::decode(&soup).is_ok();
                any |= IpHeader::decode(&soup).is_ok();
                any
            }
        };
        if ok {
            accepted += 1;
        } else {
            rejected += 1;
        }
    }
    FuzzReport {
        target: "wire_framing",
        iterations: iters,
        accepted,
        rejected,
    }
}

fn fuzz_wire_tls_record(iters: u64, seed: u64) -> FuzzReport {
    let mut m = Mutator::new(seed);
    let (mut accepted, mut rejected) = (0u64, 0u64);
    for i in 0..iters {
        let ok = match i % 3 {
            0 => {
                let len = m.below(MAX_RECORD_BODY + 1);
                let header = match m.below(3) {
                    0 => TlsRecordHeader::application_data(len).expect("legal body length"),
                    1 => TlsRecordHeader::handshake(len).expect("legal body length"),
                    _ => TlsRecordHeader {
                        content_type: ContentType::Alert,
                        length: len as u16,
                    },
                };
                let mut buf = vec![0u8; TlsRecordHeader::LEN];
                let n = header.encode(&mut buf).expect("encode record header");
                let (decoded, consumed) = TlsRecordHeader::decode(&buf).expect("decode header");
                assert_eq!(consumed, n);
                assert_eq!(decoded, header, "record header round-trip identity");
                assert_eq!(decoded.aad()[..], buf[..], "AAD matches encoding");
                // Oversize bodies are rejected at construction.
                assert!(
                    TlsRecordHeader::application_data(MAX_RECORD_BODY + 1 + m.below(1024)).is_err()
                );
                true
            }
            1 => {
                let header = TlsRecordHeader::application_data(m.below(MAX_RECORD_BODY + 1))
                    .expect("legal body length");
                let mut buf = vec![0u8; TlsRecordHeader::LEN];
                header.encode(&mut buf).expect("encode record header");
                TlsRecordHeader::decode(&m.mutate(&buf)).is_ok()
            }
            _ => TlsRecordHeader::decode(&m.arbitrary(2 * TlsRecordHeader::LEN)).is_ok(),
        };
        if ok {
            accepted += 1;
        } else {
            rejected += 1;
        }
    }
    FuzzReport {
        target: "wire_tls_record",
        iterations: iters,
        accepted,
        rejected,
    }
}

/// Fixed test PKI for the crypto targets.  Key generation is randomized
/// internally, but nothing the fuzz assertions depend on varies with it.
struct TestPki {
    ca: CertificateAuthority,
    identity: smt_crypto::cert::Identity,
}

impl TestPki {
    fn new() -> Self {
        let ca = CertificateAuthority::new("fuzz-ca");
        let identity = ca.issue_identity("server.fuzz.local");
        Self { ca, identity }
    }

    fn client_config(&self) -> ClientConfig {
        ClientConfig::new(self.ca.verifying_key(), "server.fuzz.local")
    }

    /// A client config resuming with the fixed fuzz PSK (cheap: the resumed
    /// handshake skips certificate processing entirely).
    fn resuming_client_config(&self) -> ClientConfig {
        let mut config = self.client_config();
        config.resumption = Some(ClientResumption {
            ticket_id: 42,
            psk: fuzz_psk(),
            forward_secrecy: false,
        });
        config
    }

    fn server_config(&self) -> ServerConfig {
        let mut config = ServerConfig::new(self.identity.clone(), self.ca.verifying_key());
        config.resumption_psks.insert(42, fuzz_psk());
        config
    }
}

fn fuzz_psk() -> Secret {
    Secret::from_slice(&[0x42u8; 32]).expect("32-byte PSK")
}

/// Produces one valid (client machine, server flight) pair.  `full` selects
/// the certificate handshake; otherwise the cheap PSK resumption path.
fn client_round(pki: &TestPki, full: bool) -> (ClientMachine, Vec<u8>) {
    let config = if full {
        pki.client_config()
    } else {
        pki.resuming_client_config()
    };
    let (client, hello) = ClientMachine::start(config, ClientMode::Full).expect("client start");
    let mut server = ServerMachine::new(pki.server_config(), None);
    let outcome = server
        .on_flight(&hello, None)
        .expect("server accepts hello");
    (client, outcome.reply.expect("server flight"))
}

fn fuzz_crypto_handshake_msg(iters: u64, seed: u64) -> FuzzReport {
    let mut m = Mutator::new(seed);
    let pki = TestPki::new();
    // Corpus: every flight of one full handshake (ClientHello, the server
    // flight with certificate/CV/Finished, the client Finished) plus a
    // resumption ClientHello with PSK identity and binder.
    let (mut client, server_flight) = client_round(&pki, true);
    let hello = {
        let (_, hello) =
            ClientMachine::start(pki.client_config(), ClientMode::Full).expect("client start");
        hello
    };
    let finished = client
        .on_server_flight(&server_flight)
        .expect("client completes")
        .reply
        .expect("client Finished flight");
    let resumed_hello = {
        let (_, hello) = ClientMachine::start(pki.resuming_client_config(), ClientMode::Full)
            .expect("resuming client start");
        hello
    };
    let corpus = [hello, server_flight, finished, resumed_hello];

    let (mut accepted, mut rejected) = (0u64, 0u64);
    for i in 0..iters {
        let ok = match i % 3 {
            // Valid flight: decode and re-encode to identical bytes.  The
            // server flight is a protected record, not a raw flight, so
            // decode_flight legitimately rejects it — both outcomes count.
            0 => {
                let valid = &corpus[m.below(corpus.len())];
                match decode_flight(valid) {
                    Ok(messages) => {
                        assert_eq!(
                            &encode_flight(&messages),
                            valid,
                            "flight round-trip identity"
                        );
                        // Each message also round-trips individually.
                        for message in &messages {
                            let encoded = message.encode();
                            let decoded =
                                HandshakeMessage::decode(&encoded).expect("message decodes");
                            assert_eq!(&decoded, message, "message round-trip identity");
                        }
                        true
                    }
                    Err(_) => false,
                }
            }
            1 => {
                let at = m.below(corpus.len());
                decode_flight(&m.mutate(&corpus[at])).is_ok()
            }
            _ => {
                let soup = m.arbitrary(512);
                let mut any = decode_flight(&soup).is_ok();
                any |= HandshakeMessage::decode(&soup).is_ok();
                any
            }
        };
        if ok {
            accepted += 1;
        } else {
            rejected += 1;
        }
    }
    FuzzReport {
        target: "crypto_handshake_msg",
        iterations: iters,
        accepted,
        rejected,
    }
}

fn fuzz_crypto_client_flight(iters: u64, seed: u64) -> FuzzReport {
    let mut m = Mutator::new(seed);
    let pki = TestPki::new();
    let (mut accepted, mut rejected) = (0u64, 0u64);
    for i in 0..iters {
        // The certificate path is ~10x the PSK path; sample it 1-in-16 so a
        // 10k-iteration run still covers it hundreds of times.
        let (mut client, server_flight) = client_round(&pki, i % 16 == 0);
        let ok = match i % 4 {
            // The untampered flight must complete the handshake.
            0 => {
                let outcome = client
                    .on_server_flight(&server_flight)
                    .expect("valid server flight accepted");
                assert!(outcome.keys.is_some(), "completion produces session keys");
                true
            }
            3 => {
                let soup = m.arbitrary(2048);
                client.on_server_flight(&soup).is_ok()
            }
            _ => {
                // In-place corruption only: appended trailing bytes are
                // legitimately ignored by the record parser, but every byte
                // *within* the flight is covered by the record AEAD, the
                // transcript signature or the Finished MAC.
                let corrupted = m.corrupt(&server_flight);
                if corrupted == server_flight {
                    // The corruption happened to be the identity; nothing to assert.
                    client.on_server_flight(&corrupted).is_ok()
                } else {
                    let result = client.on_server_flight(&corrupted);
                    assert!(
                        result.is_err(),
                        "tampered server flight rejected (iteration {i}, seed {seed})"
                    );
                    false
                }
            }
        };
        if ok {
            accepted += 1;
        } else {
            rejected += 1;
        }
    }
    FuzzReport {
        target: "crypto_client_flight",
        iterations: iters,
        accepted,
        rejected,
    }
}

fn fuzz_crypto_server_flight(iters: u64, seed: u64) -> FuzzReport {
    let mut m = Mutator::new(seed);
    let pki = TestPki::new();
    let issuer = SmtTicketIssuer::new(pki.identity.clone(), 3600);
    let ticket = issuer.ticket(1_000);
    let mut replay = ReplayCache::new(4096);
    let (mut accepted, mut rejected) = (0u64, 0u64);
    for i in 0..iters {
        let ok = if i % 16 == 8 {
            // 0-RTT path: a fresh ticket ClientHello must be accepted once and
            // rejected as a replay on re-presentation; mutated copies must
            // never panic the server.
            let (_, hello) = ClientMachine::start(
                pki.client_config(),
                ClientMode::ZeroRtt {
                    ticket: ticket.clone(),
                    early_data: b"early".to_vec(),
                    forward_secrecy: false,
                    now: 1_001,
                },
            )
            .expect("0-RTT client start");
            let mut server = ServerMachine::new(pki.server_config(), None);
            let outcome = server
                .on_flight(
                    &hello,
                    Some(ZeroRttContext {
                        issuer: &issuer,
                        replay: &mut replay,
                    }),
                )
                .expect("fresh 0-RTT hello accepted");
            assert_eq!(
                outcome.early_data.as_deref(),
                Some(&b"early"[..]),
                "early data decrypted on accept"
            );
            let mut second = ServerMachine::new(pki.server_config(), None);
            assert!(
                second
                    .on_flight(
                        &hello,
                        Some(ZeroRttContext {
                            issuer: &issuer,
                            replay: &mut replay,
                        }),
                    )
                    .is_err(),
                "replayed 0-RTT hello rejected (iteration {i}, seed {seed})"
            );
            let mut third = ServerMachine::new(pki.server_config(), None);
            let _ = third.on_flight(
                &m.mutate(&hello),
                Some(ZeroRttContext {
                    issuer: &issuer,
                    replay: &mut replay,
                }),
            );
            true
        } else {
            // 1-RTT / resumption path.  An unauthenticated ClientHello is
            // *allowed* to survive mutation (a flipped random is just a
            // different hello); the property is no-panic plus typed errors.
            let full = i % 16 == 0;
            let config = if full {
                pki.client_config()
            } else {
                pki.resuming_client_config()
            };
            let (_, hello) = ClientMachine::start(config, ClientMode::Full).expect("client start");
            let mut server = ServerMachine::new(pki.server_config(), None);
            let input = match i % 4 {
                0 => hello.clone(),
                3 => m.arbitrary(1024),
                _ => m.mutate(&hello),
            };
            let result = server.on_flight(&input, None);
            if input == hello {
                assert!(result.is_ok(), "valid ClientHello accepted");
            }
            result.is_ok()
        };
        if ok {
            accepted += 1;
        } else {
            rejected += 1;
        }
    }
    FuzzReport {
        target: "crypto_server_flight",
        iterations: iters,
        accepted,
        rejected,
    }
}

fn fuzz_crypto_derived_flight(iters: u64, seed: u64) -> FuzzReport {
    let mut m = Mutator::new(seed);
    let pki = TestPki::new();
    // The path secret under test is minted from a real completed handshake,
    // exactly as the transport layer does it.
    let (mut client, server_flight) = client_round(&pki, true);
    let keys = client
        .on_server_flight(&server_flight)
        .expect("client completes")
        .keys
        .expect("completion produces session keys");
    let path = PathSecret::mint(&keys, "server.fuzz.local");
    let mut map = PathSecretMap::new(16);
    map.insert(path.clone());
    let mut replay = ReplayCache::new(4096);

    let (mut accepted, mut rejected) = (0u64, 0u64);
    for i in 0..iters {
        let ok = match i % 4 {
            // The untampered hello is accepted exactly once (the replay cache
            // rejects a re-presentation), the accept flight completes the
            // client, and both sides agree on the early data.
            0 => {
                let (dc, hello) = DerivedClient::start(&path, b"early").expect("derived start");
                assert!(is_derived_flight(&hello), "hello is recognizably derived");
                let DerivedServerOutcome::Accepted(response) =
                    derived_server_respond(&map, &mut replay, &hello)
                        .expect("fresh derived hello accepted")
                else {
                    panic!("held path secret reported unknown (iteration {i}, seed {seed})");
                };
                assert_eq!(
                    response.early_data.as_deref(),
                    Some(&b"early"[..]),
                    "early data decrypted on accept"
                );
                assert!(
                    derived_server_respond(&map, &mut replay, &hello).is_err(),
                    "replayed derived hello rejected (iteration {i}, seed {seed})"
                );
                let DerivedClientOutcome::Complete(_) = dc
                    .on_server_flight(&response.flight)
                    .expect("valid accept flight verifies")
                else {
                    panic!("valid accept flight did not complete (iteration {i}, seed {seed})");
                };
                true
            }
            // In-place corruption of the hello: every byte is covered by the
            // path-secret MAC, the early-data AEAD, or the id lookup, so a
            // changed flight must never be accepted — a typed error or an
            // unknown-path reject, never a panic, never keys.
            1 => {
                let (_, hello) = DerivedClient::start(&path, b"early").expect("derived start");
                let corrupted = m.corrupt(&hello);
                let _ = is_derived_flight(&corrupted);
                if corrupted == hello {
                    // Identity corruption: consume the hello as the valid slice does.
                    derived_server_respond(&map, &mut replay, &corrupted).is_ok()
                } else {
                    match derived_server_respond(&map, &mut replay, &corrupted) {
                        Ok(DerivedServerOutcome::Accepted(_)) => {
                            panic!("tampered derived hello accepted (iteration {i}, seed {seed})")
                        }
                        Ok(DerivedServerOutcome::Unknown { .. }) => false,
                        Err(_) => false,
                    }
                }
            }
            // In-place corruption of the accept flight: the client must never
            // complete from it (a parse/MAC error or a reject-shaped flight
            // that triggers fallback are both safe outcomes).
            2 => {
                let (dc, hello) = DerivedClient::start(&path, b"").expect("derived start");
                let DerivedServerOutcome::Accepted(response) =
                    derived_server_respond(&map, &mut replay, &hello)
                        .expect("fresh derived hello accepted")
                else {
                    panic!("held path secret reported unknown (iteration {i}, seed {seed})");
                };
                let corrupted = m.corrupt(&response.flight);
                match dc.on_server_flight(&corrupted) {
                    Ok(DerivedClientOutcome::Complete(_)) => {
                        assert_eq!(
                            corrupted, response.flight,
                            "tampered accept flight completed (iteration {i}, seed {seed})"
                        );
                        true
                    }
                    Ok(DerivedClientOutcome::Rejected { .. }) => false,
                    Err(_) => false,
                }
            }
            // Byte soup into both sides, plus the reject-flight round trip.
            _ => {
                let soup = m.arbitrary(512);
                let _ = is_derived_flight(&soup);
                let server_ok = derived_server_respond(&map, &mut replay, &soup)
                    .is_ok_and(|o| matches!(o, DerivedServerOutcome::Accepted(_)));
                assert!(
                    !server_ok,
                    "byte soup forged a hello (iteration {i}, seed {seed})"
                );
                let (dc, _) = DerivedClient::start(&path, b"").expect("derived start");
                if let Ok(DerivedClientOutcome::Complete(_)) = dc.on_server_flight(&soup) {
                    panic!("byte soup forged an accept (iteration {i}, seed {seed})");
                }
                let reject = derived_reject_flight("fuzz reason");
                match dc.on_server_flight(&reject).expect("reject flight parses") {
                    DerivedClientOutcome::Rejected { reason } => {
                        assert_eq!(reason, "fuzz reason", "reject reason round-trips")
                    }
                    DerivedClientOutcome::Complete(_) => {
                        panic!("reject flight completed (iteration {i}, seed {seed})")
                    }
                }
                false
            }
        };
        if ok {
            accepted += 1;
        } else {
            rejected += 1;
        }
    }
    FuzzReport {
        target: "crypto_derived_flight",
        iterations: iters,
        accepted,
        rejected,
    }
}

fn fuzz_transport_listener_demux(iters: u64, seed: u64) -> FuzzReport {
    use smt_transport::{ConnectConfig, Endpoint, Listener, SecureEndpoint};

    let mut m = Mutator::new(seed);
    let ca = CertificateAuthority::new("fuzz-demux-ca");
    let identity = ca.issue_identity("server.fuzz.local");
    const CAPACITY: usize = 8;
    let mut listener = Listener::new(
        Endpoint::builder().stack(smt_transport::StackKind::SmtSw),
        identity,
        ca.verifying_key(),
        CAPACITY,
    );
    // Valid corpus: the first flight of a real connect on each of four
    // connection IDs, as encoded wire bytes.
    let corpus: Vec<Vec<u8>> = (1..=4u32)
        .flat_map(|cid| {
            let mut client = Endpoint::builder()
                .stack(smt_transport::StackKind::SmtSw)
                .connection_id(cid)
                .path(smt_core::segment::PathInfo::pair(4000, 5201).0)
                .connect(ConnectConfig::new(ca.verifying_key(), "server.fuzz.local"))
                .expect("demux client");
            client.send(b"hello listener", 0).expect("queue request");
            let mut flight = Vec::new();
            client.poll_transmit(0, &mut flight);
            flight
                .iter()
                .map(|p| {
                    let mut buf = vec![0u8; p.wire_len()];
                    let n = p.encode(&mut buf).expect("encode corpus packet");
                    buf.truncate(n);
                    buf
                })
                .collect::<Vec<_>>()
        })
        .collect();

    let (mut accepted, mut rejected) = (0u64, 0u64);
    for i in 0..iters {
        let now = i;
        let ok = match i % 3 {
            // Valid first-flight packets demux into per-connection endpoints
            // (re-presenting them later is a carrier-level duplicate).
            0 => {
                let bytes = &corpus[m.below(corpus.len())];
                let (packet, _) = Packet::decode(bytes).expect("valid corpus packet decodes");
                listener.handle_datagram(&packet, now).is_ok()
            }
            // Byte-level mutations: whatever still parses as a packet goes
            // straight into the demux path.
            1 => {
                let at = m.below(corpus.len());
                match Packet::decode(&m.mutate(&corpus[at])) {
                    Ok((packet, _)) => listener.handle_datagram(&packet, now).is_ok(),
                    Err(_) => false,
                }
            }
            // Structurally valid packets with adversarial demux coordinates:
            // random/zero/known connection IDs, random packet types and
            // epochs.  Unknown-ID data is dropped and counted; unknown-ID
            // control packets spawn connections into the bounded table.
            _ => {
                let bytes = &corpus[m.below(corpus.len())];
                let (mut packet, _) = Packet::decode(bytes).expect("valid corpus packet decodes");
                packet.overlay.options.connection_id = match m.below(4) {
                    0 => 0,
                    1 => 1 + m.below(4) as u32,
                    _ => m.rng.gen(),
                };
                packet.overlay.options.epoch = m.rng.gen();
                if m.below(2) == 0 {
                    let types = [
                        PacketType::Data,
                        PacketType::Grant,
                        PacketType::Resend,
                        PacketType::Ack,
                        PacketType::Busy,
                        PacketType::Control,
                    ];
                    packet.overlay.tcp.packet_type = types[m.below(types.len())];
                }
                listener.handle_datagram(&packet, now).is_ok()
            }
        };
        // The hard invariants, checked every input: the connection table
        // never exceeds its bound, and forged traffic never panics the
        // listener or grows its event queue without bound.
        assert!(
            listener.len() <= CAPACITY,
            "listener table exceeded capacity (iteration {i}, seed {seed})"
        );
        while listener.poll_event().is_some() {}
        if ok {
            accepted += 1;
        } else {
            rejected += 1;
        }
    }
    FuzzReport {
        target: "transport_listener_demux",
        iterations: iters,
        accepted,
        rejected,
    }
}

fn fuzz_record_open_batch(iters: u64, seed: u64) -> FuzzReport {
    let mut m = Mutator::new(seed);
    let secret = Secret::from_slice(&[0x5c; 32]).expect("32-byte secret");
    let suite = CipherSuite::default();
    let sealer = RecordProtector::from_secret(suite, &secret).expect("sealer");
    let mut opener = RecordProtector::from_secret(suite, &secret).expect("opener");
    let (mut accepted, mut rejected) = (0u64, 0u64);
    for i in 0..iters {
        // Seal a batch of 1..=4 records with random plaintexts.
        let count = 1 + m.below(4);
        let first_seq = m.rng.gen::<u32>() as u64;
        let plaintexts: Vec<Vec<u8>> = (0..count).map(|_| m.arbitrary(1200)).collect();
        let parts: Vec<[&[u8]; 1]> = plaintexts.iter().map(|p| [p.as_slice()]).collect();
        let requests: Vec<SealRequest<'_>> = parts
            .iter()
            .enumerate()
            .map(|(k, part)| SealRequest {
                seq: first_seq + k as u64,
                content_type: ContentType::ApplicationData,
                parts: &part[..],
                padding: Padding::Default,
            })
            .collect();
        let mut wire_buf = BytesMut::new();
        sealer
            .seal_batch_into(&requests, &mut wire_buf)
            .expect("seal batch");
        let wire = wire_buf.into_vec();

        let ok = match i % 4 {
            // The untampered batch opens to the original plaintexts.
            0 => {
                let batch = opener
                    .open_batch(first_seq, count, &wire)
                    .expect("valid batch opens");
                assert_eq!(batch.consumed, wire.len());
                assert_eq!(batch.len(), count);
                for (k, record) in batch.iter().enumerate() {
                    assert_eq!(record.plaintext, &plaintexts[k][..], "record {k} plaintext");
                    assert_eq!(record.content_type, ContentType::ApplicationData);
                }
                true
            }
            // Tamper evidence: any in-place bit flip lands in the header
            // (authenticated as AAD) or the ciphertext/tag, so the batch must
            // never open.
            1 => {
                let mut tampered = wire.clone();
                let at = m.below(tampered.len());
                tampered[at] ^= 1 << m.below(8);
                assert!(
                    opener.open_batch(first_seq, count, &tampered).is_err(),
                    "bit-flipped batch rejected (iteration {i}, seed {seed})"
                );
                false
            }
            // Truncation and wrong sequence numbers are typed errors too.
            2 => {
                let cut = m.below(wire.len());
                assert!(
                    opener.open_batch(first_seq, count, &wire[..cut]).is_err(),
                    "truncated batch rejected (iteration {i}, seed {seed})"
                );
                assert!(
                    opener
                        .open_batch(first_seq.wrapping_add(1), count, &wire)
                        .is_err(),
                    "wrong-sequence batch rejected (iteration {i}, seed {seed})"
                );
                false
            }
            // Arbitrary bytes cannot forge the AEAD.
            _ => {
                let soup = m.arbitrary(4096);
                assert!(
                    opener.open_batch(first_seq, 1, &soup).is_err(),
                    "arbitrary bytes rejected (iteration {i}, seed {seed})"
                );
                false
            }
        };
        if ok {
            accepted += 1;
        } else {
            rejected += 1;
        }
    }
    FuzzReport {
        target: "record_open_batch",
        iterations: iters,
        accepted,
        rejected,
    }
}

fn fuzz_cc_control_frames(iters: u64, seed: u64) -> FuzzReport {
    use smt_transport::cc::{MsgView, SrptGrantScheduler};
    use smt_transport::{CcConfig, CongestionController, DctcpWindow};
    use smt_wire::{SackRange, SmtSack};

    let mut m = Mutator::new(seed);
    let cc = CcConfig::default();
    // Long-lived consumers: state accumulated across iterations reaches
    // deeper than a fresh machine per input would.
    let mut window = DctcpWindow::new(cc);
    let mut scheduler = SrptGrantScheduler::new(cc, 16);
    let mut acked = 0u64;
    let (mut accepted, mut rejected) = (0u64, 0u64);
    for i in 0..iters {
        // A structurally valid frame per iteration; odd iterations mutate
        // its encoding before decoding.
        let buf = match i % 3 {
            0 => {
                let ack_offset = acked + m.below(1 << 20) as u64;
                let mut ranges = Vec::new();
                let mut floor = ack_offset;
                for _ in 0..m.below(SmtSack::MAX_RANGES + 1) {
                    let start = floor + 1 + m.below(4096) as u64;
                    let end = start + 1 + m.below(8192) as u64;
                    ranges.push(SackRange { start, end });
                    floor = end;
                }
                let total = m.rng.gen::<u16>();
                let sack = SmtSack {
                    ack_offset,
                    ecn_ce: if total == 0 {
                        0
                    } else {
                        m.rng.gen_range(0..=total)
                    },
                    ecn_total: total,
                    ranges,
                };
                let mut out = vec![0u8; sack.wire_len()];
                let n = sack.encode(&mut out).expect("valid sack encodes");
                out.truncate(n);
                out
            }
            1 => {
                let grant = HomaGrant {
                    message_id: m.rng.gen(),
                    granted_offset: m.rng.gen(),
                    priority: m.rng.gen(),
                };
                let mut out = vec![0u8; 16];
                let n = grant.encode(&mut out).expect("grant encodes");
                out.truncate(n);
                out
            }
            _ => {
                let resend = HomaResend {
                    message_id: m.rng.gen(),
                    offset: m.rng.gen(),
                    length: m.rng.gen(),
                    priority: m.rng.gen(),
                };
                let mut out = vec![0u8; 24];
                let n = resend.encode(&mut out).expect("resend encodes");
                out.truncate(n);
                out
            }
        };
        let input = match (i / 3) % 3 {
            0 => buf,
            1 => m.mutate(&buf),
            _ => m.arbitrary(96),
        };

        // Decode as every control-frame codec; whatever survives decoding
        // drives the live congestion controllers.
        let mut any = false;
        if let Ok((sack, _)) = SmtSack::decode(&input) {
            any = true;
            // The decoder enforces the frame invariants even on mutated
            // input: whatever it accepts must be internally consistent.
            assert!(
                sack.ecn_ce <= sack.ecn_total,
                "decoded SACK with ce {} > total {} (iteration {i}, seed {seed})",
                sack.ecn_ce,
                sack.ecn_total
            );
            let mut floor = sack.ack_offset;
            for r in &sack.ranges {
                assert!(
                    r.start >= floor && r.end > r.start,
                    "decoded SACK range [{}, {}) violates floor {floor}",
                    r.start,
                    r.end
                );
                floor = r.end;
            }
            // Feed the DCTCP window exactly as the stream endpoint would: an
            // adversarial echo must never push the window outside its
            // configured bounds.
            let newly = sack.ack_offset.saturating_sub(acked);
            acked = acked.max(sack.ack_offset);
            window.on_ack(
                newly,
                u64::from(sack.ecn_ce),
                u64::from(sack.ecn_total),
                i.wrapping_mul(7) + 1,
            );
            if i % 17 == 0 {
                window.on_loss(i.wrapping_mul(7) + 1);
            }
            assert!(
                window.window() <= cc.max_cwnd_bytes,
                "SACK echo inflated cwnd past the ceiling (iteration {i}, seed {seed})"
            );
            assert!(
                window.window() >= cc.min_cwnd_bytes,
                "SACK echo collapsed cwnd below one MSS (iteration {i}, seed {seed})"
            );
        }
        if let Ok((grant, _)) = HomaGrant::decode(&input) {
            any = true;
            // A forged grant feeds the SRPT scheduler as a message view; the
            // decisions must stay inside every configured bound.
            let total = (grant.granted_offset as usize) % 512;
            let seen = m.below(total + 1);
            let views = [MsgView {
                id: grant.message_id,
                seen,
                granted: seen,
                total,
            }];
            let backlog_before = seen;
            for d in scheduler.schedule(&views) {
                assert!(
                    (d.granted_packets as usize) <= total + 4,
                    "grant decision overshoots the message (iteration {i}, seed {seed})"
                );
                assert!(
                    (d.granted_packets as usize).saturating_sub(backlog_before)
                        <= cc.max_grant_backlog_packets,
                    "grant decision exceeds the backlog cap (iteration {i}, seed {seed})"
                );
                assert!(
                    d.priority < cc.priority_levels,
                    "grant priority outside the configured levels (iteration {i}, seed {seed})"
                );
            }
        }
        if let Ok((resend, _)) = HomaResend::decode(&input) {
            any = true;
            // Nothing stateful consumes a raw RESEND here; decoding without
            // panic plus byte-exact re-encode is the contract.
            let mut out = vec![0u8; 24];
            let n = resend.encode(&mut out).expect("re-encode decoded resend");
            assert_eq!(&out[..n], &input[..n], "resend round-trip");
        }
        if any {
            accepted += 1;
        } else {
            rejected += 1;
        }
    }
    FuzzReport {
        target: "cc_control_frames",
        iterations: iters,
        accepted,
        rejected,
    }
}

/// Target 12 — the application wire codecs behind the figure pipeline: KV
/// request/response framing ([`KvRequest`]/[`KvResponse`]) and the NVMe-oF
/// command capsule ([`BlockRequest`]), fed straight into the long-lived
/// servers (`KvStore::handle_wire`, `BlockStore::handle_wire`) exactly as a
/// network peer would.  Contract: mutated framing never panics, the servers
/// answer garbage with typed error responses, accepted requests round-trip
/// canonically, and server state stays bounded by what was legitimately
/// accepted (garbage never creates keys or blocks).
fn fuzz_apps_codec(iters: u64, seed: u64) -> FuzzReport {
    use smt_apps::blockstore::RESPONSE_HEADER_BYTES;
    use smt_apps::{BlockRequest, BlockStore, BlockStoreConfig, KvRequest, KvResponse, KvStore};

    let mut m = Mutator::new(seed);
    let kv_records = 64usize;
    let block_config = BlockStoreConfig {
        blocks: 4_096,
        block_size: 512,
        ..BlockStoreConfig::default()
    };
    // Long-lived servers: state accumulated across iterations (written
    // blocks, inserted keys) reaches deeper than a fresh store per input.
    let mut kv = KvStore::new();
    kv.load(kv_records, 100);
    let mut blocks = BlockStore::new(block_config);
    let mut puts_accepted = 0usize;
    let (mut accepted, mut rejected) = (0u64, 0u64);
    for i in 0..iters {
        // A structurally valid encoding per iteration; two thirds of the
        // inputs are mutated copies or raw byte soup.
        let base = match i % 4 {
            0 => {
                let key = format!("user{:08}", m.below(kv_records * 2));
                match m.below(4) {
                    0 => KvRequest::Get { key },
                    1 => KvRequest::Put {
                        key,
                        value: m.arbitrary(256),
                    },
                    2 => KvRequest::Scan {
                        start: key,
                        count: m.below(64) as u32,
                    },
                    _ => KvRequest::Delete { key },
                }
                .encode()
            }
            1 => {
                let lba = m.below(block_config.blocks as usize * 2) as u64;
                if m.below(2) == 0 {
                    BlockRequest::Read { lba }.encode(None)
                } else {
                    BlockRequest::Write { lba }.encode(Some(&m.arbitrary(block_config.block_size)))
                }
            }
            2 => match m.below(4) {
                0 => KvResponse::Value(m.arbitrary(256)),
                1 => KvResponse::Values(vec![m.arbitrary(64), m.arbitrary(64)]),
                2 => KvResponse::Ok,
                _ => KvResponse::NotFound,
            }
            .encode(),
            _ => BlockRequest::encode_response(m.rng.gen(), m.rng.gen(), &m.arbitrary(128)),
        };
        let input = match (i / 4) % 3 {
            0 => base,
            1 => m.mutate(&base),
            _ => m.arbitrary(160),
        };

        let mut any = false;
        if let Some(req) = KvRequest::decode(&input) {
            any = true;
            // Canonical round trip: re-encoding what the parser accepted and
            // re-parsing it lands on the same request.
            let canonical = req.encode();
            assert_eq!(
                KvRequest::decode(&canonical).as_ref(),
                Some(&req),
                "KV request canonical round-trip (iteration {i}, seed {seed})"
            );
            if matches!(req, KvRequest::Put { .. }) {
                puts_accepted += 1;
            }
        }
        // The server answers *every* input — garbage included — with a
        // well-formed, decodable response and never panics.
        let kv_resp = kv.handle_wire(&input);
        assert!(
            KvResponse::decode(&kv_resp).is_some(),
            "KV server emitted an undecodable response (iteration {i}, seed {seed})"
        );
        assert!(
            kv.len() <= kv_records + puts_accepted,
            "KV store grew past the accepted puts: {} keys after {} puts \
             (iteration {i}, seed {seed})",
            kv.len(),
            puts_accepted
        );

        if let Some((breq, payload)) = BlockRequest::decode(&input) {
            any = true;
            let canonical = breq.encode(payload.as_deref());
            assert_eq!(
                BlockRequest::decode(&canonical),
                Some((breq, payload)),
                "block capsule canonical round-trip (iteration {i}, seed {seed})"
            );
        }
        let (block_resp, device_ns) = blocks.handle_wire(&input);
        assert!(
            block_resp.len() >= RESPONSE_HEADER_BYTES,
            "block response lost its completion header (iteration {i}, seed {seed})"
        );
        if block_resp[0] != 0 {
            // Rejected capsules (malformed or out-of-range LBA) must not
            // touch the media or return data.
            assert_eq!(device_ns, 0, "rejected capsule charged device time");
            assert_eq!(
                block_resp.len(),
                RESPONSE_HEADER_BYTES,
                "rejected capsule returned data (iteration {i}, seed {seed})"
            );
        }
        if KvResponse::decode(&input).is_some() {
            any = true;
        }

        if any {
            accepted += 1;
        } else {
            rejected += 1;
        }

        // Bound harness memory on long runs without weakening the growth
        // invariant above: periodically reset to the freshly loaded state.
        if i % 4_096 == 4_095 {
            kv = KvStore::new();
            kv.load(kv_records, 100);
            puts_accepted = 0;
            blocks = BlockStore::new(block_config);
        }
    }
    FuzzReport {
        target: "apps_codec",
        iterations: iters,
        accepted,
        rejected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smoke coverage: every target survives a few hundred iterations.  CI's
    /// fuzz-smoke job runs the binary for ≥10k iterations per target.
    #[test]
    fn every_target_survives_a_short_run() {
        for name in target_names() {
            let report = run_target(name, 200, 1).expect("known target");
            assert_eq!(report.iterations, 200);
            assert_eq!(
                report.accepted + report.rejected,
                200,
                "{name}: counters add up"
            );
        }
    }

    #[test]
    fn wire_targets_both_accept_and_reject() {
        for name in [
            "wire_packet",
            "wire_overlay",
            "wire_framing",
            "wire_tls_record",
        ] {
            let report = run_target(name, 300, 7).expect("known target");
            assert!(report.accepted > 0, "{name}: valid corpus accepted");
            assert!(report.rejected > 0, "{name}: malformed inputs rejected");
        }
    }

    #[test]
    fn runs_are_deterministic_in_the_seed() {
        let a = run_target("wire_packet", 250, 99).unwrap();
        let b = run_target("wire_packet", 250, 99).unwrap();
        assert_eq!(a, b);
        let c = run_target("wire_packet", 250, 100).unwrap();
        // Same iteration count, but the accept/reject split shifts with the seed.
        assert_eq!(c.iterations, 250);
    }

    #[test]
    fn unknown_target_is_refused() {
        assert!(run_target("no_such_target", 10, 1).is_none());
    }

    #[test]
    fn machine_targets_reject_tampered_flights() {
        // 64 iterations crosses both the full-handshake (i % 16 == 0) and the
        // 0-RTT (i % 16 == 8) slices at least twice each.
        let client = run_target("crypto_client_flight", 64, 3).unwrap();
        assert!(client.accepted > 0, "valid flights complete");
        assert!(client.rejected > 0, "tampered flights rejected");
        let server = run_target("crypto_server_flight", 64, 3).unwrap();
        assert!(server.accepted > 0, "valid hellos accepted");
        let record = run_target("record_open_batch", 64, 3).unwrap();
        assert!(record.accepted > 0 && record.rejected > 0);
    }

    #[test]
    fn cc_control_frames_target_accepts_and_rejects() {
        // 300 iterations crosses every (frame kind × input treatment) slice
        // of the 3×3 schedule many times.
        let report = run_target("cc_control_frames", 300, 5).unwrap();
        assert!(report.accepted > 0, "valid control frames decoded");
        assert!(report.rejected > 0, "byte soup rejected by every codec");
    }

    #[test]
    fn apps_codec_target_accepts_and_rejects() {
        // 600 iterations crosses every (encoding kind × input treatment)
        // slice of the 4×3 schedule many times.
        let report = run_target("apps_codec", 600, 5).unwrap();
        assert!(report.accepted > 0, "valid app framing decoded");
        assert!(report.rejected > 0, "byte soup rejected by every app codec");
    }

    #[test]
    fn derived_and_demux_targets_accept_and_reject() {
        // 64 iterations crosses every i % 4 slice of the derived codec
        // target (valid / corrupt hello / corrupt accept / soup) many times.
        let derived = run_target("crypto_derived_flight", 64, 3).unwrap();
        assert!(derived.accepted > 0, "valid derived flights complete");
        assert!(derived.rejected > 0, "tampered derived flights rejected");
        let demux = run_target("transport_listener_demux", 150, 3).unwrap();
        assert!(demux.accepted > 0, "valid packets demuxed");
        assert!(demux.rejected > 0, "mangled packets dropped");
    }
}
