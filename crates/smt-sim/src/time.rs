//! Simulated time.
//!
//! All simulation time is expressed in nanoseconds as a plain `u64`; helpers
//! convert to/from microseconds and seconds for reporting.

/// Simulated time / duration in nanoseconds.
pub type Nanos = u64;

/// One microsecond in [`Nanos`].
pub const MICROSECOND: Nanos = 1_000;

/// One millisecond in [`Nanos`].
pub const MILLISECOND: Nanos = 1_000_000;

/// One second in [`Nanos`].
pub const SECOND: Nanos = 1_000_000_000;

/// Converts nanoseconds to (floating point) microseconds for reporting.
pub fn to_micros(ns: Nanos) -> f64 {
    ns as f64 / MICROSECOND as f64
}

/// Converts (floating point) microseconds to nanoseconds.
pub fn from_micros(us: f64) -> Nanos {
    (us * MICROSECOND as f64).round() as Nanos
}

/// Converts nanoseconds to seconds.
pub fn to_secs(ns: Nanos) -> f64 {
    ns as f64 / SECOND as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(from_micros(1.5), 1500);
        assert!((to_micros(2500) - 2.5).abs() < 1e-9);
        assert!((to_secs(SECOND) - 1.0).abs() < 1e-12);
        assert_eq!(MILLISECOND, 1000 * MICROSECOND);
    }
}
