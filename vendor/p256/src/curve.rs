//! NIST P-256 group operations in Jacobian coordinates.

use crate::arith::{self, Modulus, U256};
use std::sync::OnceLock;

/// The field prime p = 2²⁵⁶ − 2²²⁴ + 2¹⁹² + 2⁹⁶ − 1.
pub const P: U256 = [
    0xFFFF_FFFF_FFFF_FFFF,
    0x0000_0000_FFFF_FFFF,
    0x0000_0000_0000_0000,
    0xFFFF_FFFF_0000_0001,
];

/// The group order n.
pub const N: U256 = [
    0xF3B9_CAC2_FC63_2551,
    0xBCE6_FAAD_A717_9E84,
    0xFFFF_FFFF_FFFF_FFFF,
    0xFFFF_FFFF_0000_0000,
];

/// Base-point x coordinate.
const GX: U256 = [
    0xF4A1_3945_D898_C296,
    0x7703_7D81_2DEB_33A0,
    0xF8BC_E6E5_63A4_40F2,
    0x6B17_D1F2_E12C_4247,
];

/// Base-point y coordinate.
const GY: U256 = [
    0xCBB6_4068_37BF_51F5,
    0x2BCE_3357_6B31_5ECE,
    0x8EE7_EB4A_7C0F_9E16,
    0x4FE3_42E2_FE1A_7F9B,
];

/// Curve coefficient b (a is fixed to −3).
const B: U256 = [
    0x3BCE_3C3E_27D2_604B,
    0x651D_06B0_CC53_B0F6,
    0xB3EB_BD55_7698_86BC,
    0x5AC6_35D8_AA3A_93E7,
];

/// The field modulus instance (Montgomery constants for p).
pub fn fp() -> &'static Modulus {
    static FP: OnceLock<Modulus> = OnceLock::new();
    FP.get_or_init(|| Modulus::new(P))
}

/// The scalar modulus instance (Montgomery constants for n).
pub fn fn_() -> &'static Modulus {
    static FN: OnceLock<Modulus> = OnceLock::new();
    FN.get_or_init(|| Modulus::new(N))
}

/// A point in Jacobian coordinates, field elements in Montgomery form.
/// The identity is encoded as Z = 0.
#[derive(Clone, Copy, Debug)]
pub struct Point {
    x: U256,
    y: U256,
    z: U256,
}

/// An affine point (plain-form coordinates), or the identity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Affine {
    /// x coordinate (plain form).
    pub x: U256,
    /// y coordinate (plain form).
    pub y: U256,
    /// True for the point at infinity.
    pub infinity: bool,
}

impl Point {
    /// The identity element.
    pub fn identity() -> Self {
        Self {
            x: fp().one,
            y: fp().one,
            z: [0, 0, 0, 0],
        }
    }

    /// The generator G.
    pub fn generator() -> Self {
        let f = fp();
        Self {
            x: f.to_mont(&GX),
            y: f.to_mont(&GY),
            z: f.one,
        }
    }

    /// Builds from affine coordinates (plain form). Does not validate.
    pub fn from_affine(a: &Affine) -> Self {
        if a.infinity {
            return Self::identity();
        }
        let f = fp();
        Self {
            x: f.to_mont(&a.x),
            y: f.to_mont(&a.y),
            z: f.one,
        }
    }

    /// True if this is the identity.
    pub fn is_identity(&self) -> bool {
        arith::is_zero(&self.z)
    }

    /// Point doubling (a = −3 formulas).
    pub fn double(&self) -> Self {
        if self.is_identity() {
            return *self;
        }
        let f = fp();
        let delta = f.mont_mul(&self.z, &self.z);
        let gamma = f.mont_mul(&self.y, &self.y);
        let beta = f.mont_mul(&self.x, &gamma);
        let t1 = f.sub(&self.x, &delta);
        let t2 = f.add(&self.x, &delta);
        let t3 = f.mont_mul(&t1, &t2);
        let alpha = f.add(&f.add(&t3, &t3), &t3);
        let alpha2 = f.mont_mul(&alpha, &alpha);
        let beta2 = f.add(&beta, &beta);
        let beta4 = f.add(&beta2, &beta2);
        let beta8 = f.add(&beta4, &beta4);
        let x3 = f.sub(&alpha2, &beta8);
        let yz = f.add(&self.y, &self.z);
        let yz2 = f.mont_mul(&yz, &yz);
        let z3 = f.sub(&f.sub(&yz2, &gamma), &delta);
        let g2 = f.mont_mul(&gamma, &gamma);
        let g2x2 = f.add(&g2, &g2);
        let g2x4 = f.add(&g2x2, &g2x2);
        let g2x8 = f.add(&g2x4, &g2x4);
        let y3 = f.sub(&f.mont_mul(&alpha, &f.sub(&beta4, &x3)), &g2x8);
        Self {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// General point addition.
    pub fn add(&self, other: &Self) -> Self {
        if self.is_identity() {
            return *other;
        }
        if other.is_identity() {
            return *self;
        }
        let f = fp();
        let z1z1 = f.mont_mul(&self.z, &self.z);
        let z2z2 = f.mont_mul(&other.z, &other.z);
        let u1 = f.mont_mul(&self.x, &z2z2);
        let u2 = f.mont_mul(&other.x, &z1z1);
        let s1 = f.mont_mul(&f.mont_mul(&self.y, &other.z), &z2z2);
        let s2 = f.mont_mul(&f.mont_mul(&other.y, &self.z), &z1z1);
        let h = f.sub(&u2, &u1);
        let r = f.sub(&s2, &s1);
        if arith::is_zero(&h) {
            if arith::is_zero(&r) {
                return self.double();
            }
            return Self::identity();
        }
        let hh = f.mont_mul(&h, &h);
        let hhh = f.mont_mul(&h, &hh);
        let v = f.mont_mul(&u1, &hh);
        let r2 = f.mont_mul(&r, &r);
        let x3 = f.sub(&f.sub(&r2, &hhh), &f.add(&v, &v));
        let y3 = f.sub(&f.mont_mul(&r, &f.sub(&v, &x3)), &f.mont_mul(&s1, &hhh));
        let z3 = f.mont_mul(&f.mont_mul(&self.z, &other.z), &h);
        Self {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Scalar multiplication (left-to-right double-and-add).
    pub fn mul(&self, k: &U256) -> Self {
        let mut acc = Self::identity();
        let mut started = false;
        for i in (0..256).rev() {
            if started {
                acc = acc.double();
            }
            if (k[i / 64] >> (i % 64)) & 1 == 1 {
                acc = if started { acc.add(self) } else { *self };
                started = true;
            }
        }
        if started {
            acc
        } else {
            Self::identity()
        }
    }

    /// Converts to affine coordinates (plain form).
    #[allow(clippy::wrong_self_convention)]
    pub fn to_affine(&self) -> Affine {
        if self.is_identity() {
            return Affine {
                x: [0; 4],
                y: [0; 4],
                infinity: true,
            };
        }
        let f = fp();
        let zinv = f.mont_inv(&self.z);
        let zinv2 = f.mont_mul(&zinv, &zinv);
        let zinv3 = f.mont_mul(&zinv2, &zinv);
        Affine {
            x: f.from_mont(&f.mont_mul(&self.x, &zinv2)),
            y: f.from_mont(&f.mont_mul(&self.y, &zinv3)),
            infinity: false,
        }
    }
}

impl Affine {
    /// Checks the curve equation y² = x³ − 3x + b (plain-form input).
    pub fn is_on_curve(&self) -> bool {
        if self.infinity {
            return false;
        }
        if !arith::lt(&self.x, &P) || !arith::lt(&self.y, &P) {
            return false;
        }
        let f = fp();
        let x = f.to_mont(&self.x);
        let y = f.to_mont(&self.y);
        let y2 = f.mont_mul(&y, &y);
        let x2 = f.mont_mul(&x, &x);
        let x3 = f.mont_mul(&x2, &x);
        let threex = f.add(&f.add(&x, &x), &x);
        let rhs = f.add(&f.sub(&x3, &threex), &f.to_mont(&B));
        y2 == rhs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::{from_be_bytes, to_be_bytes};

    fn unhex32(s: &str) -> [u8; 32] {
        let v: Vec<u8> = (0..64)
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect();
        v.try_into().unwrap()
    }

    #[test]
    fn generator_on_curve() {
        let g = Point::generator().to_affine();
        assert!(g.is_on_curve());
        assert_eq!(g.x, GX);
        assert_eq!(g.y, GY);
    }

    #[test]
    fn order_times_generator_is_identity() {
        let inf = Point::generator().mul(&N);
        assert!(inf.to_affine().infinity);
    }

    #[test]
    fn rfc6979_key_pair() {
        // RFC 6979 A.2.5: d·G must equal the published public key.
        let d = from_be_bytes(&unhex32(
            "c9afa9d845ba75166b5c215767b1d6934e50c3db36e89b127b8a622b120f6721",
        ));
        let q = Point::generator().mul(&d).to_affine();
        assert_eq!(
            to_be_bytes(&q.x),
            unhex32("60fed4ba255a9d31c961eb74c6356d68c049b8923b61fa6ce669622e60f29fb6")
        );
        assert_eq!(
            to_be_bytes(&q.y),
            unhex32("7903fe1008b8bc99a41ae9e95628bc64f2f1b20c2d7e9f5177a3c294d4462299")
        );
    }

    #[test]
    fn add_double_consistency() {
        let g = Point::generator();
        let two_g = g.double().to_affine();
        let also_two_g = g.add(&g).to_affine();
        assert_eq!(two_g, also_two_g);
        let three_g = g.double().add(&g).to_affine();
        let three_g2 = g.mul(&[3, 0, 0, 0]).to_affine();
        assert_eq!(three_g, three_g2);
        assert!(three_g.is_on_curve());
    }

    #[test]
    fn scalar_mul_distributes() {
        let g = Point::generator();
        let a: U256 = [0x1234_5678_9abc_def0, 0x1111, 0x2222, 0x0333];
        let b: U256 = [0x0fed_cba9_8765_4321, 0x4444, 0x5555, 0x0666];
        let (sum, _) = crate::arith::add(&a, &b);
        // (a+b)G == aG + bG (sum stays < n here by construction).
        let lhs = g.mul(&sum).to_affine();
        let rhs = g.mul(&a).add(&g.mul(&b)).to_affine();
        assert_eq!(lhs, rhs);
    }
}
