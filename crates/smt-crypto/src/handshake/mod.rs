//! SMT session establishment.
//!
//! SMT initiates a secure session with a TLS 1.3 handshake performed by the
//! application (paper §4.2); the negotiated traffic secrets are then registered
//! with the SMT socket, exactly as kTLS does for TCP.  Three exchanges are
//! implemented, matching the configurations measured in Fig. 12:
//!
//! | Variant        | Module       | Paper name | RTTs before data | Forward secrecy |
//! |----------------|--------------|------------|------------------|-----------------|
//! | Standard 1-RTT | [`full`]     | Init-1RTT  | 1                | yes             |
//! | SMT-ticket     | [`zero_rtt`] | Init       | 0                | no (0-RTT data) |
//! | SMT-ticket +FS | [`zero_rtt`] | Init-FS    | 0 (data), 1 (FS) | yes after SH    |
//! | Resumption     | [`full`]     | Rsmp       | 1                | no              |
//! | Resumption +FS | [`full`]     | Rsmp-FS    | 1                | yes             |
//!
//! Every state machine records the per-operation timing breakdown of Table 2
//! ([`timing::HandshakeTimings`]).
//!
//! The exchanges above are one-shot, in-memory state machines.  [`machine`]
//! wraps them in **resumable, duplicate-tolerant** client/server machines that
//! consume raw flight bytes from the wire — the form the in-band connection
//! setup in `smt-transport` drives over a lossy fabric — and adds in-band
//! SMT-ticket distribution so a second connection can do 0-RTT without a DNS
//! side channel.

pub mod derived;
pub mod full;
pub mod keys;
pub mod machine;
pub mod messages;
pub mod timing;
pub mod zero_rtt;

pub use derived::{
    derived_reject_flight, derived_server_respond, is_derived_flight, ratchet_secret,
    DerivedClient, DerivedClientOutcome, DerivedServerOutcome, DerivedServerResponse, PathSecret,
    PathSecretMap,
};
pub use full::{establish, ClientConfig, ClientHandshake, ServerConfig, ServerHandshake};
pub use keys::{EcdhKeyPair, KeyCache};
pub use machine::{
    ClientFlightOutcome, ClientMachine, ClientMode, ServerFlightOutcome, ServerMachine,
    ZeroRttContext,
};
pub use messages::{
    decode_flight, encode_flight, ClientHello, EncryptedExtensions, Finished, HandshakeMessage,
    NewSessionTicket, ServerHello, SmtExtensions, SmtTicket,
};
pub use timing::{HandshakeTimings, OpId};
pub use zero_rtt::{ReplayCache, SmtTicketIssuer, ZeroRttClientHandshake, ZeroRttServerHandshake};

use crate::key_schedule::Secret;
use crate::seqno::SeqnoLayout;
use crate::suite::CipherSuite;
use crate::{CryptoError, CryptoResult};

/// The output of a completed handshake: everything the SMT protocol engine needs
/// to protect application messages in both directions.
#[derive(Debug)]
pub struct SessionKeys {
    /// Negotiated cipher suite.
    pub suite: CipherSuite,
    /// True on the client side.
    pub is_client: bool,
    /// Traffic secret protecting data this endpoint sends.
    pub send_secret: Secret,
    /// Traffic secret protecting data this endpoint receives.
    pub recv_secret: Secret,
    /// Resumption master secret (mints session tickets).
    pub resumption_master: Secret,
    /// Negotiated composite-sequence-number layout (§4.4.1).
    pub seqno_layout: SeqnoLayout,
    /// Negotiated maximum message size in bytes.
    pub max_message_size: u32,
    /// Authenticated peer identity (certificate subject), when available.
    pub peer_identity: Option<String>,
    /// Whether 0-RTT early data was sent/accepted in this handshake.
    pub early_data_accepted: bool,
    /// Whether this session resumed a previous one (PSK or SMT-ticket).
    pub resumed: bool,
    /// Whether the session's application keys are forward secret.
    pub forward_secret: bool,
    /// Per-operation timing breakdown (Table 2).
    pub timings: HandshakeTimings,
    /// Session ticket issued by the server for future resumption, if any.
    pub issued_ticket: Option<NewSessionTicket>,
}

impl SessionKeys {
    /// Derives the resumption PSK for a ticket minted from this session
    /// (both sides derive the same value, RFC 8446 §4.6.1).
    pub fn resumption_psk(&self, ticket: &NewSessionTicket) -> Secret {
        crate::key_schedule::KeySchedule::resumption_psk(&self.resumption_master, &ticket.nonce)
    }

    /// Validates that the negotiated extension values are coherent and returns
    /// the seqno layout (convenience for the protocol engine).
    pub fn layout(&self) -> SeqnoLayout {
        self.seqno_layout
    }
}

/// Builds a [`SeqnoLayout`] from the negotiated `msg_id_bits` extension value.
pub fn layout_from_extension(msg_id_bits: u8) -> CryptoResult<SeqnoLayout> {
    if msg_id_bits == 0 || msg_id_bits as u32 >= 64 {
        return Err(CryptoError::handshake(format!(
            "invalid msg_id_bits extension {msg_id_bits}"
        )));
    }
    SeqnoLayout::new(msg_id_bits as u32, 64 - msg_id_bits as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_from_extension_bounds() {
        assert!(layout_from_extension(0).is_err());
        assert!(layout_from_extension(64).is_err());
        let l = layout_from_extension(48).unwrap();
        assert_eq!(l.record_index_bits, 16);
    }
}
