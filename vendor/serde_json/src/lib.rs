//! Offline stand-in for [`serde_json`](https://docs.rs/serde_json).
//!
//! Renders the simplified `serde::Value` tree produced by this workspace's
//! vendored `serde` as JSON text. Only serialization is provided — nothing in
//! the workspace parses JSON.

#![forbid(unsafe_code)]

use serde::{Serialize, Value};

/// Serialization error (infallible in this implementation, kept for API shape).
#[derive(Debug, Clone)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json error")
    }
}

impl std::error::Error for Error {}

/// Result alias matching the real crate.
pub type Result<T> = std::result::Result<T, Error>;

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    let (nl, pad, pad_close, sep) = match indent {
        Some(w) => (
            "\n",
            " ".repeat(w * (level + 1)),
            " ".repeat(w * level),
            ": ",
        ),
        None => ("", String::new(), String::new(), ":"),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(n),
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_value(item, out, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                escape_into(k, out);
                out.push_str(sep);
                write_value(val, out, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push('}');
        }
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty() {
        let v = vec![(1u8, "a\"b".to_string()), (2, "c".to_string())];
        let compact = to_string(&v).unwrap();
        assert_eq!(compact, "[[1,\"a\\\"b\"],[2,\"c\"]]");
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("[\n"));
        assert!(pretty.contains("  ["));
    }

    #[test]
    fn object_rendering() {
        let v = Value::Object(vec![
            ("x".to_string(), Value::Number("1".to_string())),
            ("y".to_string(), Value::Null),
        ]);
        struct Raw(Value);
        impl Serialize for Raw {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        assert_eq!(to_string(&Raw(v)).unwrap(), "{\"x\":1,\"y\":null}");
    }
}
