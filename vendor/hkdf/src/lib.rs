//! Offline stand-in for the [`hkdf`](https://docs.rs/hkdf) crate.
//!
//! RFC 5869 HKDF-Extract / HKDF-Expand over HMAC-SHA256, exposing the same
//! `Hkdf::<Sha256>` generic spelling the real crate uses (the hash parameter is
//! fixed to SHA-256 — the only hash this workspace negotiates). Validated
//! against the RFC 5869 test vectors below.

#![forbid(unsafe_code)]

use sha2::{Digest, Sha256};
use std::marker::PhantomData;

const HASH_LEN: usize = 32;
const BLOCK_LEN: usize = 64;

/// HMAC-SHA256 (RFC 2104).
fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; HASH_LEN] {
    let mut k = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        k[..HASH_LEN].copy_from_slice(&Sha256::digest(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK_LEN];
    let mut opad = [0x5cu8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }
    let mut inner = Sha256::new();
    inner.update(ipad);
    inner.update(data);
    let inner = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(opad);
    outer.update(inner);
    outer.finalize()
}

/// Error returned when a PRK or requested output length is invalid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidLength;

impl std::fmt::Display for InvalidLength {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid HKDF length")
    }
}

impl std::error::Error for InvalidLength {}

/// Error returned when a pseudo-random key has the wrong length.
pub type InvalidPrkLength = InvalidLength;

/// HKDF instance bound to an extracted pseudo-random key.
pub struct Hkdf<H = Sha256> {
    prk: [u8; HASH_LEN],
    _hash: PhantomData<H>,
}

impl<H> Hkdf<H> {
    /// HKDF-Extract: derives a PRK from optional salt and input key material,
    /// returning `(prk, hkdf)` as the real crate does.
    pub fn extract(salt: Option<&[u8]>, ikm: &[u8]) -> ([u8; HASH_LEN], Self) {
        let zero_salt = [0u8; HASH_LEN];
        let prk = hmac_sha256(salt.unwrap_or(&zero_salt), ikm);
        (
            prk,
            Self {
                prk,
                _hash: PhantomData,
            },
        )
    }

    /// Creates an instance directly from a pseudo-random key.
    pub fn from_prk(prk: &[u8]) -> Result<Self, InvalidPrkLength> {
        if prk.len() < HASH_LEN {
            return Err(InvalidLength);
        }
        let mut p = [0u8; HASH_LEN];
        p.copy_from_slice(&prk[..HASH_LEN]);
        Ok(Self {
            prk: p,
            _hash: PhantomData,
        })
    }

    /// Creates an instance by extracting from salt + ikm (convenience).
    pub fn new(salt: Option<&[u8]>, ikm: &[u8]) -> Self {
        Self::extract(salt, ikm).1
    }

    /// HKDF-Expand: fills `okm` with output keying material derived with `info`.
    pub fn expand(&self, info: &[u8], okm: &mut [u8]) -> Result<(), InvalidLength> {
        if okm.len() > 255 * HASH_LEN {
            return Err(InvalidLength);
        }
        let mut prev: Option<[u8; HASH_LEN]> = None;
        let mut t = Vec::with_capacity(HASH_LEN + info.len() + 1);
        let mut offset = 0usize;
        let mut counter = 1u8;
        while offset < okm.len() {
            t.clear();
            if let Some(p) = prev {
                t.extend_from_slice(&p);
            }
            t.extend_from_slice(info);
            t.push(counter);
            let block = hmac_sha256(&self.prk, &t);
            let take = (okm.len() - offset).min(HASH_LEN);
            okm[offset..offset + take].copy_from_slice(&block[..take]);
            offset += take;
            counter = counter.wrapping_add(1);
            prev = Some(block);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn rfc5869_case_1() {
        let ikm = [0x0bu8; 22];
        let salt = unhex("000102030405060708090a0b0c");
        let info = unhex("f0f1f2f3f4f5f6f7f8f9");
        let (prk, hk) = Hkdf::<Sha256>::extract(Some(&salt), &ikm);
        assert_eq!(
            hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let mut okm = [0u8; 42];
        hk.expand(&info, &mut okm).unwrap();
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    #[test]
    fn rfc5869_case_3_empty_salt_info() {
        let ikm = [0x0bu8; 22];
        let (prk, hk) = Hkdf::<Sha256>::extract(None, &ikm);
        assert_eq!(
            hex(&prk),
            "19ef24a32c717b167f33a91d6f648bdf96596776afdb6377ac434c1c293ccb04"
        );
        let mut okm = [0u8; 42];
        hk.expand(&[], &mut okm).unwrap();
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn from_prk_then_expand_matches_extract_path() {
        let ikm = b"input key material";
        let (prk, hk) = Hkdf::<Sha256>::extract(Some(b"salt"), ikm);
        let hk2 = Hkdf::<Sha256>::from_prk(&prk).unwrap();
        let mut a = [0u8; 64];
        let mut b = [0u8; 64];
        hk.expand(b"info", &mut a).unwrap();
        hk2.expand(b"info", &mut b).unwrap();
        assert_eq!(a, b);
        assert!(Hkdf::<Sha256>::from_prk(&[0u8; 16]).is_err());
    }

    #[test]
    fn expand_length_limit() {
        let hk = Hkdf::<Sha256>::new(None, b"ikm");
        let mut too_long = vec![0u8; 255 * 32 + 1];
        assert!(hk.expand(b"", &mut too_long).is_err());
        let mut max = vec![0u8; 255 * 32];
        assert!(hk.expand(b"", &mut max).is_ok());
    }
}
