//! A small "service mesh" of RPC endpoints with mutual TLS (mTLS) over SMT,
//! carried by the packet-level receiver-driven transport over a lossy link,
//! driven entirely through the unified endpoint API.
//!
//! Run with: `cargo run --example rpc_mesh`

use smt::crypto::cert::CertificateAuthority;
use smt::crypto::handshake::{establish, ClientConfig, ServerConfig};
use smt::transport::{drive_pair, Endpoint, Event, PairFabric, SecureEndpoint, StackKind};

fn main() {
    let ca = CertificateAuthority::new("mesh-ca");
    let frontend_id = ca.issue_identity("frontend.mesh.local");
    let backend_id = ca.issue_identity("backend.mesh.local");

    // Mutual authentication: the backend requires a client certificate.
    let mut client_cfg = ClientConfig::new(ca.verifying_key(), "backend.mesh.local");
    client_cfg.identity = Some(frontend_id);
    let mut server_cfg = ServerConfig::new(backend_id, ca.verifying_key());
    server_cfg.require_client_auth = true;
    let (ck, sk) = establish(client_cfg, server_cfg).expect("mTLS handshake");

    // Endpoints over a fabric dropping 5 % of all packets.
    let (mut frontend, mut backend) = Endpoint::builder()
        .stack(StackKind::SmtSw)
        .pair(&ck, &sk, 7100, 7200)
        .expect("endpoints");
    let mut link = PairFabric::lossy(0.05, 1234);

    // The backend's first event announces the authenticated peer.
    if let Some(Event::HandshakeComplete { peer_identity, .. }) = backend.poll_event() {
        println!("mTLS established: backend authenticated the frontend as {peer_identity:?}");
    }

    for i in 0..20u32 {
        let req = format!("call#{i}: GET /inventory/{}", i * 7).into_bytes();
        frontend.send(&req, link.now()).expect("send");
    }
    drive_pair(&mut frontend, &mut backend, &mut link, 1_000_000);

    let mut received = 0;
    while let Some(event) = backend.poll_event() {
        if let Event::MessageDelivered { .. } = event {
            received += 1;
        }
    }
    println!(
        "backend received {} RPCs over a lossy link ({} packets dropped, {} replays rejected)",
        received,
        link.dropped(),
        backend.stats().replays_rejected,
    );
    assert_eq!(received, 20);
}
