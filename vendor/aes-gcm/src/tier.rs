//! Backend tier selection for the fused AES-GCM engine.
//!
//! The record datapath has three implementation tiers, picked once per
//! process (cached) and then per key at install time — the hot loops never
//! re-probe CPU features:
//!
//! 1. [`CryptoTier::WideClmul`] — PCLMULQDQ carry-less-multiply GHASH with
//!    precomputed powers `H..H⁸` and 8-block aggregated reduction, fused with
//!    a 16-block-wide CTR keystream (VAES ymm pairs where available, AES-NI
//!    xmm otherwise). Requires `pclmulqdq` + `aes` + `sse4.1`.
//! 2. [`CryptoTier::AesNiShoup`] — AES-NI 8-block CTR keystream with the
//!    Shoup 8-bit-table GHASH (the PR 2 engine). Requires `aes` + `sse4.1`.
//! 3. [`CryptoTier::Portable`] — interleaved T-table CTR and Shoup-table
//!    GHASH, pure safe Rust, any architecture.
//!
//! The scalar one-block implementation is *not* a tier: it is retained as the
//! `*_reference` API purely as the independent cross-check for the tiers.
//!
//! # Forcing a tier
//!
//! Setting `SMT_CRYPTO_TIER` to `clmul`, `aesni` or `portable` caps the
//! selection at that tier (requesting hardware the CPU lacks falls back to
//! the best supported tier at or below the request). The value is read once
//! and cached for the process; CI uses `SMT_CRYPTO_TIER=portable` to run the
//! entire test suite on the fallback tier. In-process tests that need a
//! specific tier should use the explicit `with_tier` constructors instead of
//! the environment variable, which is intentionally process-global.

use std::sync::OnceLock;

/// One of the three fused-engine implementation tiers. Ordered fastest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CryptoTier {
    /// CLMUL GHASH + wide (VAES/AES-NI) CTR over 256-byte strides.
    WideClmul,
    /// AES-NI 8-block CTR + Shoup-table GHASH over 128-byte strides.
    AesNiShoup,
    /// Interleaved T-table CTR + Shoup-table GHASH, no intrinsics.
    Portable,
}

impl CryptoTier {
    /// Short stable name, used in bench output and logs.
    pub fn name(self) -> &'static str {
        match self {
            CryptoTier::WideClmul => "clmul-wide",
            CryptoTier::AesNiShoup => "aesni-shoup",
            CryptoTier::Portable => "portable",
        }
    }
}

/// Best tier the CPU supports, ignoring any override.
#[cfg(target_arch = "x86_64")]
fn detect_tier() -> CryptoTier {
    let aesni =
        std::arch::is_x86_feature_detected!("aes") && std::arch::is_x86_feature_detected!("sse4.1");
    if aesni
        && std::arch::is_x86_feature_detected!("pclmulqdq")
        && std::arch::is_x86_feature_detected!("ssse3")
    {
        CryptoTier::WideClmul
    } else if aesni {
        CryptoTier::AesNiShoup
    } else {
        CryptoTier::Portable
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detect_tier() -> CryptoTier {
    CryptoTier::Portable
}

/// Whether the VAES ymm keystream (two AES blocks per instruction) is usable;
/// only consulted inside [`CryptoTier::WideClmul`].
#[cfg(target_arch = "x86_64")]
pub(crate) fn detect_vaes() -> bool {
    std::arch::is_x86_feature_detected!("vaes") && std::arch::is_x86_feature_detected!("avx2")
}

#[cfg(not(target_arch = "x86_64"))]
pub(crate) fn detect_vaes() -> bool {
    false
}

/// The tier every new key installs with: hardware detection capped by the
/// `SMT_CRYPTO_TIER` override. Computed once per process.
pub fn active_tier() -> CryptoTier {
    static TIER: OnceLock<CryptoTier> = OnceLock::new();
    *TIER.get_or_init(|| {
        let detected = detect_tier();
        let cap = match std::env::var("SMT_CRYPTO_TIER").ok().as_deref() {
            Some("clmul") => CryptoTier::WideClmul,
            Some("aesni") => CryptoTier::AesNiShoup,
            Some("portable") => CryptoTier::Portable,
            // Unknown values (and "auto") keep pure detection.
            _ => CryptoTier::WideClmul,
        };
        // A request for hardware the CPU lacks degrades to what is supported;
        // a request for a lower tier always wins (that is the CI use case).
        detected.max(cap)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_ordering_puts_fastest_first() {
        assert!(CryptoTier::WideClmul < CryptoTier::AesNiShoup);
        assert!(CryptoTier::AesNiShoup < CryptoTier::Portable);
    }

    #[test]
    fn active_tier_is_stable_across_calls() {
        assert_eq!(active_tier(), active_tier());
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            CryptoTier::WideClmul.name(),
            CryptoTier::AesNiShoup.name(),
            CryptoTier::Portable.name(),
        ];
        assert_eq!(
            names.len(),
            names
                .iter()
                .collect::<std::collections::BTreeSet<_>>()
                .len()
        );
    }
}
