//! A Redis-like key-value store served over SMT, driven by a YCSB workload.
//!
//! Run with: `cargo run --example kv_store`

use smt::apps::{KvRequest, KvResponse, KvStore, YcsbConfig, YcsbGenerator, YcsbWorkload};
use smt::core::{session::session_pair, SmtConfig};
use smt::crypto::cert::CertificateAuthority;
use smt::crypto::handshake::{establish, ClientConfig, ServerConfig};

fn main() {
    let ca = CertificateAuthority::new("dc-internal-ca");
    let id = ca.issue_identity("kv.dc.local");
    let (ck, sk) = establish(
        ClientConfig::new(ca.verifying_key(), "kv.dc.local"),
        ServerConfig::new(id, ca.verifying_key()),
    )
    .expect("handshake");
    let (mut client, mut server) =
        session_pair(&ck, &sk, SmtConfig::software(), 7000, 6379).expect("session");

    // The store is single threaded, exactly like Redis (§5.3).
    let mut store = KvStore::new();
    store.load(10_000, 1024);

    let mut gen = YcsbGenerator::new(
        YcsbWorkload::B,
        YcsbConfig {
            record_count: 10_000,
            value_size: 1024,
            ..YcsbConfig::default()
        },
    );

    let mut reads = 0u64;
    let mut writes = 0u64;
    for _ in 0..200 {
        let op = gen.next_op();
        // Client -> server over SMT.
        let out = client.send_message(&op.request.encode(), 0).expect("send");
        let mut request = None;
        for seg in &out.segments {
            for pkt in seg.packetize(1500).unwrap() {
                if let Some(m) = server.receive_packet(&pkt).unwrap() {
                    request = Some(m);
                }
            }
        }
        let request = request.expect("request");
        let response = store.handle_wire(&request.data);

        // Server -> client over SMT.
        let out = server.send_message(&response, 1).expect("respond");
        let mut reply = None;
        for seg in &out.segments {
            for pkt in seg.packetize(1500).unwrap() {
                if let Some(m) = client.receive_packet(&pkt).unwrap() {
                    reply = Some(m);
                }
            }
        }
        match KvResponse::decode(&reply.expect("reply").data).expect("decode") {
            KvResponse::Value(_) | KvResponse::Values(_) | KvResponse::NotFound => reads += 1,
            KvResponse::Ok => writes += 1,
        }
        if matches!(op.request, KvRequest::Put { .. }) {
            // writes counted via Ok above
        }
    }
    println!(
        "YCSB-B over SMT: {} ops ({} reads, {} writes), store now holds {} keys",
        reads + writes,
        reads,
        writes,
        store.len()
    );
}
