//! Cross-crate integration tests: handshake -> session -> transport -> apps.

use smt::core::segment::PathInfo;
use smt::core::{session::session_pair, CryptoMode, SmtConfig};
use smt::crypto::cert::CertificateAuthority;
use smt::crypto::handshake::{establish, ClientConfig, ServerConfig, SessionKeys};
use smt::transport::homa::{drive, HomaConfig, HomaEndpoint, LossyChannel};
use smt::transport::StackKind;

fn handshake() -> (SessionKeys, SessionKeys, CertificateAuthority) {
    let ca = CertificateAuthority::new("it-ca");
    let id = ca.issue_identity("server.it.local");
    let (ck, sk) = establish(
        ClientConfig::new(ca.verifying_key(), "server.it.local"),
        ServerConfig::new(id, ca.verifying_key()),
    )
    .unwrap();
    (ck, sk, ca)
}

#[test]
fn full_stack_roundtrip_all_crypto_modes() {
    let (ck, sk, _) = handshake();
    for config in [SmtConfig::software(), SmtConfig::hardware_offload()] {
        let (mut client, mut server) = session_pair(&ck, &sk, config, 1000, 2000).unwrap();
        for size in [0usize, 1, 100, 1500, 16_000, 300_000] {
            let data: Vec<u8> = (0..size).map(|i| (i % 241) as u8).collect();
            let out = client.send_message(&data, size % 4).unwrap();
            let mut got = None;
            for seg in &out.segments {
                for pkt in seg.packetize(1500).unwrap() {
                    if let Some(m) = server.receive_packet(&pkt).unwrap() {
                        got = Some(m);
                    }
                }
            }
            assert_eq!(
                got.unwrap().data,
                data,
                "mode {:?} size {size}",
                config.crypto_mode
            );
        }
    }
}

#[test]
fn lossy_homa_transport_delivers_bidirectional_traffic() {
    let (ck, sk, _) = handshake();
    let a_path = PathInfo {
        src: [10, 0, 0, 1],
        dst: [10, 0, 0, 2],
        src_port: 1,
        dst_port: 2,
    };
    let b_path = PathInfo {
        src: [10, 0, 0, 2],
        dst: [10, 0, 0, 1],
        src_port: 2,
        dst_port: 1,
    };
    let mut a = HomaEndpoint::new(&ck, StackKind::SmtSw, HomaConfig::default(), a_path);
    let mut b = HomaEndpoint::new(&sk, StackKind::SmtSw, HomaConfig::default(), b_path);
    let mut ab = LossyChannel::new(0.08, 99);
    let mut ba = LossyChannel::new(0.08, 77);
    let payloads: Vec<Vec<u8>> = (0..8).map(|i| vec![i as u8; 5_000 + i * 7_000]).collect();
    for p in &payloads {
        a.send_message(p, 0).unwrap();
    }
    for i in 0..4u8 {
        b.send_message(&vec![0xB0 | i; 900], 1).unwrap();
    }
    drive(&mut a, &mut b, &mut ab, &mut ba, 1000);
    let to_b = b.take_delivered();
    let to_a = a.take_delivered();
    assert_eq!(to_b.len(), payloads.len());
    assert_eq!(to_a.len(), 4);
    for m in to_b {
        assert_eq!(m.data, payloads[m.message_id as usize]);
    }
}

#[test]
fn mtls_and_plaintext_baseline_coexist() {
    // mTLS session.
    let ca = CertificateAuthority::new("it-ca2");
    let server_id = ca.issue_identity("server");
    let client_id = ca.issue_identity("client");
    let mut ccfg = ClientConfig::new(ca.verifying_key(), "server");
    ccfg.identity = Some(client_id);
    let mut scfg = ServerConfig::new(server_id, ca.verifying_key());
    scfg.require_client_auth = true;
    let (ck, sk) = establish(ccfg, scfg).unwrap();
    assert_eq!(sk.peer_identity.as_deref(), Some("client"));
    let (mut c, mut s) = session_pair(&ck, &sk, SmtConfig::software(), 5, 6).unwrap();
    let out = c.send_message(b"authenticated", 0).unwrap();
    let mut got = None;
    for seg in &out.segments {
        for pkt in seg.packetize(1500).unwrap() {
            if let Some(m) = s.receive_packet(&pkt).unwrap() {
                got = Some(m);
            }
        }
    }
    assert_eq!(got.unwrap().data, b"authenticated");

    // Plaintext Homa baseline still works alongside (no keys).
    let mut pa = smt::core::SmtSession::plaintext(SmtConfig::plaintext(), PathInfo::loopback(1, 2));
    let mut pb = smt::core::SmtSession::plaintext(SmtConfig::plaintext(), PathInfo::loopback(2, 1));
    let out = pa.send_message(&vec![9u8; 10_000], 0).unwrap();
    assert_eq!(out.record_count, 0);
    let mut got = None;
    for seg in &out.segments {
        for pkt in seg.packetize(1500).unwrap() {
            if let Some(m) = pb.receive_packet(&pkt).unwrap() {
                got = Some(m);
            }
        }
    }
    assert_eq!(got.unwrap().data.len(), 10_000);
    assert_eq!(SmtConfig::plaintext().crypto_mode, CryptoMode::Plaintext);
}

#[test]
fn zero_rtt_keys_drive_smt_sessions() {
    use smt::crypto::handshake::zero_rtt::establish_zero_rtt;
    use smt::crypto::handshake::{ReplayCache, SmtTicketIssuer};
    let ca = CertificateAuthority::new("it-ca3");
    let id = ca.issue_identity("api");
    let issuer = SmtTicketIssuer::new(id, 3600);
    let mut replay = ReplayCache::new(1024);
    let (ck, sk, early) = establish_zero_rtt(
        smt::crypto::CipherSuite::Aes128GcmSha256,
        &ca.verifying_key(),
        "api",
        &issuer,
        &mut replay,
        b"first-rtt request",
        true,
        0,
    )
    .unwrap();
    assert_eq!(early.as_deref(), Some(&b"first-rtt request"[..]));
    let (mut c, mut s) = session_pair(&ck, &sk, SmtConfig::software(), 10, 20).unwrap();
    let out = c.send_message(b"post-handshake data", 0).unwrap();
    let mut got = None;
    for seg in &out.segments {
        for pkt in seg.packetize(1500).unwrap() {
            if let Some(m) = s.receive_packet(&pkt).unwrap() {
                got = Some(m);
            }
        }
    }
    assert_eq!(got.unwrap().data, b"post-handshake data");
}

#[test]
fn evaluation_profiles_reproduce_headline_claims() {
    use smt::transport::StackProfile;
    // The headline result: SMT improves RPC performance over kTLS/TCP.
    let smt_rtt = StackProfile::new(StackKind::SmtSw).unloaded_rtt_us(1024);
    let ktls_rtt = StackProfile::new(StackKind::KtlsSw).unloaded_rtt_us(1024);
    assert!(smt_rtt < ktls_rtt);
    let smt_tput = StackProfile::new(StackKind::SmtHw).throughput_rps(1024, 150);
    let ktls_tput = StackProfile::new(StackKind::KtlsHw).throughput_rps(1024, 150);
    assert!(smt_tput > ktls_tput);
}
