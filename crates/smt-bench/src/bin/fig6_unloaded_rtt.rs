//! Regenerates Fig. 6: unloaded RTT vs RPC size — the analytic model sweep,
//! then the same figure measured functionally (real echo RPCs through the
//! endpoint API over the simulated fabric) cross-checked against the analytic
//! band in process.  `--analytic-only` skips the functional section;
//! `--large` appends the §5.1 500 KB offload points.
use smt_bench::functional::{assert_rows, fig6_functional, fig_table, FigScale, FIG_TABLE_HEADER};
use smt_bench::scenarios::scenario_keys;
use smt_bench::{fig6_unloaded_rtt, output};

fn main() {
    let large = std::env::args().any(|a| a == "--large");
    let analytic_only = std::env::args().any(|a| a == "--analytic-only");
    let mtu = 1500;
    let mut rows = fig6_unloaded_rtt(mtu);
    if large {
        // §5.1: 500 KB RPCs show <1 % benefit from offload.
        use smt_transport::{StackKind, StackProfile};
        for stack in [StackKind::SmtSw, StackKind::SmtHw] {
            let p = StackProfile::new(stack);
            rows.push(smt_bench::figures::SeriesPoint {
                series: stack.label().to_string(),
                x: "512000".into(),
                y: p.unloaded_rtt_us(512_000),
                unit: "us".into(),
            });
        }
    }
    if output::maybe_json(&rows) {
        return;
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|p| vec![p.series.clone(), p.x.clone(), output::f2(p.y)])
        .collect();
    output::print_table(
        "Fig. 6: unloaded RTT (us)",
        &["stack", "RPC size (B)", "RTT (us)"],
        &table,
    );

    if analytic_only {
        return;
    }
    let keys = scenario_keys();
    let functional = fig6_functional(&FigScale::smoke(), &keys);
    assert_rows(&functional);
    output::print_table(
        "Fig. 6 (functional): measured on the real datapath vs analytic band",
        &FIG_TABLE_HEADER,
        &fig_table(&functional),
    );
}
