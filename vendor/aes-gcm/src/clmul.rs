//! PCLMULQDQ GHASH backend: carry-less multiplication with precomputed key
//! powers `H..H⁸` and 8-block aggregated, deferred reduction.
//!
//! GHASH state and key powers use the same representation as the portable
//! code ([`Element`] = the block's big-endian `(hi, lo)` words, GCM's
//! reflected bit order). A block enters the kernel via a byte-reversing
//! shuffle so the xmm register holds the block's big-endian value, which is
//! exactly the operand form the reflected-domain `gfmul` below expects (the
//! classic formulation from Intel's carry-less-multiplication application
//! note: 256-bit carry-less product, one left shift, then the two-phase
//! fold by the GCM polynomial).
//!
//! The aggregated update computes
//!
//! ```text
//! Y′ = (Y ⊕ C₀)·H⁸ ⊕ C₁·H⁷ ⊕ … ⊕ C₇·H
//! ```
//!
//! accumulating the three 128-bit halves of all eight 256-bit partial
//! products and performing the shift + polynomial reduction **once** per
//! 128 bytes — eight independent multiply chains for the CPU to overlap,
//! one reduction tail.
//!
//! Per-key state is the eight powers (128 bytes), versus 16 KB of Shoup
//! tables on the portable tier; see the `ghash` module docs for the
//! footprint table.
//!
//! Everything here is `unsafe` (intrinsics) and gated: [`ClmulKey`] is only
//! constructed after `pclmulqdq`/`ssse3`/`sse2` were runtime-detected in
//! `tier::active_tier`.

#![allow(unsafe_code)]

use crate::ghash::{gf_mul_slow, Element};
use std::arch::x86_64::*;

/// GHASH key powers `H^1..H^8` for the carry-less-multiply backend.
///
/// `powers[i]` is `H^(i+1)` as an [`Element`]; total per-key footprint is
/// 128 bytes.
#[derive(Clone)]
pub struct ClmulKey {
    powers: [Element; 8],
}

/// Whether the kernel's CPU features are present; [`ClmulKey`] must only be
/// constructed when this holds (checked by `GHashKey::with_tier`, so explicit
/// tier requests degrade safely on unsupported CPUs).
pub fn supported() -> bool {
    std::arch::is_x86_feature_detected!("pclmulqdq") && std::arch::is_x86_feature_detected!("ssse3")
}

impl ClmulKey {
    /// Precomputes the powers from `h`. The powers are derived with the
    /// scalar bit-by-bit multiply — key install is not a hot path, and this
    /// keeps the setup independent of the kernel it feeds (the unit tests
    /// pin one against the other).
    ///
    /// Caller contract: only construct after `tier::active_tier()` reported
    /// [`crate::CryptoTier::WideClmul`] (the kernel needs `pclmulqdq`,
    /// `ssse3` and `sse2`).
    pub fn new(h: Element) -> Self {
        debug_assert!(
            std::arch::is_x86_feature_detected!("pclmulqdq")
                && std::arch::is_x86_feature_detected!("ssse3"),
            "ClmulKey constructed without CPU support"
        );
        let mut powers = [h; 8];
        for i in 1..8 {
            powers[i] = gf_mul_slow(powers[i - 1], h);
        }
        Self { powers }
    }

    /// Absorbs `data` (a multiple of 16 bytes) into `y`: full 128-byte runs
    /// through the 8-block aggregated kernel, then one aggregated run for the
    /// remaining 1–7 blocks.
    #[inline]
    pub fn update_blocks(&self, y: &mut Element, data: &[u8]) {
        debug_assert_eq!(data.len() % 16, 0);
        if data.is_empty() {
            return;
        }
        // SAFETY: construction is gated on runtime detection of the features
        // `ghash_blocks` enables.
        unsafe { ghash_blocks(&self.powers, y, data) }
    }
}

impl std::fmt::Debug for ClmulKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key-derived material.
        write!(f, "ClmulKey(..)")
    }
}

/// Shuffle mask reversing all 16 bytes of an xmm register (block bytes are
/// big-endian network order; the kernel works on the big-endian value).
#[inline]
#[target_feature(enable = "sse2")]
unsafe fn bswap_mask() -> __m128i {
    _mm_set_epi8(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15)
}

/// Loads one 16-byte block as its big-endian value.
#[inline]
#[target_feature(enable = "ssse3")]
unsafe fn load_block(ptr: *const u8, mask: __m128i) -> __m128i {
    _mm_shuffle_epi8(_mm_loadu_si128(ptr as *const __m128i), mask)
}

#[inline]
#[target_feature(enable = "sse2")]
unsafe fn from_element(e: Element) -> __m128i {
    _mm_set_epi64x(e.0 as i64, e.1 as i64)
}

#[inline]
#[target_feature(enable = "sse2,sse4.1")]
unsafe fn to_element(v: __m128i) -> Element {
    (
        _mm_extract_epi64::<1>(v) as u64,
        _mm_cvtsi128_si64(v) as u64,
    )
}

/// Accumulator for the three 128-bit halves of 256-bit carry-less products
/// (low, middle, high), XOR-folded across blocks before a single reduction.
struct Acc {
    lo: __m128i,
    mid: __m128i,
    hi: __m128i,
}

/// Adds the schoolbook product `x · h` (both reflected-domain big-endian
/// values) into the accumulator without reducing.
#[inline]
#[target_feature(enable = "pclmulqdq,sse2")]
unsafe fn accumulate(acc: &mut Acc, x: __m128i, h: __m128i) {
    acc.lo = _mm_xor_si128(acc.lo, _mm_clmulepi64_si128::<0x00>(x, h));
    let m = _mm_xor_si128(
        _mm_clmulepi64_si128::<0x01>(x, h),
        _mm_clmulepi64_si128::<0x10>(x, h),
    );
    acc.mid = _mm_xor_si128(acc.mid, m);
    acc.hi = _mm_xor_si128(acc.hi, _mm_clmulepi64_si128::<0x11>(x, h));
}

/// Reduces the accumulated 256-bit sum to a 128-bit reflected-domain element:
/// fold the middle half in, shift the 256-bit value left by one (the
/// reflected-domain alignment step), then the two-phase reduction by
/// `x^128 + x^7 + x^2 + x + 1`.
#[inline]
#[target_feature(enable = "sse2")]
unsafe fn reduce(acc: Acc) -> __m128i {
    let mut lo = _mm_xor_si128(acc.lo, _mm_slli_si128::<8>(acc.mid));
    let mut hi = _mm_xor_si128(acc.hi, _mm_srli_si128::<8>(acc.mid));

    // 256-bit shift left by one, carrying across the 32-bit lanes and the
    // half boundary.
    let c_lo = _mm_srli_epi32::<31>(lo);
    let c_hi = _mm_srli_epi32::<31>(hi);
    lo = _mm_slli_epi32::<1>(lo);
    hi = _mm_slli_epi32::<1>(hi);
    let carry_cross = _mm_srli_si128::<12>(c_lo);
    lo = _mm_or_si128(lo, _mm_slli_si128::<4>(c_lo));
    hi = _mm_or_si128(hi, _mm_slli_si128::<4>(c_hi));
    hi = _mm_or_si128(hi, carry_cross);

    // First reduction phase.
    let a = _mm_slli_epi32::<31>(lo);
    let b = _mm_slli_epi32::<30>(lo);
    let c = _mm_slli_epi32::<25>(lo);
    let abc = _mm_xor_si128(_mm_xor_si128(a, b), c);
    let abc_hi = _mm_srli_si128::<4>(abc);
    lo = _mm_xor_si128(lo, _mm_slli_si128::<12>(abc));

    // Second reduction phase.
    let d = _mm_srli_epi32::<1>(lo);
    let e = _mm_srli_epi32::<2>(lo);
    let f = _mm_srli_epi32::<7>(lo);
    let def = _mm_xor_si128(_mm_xor_si128(d, e), _mm_xor_si128(f, abc_hi));
    lo = _mm_xor_si128(lo, def);

    _mm_xor_si128(hi, lo)
}

/// The full dispatch-free kernel: absorbs `data` (multiple of 16 bytes) into
/// `y`, 8-block aggregated runs first, then one shorter aggregated run.
///
/// # Safety
///
/// Requires `pclmulqdq`, `ssse3`, `sse4.1` and `sse2` (runtime-detected
/// before any [`ClmulKey`] exists).
#[target_feature(enable = "pclmulqdq,ssse3,sse4.1,sse2")]
unsafe fn ghash_blocks(powers: &[Element; 8], y: &mut Element, data: &[u8]) {
    let mask = bswap_mask();
    let h = [
        from_element(powers[0]),
        from_element(powers[1]),
        from_element(powers[2]),
        from_element(powers[3]),
        from_element(powers[4]),
        from_element(powers[5]),
        from_element(powers[6]),
        from_element(powers[7]),
    ];
    let mut acc_y = from_element(*y);

    let mut chunks = data.chunks_exact(128);
    for chunk in &mut chunks {
        let mut acc = Acc {
            lo: _mm_setzero_si128(),
            mid: _mm_setzero_si128(),
            hi: _mm_setzero_si128(),
        };
        // Block j multiplies H^(8-j); the running state folds into block 0.
        let first = _mm_xor_si128(load_block(chunk.as_ptr(), mask), acc_y);
        accumulate(&mut acc, first, h[7]);
        for j in 1..8 {
            let x = load_block(chunk.as_ptr().add(16 * j), mask);
            accumulate(&mut acc, x, h[7 - j]);
        }
        acc_y = reduce(acc);
    }

    let rest = chunks.remainder();
    let n = rest.len() / 16;
    if n > 0 {
        let mut acc = Acc {
            lo: _mm_setzero_si128(),
            mid: _mm_setzero_si128(),
            hi: _mm_setzero_si128(),
        };
        let first = _mm_xor_si128(load_block(rest.as_ptr(), mask), acc_y);
        accumulate(&mut acc, first, h[n - 1]);
        for j in 1..n {
            let x = load_block(rest.as_ptr().add(16 * j), mask);
            accumulate(&mut acc, x, h[n - 1 - j]);
        }
        acc_y = reduce(acc);
    }

    *y = to_element(acc_y);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tier::{active_tier, CryptoTier};

    const H_BYTES: [u8; 16] = [
        0x66, 0xe9, 0x4b, 0xd4, 0xef, 0x8a, 0x2c, 0x3b, 0x88, 0x4c, 0xfa, 0x59, 0xca, 0x34, 0x2b,
        0x2e,
    ];

    fn load(block: &[u8]) -> Element {
        (
            u64::from_be_bytes(block[0..8].try_into().unwrap()),
            u64::from_be_bytes(block[8..16].try_into().unwrap()),
        )
    }

    fn have_clmul() -> bool {
        active_tier() == CryptoTier::WideClmul
    }

    #[test]
    fn powers_match_scalar_ground_truth() {
        if !have_clmul() {
            return;
        }
        let h = load(&H_BYTES);
        let key = ClmulKey::new(h);
        assert_eq!(key.powers[0], h);
        let mut expect = h;
        for p in &key.powers[1..] {
            expect = gf_mul_slow(expect, h);
            assert_eq!(*p, expect);
        }
    }

    #[test]
    fn single_block_matches_bitwise_reference() {
        if !have_clmul() {
            return;
        }
        let h = load(&H_BYTES);
        let key = ClmulKey::new(h);
        let mut block = [0u8; 16];
        for (i, b) in block.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(73).wrapping_add(5);
        }
        let mut y = (0u64, 0u64);
        key.update_blocks(&mut y, &block);
        assert_eq!(y, gf_mul_slow(load(&block), h));
    }

    #[test]
    fn aggregated_runs_match_serial_mul_for_every_length() {
        if !have_clmul() {
            return;
        }
        let h = load(&H_BYTES);
        let key = ClmulKey::new(h);
        // 1..=24 blocks: covers sub-8 runs, exact multiples and 8+tail mixes.
        for blocks in 1usize..=24 {
            let data: Vec<u8> = (0..blocks * 16)
                .map(|i| (i as u8).wrapping_mul(41).wrapping_add(blocks as u8))
                .collect();
            let mut y = (3u64, 17u64);
            key.update_blocks(&mut y, &data);

            // Serial ground truth: y ← (y ⊕ c)·H per block via the bitwise mul.
            let mut expect = (3u64, 17u64);
            for block in data.chunks_exact(16) {
                let x = (expect.0 ^ load(block).0, expect.1 ^ load(block).1);
                expect = gf_mul_slow(x, h);
            }
            assert_eq!(y, expect, "{blocks} blocks");
        }
    }
}
