//! AEAD encryption (AES-GCM) with the TLS 1.3 nonce construction.
//!
//! TLS 1.3 (and SMT, which keeps the record format) computes the per-record nonce
//! by XOR-ing the 64-bit record sequence number, left-padded to 12 bytes, into the
//! static per-direction IV negotiated during the handshake (RFC 8446 §5.3).  For
//! SMT the sequence number is the *composite* value of §4.4.1 (message ID ‖ record
//! index), which is what gives each record in the session a unique nonce even
//! though per-message record indices restart at zero — see paper Fig. 4.

use crate::{CryptoError, CryptoResult};
use aes_gcm::aead::KeyInit;
use aes_gcm::{Aes128Gcm, Aes256Gcm};
use serde::{Deserialize, Serialize};

/// AEAD nonce length (96 bits) for AES-GCM.
pub const NONCE_LEN: usize = 12;

/// AEAD authentication tag length (128 bits).
pub const TAG_LEN: usize = 16;

/// Supported AEAD algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AeadAlgorithm {
    /// AES-128-GCM (the paper's evaluation cipher).
    Aes128Gcm,
    /// AES-256-GCM (supported by the NIC offload per §7).
    Aes256Gcm,
}

impl AeadAlgorithm {
    /// Key length in bytes.
    pub fn key_len(self) -> usize {
        match self {
            AeadAlgorithm::Aes128Gcm => 16,
            AeadAlgorithm::Aes256Gcm => 32,
        }
    }
}

/// A static per-direction initialisation vector (write IV).
#[derive(Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Iv(pub [u8; NONCE_LEN]);

impl std::fmt::Debug for Iv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print IV material.
        write!(f, "Iv(..)")
    }
}

impl Iv {
    /// Builds an IV from a slice, checking its length.
    pub fn from_slice(s: &[u8]) -> CryptoResult<Self> {
        if s.len() != NONCE_LEN {
            return Err(CryptoError::InvalidLength {
                what: "iv",
                expected: NONCE_LEN,
                got: s.len(),
            });
        }
        let mut iv = [0u8; NONCE_LEN];
        iv.copy_from_slice(s);
        Ok(Self(iv))
    }

    /// Computes the per-record nonce: IV XOR left-padded sequence number
    /// (RFC 8446 §5.3; paper Fig. 4).
    pub fn nonce_for(&self, seq: u64) -> [u8; NONCE_LEN] {
        let mut nonce = self.0;
        let seq_bytes = seq.to_be_bytes();
        for (i, b) in seq_bytes.iter().enumerate() {
            nonce[NONCE_LEN - 8 + i] ^= b;
        }
        nonce
    }
}

enum Inner {
    A128(Box<Aes128Gcm>),
    A256(Box<Aes256Gcm>),
}

/// An AEAD key bound to one direction of one session.
pub struct AeadKey {
    inner: Inner,
    algorithm: AeadAlgorithm,
}

impl std::fmt::Debug for AeadKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AeadKey")
            .field("algorithm", &self.algorithm)
            .finish_non_exhaustive()
    }
}

impl AeadKey {
    /// Creates an AEAD key from raw key material.
    ///
    /// Key install is the expensive step by design: the AES round keys are
    /// expanded and the GHASH key tables (`H..H⁴`, 16 KB) are precomputed here
    /// once per connection direction, so sealing and opening records runs the
    /// fused multi-block engine with zero per-record setup.
    pub fn new(algorithm: AeadAlgorithm, key: &[u8]) -> CryptoResult<Self> {
        if key.len() != algorithm.key_len() {
            return Err(CryptoError::InvalidLength {
                what: "aead key",
                expected: algorithm.key_len(),
                got: key.len(),
            });
        }
        let inner = match algorithm {
            AeadAlgorithm::Aes128Gcm => Inner::A128(Box::new(
                Aes128Gcm::new_from_slice(key).expect("length checked"),
            )),
            AeadAlgorithm::Aes256Gcm => Inner::A256(Box::new(
                Aes256Gcm::new_from_slice(key).expect("length checked"),
            )),
        };
        Ok(Self { inner, algorithm })
    }

    /// The algorithm of this key.
    pub fn algorithm(&self) -> AeadAlgorithm {
        self.algorithm
    }

    /// Encrypts `buf` in place, returning the detached 16-byte tag. This is the
    /// zero-allocation primitive the record datapath is built on.
    pub fn seal_in_place_detached(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        buf: &mut [u8],
    ) -> [u8; TAG_LEN] {
        match &self.inner {
            Inner::A128(k) => k.encrypt_in_place_detached(nonce, aad, buf),
            Inner::A256(k) => k.encrypt_in_place_detached(nonce, aad, buf),
        }
    }

    /// Verifies `tag` over `buf` and decrypts it in place; on failure the buffer
    /// is left as ciphertext and an error is returned.
    pub fn open_in_place_detached(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        buf: &mut [u8],
        tag: &[u8],
    ) -> CryptoResult<()> {
        match &self.inner {
            Inner::A128(k) => k.decrypt_in_place_detached(nonce, aad, buf, tag),
            Inner::A256(k) => k.decrypt_in_place_detached(nonce, aad, buf, tag),
        }
        .map_err(|_| CryptoError::AuthenticationFailed)
    }

    /// Encrypts `plaintext` with `nonce` and additional authenticated data `aad`,
    /// returning ciphertext with the 16-byte tag appended (allocating
    /// convenience over [`Self::seal_in_place_detached`]).
    pub fn seal(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(plaintext.len() + TAG_LEN);
        out.extend_from_slice(plaintext);
        let tag = self.seal_in_place_detached(nonce, aad, &mut out);
        out.extend_from_slice(&tag);
        out
    }

    /// Decrypts `ciphertext` (with appended tag); fails if authentication fails.
    pub fn open(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        ciphertext: &[u8],
    ) -> CryptoResult<Vec<u8>> {
        if ciphertext.len() < TAG_LEN {
            return Err(CryptoError::AuthenticationFailed);
        }
        let (body, tag) = ciphertext.split_at(ciphertext.len() - TAG_LEN);
        let mut out = body.to_vec();
        self.open_in_place_detached(nonce, aad, &mut out, tag)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key128() -> AeadKey {
        AeadKey::new(AeadAlgorithm::Aes128Gcm, &[0x42; 16]).unwrap()
    }

    #[test]
    fn seal_open_roundtrip() {
        let key = key128();
        let iv = Iv([7u8; NONCE_LEN]);
        let nonce = iv.nonce_for(3);
        let ct = key.seal(&nonce, b"aad", b"secret message");
        assert_eq!(ct.len(), 14 + TAG_LEN);
        let pt = key.open(&nonce, b"aad", &ct).unwrap();
        assert_eq!(pt, b"secret message");
    }

    #[test]
    fn tamper_detected() {
        let key = key128();
        let nonce = [0u8; NONCE_LEN];
        let mut ct = key.seal(&nonce, b"", b"payload");
        ct[0] ^= 1;
        assert_eq!(
            key.open(&nonce, b"", &ct),
            Err(CryptoError::AuthenticationFailed)
        );
    }

    #[test]
    fn aad_mismatch_detected() {
        let key = key128();
        let nonce = [0u8; NONCE_LEN];
        let ct = key.seal(&nonce, b"header-a", b"payload");
        assert!(key.open(&nonce, b"header-b", &ct).is_err());
    }

    #[test]
    fn wrong_nonce_fails() {
        let key = key128();
        let iv = Iv([1u8; NONCE_LEN]);
        let ct = key.seal(&iv.nonce_for(1), b"", b"payload");
        assert!(key.open(&iv.nonce_for(2), b"", &ct).is_err());
    }

    #[test]
    fn nonce_construction_xors_low_bytes() {
        let iv = Iv([0u8; NONCE_LEN]);
        let n = iv.nonce_for(0x0102_0304_0506_0708);
        assert_eq!(&n[..4], &[0, 0, 0, 0]);
        assert_eq!(&n[4..], &[1, 2, 3, 4, 5, 6, 7, 8]);

        // XOR with a non-zero IV flips exactly those bytes.
        let iv = Iv([0xff; NONCE_LEN]);
        let n = iv.nonce_for(0);
        assert_eq!(n, [0xff; NONCE_LEN]);
    }

    #[test]
    fn distinct_seqnos_distinct_nonces() {
        let iv = Iv([9u8; NONCE_LEN]);
        assert_ne!(iv.nonce_for(1), iv.nonce_for(2));
    }

    #[test]
    fn aes256_works_and_key_lengths_enforced() {
        let key = AeadKey::new(AeadAlgorithm::Aes256Gcm, &[1u8; 32]).unwrap();
        let nonce = [0u8; NONCE_LEN];
        let ct = key.seal(&nonce, b"x", b"y");
        assert_eq!(key.open(&nonce, b"x", &ct).unwrap(), b"y");

        assert!(AeadKey::new(AeadAlgorithm::Aes128Gcm, &[1u8; 15]).is_err());
        assert!(AeadKey::new(AeadAlgorithm::Aes256Gcm, &[1u8; 16]).is_err());
        assert!(Iv::from_slice(&[0u8; 11]).is_err());
    }

    #[test]
    fn debug_does_not_leak_material() {
        let key = key128();
        let iv = Iv([3u8; NONCE_LEN]);
        assert!(!format!("{key:?}").contains("42"));
        assert_eq!(format!("{iv:?}"), "Iv(..)");
    }
}
