//! The SMT overlay TCP header and option area (paper Fig. 3).
//!
//! SMT (like Homa) lays its packets out so that the first 20 bytes look like a TCP
//! common header and the following bytes occupy the TCP options space.  A NIC
//! performing TCP Segmentation Offload (TSO) replicates this whole area onto every
//! MTU-sized packet it generates from a TSO segment, which is exactly what SMT
//! needs: the message ID, message length, TSO offset and packet type are identical
//! for all packets of a segment.  The per-packet position inside the segment comes
//! from the IPID in the network header instead (see [`crate::ip`]).
//!
//! Everything in this header is **plaintext** by design (paper §1, §7): the network
//! or the host stack can perform message-granularity operations (multi-path load
//! balancing, per-message CPU-core steering, in-network compute) without touching
//! the encrypted payload.

use crate::homa::PacketType;
use crate::{WireError, WireResult, SMT_OPTION_AREA_LEN, TCP_COMMON_HEADER_LEN};
use serde::{Deserialize, Serialize};

/// The 20-byte TCP common header that SMT overlays.
///
/// Only the fields SMT actually uses are modelled; the sequence/acknowledgement
/// number words are "unused" on the wire (Fig. 3) and are left zero, except that
/// the data-offset field must cover the option area so that TSO replicates it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OverlayTcpHeader {
    /// Source port (part of the session's 5-tuple).
    pub src_port: u16,
    /// Destination port (part of the session's 5-tuple).
    pub dst_port: u16,
    /// SMT packet type, carried where TCP keeps its flags/reserved bits.
    pub packet_type: PacketType,
}

/// The SMT option area carried in the TCP options space (36 bytes).
///
/// TSO copies this area verbatim onto every generated packet, so it may only
/// contain per-*segment* (not per-packet) information.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SmtOptionArea {
    /// Message identifier, unique within the secure session (§4.4.1).
    pub message_id: u64,
    /// Total length of the message in bytes.
    pub message_length: u32,
    /// Offset of this TSO segment within the message (§4.3).
    pub tso_offset: u32,
    /// For retransmitted packets: the original packet offset within the segment,
    /// so the receiver can place the payload even though the retransmission is a
    /// stand-alone packet ("Resend packet offset", Fig. 3). Zero otherwise.
    pub resend_packet_offset: u16,
    /// Number of TLS records contained in this TSO segment (≥1 for DATA).
    pub record_count: u16,
    /// Index of the first TLS record of this segment within the message
    /// (used to reconstruct composite record sequence numbers on receive).
    pub first_record_index: u16,
    /// Flags (bit 0: segment carries a partial trailing record — reserved,
    /// bit 1: sender requests no-TSO handling, bit 2: retransmission).
    pub flags: u16,
    /// Reserved / padding to keep the area 4-byte aligned.
    pub reserved: u32,
    /// Connection identifier: demuxes concurrent connections sharing one
    /// listener socket. Zero for plain point-to-point endpoint pairs.
    pub connection_id: u32,
    /// Key epoch of the records in this segment. Incremented on each
    /// key-update so the receiver knows which traffic keys to apply
    /// (an old-epoch drain window tolerates reordering across a rekey).
    pub epoch: u16,
    /// Network priority of this segment (Homa-style SRPT: the receiver's
    /// GRANT tells the sender which priority to stamp; 0 = highest, used for
    /// unscheduled data and control).  Carried in the first former-padding
    /// byte of the option area so TSO replicates it per segment.
    pub priority: u8,
}

impl SmtOptionArea {
    /// Flag bit: this segment is a retransmission.
    pub const FLAG_RETRANSMISSION: u16 = 0x0004;
    /// Flag bit: the sender disabled TSO for this segment (Fig. 11 mode).
    pub const FLAG_NO_TSO: u16 = 0x0002;
    /// Flag bit: the sender runs congestion control and understands ECN
    /// marks (the segment is sent ECN-capable; queues may mark instead of
    /// dropping).
    pub const FLAG_ECN_CAPABLE: u16 = 0x0008;

    /// Creates an option area for the first segment of a fresh message.
    pub fn new(message_id: u64, message_length: u32) -> Self {
        Self {
            message_id,
            message_length,
            tso_offset: 0,
            resend_packet_offset: 0,
            record_count: 1,
            first_record_index: 0,
            flags: 0,
            reserved: 0,
            connection_id: 0,
            epoch: 0,
            priority: 0,
        }
    }

    /// True if this segment is flagged as a retransmission.
    pub fn is_retransmission(&self) -> bool {
        self.flags & Self::FLAG_RETRANSMISSION != 0
    }
}

/// A full overlay header: TCP common header + SMT option area.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SmtOverlayHeader {
    /// The 20-byte TCP-compatible part.
    pub tcp: OverlayTcpHeader,
    /// The SMT option area in the TCP options space.
    pub options: SmtOptionArea,
}

/// Total encoded length of [`SmtOverlayHeader`].
pub const SMT_OVERLAY_LEN: usize = TCP_COMMON_HEADER_LEN + SMT_OPTION_AREA_LEN;

impl OverlayTcpHeader {
    /// Encoded length of the TCP common header.
    pub const LEN: usize = TCP_COMMON_HEADER_LEN;

    /// Creates an overlay TCP header.
    pub fn new(src_port: u16, dst_port: u16, packet_type: PacketType) -> Self {
        Self {
            src_port,
            dst_port,
            packet_type,
        }
    }
}

impl SmtOverlayHeader {
    /// Encoded length of the full overlay header.
    pub const LEN: usize = SMT_OVERLAY_LEN;

    /// Creates a header for a DATA segment of the given message.
    pub fn data(src_port: u16, dst_port: u16, message_id: u64, message_length: u32) -> Self {
        Self {
            tcp: OverlayTcpHeader::new(src_port, dst_port, PacketType::Data),
            options: SmtOptionArea::new(message_id, message_length),
        }
    }

    /// Encoded length in bytes.
    pub const fn len(&self) -> usize {
        SMT_OVERLAY_LEN
    }

    /// Returns true if the encoded representation would be empty (it never is).
    pub const fn is_empty(&self) -> bool {
        false
    }

    /// Encodes the header into `out`, returning the number of bytes written.
    pub fn encode(&self, out: &mut [u8]) -> WireResult<usize> {
        if out.len() < SMT_OVERLAY_LEN {
            return Err(WireError::NoSpace {
                needed: SMT_OVERLAY_LEN,
                available: out.len(),
            });
        }
        // --- TCP common header (20 bytes) -----------------------------------
        out[0..2].copy_from_slice(&self.tcp.src_port.to_be_bytes());
        out[2..4].copy_from_slice(&self.tcp.dst_port.to_be_bytes());
        // Sequence (4 B) and acknowledgement (4 B) words are unused: zero.
        out[4..12].fill(0);
        // Data offset: (20 + options) / 4 words, in the upper nibble.
        let data_offset_words = (SMT_OVERLAY_LEN / 4) as u8;
        out[12] = data_offset_words << 4;
        // Packet type rides where TCP keeps flags.
        out[13] = self.tcp.packet_type as u8;
        // Window (2 B) unused.
        out[14..16].fill(0);
        // Checksum (2 B): zero — SMT does not use the TCP checksum; integrity
        // comes from AEAD (paper §7 "Message integrity").
        out[16..18].fill(0);
        // Urgent pointer (2 B) unused.
        out[18..20].fill(0);

        // --- SMT option area (36 bytes) --------------------------------------
        let o = &mut out[TCP_COMMON_HEADER_LEN..SMT_OVERLAY_LEN];
        o[0..8].copy_from_slice(&self.options.message_id.to_be_bytes());
        o[8..12].copy_from_slice(&self.options.message_length.to_be_bytes());
        o[12..16].copy_from_slice(&self.options.tso_offset.to_be_bytes());
        o[16..18].copy_from_slice(&self.options.resend_packet_offset.to_be_bytes());
        o[18..20].copy_from_slice(&self.options.record_count.to_be_bytes());
        o[20..22].copy_from_slice(&self.options.first_record_index.to_be_bytes());
        o[22..24].copy_from_slice(&self.options.flags.to_be_bytes());
        o[24..28].copy_from_slice(&self.options.reserved.to_be_bytes());
        o[28..32].copy_from_slice(&self.options.connection_id.to_be_bytes());
        o[32..34].copy_from_slice(&self.options.epoch.to_be_bytes());
        o[34] = self.options.priority;
        // Padding to keep the area 4-byte aligned.
        o[35] = 0;
        Ok(SMT_OVERLAY_LEN)
    }

    /// Decodes a header from `buf`, returning it and the bytes consumed.
    pub fn decode(buf: &[u8]) -> WireResult<(Self, usize)> {
        if buf.len() < SMT_OVERLAY_LEN {
            return Err(WireError::Truncated {
                needed: SMT_OVERLAY_LEN,
                available: buf.len(),
            });
        }
        let data_offset_words = buf[12] >> 4;
        let declared = data_offset_words as usize * 4;
        if declared != SMT_OVERLAY_LEN {
            return Err(WireError::invalid(
                "data_offset",
                format!("expected {SMT_OVERLAY_LEN} bytes of header, found {declared}"),
            ));
        }
        let packet_type = PacketType::from_u8(buf[13])?;
        let o = &buf[TCP_COMMON_HEADER_LEN..SMT_OVERLAY_LEN];
        let options = SmtOptionArea {
            message_id: u64::from_be_bytes(o[0..8].try_into().unwrap()),
            message_length: u32::from_be_bytes(o[8..12].try_into().unwrap()),
            tso_offset: u32::from_be_bytes(o[12..16].try_into().unwrap()),
            resend_packet_offset: u16::from_be_bytes(o[16..18].try_into().unwrap()),
            record_count: u16::from_be_bytes(o[18..20].try_into().unwrap()),
            first_record_index: u16::from_be_bytes(o[20..22].try_into().unwrap()),
            flags: u16::from_be_bytes(o[22..24].try_into().unwrap()),
            reserved: u32::from_be_bytes(o[24..28].try_into().unwrap()),
            connection_id: u32::from_be_bytes(o[28..32].try_into().unwrap()),
            epoch: u16::from_be_bytes(o[32..34].try_into().unwrap()),
            priority: o[34],
        };
        let hdr = Self {
            tcp: OverlayTcpHeader {
                src_port: u16::from_be_bytes([buf[0], buf[1]]),
                dst_port: u16::from_be_bytes([buf[2], buf[3]]),
                packet_type,
            },
            options,
        };
        Ok((hdr, SMT_OVERLAY_LEN))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SmtOverlayHeader {
        let mut h = SmtOverlayHeader::data(40000, 5201, 0xabcdef0123, 1 << 20);
        h.options.tso_offset = 65536;
        h.options.record_count = 4;
        h.options.first_record_index = 4;
        h.options.resend_packet_offset = 3;
        h.options.flags = SmtOptionArea::FLAG_RETRANSMISSION;
        h.options.connection_id = 0xdead_beef;
        h.options.epoch = 7;
        h.options.priority = 5;
        h
    }

    #[test]
    fn roundtrip() {
        let h = sample();
        let mut buf = [0u8; 64];
        let n = h.encode(&mut buf).unwrap();
        assert_eq!(n, SMT_OVERLAY_LEN);
        let (d, consumed) = SmtOverlayHeader::decode(&buf).unwrap();
        assert_eq!(consumed, n);
        assert_eq!(d, h);
        assert!(d.options.is_retransmission());
    }

    #[test]
    fn looks_like_tcp_to_tso() {
        // The data-offset nibble must declare the full overlay length so a NIC
        // performing TSO replicates the option area onto every packet.
        let h = sample();
        let mut buf = [0u8; 64];
        h.encode(&mut buf).unwrap();
        assert_eq!((buf[12] >> 4) as usize * 4, SMT_OVERLAY_LEN);
        // Ports are in the standard TCP locations.
        assert_eq!(u16::from_be_bytes([buf[0], buf[1]]), 40000);
        assert_eq!(u16::from_be_bytes([buf[2], buf[3]]), 5201);
    }

    #[test]
    fn bad_data_offset_rejected() {
        let h = sample();
        let mut buf = [0u8; 64];
        h.encode(&mut buf).unwrap();
        buf[12] = 5 << 4; // claim a bare 20-byte header
        assert!(matches!(
            SmtOverlayHeader::decode(&buf),
            Err(WireError::InvalidField { .. })
        ));
    }

    #[test]
    fn unknown_type_rejected() {
        let h = sample();
        let mut buf = [0u8; 64];
        h.encode(&mut buf).unwrap();
        buf[13] = 0xee;
        assert!(matches!(
            SmtOverlayHeader::decode(&buf),
            Err(WireError::UnknownPacketType(0xee))
        ));
    }

    #[test]
    fn truncated_rejected() {
        assert!(matches!(
            SmtOverlayHeader::decode(&[0u8; 30]),
            Err(WireError::Truncated { .. })
        ));
        let h = sample();
        assert!(h.encode(&mut [0u8; 30]).is_err());
    }

    #[test]
    fn option_area_per_segment_only() {
        // All fields of the option area are per-segment; two packets generated
        // from the same segment must decode to identical headers.
        let h = sample();
        let mut a = [0u8; 64];
        let mut b = [0u8; 64];
        h.encode(&mut a).unwrap();
        h.encode(&mut b).unwrap();
        assert_eq!(&a[..SMT_OVERLAY_LEN], &b[..SMT_OVERLAY_LEN]);
    }
}
