//! The endpoint conformance matrix: every evaluated stack, driven through the
//! unified [`SecureEndpoint`] trait, must deliver the same message set under
//! packet reordering and duplication — and must detect the duplicates.
//!
//! This is the property the endpoint API exists to guarantee: the eight stacks
//! are interchangeable behind one interface, and chaos on the wire (within
//! what a datacenter fabric can do to packets: reorder, duplicate) never
//! changes what the application observes.
//!
//! The chaos comes from the seeded `smt_sim::net::FaultyLink` — the *same*
//! fault model the discrete-event scenarios inject — applied per flight via
//! [`FaultyLink::scramble_flight`], so tests and scenarios agree on what a
//! misbehaving network does.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smt::apps::{KvRequest, KvStore};
use smt::crypto::cert::CertificateAuthority;
use smt::crypto::handshake::{establish, ClientConfig, ServerConfig, SessionKeys, SmtTicketIssuer};
use smt::sim::net::{FaultConfig, FaultyLink};
use smt::transport::endpoint::{AcceptConfig, ConnectConfig, ZeroRttAcceptor};
use smt::transport::{take_delivered, CcConfig, Endpoint, Event, SecureEndpoint, StackKind};
use smt::wire::{
    IpHeader, Ipv4Header, Packet, PacketPayload, PacketType, SmtOverlayHeader, IPPROTO_SMT,
    IPV4_HEADER_LEN, SMT_OVERLAY_LEN,
};

fn handshake() -> (SessionKeys, SessionKeys) {
    let ca = CertificateAuthority::new("matrix-ca");
    let id = ca.issue_identity("server");
    establish(
        ClientConfig::new(ca.verifying_key(), "server"),
        ServerConfig::new(id, ca.verifying_key()),
    )
    .unwrap()
}

/// Drives the pair flight by flight, scrambling every flight through the
/// shared fault model (duplicate + shuffle, no loss), until both sides
/// quiesce (two consecutive idle rounds after timeout recovery).  Flights are
/// delivered instantaneously; virtual time advances only to run the
/// endpoints' retransmission timers when the wire goes idle.
fn pump_chaotic(client: &mut Endpoint, server: &mut Endpoint, seed: u64, max_rounds: usize) {
    pump_faulty(client, server, FaultConfig::chaotic(seed), max_rounds)
}

/// Like [`pump_chaotic`] with an arbitrary fault profile.
fn pump_faulty(
    client: &mut Endpoint,
    server: &mut Endpoint,
    faults: FaultConfig,
    max_rounds: usize,
) {
    let mut chaos = FaultyLink::new(faults);
    let mut now = 0u64;
    let mut idle = 0;
    for _ in 0..max_rounds {
        let mut to_server = Vec::new();
        client.poll_transmit(now, &mut to_server);
        let mut to_client = Vec::new();
        server.poll_transmit(now, &mut to_client);

        if to_server.is_empty() && to_client.is_empty() {
            idle += 1;
            if idle >= 2 {
                return;
            }
            // Jump the clock to the earliest armed timer and fire both ends.
            if let Some(deadline) = [client.next_timeout(), server.next_timeout()]
                .into_iter()
                .flatten()
                .min()
            {
                now = now.max(deadline);
            }
            client.on_timeout(now);
            server.on_timeout(now);
            continue;
        }
        idle = 0;
        chaos.scramble_flight(&mut to_server);
        chaos.scramble_flight(&mut to_client);
        for p in &to_server {
            let _ = server.handle_datagram(p, now);
        }
        for p in &to_client {
            let _ = client.handle_datagram(p, now);
        }
    }
    panic!("pair did not quiesce within {max_rounds} rounds");
}

/// One forged copy of an observed packet: a clone with one of six attacker
/// mutations applied.  Payload mutations keep the delivery coordinates of the
/// original (the copy must be recognized as a conflicting duplicate);
/// coordinate mutations retarget into the bogus high-ID space (`≥ 2^40`) the
/// fabric adversary also uses, so forged state lands in receiver tracking
/// instead of colliding with live transfers.
fn forge(rng: &mut StdRng, template: &Packet) -> Packet {
    let mut p = template.clone();
    match rng.gen_range(0..6u8) {
        // Bit-flip one payload byte (content forgery, same coordinates).
        0 => {
            if let Some(data) = p.payload.as_data() {
                if !data.is_empty() {
                    let mut bytes = data.to_vec();
                    let at = rng.gen_range(0..bytes.len());
                    bytes[at] ^= 1 << rng.gen_range(0..8u8);
                    p.payload = PacketPayload::Data(bytes.into());
                }
            }
        }
        // Cut the payload short (headers still declare the original lengths).
        1 => {
            if let Some(data) = p.payload.as_data() {
                if data.len() >= 2 {
                    p.payload = PacketPayload::Data(data.slice(0..data.len() / 2));
                }
            }
        }
        // Pad the payload beyond its declared length with random bytes.
        2 => {
            if let Some(data) = p.payload.as_data() {
                let mut bytes = data.to_vec();
                for _ in 0..rng.gen_range(1..=64usize) {
                    bytes.push(rng.gen());
                }
                p.payload = PacketPayload::Data(bytes.into());
            }
        }
        // Retarget to a bogus message: fresh high ID, random geometry.
        3 => {
            p.overlay.options.message_id = (1u64 << 40) | rng.gen::<u32>() as u64;
            p.overlay.options.message_length = rng.gen_range(1..=64 * 1024);
            p.overlay.options.tso_offset = rng.gen();
        }
        // Scramble the segment-geometry fields on the bogus-ID space (live
        // coordinates stay untouched, matching the fabric adversary's model).
        4 => {
            p.overlay.options.message_id = (1u64 << 40) | rng.gen::<u32>() as u64;
            p.overlay.options.record_count = rng.gen();
            p.overlay.options.first_record_index = rng.gen();
            p.overlay.options.flags = rng.gen();
            p.overlay.options.resend_packet_offset = rng.gen();
        }
        // Relabel the packet type so the payload reaches the wrong parser.
        _ => {
            let types = [
                PacketType::Data,
                PacketType::Grant,
                PacketType::Resend,
                PacketType::Ack,
                PacketType::Busy,
                PacketType::Control,
            ];
            p.overlay.tcp.packet_type = types[rng.gen_range(0..types.len())];
        }
    }
    p
}

/// A from-scratch garbage datagram: syntactically a packet, semantically
/// noise — random type, geometry and payload bytes on a bogus high message
/// ID, aimed at the victim's port (occasionally at a random, unknown one).
fn garbage_datagram(rng: &mut StdRng, src_port: u16, dst_port: u16) -> Packet {
    let len = rng.gen_range(0..1400usize);
    let mut bytes = vec![0u8; len];
    for b in &mut bytes {
        *b = rng.gen();
    }
    let (src, dst) = if rng.gen_range(0..4u8) == 0 {
        (rng.gen(), rng.gen())
    } else {
        (src_port, dst_port)
    };
    let types = [PacketType::Data, PacketType::Control, PacketType::Grant];
    let mut overlay = SmtOverlayHeader::data(src, dst, (1u64 << 40) | rng.gen::<u32>() as u64, 0);
    overlay.tcp.packet_type = types[rng.gen_range(0..types.len())];
    overlay.options.message_length = rng.gen_range(0..=128 * 1024);
    overlay.options.tso_offset = rng.gen();
    overlay.options.record_count = rng.gen();
    overlay.options.flags = rng.gen();
    Packet {
        ip: IpHeader::V4(Ipv4Header::new(
            [10, 0, 0, 9],
            [10, 0, 0, 2],
            IPPROTO_SMT,
            (IPV4_HEADER_LEN + SMT_OVERLAY_LEN + len) as u16,
        )),
        overlay,
        payload: PacketPayload::Data(bytes.into()),
        corrupted: false,
    }
}

/// Drives the pair like [`pump_faulty`] on a clean wire, but after every
/// legitimate flight lands it feeds both endpoints forged copies of the
/// flight plus from-scratch garbage datagrams, straight into
/// `handle_datagram`.  Originals land first — the fabric adversary's
/// inject-delay model — so payload forgeries are conflicting duplicates.
/// Every forged result is allowed to be an error; what it must never be is a
/// panic or a change to what the application observes.
fn pump_hostile(client: &mut Endpoint, server: &mut Endpoint, seed: u64, max_rounds: usize) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0bad_ca57_5eed_f00d);
    let mut now = 0u64;
    let mut idle = 0;
    for _ in 0..max_rounds {
        let mut to_server = Vec::new();
        client.poll_transmit(now, &mut to_server);
        let mut to_client = Vec::new();
        server.poll_transmit(now, &mut to_client);

        if to_server.is_empty() && to_client.is_empty() {
            idle += 1;
            if idle >= 2 {
                return;
            }
            if let Some(deadline) = [client.next_timeout(), server.next_timeout()]
                .into_iter()
                .flatten()
                .min()
            {
                now = now.max(deadline);
            }
            client.on_timeout(now);
            server.on_timeout(now);
            continue;
        }
        idle = 0;
        for p in &to_server {
            let _ = server.handle_datagram(p, now);
        }
        for p in &to_client {
            let _ = client.handle_datagram(p, now);
        }
        // The attack: forged copies of what just crossed the wire, plus pure
        // garbage, at both ends.
        for p in to_server.iter().take(4) {
            let forged = forge(&mut rng, p);
            let _ = server.handle_datagram(&forged, now);
        }
        for p in to_client.iter().take(4) {
            let forged = forge(&mut rng, p);
            let _ = client.handle_datagram(&forged, now);
        }
        let g = garbage_datagram(&mut rng, 4000, 5201);
        let _ = server.handle_datagram(&g, now);
        let g = garbage_datagram(&mut rng, 5201, 4000);
        let _ = client.handle_datagram(&g, now);
    }
    panic!("pair did not quiesce within {max_rounds} rounds");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Hostile input hardening, per stack: forged copies of live flights and
    /// arbitrary garbage datagrams pushed straight into `handle_datagram`
    /// never panic any of the eight stacks and never change what the
    /// concurrent legitimate transfer delivers.
    #[test]
    fn forged_datagrams_never_panic_or_corrupt_delivery(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..4000), 1..3),
        seed in any::<u64>(),
    ) {
        for stack in StackKind::all() {
            let (ck, sk) = handshake();
            let (mut client, mut server) = Endpoint::builder()
                .stack(stack)
                .pair(&ck, &sk, 4000, 5201)
                .unwrap();
            for p in &payloads {
                client.send(p, 0).unwrap();
            }
            pump_hostile(&mut client, &mut server, seed, 20_000);

            let mut got = take_delivered(&mut server);
            got.sort_by_key(|(id, _)| *id);
            let datas: Vec<Vec<u8>> = got.into_iter().map(|(_, d)| d).collect();
            prop_assert_eq!(
                &datas, &payloads,
                "stack {} corrupted the live transfer under forged input", stack.label()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Selective retransmission under an adversarial fabric, per stack: with
    /// loss, duplication and reordering all active, the cc-enabled pair
    /// (SACK selective retransmit on streams, bounded RESEND windows on
    /// messages) delivers the same message set byte-exactly as the
    /// go-back-N / fixed-RTO baseline pair — and never spends more
    /// retransmissions doing it.
    #[test]
    fn selective_retransmit_never_regresses_vs_go_back_n(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..16_000), 1..3),
        seed in any::<u64>(),
    ) {
        let faults = FaultConfig {
            loss: 0.05,
            duplicate: 0.3,
            reorder: 0.5,
            seed,
            ..FaultConfig::default()
        };
        for stack in StackKind::all() {
            let mut retx = [0u64; 2];
            for (slot, cc) in [CcConfig::default(), CcConfig::disabled()].into_iter().enumerate() {
                let (ck, sk) = handshake();
                let (mut client, mut server) = Endpoint::builder()
                    .stack(stack)
                    .congestion_control(cc)
                    .pair(&ck, &sk, 4000, 5201)
                    .unwrap();
                for p in &payloads {
                    client.send(p, 0).unwrap();
                }
                pump_faulty(&mut client, &mut server, faults, 40_000);

                let mut got = take_delivered(&mut server);
                got.sort_by_key(|(id, _)| *id);
                let datas: Vec<Vec<u8>> = got.into_iter().map(|(_, d)| d).collect();
                prop_assert_eq!(
                    &datas, &payloads,
                    "stack {} ({}) corrupted delivery under adversarial faults",
                    stack.label(), if slot == 0 { "cc" } else { "go-back-N" }
                );
                retx[slot] = client.stats().retransmissions + server.stats().retransmissions;
            }
            prop_assert!(
                retx[0] <= retx[1],
                "stack {}: selective retransmit spent {} retransmissions, go-back-N only {}",
                stack.label(), retx[0], retx[1]
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The same message set, pushed through all eight stacks via the trait
    /// under reordering + duplication, is delivered identically everywhere,
    /// and every stack's replay counter records the injected duplicates.
    #[test]
    fn all_stacks_agree_under_reordering_and_duplication(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..6000), 1..4),
        seed in any::<u64>(),
    ) {
        let mut per_stack: Vec<(StackKind, Vec<Vec<u8>>)> = Vec::new();
        for stack in StackKind::all() {
            let (ck, sk) = handshake();
            let (mut client, mut server) = Endpoint::builder()
                .stack(stack)
                .pair(&ck, &sk, 4000, 5201)
                .unwrap();
            for p in &payloads {
                client.send(p, 0).unwrap();
            }
            pump_chaotic(&mut client, &mut server, seed, 10_000);

            let mut got = take_delivered(&mut server);
            got.sort_by_key(|(id, _)| *id);
            let datas: Vec<Vec<u8>> = got.into_iter().map(|(_, d)| d).collect();
            prop_assert_eq!(
                &datas, &payloads,
                "stack {} delivered a different message set", stack.label()
            );
            prop_assert!(
                server.stats().replays_rejected > 0,
                "stack {} did not count the injected duplicates", stack.label()
            );
            per_stack.push((stack, datas));
        }
        // Identical delivered payloads across every stack.
        let (first_stack, reference) = &per_stack[0];
        for (stack, datas) in &per_stack[1..] {
            prop_assert_eq!(
                datas, reference,
                "stacks {} and {} disagree", stack.label(), first_stack.label()
            );
        }
    }

    /// The in-band handshake completes on every encrypted stack under 1 %
    /// loss plus full reordering (the shared `FaultyLink::scramble_flight`
    /// model), both cold and 0-RTT-resumed, and the piggybacked first
    /// message still arrives exactly once.
    #[test]
    fn in_band_handshake_survives_loss_and_reordering(
        seed in any::<u64>(),
        payload_len in 1usize..4000,
    ) {
        let faults = FaultConfig {
            loss: 0.01,
            reorder: 1.0,
            ..FaultConfig::lossy(0.01, seed)
        };
        let ca = CertificateAuthority::new("hs-matrix-ca");
        let id = ca.issue_identity("server");
        let payload = vec![0xa5u8; payload_len];
        for stack in StackKind::all().into_iter().filter(|s| s.is_encrypted()) {
            let acceptor = ZeroRttAcceptor::new(SmtTicketIssuer::new(id.clone(), 3600), 1 << 12);
            let mut ticket = None;
            for resumed_run in [false, true] {
                let mut connect = ConnectConfig::new(ca.verifying_key(), "server");
                if resumed_run {
                    let t: smt::crypto::handshake::SmtTicket =
                        ticket.take().expect("cold run minted a ticket");
                    connect = connect.resume(t, 100);
                }
                let accept = AcceptConfig::new(id.clone(), ca.verifying_key())
                    .zero_rtt(acceptor.clone())
                    .ticket_time(100);
                let (mut client, mut server) = Endpoint::builder()
                    .stack(stack)
                    .handshake_pair(connect, accept, 4000, 5201)
                    .unwrap();
                client.send(&payload, 0).unwrap();
                pump_faulty(&mut client, &mut server, faults, 50_000);

                let mut completed = None;
                let mut acked = 0;
                while let Some(ev) = client.poll_event() {
                    match ev {
                        Event::HandshakeComplete { rtt_ns, resumed, .. } => {
                            completed = Some((rtt_ns, resumed));
                        }
                        Event::TicketReceived(t) => ticket = Some(*t),
                        Event::MessageAcked(_) => acked += 1,
                        Event::Error(e) => panic!("{}: client error: {e}", stack.label()),
                        Event::MessageDelivered { .. } => {}
                    }
                }
                // This pump delivers flights instantaneously (virtual time
                // only advances to fire timers), so rtt_ns is only nonzero
                // when loss forced a retransmission round; the fabric-driven
                // paths assert the measured latency instead.
                let (_rtt_ns, resumed) = completed
                    .unwrap_or_else(|| panic!("{}: no handshake completion", stack.label()));
                prop_assert_eq!(resumed, resumed_run, "{}", stack.label());
                prop_assert_eq!(acked, 1, "{}: exactly one ack", stack.label());

                let got = take_delivered(&mut server);
                prop_assert_eq!(got.len(), 1, "{}: delivered once", stack.label());
                prop_assert_eq!(&got[0].1, &payload, "{}", stack.label());
                prop_assert!(
                    ticket.is_some(),
                    "{}: server mints an in-band ticket", stack.label()
                );
            }
        }
    }
}

/// §4.5.3 / RFC 8446 §8: a replayed 0-RTT first flight delivers its early
/// data exactly once.  The shared [`ZeroRttAcceptor`] replay cache rejects
/// the byte-identical flight at any other endpoint of the listener, and the
/// original endpoint treats it as a carrier-level duplicate (re-answering
/// with its server flight, not re-delivering).
#[test]
fn replayed_zero_rtt_first_flight_rejected_exactly_once() {
    let ca = CertificateAuthority::new("replay-ca");
    let id = ca.issue_identity("server");
    let acceptor = ZeroRttAcceptor::new(SmtTicketIssuer::new(id.clone(), 3600), 1 << 12);
    let ticket = acceptor.ticket(0);

    let mut client = Endpoint::builder()
        .stack(StackKind::SmtSw)
        .path(smt::core::segment::PathInfo::pair(4000, 5201).0)
        .connect(ConnectConfig::new(ca.verifying_key(), "server").resume(ticket, 0))
        .unwrap();
    client.send(b"POST /transfer?amount=100", 0).unwrap();
    let mut first_flight = Vec::new();
    client.poll_transmit(0, &mut first_flight);
    assert!(!first_flight.is_empty());

    let mk_server = || {
        Endpoint::builder()
            .stack(StackKind::SmtSw)
            .path(smt::core::segment::PathInfo::pair(4000, 5201).1)
            .accept(AcceptConfig::new(id.clone(), ca.verifying_key()).zero_rtt(acceptor.clone()))
            .unwrap()
    };

    // Original delivery: the early data arrives before the handshake is even
    // complete.
    let mut server_a = mk_server();
    for p in &first_flight {
        server_a.handle_datagram(p, 0).unwrap();
    }
    let got = take_delivered(&mut server_a);
    assert_eq!(got.len(), 1, "early data delivered once");
    assert_eq!(got[0].1, b"POST /transfer?amount=100");

    // The byte-identical flight replayed at a *different* endpoint of the
    // same listener: rejected by the shared ClientHello-random cache.
    let mut server_b = mk_server();
    for p in &first_flight {
        let _ = server_b.handle_datagram(p, 0);
    }
    let mut saw_error = false;
    let mut replay_delivered = 0;
    while let Some(ev) = server_b.poll_event() {
        match ev {
            Event::Error(_) => saw_error = true,
            Event::MessageDelivered { .. } => replay_delivered += 1,
            _ => {}
        }
    }
    assert_eq!(replay_delivered, 0, "replay must not deliver");
    assert!(saw_error, "replay surfaces an error event");

    // Replaying at the original endpoint is a carrier-level duplicate: it
    // re-answers with the server flight but never re-delivers.
    for p in &first_flight {
        let _ = server_a.handle_datagram(p, 0);
    }
    assert!(
        take_delivered(&mut server_a).is_empty(),
        "no second delivery"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// App conformance (Fig. 8's workload on the conformance matrix): the
    /// same KV get/put/delete sequence and the same RPC echo round-trips,
    /// executed through every stack's real datapath under full reordering,
    /// duplication and 1 % loss, yield byte-identical responses on all eight
    /// stacks — and identical to a direct in-memory execution of the store.
    #[test]
    fn kv_and_rpc_round_trips_identical_on_all_stacks(
        ops in proptest::collection::vec(
            (0u8..3, any::<u16>(), proptest::collection::vec(any::<u8>(), 0..400)),
            1..8,
        ),
        rpc_payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..2000),
            1..4,
        ),
        seed in any::<u64>(),
    ) {
        let faults = FaultConfig {
            duplicate: 0.2,
            reorder: 1.0,
            ..FaultConfig::lossy(0.01, seed)
        };
        let requests: Vec<Vec<u8>> = ops
            .iter()
            .map(|(kind, k, value)| {
                let key = format!("user{:08}", k % 64);
                match kind {
                    0 => KvRequest::Get { key },
                    1 => KvRequest::Put { key, value: value.clone() },
                    _ => KvRequest::Delete { key },
                }
                .encode()
            })
            .collect();

        // Reference run: the store executed directly, no network.
        let mut reference_store = KvStore::new();
        reference_store.load(64, 100);
        let reference: Vec<Vec<u8>> =
            requests.iter().map(|r| reference_store.handle_wire(r)).collect();

        for stack in StackKind::all() {
            let (ck, sk) = handshake();
            let (mut client, mut server) = Endpoint::builder()
                .stack(stack)
                .pair(&ck, &sk, 4000, 5201)
                .unwrap();

            // KV phase: requests over the faulty wire, served by a fresh
            // identically-loaded store, responses back over the same wire.
            for r in &requests {
                client.send(r, 0).unwrap();
            }
            pump_faulty(&mut client, &mut server, faults, 40_000);
            let mut got = take_delivered(&mut server);
            got.sort_by_key(|(id, _)| *id);
            prop_assert_eq!(got.len(), requests.len(), "{}: lost KV requests", stack.label());
            let mut store = KvStore::new();
            store.load(64, 100);
            for (_, req) in &got {
                let resp = store.handle_wire(req);
                server.send(&resp, 0).unwrap();
            }
            pump_faulty(&mut client, &mut server, faults, 40_000);
            let mut resp = take_delivered(&mut client);
            resp.sort_by_key(|(id, _)| *id);
            let responses: Vec<Vec<u8>> = resp.into_iter().map(|(_, d)| d).collect();
            prop_assert_eq!(
                &responses, &reference,
                "stack {}: KV responses diverge from the in-memory reference",
                stack.label()
            );

            // RPC phase: the server echoes each payload verbatim; the client
            // must observe its own bytes unchanged.
            for p in &rpc_payloads {
                client.send(p, 0).unwrap();
            }
            pump_faulty(&mut client, &mut server, faults, 40_000);
            let mut echo_in = take_delivered(&mut server);
            echo_in.sort_by_key(|(id, _)| *id);
            for (_, data) in &echo_in {
                server.send(data, 0).unwrap();
            }
            pump_faulty(&mut client, &mut server, faults, 40_000);
            let mut echoed = take_delivered(&mut client);
            echoed.sort_by_key(|(id, _)| *id);
            let echoes: Vec<Vec<u8>> = echoed.into_iter().map(|(_, d)| d).collect();
            prop_assert_eq!(
                &echoes, &rpc_payloads,
                "stack {}: RPC echo corrupted the payload bytes",
                stack.label()
            );
        }
    }
}
