//! A remote block store standing in for NVMe-oF (paper §5.4, Fig. 9).
//!
//! NVMe-oF exports an NVMe SSD over the network; the paper adds Homa/SMT as the
//! transport beneath the in-kernel NVMe-oF target and measures FIO random-read
//! latency over varying iodepth.  Here the SSD is simulated (a read latency per
//! 4 KB block plus a per-device queue), the block store serves reads/writes over
//! any transport, and [`FioGenerator`] reproduces the FIO random-read workload.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Block store configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BlockStoreConfig {
    /// Device capacity in blocks.
    pub blocks: u64,
    /// Block size in bytes (the paper uses the NVMe default of 4 KB).
    pub block_size: usize,
    /// Simulated SSD read latency per block in nanoseconds (typical datacenter
    /// NVMe ≈ 80 µs for a 4 KB random read).
    pub read_latency_ns: u64,
    /// Simulated SSD write latency per block in nanoseconds.
    pub write_latency_ns: u64,
}

impl Default for BlockStoreConfig {
    fn default() -> Self {
        Self {
            blocks: 1 << 20,
            block_size: 4096,
            read_latency_ns: 80_000,
            write_latency_ns: 20_000,
        }
    }
}

/// A block read/write request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockRequest {
    /// Read one block.
    Read {
        /// Logical block address.
        lba: u64,
    },
    /// Write one block.
    Write {
        /// Logical block address.
        lba: u64,
    },
}

/// Size of the encoded command capsule for reads and of the response header —
/// the NVMe-oF command capsule is 64 bytes and the response carries a 16-byte
/// completion header ahead of the block data (`read_rpc_sizes` reflects both).
pub const CAPSULE_BYTES: usize = 64;
/// Response header bytes ahead of the block payload.
pub const RESPONSE_HEADER_BYTES: usize = 16;

impl BlockRequest {
    /// Serializes the request as a wire capsule.  Reads encode as a fixed
    /// 64-byte command capsule (tag + LBA, zero padded); writes append the
    /// length-prefixed block payload after the capsule.
    pub fn encode(&self, payload: Option<&[u8]>) -> Vec<u8> {
        let mut out = vec![0u8; CAPSULE_BYTES];
        match self {
            BlockRequest::Read { lba } => {
                out[0] = 1;
                out[1..9].copy_from_slice(&lba.to_be_bytes());
            }
            BlockRequest::Write { lba } => {
                out[0] = 2;
                out[1..9].copy_from_slice(&lba.to_be_bytes());
                let data = payload.unwrap_or_default();
                out.extend_from_slice(&(data.len() as u32).to_be_bytes());
                out.extend_from_slice(data);
            }
        }
        out
    }

    /// Parses a wire capsule, returning the request and any write payload.
    pub fn decode(buf: &[u8]) -> Option<(BlockRequest, Option<Vec<u8>>)> {
        if buf.len() < CAPSULE_BYTES {
            return None;
        }
        let lba = u64::from_be_bytes(buf[1..9].try_into().ok()?);
        match buf[0] {
            1 => Some((BlockRequest::Read { lba }, None)),
            2 => {
                let rest = &buf[CAPSULE_BYTES..];
                let n = u32::from_be_bytes(rest.get(..4)?.try_into().ok()?) as usize;
                let data = rest.get(4..4 + n)?.to_vec();
                Some((BlockRequest::Write { lba }, Some(data)))
            }
            _ => None,
        }
    }

    /// Builds a read-completion response: 16-byte header (status + LBA) then
    /// the block data.
    pub fn encode_response(lba: u64, status: u8, data: &[u8]) -> Vec<u8> {
        let mut out = vec![0u8; RESPONSE_HEADER_BYTES];
        out[0] = status;
        out[1..9].copy_from_slice(&lba.to_be_bytes());
        out.extend_from_slice(data);
        out
    }
}

/// The simulated remote block device.
#[derive(Debug)]
pub struct BlockStore {
    config: BlockStoreConfig,
    /// Sparse storage: only written blocks are materialised.
    written: std::collections::HashMap<u64, Vec<u8>>,
    /// Reads served.
    pub reads: u64,
    /// Writes served.
    pub writes: u64,
}

impl BlockStore {
    /// Creates a block store.
    pub fn new(config: BlockStoreConfig) -> Self {
        Self {
            config,
            written: std::collections::HashMap::new(),
            reads: 0,
            writes: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &BlockStoreConfig {
        &self.config
    }

    /// Executes a request, returning the response payload and the simulated
    /// device latency in nanoseconds.
    pub fn execute(&mut self, request: &BlockRequest, payload: Option<&[u8]>) -> (Vec<u8>, u64) {
        match request {
            BlockRequest::Read { lba } => {
                self.reads += 1;
                let data = self
                    .written
                    .get(lba)
                    .cloned()
                    .unwrap_or_else(|| vec![(*lba % 251) as u8; self.config.block_size]);
                (data, self.config.read_latency_ns)
            }
            BlockRequest::Write { lba } => {
                self.writes += 1;
                let data = payload.map(|p| p.to_vec()).unwrap_or_default();
                self.written.insert(*lba, data);
                (Vec::new(), self.config.write_latency_ns)
            }
        }
    }

    /// Handles an encoded request capsule, producing the encoded response and
    /// the simulated device latency in nanoseconds.  Malformed capsules get a
    /// header-only error response (status 0xFF) with zero device time — the
    /// target rejects them before any media access.
    pub fn handle_wire(&mut self, request: &[u8]) -> (Vec<u8>, u64) {
        match BlockRequest::decode(request) {
            Some((req, payload)) => {
                let lba = match req {
                    BlockRequest::Read { lba } | BlockRequest::Write { lba } => lba,
                };
                if lba >= self.config.blocks {
                    return (BlockRequest::encode_response(lba, 0xFE, &[]), 0);
                }
                let (data, latency) = self.execute(&req, payload.as_deref());
                (BlockRequest::encode_response(lba, 0, &data), latency)
            }
            None => (BlockRequest::encode_response(0, 0xFF, &[]), 0),
        }
    }

    /// Request and response application sizes for a read of one block (the
    /// command capsule is small; the response carries the block).
    pub fn read_rpc_sizes(&self) -> (usize, usize) {
        (64, self.config.block_size + 16)
    }
}

/// FIO-style random-read workload generator.
#[derive(Debug)]
pub struct FioGenerator {
    rng: StdRng,
    blocks: u64,
    /// Outstanding requests the generator keeps in flight (FIO `iodepth`).
    pub iodepth: usize,
}

impl FioGenerator {
    /// Creates a generator with the given iodepth.
    pub fn new(blocks: u64, iodepth: usize, seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            blocks,
            iodepth: iodepth.max(1),
        }
    }

    /// The next random-read request.
    pub fn next_read(&mut self) -> BlockRequest {
        BlockRequest::Read {
            lba: self.rng.gen_range(0..self.blocks),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_returns_block_sized_data_with_latency() {
        let mut store = BlockStore::new(BlockStoreConfig::default());
        let (data, lat) = store.execute(&BlockRequest::Read { lba: 7 }, None);
        assert_eq!(data.len(), 4096);
        assert_eq!(lat, 80_000);
        assert_eq!(store.reads, 1);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut store = BlockStore::new(BlockStoreConfig::default());
        let block = vec![0xEEu8; 4096];
        let (_, wlat) = store.execute(&BlockRequest::Write { lba: 3 }, Some(&block));
        assert_eq!(wlat, 20_000);
        let (data, _) = store.execute(&BlockRequest::Read { lba: 3 }, None);
        assert_eq!(data, block);
    }

    #[test]
    fn fio_generator_stays_in_range_and_is_deterministic() {
        let mut a = FioGenerator::new(1000, 4, 1);
        let mut b = FioGenerator::new(1000, 4, 1);
        for _ in 0..100 {
            let ra = a.next_read();
            assert_eq!(ra, b.next_read());
            if let BlockRequest::Read { lba } = ra {
                assert!(lba < 1000);
            }
        }
        assert_eq!(a.iodepth, 4);
    }

    #[test]
    fn wire_codec_roundtrip_and_sizes() {
        let read = BlockRequest::Read { lba: 77 };
        let wire = read.encode(None);
        assert_eq!(wire.len(), CAPSULE_BYTES);
        assert_eq!(BlockRequest::decode(&wire).unwrap(), (read, None));

        let block = vec![0xABu8; 4096];
        let write = BlockRequest::Write { lba: 9 };
        let wire = write.encode(Some(&block));
        let (req, payload) = BlockRequest::decode(&wire).unwrap();
        assert_eq!(req, write);
        assert_eq!(payload.unwrap(), block);
    }

    #[test]
    fn handle_wire_serves_reads_and_rejects_garbage() {
        let mut store = BlockStore::new(BlockStoreConfig::default());
        let (resp, lat) = store.handle_wire(&BlockRequest::Read { lba: 5 }.encode(None));
        assert_eq!(resp.len(), 4096 + RESPONSE_HEADER_BYTES);
        assert_eq!(resp[0], 0);
        assert_eq!(lat, 80_000);

        let (resp, lat) = store.handle_wire(&[0xFFu8; 80]);
        assert_eq!(resp[0], 0xFF);
        assert_eq!(lat, 0);
        // Out-of-range LBA is rejected before the media.
        let (resp, lat) = store.handle_wire(&BlockRequest::Read { lba: u64::MAX }.encode(None));
        assert_eq!(resp[0], 0xFE);
        assert_eq!(lat, 0);
        assert_eq!(store.reads, 1);
    }

    #[test]
    fn rpc_sizes_match_block_size() {
        let store = BlockStore::new(BlockStoreConfig::default());
        let (req, resp) = store.read_rpc_sizes();
        assert!(req < 128);
        assert_eq!(resp, 4096 + 16);
    }
}
