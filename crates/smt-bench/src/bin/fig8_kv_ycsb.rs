//! Regenerates Fig. 8: KV-store throughput under YCSB A–E.
use smt_bench::{fig8_kv_ycsb, output};

fn main() {
    let rows = fig8_kv_ycsb(&[64, 1024, 4096]);
    if output::maybe_json(&rows) {
        return;
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|p| vec![p.series.clone(), p.x.clone(), output::krate(p.y)])
        .collect();
    output::print_table(
        "Fig. 8: KV store YCSB throughput (K ops/s)",
        &["stack-value", "workload", "K ops/s"],
        &table,
    );
}
