//! Regenerates Fig. 11: effect of TSO.
use smt_bench::{fig11_tso, output};

fn main() {
    let rows = fig11_tso();
    if output::maybe_json(&rows) {
        return;
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|p| vec![p.series.clone(), p.x.clone(), output::f2(p.y)])
        .collect();
    output::print_table(
        "Fig. 11: effect of TSO on SMT-hw RTT (us)",
        &["mode", "RPC size (B)", "RTT (us)"],
        &table,
    );
}
