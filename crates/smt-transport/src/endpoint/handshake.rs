//! In-band connection setup: handshake flights carried in CONTROL packets
//! over the fabric, with clocked RTO retransmission.
//!
//! [`EndpointBuilder::connect`](super::EndpointBuilder::connect) and
//! [`EndpointBuilder::accept`](super::EndpointBuilder::accept) build endpoints
//! that establish their own keys on the wire instead of receiving them out of
//! band.  Both backends share the machinery in this module:
//!
//! * **Flight carrier.** A handshake flight (the byte strings produced by
//!   `smt_crypto::handshake::machine`) is fragmented into
//!   [`PacketType::Control`] packets — option area: `message_id` = flight
//!   sequence number, `message_length` = flight length, `tso_offset` =
//!   fragment offset — and reassembled on the far side.  Flights 0/2 travel
//!   client→server (ClientHello + optional 0-RTT record, then Finished),
//!   flight 1 server→client (ServerHello + optional in-band SMT-ticket +
//!   encrypted messages).
//! * **Loss recovery.** The sender of a flight retransmits it when its RTO
//!   (the same `rto_ns` the data path uses) expires without the next flight
//!   arriving, and either side answers a *duplicate* of the previous flight
//!   by resending its own — the receiver-driven half of recovery.  Duplicate
//!   final flights are absorbed without response, so duplication faults
//!   cannot create retransmission storms.
//! * **Timing.** The driver stamps the virtual time of its first transmit
//!   (client) or first ClientHello arrival (server); the difference to the
//!   completing flight is the `rtt_ns` reported in
//!   [`Event::HandshakeComplete`](super::Event::HandshakeComplete).
//!
//! The [`ZeroRttAcceptor`] is the shared server-side state of the paper's
//! SMT-ticket handshake (§4.5.2/§4.5.3): the long-term ticket issuer plus the
//! ClientHello-random anti-replay cache, shared by every accepted endpoint of
//! one listener so a replayed 0-RTT first flight is rejected no matter which
//! connection it is replayed against.
//!
//! [`SharedPathSecrets`] is the per-host state of **path-secret amortized**
//! handshakes: the first full handshake between a pair of hosts mints a path
//! secret on both sides, and every later connection between them derives
//! fresh per-connection keys from it in one symmetric-crypto flight each way
//! — zero extra round trips, no public-key operations.  When the server has
//! evicted the secret (bounded map, restart), the driver transparently falls
//! back to the full handshake on the same connection.

use crate::stack::StackKind;
use bytes::Bytes;
use smt_core::segment::PathInfo;
use smt_crypto::cert::{Identity, VerifyingKey};
use smt_crypto::handshake::{
    derived_reject_flight, derived_server_respond, is_derived_flight,
    ClientConfig as CryptoClientConfig, ClientMachine, ClientMode, DerivedClient,
    DerivedClientOutcome, DerivedServerOutcome, PathSecret, PathSecretMap, ReplayCache,
    ServerConfig as CryptoServerConfig, ServerMachine, SessionKeys, SmtTicket, SmtTicketIssuer,
    ZeroRttContext,
};
use smt_sim::Nanos;
use smt_wire::{
    max_payload_per_packet, IpHeader, Ipv4Header, OverlayTcpHeader, Packet, PacketPayload,
    PacketType, SmtOptionArea, SmtOverlayHeader, IPV4_HEADER_LEN, SMT_OVERLAY_LEN,
};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};

/// Largest application payload that may piggyback as 0-RTT early data on the
/// first flight (one TLS record).
pub const EARLY_DATA_MAX: usize = 16 * 1024;

/// Cap on application bytes queued while an in-band handshake runs; beyond
/// it `send` returns a typed error instead of buffering without bound.
pub(crate) const MAX_QUEUED_BYTES: usize = 16 << 20;

/// Hard cap on one reassembled handshake flight.  Real flights are a few KiB
/// (the certificate chain dominates); the flight length is attacker-declared
/// wire data, so anything larger is rejected before a single byte of it is
/// buffered (DESIGN.md §8 state-bounds table).
pub const MAX_FLIGHT_BYTES: usize = 64 * 1024;

/// Client-side configuration for [`super::EndpointBuilder::connect`].
///
/// A fresh configuration performs the full 1-RTT handshake; [`resume`] turns
/// it into the SMT-ticket 0-RTT handshake that piggybacks the first queued
/// message as early data.
///
/// [`resume`]: ConnectConfig::resume
pub struct ConnectConfig {
    pub(crate) crypto: CryptoClientConfig,
    pub(crate) resume: Option<ResumeTicket>,
    pub(crate) forward_secrecy: bool,
    pub(crate) secrets: Option<SharedPathSecrets>,
}

pub(crate) struct ResumeTicket {
    pub(crate) ticket: SmtTicket,
    pub(crate) now: u64,
}

impl std::fmt::Debug for ConnectConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConnectConfig")
            .field("server_name", &self.crypto.server_name)
            .field("resume", &self.resume.is_some())
            .finish_non_exhaustive()
    }
}

impl ConnectConfig {
    /// A client that authenticates the server against the internal CA.
    pub fn new(ca_key: VerifyingKey, server_name: impl Into<String>) -> Self {
        Self {
            crypto: CryptoClientConfig::new(ca_key, server_name),
            resume: None,
            forward_secrecy: false,
            secrets: None,
        }
    }

    /// Full control over the handshake (mTLS identity, cipher suite, PSK
    /// resumption state, pre-generated keys, extensions).
    pub fn from_crypto(crypto: CryptoClientConfig) -> Self {
        Self {
            crypto,
            resume: None,
            forward_secrecy: false,
            secrets: None,
        }
    }

    /// Resumes with an SMT-ticket: the 0-RTT handshake that sends the first
    /// queued message as early data in the very first flight.  `now` is the
    /// client's clock for ticket expiry (same epoch as the ticket).
    pub fn resume(mut self, ticket: SmtTicket, now: u64) -> Self {
        self.resume = Some(ResumeTicket { ticket, now });
        self
    }

    /// Requests the forward-secret 0-RTT variant ("Init-FS").  Must match the
    /// server's `resumption_forward_secrecy` configuration.  Order-independent
    /// with [`resume`](Self::resume); it only takes effect when resuming.
    pub fn forward_secrecy(mut self, on: bool) -> Self {
        self.forward_secrecy = on;
        self
    }

    /// True when this configuration resumes with an SMT-ticket (0-RTT).
    pub fn is_resumption(&self) -> bool {
        self.resume.is_some()
    }

    /// Attaches the host's shared path-secret state.  When the map already
    /// holds a secret for this server, the connection runs the **derived
    /// handshake**: per-connection keys HKDF-derived from the path secret in
    /// one symmetric-crypto flight each way, early data riding the hello —
    /// no extra round trips and no public-key work.  Otherwise the
    /// full/ticket handshake runs and mints the path secret into the map so
    /// the next connection to the same server can derive.  A server that has
    /// meanwhile evicted the secret triggers a transparent fallback to the
    /// full handshake on the same connection.
    pub fn path_secrets(mut self, secrets: SharedPathSecrets) -> Self {
        self.secrets = Some(secrets);
        self
    }
}

/// The shared server-side state of the SMT-ticket 0-RTT handshake: the
/// long-term ticket issuer and the ClientHello-random anti-replay cache
/// (§4.5.3), shared across every endpoint accepted by one listener.
#[derive(Clone)]
pub struct ZeroRttAcceptor {
    pub(crate) issuer: Arc<SmtTicketIssuer>,
    pub(crate) replay: Arc<Mutex<ReplayCache>>,
}

impl std::fmt::Debug for ZeroRttAcceptor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ZeroRttAcceptor")
            .field("ticket_id", &self.issuer.ticket_id())
            .finish_non_exhaustive()
    }
}

impl ZeroRttAcceptor {
    /// Wraps a ticket issuer and a replay cache bounded to `replay_capacity`
    /// ClientHello randoms.
    pub fn new(issuer: SmtTicketIssuer, replay_capacity: usize) -> Self {
        Self {
            issuer: Arc::new(issuer),
            replay: Arc::new(Mutex::new(ReplayCache::new(replay_capacity))),
        }
    }

    /// Mints the current SMT-ticket, as the internal DNS resolver would
    /// publish it (out-of-band distribution; accepted endpoints also splice
    /// it into their server flight for in-band distribution).
    pub fn ticket(&self, now: u64) -> SmtTicket {
        self.issuer.ticket(now)
    }
}

/// The shared per-host state of path-secret amortized handshakes: the
/// bounded [`PathSecretMap`] that completed full handshakes mint into, and
/// the derived-hello anti-replay cache (a derived hello plus its early data
/// is replayable wholesale, exactly like a 0-RTT ClientHello).
///
/// Clone one instance into every endpoint of a host — into
/// [`ConnectConfig::path_secrets`] on the client side and
/// [`AcceptConfig::path_secrets`] on the server side — so all connections
/// between a pair of hosts amortize a single public-key handshake.
#[derive(Clone)]
pub struct SharedPathSecrets {
    pub(crate) map: Arc<Mutex<PathSecretMap>>,
    pub(crate) replay: Arc<Mutex<ReplayCache>>,
}

impl std::fmt::Debug for SharedPathSecrets {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedPathSecrets")
            .field("len", &self.len())
            .finish_non_exhaustive()
    }
}

impl SharedPathSecrets {
    /// A path-secret map bounded to `capacity` peers, with a derived-hello
    /// replay cache bounded to `replay_capacity` client randoms.  Both evict
    /// oldest-first and count their evictions.
    pub fn new(capacity: usize, replay_capacity: usize) -> Self {
        Self {
            map: Arc::new(Mutex::new(PathSecretMap::new(capacity))),
            replay: Arc::new(Mutex::new(ReplayCache::new(replay_capacity))),
        }
    }

    fn lock_map(&self) -> std::sync::MutexGuard<'_, PathSecretMap> {
        // Recover from a poisoned lock: the map contents (peer → secret)
        // stay valid even if another endpoint panicked mid-insert.
        self.map.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The path secret shared with `peer`, if one is held.
    pub fn get(&self, peer: &str) -> Option<PathSecret> {
        self.lock_map().get(peer).cloned()
    }

    /// Inserts (or replaces) `secret` under its peer name, evicting the
    /// oldest entry when at capacity.
    pub fn insert(&self, secret: PathSecret) {
        self.lock_map().insert(secret);
    }

    /// Removes and returns the path secret shared with `peer` (used to drop
    /// a secret the server has evicted, and by churn tests to force the
    /// full-handshake fallback).
    pub fn remove(&self, peer: &str) -> Option<PathSecret> {
        self.lock_map().remove(peer)
    }

    /// Number of path secrets currently held.
    pub fn len(&self) -> usize {
        self.lock_map().len()
    }

    /// True when no path secrets are held.
    pub fn is_empty(&self) -> bool {
        self.lock_map().is_empty()
    }

    /// Path secrets evicted to stay within the capacity bound.
    pub fn evictions(&self) -> u64 {
        self.lock_map().evictions()
    }

    /// Derived-hello client randoms evicted from the replay cache.
    pub fn replay_evictions(&self) -> u64 {
        self.replay
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .evictions()
    }
}

/// Server-side configuration for [`super::EndpointBuilder::accept`].
pub struct AcceptConfig {
    pub(crate) crypto: CryptoServerConfig,
    pub(crate) acceptor: Option<ZeroRttAcceptor>,
    pub(crate) ticket_now: u64,
    pub(crate) secrets: Option<SharedPathSecrets>,
}

impl std::fmt::Debug for AcceptConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AcceptConfig")
            .field("zero_rtt", &self.acceptor.is_some())
            .finish_non_exhaustive()
    }
}

impl AcceptConfig {
    /// A server presenting `identity`, validating clients (under mTLS)
    /// against the internal CA.
    pub fn new(identity: Identity, ca_key: VerifyingKey) -> Self {
        Self {
            crypto: CryptoServerConfig::new(identity, ca_key),
            acceptor: None,
            ticket_now: 0,
            secrets: None,
        }
    }

    /// Full control over the handshake (mTLS requirement, suites, PSKs,
    /// extension limits).
    pub fn from_crypto(crypto: CryptoServerConfig) -> Self {
        Self {
            crypto,
            acceptor: None,
            ticket_now: 0,
            secrets: None,
        }
    }

    /// Enables SMT-ticket 0-RTT: the endpoint accepts ticket ClientHellos
    /// through the shared `acceptor` *and* splices a fresh ticket into its
    /// server flight so the client can resume in-band.
    pub fn zero_rtt(mut self, acceptor: ZeroRttAcceptor) -> Self {
        self.acceptor = Some(acceptor);
        self
    }

    /// Sets the issue timestamp stamped on in-band minted tickets (same
    /// epoch the resuming client passes to [`ConnectConfig::resume`]).
    pub fn ticket_time(mut self, now: u64) -> Self {
        self.ticket_now = now;
        self
    }

    /// Attaches the host's shared path-secret state: derived hellos are
    /// answered from the map (replay-checked against the shared cache), a
    /// hello whose path secret was evicted is rejected so the client falls
    /// back, and completed full handshakes mint fresh path secrets into the
    /// map for later connections to derive from.
    pub fn path_secrets(mut self, secrets: SharedPathSecrets) -> Self {
        self.secrets = Some(secrets);
        self
    }
}

/// Everything a completed in-band handshake hands to the owning endpoint.
pub(crate) struct HandshakeResult {
    pub keys: SessionKeys,
    /// Virtual time between this side's first handshake action and
    /// completion.
    pub rtt_ns: Nanos,
    /// Whether the session was resumed (PSK or SMT-ticket).
    pub resumed: bool,
    /// In-band SMT-ticket received from the server (client side only).
    pub ticket: Option<SmtTicket>,
    /// Whether this (client) side piggybacked early data that the server
    /// accepted.
    pub early_data_sent: bool,
}

/// What one handled CONTROL packet produced.
#[derive(Default)]
pub(crate) struct DriverOutcome {
    /// 0-RTT early data decrypted from the first flight (server side),
    /// surfaced before the handshake completes — the point of the exchange.
    pub early_data: Option<Vec<u8>>,
    /// Present exactly once, when the handshake completes on this side.
    pub complete: Option<Box<HandshakeResult>>,
    /// A fatal handshake failure; the endpoint goes dead.
    pub error: Option<String>,
    /// Early data reclaimed from a rejected derived attempt whose full
    /// fallback handshake cannot carry it; the endpoint re-queues it as
    /// message 0 so it flushes normally on completion.
    pub requeue_early: Option<Vec<u8>>,
}

enum Role {
    Client {
        pending: Option<Box<(CryptoClientConfig, Option<ResumeTicket>, bool)>>,
        machine: Option<Box<ClientMachine>>,
        /// In-flight derived handshake, when a held path secret allowed one.
        /// `pending` is kept alongside as the transparent fallback.
        derived: Option<Box<DerivedClient>>,
        /// The host's shared path-secret state (derive from + mint into).
        secrets: Option<SharedPathSecrets>,
        /// Peer name: the path-secret map key on this side.
        server_name: String,
        /// Early data attached to the derived hello, kept so a fallback can
        /// re-carry it (ticket 0-RTT) or hand it back (full handshake).
        early_payload: Option<Vec<u8>>,
    },
    Server {
        machine: Box<ServerMachine>,
        acceptor: Option<ZeroRttAcceptor>,
        /// The host's shared path-secret state (answer derived hellos, mint
        /// on full completions).
        secrets: Option<SharedPathSecrets>,
    },
}

/// Reassembly state of one incoming flight.
struct FlightRx {
    total: usize,
    frags: BTreeMap<usize, Bytes>,
    frag_bytes: usize,
}

impl FlightRx {
    fn new(total: usize) -> Self {
        Self {
            total,
            frags: BTreeMap::new(),
            frag_bytes: 0,
        }
    }

    /// Inserts a fragment.  Returns `false` when the fragment lies outside
    /// `[0, total)` (forged geometry) or disagrees byte-for-byte with a copy
    /// already received at the same offset (a coalescing/corruption attack);
    /// the first authentic copy is kept and the conflict is surfaced to the
    /// caller's counters.
    fn insert(&mut self, offset: usize, data: &Bytes) -> bool {
        if data.is_empty() || offset >= self.total || data.len() > self.total - offset {
            return false;
        }
        match self.frags.entry(offset) {
            std::collections::btree_map::Entry::Occupied(existing) => existing.get() == data,
            std::collections::btree_map::Entry::Vacant(slot) => {
                self.frag_bytes += data.len();
                slot.insert(data.clone());
                true
            }
        }
    }

    /// Bytes currently buffered for this flight (bounded by `total`, which is
    /// itself bounded by [`MAX_FLIGHT_BYTES`]).
    fn tracked_bytes(&self) -> usize {
        self.frag_bytes
    }

    /// Returns the flight bytes once the fragments cover `[0, total)`.
    fn try_assemble(&self) -> Option<Vec<u8>> {
        let mut out = Vec::with_capacity(self.total);
        for (&off, frag) in &self.frags {
            if off > out.len() {
                return None; // Gap.
            }
            if off + frag.len() > out.len() {
                out.extend_from_slice(&frag[out.len() - off..]);
            }
        }
        (out.len() >= self.total).then_some(out)
    }
}

/// The per-endpoint in-band handshake driver: owns the state machine, the
/// flight carrier and the retransmission timer.  The endpoint backends route
/// CONTROL packets here and merge the driver's counters into their stats.
pub(crate) struct HandshakeDriver {
    role: Role,
    path: PathInfo,
    mtu: usize,
    proto: u8,
    rto_ns: Nanos,
    deadline: Option<Nanos>,
    started_at: Option<Nanos>,
    outbox: VecDeque<Packet>,
    last_flight: Vec<Packet>,
    last_flight_seq: u64,
    rx_expected: u64,
    rx: Option<FlightRx>,
    complete: bool,
    failed: bool,
    early_sent: bool,
    // Counters merged into the owning endpoint's EndpointStats.
    pub retransmissions: u64,
    pub timeouts_fired: u64,
    pub wire_bytes_sent: u64,
    pub wire_bytes_received: u64,
    pub datagrams_dropped: u64,
    pub malformed_rejected: u64,
    pub peak_tracked_bytes: u64,
}

impl std::fmt::Debug for HandshakeDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HandshakeDriver")
            .field("client", &matches!(self.role, Role::Client { .. }))
            .field("complete", &self.complete)
            .field("failed", &self.failed)
            .finish_non_exhaustive()
    }
}

impl HandshakeDriver {
    /// A client driver; the first flight is built lazily at the first
    /// `poll_transmit` so queued application data can piggyback as 0-RTT
    /// early data.
    pub fn client(
        config: ConnectConfig,
        path: PathInfo,
        mtu: usize,
        proto: u8,
        rto_ns: Nanos,
    ) -> Self {
        let server_name = config.crypto.server_name.clone();
        Self::new(
            Role::Client {
                pending: Some(Box::new((
                    config.crypto,
                    config.resume,
                    config.forward_secrecy,
                ))),
                machine: None,
                derived: None,
                secrets: config.secrets,
                server_name,
                early_payload: None,
            },
            1,
            path,
            mtu,
            proto,
            rto_ns,
        )
    }

    /// A server driver awaiting a ClientHello flight.
    pub fn server(
        config: AcceptConfig,
        path: PathInfo,
        mtu: usize,
        proto: u8,
        rto_ns: Nanos,
    ) -> Self {
        let ticket = config
            .acceptor
            .as_ref()
            .map(|a| a.issuer.ticket(config.ticket_now));
        Self::new(
            Role::Server {
                machine: Box::new(ServerMachine::new(config.crypto, ticket)),
                acceptor: config.acceptor,
                secrets: config.secrets,
            },
            0,
            path,
            mtu,
            proto,
            rto_ns,
        )
    }

    fn new(
        role: Role,
        rx_expected: u64,
        path: PathInfo,
        mtu: usize,
        proto: u8,
        rto_ns: Nanos,
    ) -> Self {
        Self {
            role,
            path,
            mtu,
            proto,
            rto_ns: rto_ns.max(1),
            deadline: None,
            started_at: None,
            outbox: VecDeque::new(),
            last_flight: Vec::new(),
            last_flight_seq: 0,
            rx_expected,
            rx: None,
            complete: false,
            failed: false,
            early_sent: false,
            retransmissions: 0,
            timeouts_fired: 0,
            wire_bytes_sent: 0,
            wire_bytes_received: 0,
            datagrams_dropped: 0,
            malformed_rejected: 0,
            peak_tracked_bytes: 0,
        }
    }

    /// True while the handshake is neither complete nor failed — application
    /// data must be queued, not transmitted.
    pub fn in_progress(&self) -> bool {
        !self.complete && !self.failed
    }

    /// True when this is a client driver that has not built its first flight
    /// yet.
    pub fn needs_start(&self) -> bool {
        matches!(
            &self.role,
            Role::Client {
                pending: Some(_),
                machine: None,
                derived: None,
                ..
            }
        )
    }

    /// True when the pending client start can carry the first queued message
    /// as early data on its first flight: an SMT-ticket resumption, or a
    /// derived handshake from a held path secret.
    pub fn wants_early_data(&self) -> bool {
        match &self.role {
            Role::Client {
                pending: Some(boxed),
                machine: None,
                derived: None,
                secrets,
                server_name,
                ..
            } => {
                boxed.1.is_some()
                    || secrets
                        .as_ref()
                        .is_some_and(|s| s.get(server_name).is_some())
            }
            _ => false,
        }
    }

    /// Builds and queues the first client flight at virtual time `now`,
    /// piggybacking `early_data` when resuming or deriving.  Returns an
    /// error message on failure (expired ticket, bad configuration); the
    /// endpoint goes dead.
    pub fn start_client(&mut self, now: Nanos, early_data: Option<Vec<u8>>) -> Result<(), String> {
        // A held path secret short-circuits the public-key handshake: derive
        // fresh connection keys from it with one symmetric-crypto flight each
        // way, early data riding the hello.  `pending` is kept untouched —
        // it is the transparent fallback if the server rejects.
        let derived_flight = {
            let Role::Client {
                pending,
                machine,
                derived,
                secrets,
                server_name,
                ..
            } = &mut self.role
            else {
                return Ok(());
            };
            if pending.is_none() || machine.is_some() || derived.is_some() {
                return Ok(());
            }
            match secrets.as_ref().and_then(|s| s.get(server_name)) {
                Some(path) => {
                    match DerivedClient::start(&path, early_data.as_deref().unwrap_or(&[])) {
                        Ok((dc, flight)) => {
                            *derived = Some(Box::new(dc));
                            Some(flight)
                        }
                        Err(_) => {
                            // Unusable path secret (suite mismatch after a
                            // redeploy, internal error): drop it and run the
                            // full handshake below.
                            if let Some(s) = secrets {
                                s.remove(server_name);
                            }
                            None
                        }
                    }
                }
                None => None,
            }
        };
        if let Some(flight) = derived_flight {
            self.early_sent = early_data.as_ref().is_some_and(|d| !d.is_empty());
            if let Role::Client { early_payload, .. } = &mut self.role {
                *early_payload = early_data;
            }
            self.started_at = Some(now);
            self.set_flight(0, &flight);
            self.deadline = Some(now + self.rto_ns);
            return Ok(());
        }
        let Role::Client {
            pending, machine, ..
        } = &mut self.role
        else {
            return Ok(());
        };
        let Some(boxed) = pending.take() else {
            return Ok(());
        };
        let (crypto, resume, forward_secrecy) = *boxed;
        let mode = match resume {
            None => ClientMode::Full,
            Some(r) => ClientMode::ZeroRtt {
                ticket: r.ticket,
                early_data: early_data.clone().unwrap_or_default(),
                forward_secrecy,
                now: r.now,
            },
        };
        self.early_sent = early_data.is_some_and(|d| !d.is_empty());
        match ClientMachine::start(crypto, mode) {
            Ok((m, flight)) => {
                *machine = Some(Box::new(m));
                self.started_at = Some(now);
                self.set_flight(0, &flight);
                self.deadline = Some(now + self.rto_ns);
                Ok(())
            }
            Err(e) => {
                self.failed = true;
                Err(format!("handshake start failed: {e}"))
            }
        }
    }

    /// Handles one CONTROL packet at virtual time `now`.
    pub fn handle_control(&mut self, packet: &Packet, now: Nanos) -> DriverOutcome {
        let mut outcome = DriverOutcome::default();
        let Some(data) = packet.payload.as_data() else {
            return outcome;
        };
        self.wire_bytes_received += data.len() as u64;
        if self.failed {
            self.datagrams_dropped += 1;
            return outcome;
        }
        let seq = packet.overlay.options.message_id;
        let total = packet.overlay.options.message_length as usize;
        let offset = packet.overlay.options.tso_offset as usize;
        if seq < self.rx_expected {
            // A duplicate of a flight we already answered: if our own next
            // flight is that answer, resend it (the peer evidently lost it).
            // Only the flight's first fragment triggers the resend, so a
            // k-fragment duplicate costs one reply, not k.  Duplicates of the
            // final flight are absorbed silently so duplication faults cannot
            // ping-pong forever.
            if seq + 1 == self.last_flight_seq && !self.last_flight.is_empty() && offset == 0 {
                self.retransmissions += self.last_flight.len() as u64;
                self.outbox.extend(self.last_flight.iter().cloned());
            }
            return outcome;
        }
        if seq != self.rx_expected || total == 0 {
            // A flight from the future (or malformed): unusable.
            self.datagrams_dropped += 1;
            return outcome;
        }
        if total > MAX_FLIGHT_BYTES {
            // Attacker-declared flight length: reject before buffering.
            self.malformed_rejected += 1;
            self.datagrams_dropped += 1;
            return outcome;
        }
        let rx = self.rx.get_or_insert_with(|| FlightRx::new(total));
        if rx.total != total || !rx.insert(offset, data) {
            // Geometry inconsistent with the flight under assembly, or a
            // conflicting copy of an already-buffered fragment: a forged or
            // corrupted packet.  Keep what we have — the authentic sender
            // retransmits on its RTO if the flight cannot complete.
            self.malformed_rejected += 1;
            self.datagrams_dropped += 1;
            return outcome;
        }
        self.peak_tracked_bytes = self.peak_tracked_bytes.max(rx.tracked_bytes() as u64);
        let Some(flight) = rx.try_assemble() else {
            return outcome;
        };
        self.rx = None;
        // Flight sequence numbers alternate directions (client 0 → server 1 →
        // client 2), so the next flight *we* can receive is two ahead.
        self.rx_expected = seq + 2;

        // Drive the state machine with the assembled flight.  Replies always
        // carry the next flight sequence number (`seq + 1`): flights keep
        // alternating directions even when a rejected derived attempt splices
        // a full handshake into the same connection (derived hello 0 →
        // reject 1 → ClientHello 2 → ServerHello 3 → Finished 4).
        let mut reply: Option<(u64, Vec<u8>)> = None;
        let mut completion: Option<(SessionKeys, bool, Option<SmtTicket>)> = None;
        let mut derived_completion = false;
        let mut clear_early_sent = false;
        let mut first_arrival = false;
        match &mut self.role {
            Role::Client {
                machine,
                pending,
                derived,
                secrets,
                server_name,
                early_payload,
            } => {
                if let Some(dc) = derived.take() {
                    match dc.on_server_flight(&flight) {
                        Ok(DerivedClientOutcome::Complete(keys)) => {
                            *pending = None;
                            *early_payload = None;
                            derived_completion = true;
                            completion = Some((*keys, true, None));
                        }
                        Ok(DerivedClientOutcome::Rejected { .. }) => {
                            // The server no longer holds the path secret
                            // (bounded-map eviction, restart): drop the stale
                            // copy and fall back to the full handshake on the
                            // same connection, re-carrying the early data
                            // when a ticket still allows 0-RTT.
                            if let Some(s) = secrets {
                                s.remove(server_name);
                            }
                            match pending.take() {
                                Some(boxed) => {
                                    let (crypto, resume, forward_secrecy) = *boxed;
                                    let early = early_payload.take();
                                    let mode = match resume {
                                        None => {
                                            // A full handshake cannot carry
                                            // early data: hand it back for
                                            // re-queueing as message 0.
                                            outcome.requeue_early = early;
                                            clear_early_sent = true;
                                            ClientMode::Full
                                        }
                                        Some(r) => ClientMode::ZeroRtt {
                                            ticket: r.ticket,
                                            early_data: early.unwrap_or_default(),
                                            forward_secrecy,
                                            now: r.now,
                                        },
                                    };
                                    match ClientMachine::start(crypto, mode) {
                                        Ok((m, hello)) => {
                                            *machine = Some(Box::new(m));
                                            reply = Some((seq + 1, hello));
                                        }
                                        Err(e) => {
                                            outcome.error =
                                                Some(format!("handshake fallback failed: {e}"));
                                        }
                                    }
                                }
                                None => {
                                    outcome.error = Some(
                                        "derived handshake rejected with no fallback \
                                         configuration"
                                            .into(),
                                    );
                                }
                            }
                        }
                        Err(e) => outcome.error = Some(format!("handshake failed: {e}")),
                    }
                } else {
                    let Some(machine) = machine.as_mut() else {
                        self.datagrams_dropped += 1;
                        return outcome;
                    };
                    match machine.on_server_flight(&flight) {
                        Ok(out) => {
                            if let Some(fin) = out.reply {
                                reply = Some((seq + 1, fin));
                            }
                            if let Some(keys) = out.keys {
                                completion = Some((*keys, machine.resumed(), out.ticket));
                            }
                        }
                        Err(e) => outcome.error = Some(format!("handshake failed: {e}")),
                    }
                }
            }
            Role::Server {
                machine,
                acceptor,
                secrets,
            } => {
                first_arrival = true;
                if is_derived_flight(&flight) {
                    match secrets {
                        Some(s) => {
                            let map = s.map.lock().unwrap_or_else(|p| p.into_inner());
                            let mut replay = s.replay.lock().unwrap_or_else(|p| p.into_inner());
                            match derived_server_respond(&map, &mut replay, &flight) {
                                Ok(DerivedServerOutcome::Accepted(resp)) => {
                                    let resp = *resp;
                                    outcome.early_data = resp.early_data;
                                    reply = Some((seq + 1, resp.flight));
                                    derived_completion = true;
                                    completion = Some((resp.keys, true, None));
                                }
                                Ok(DerivedServerOutcome::Unknown { reject }) => {
                                    // Evicted (or never-minted) path secret:
                                    // tell the client to fall back.  The full
                                    // ClientHello arrives as the next flight
                                    // and the untouched machine handles it.
                                    reply = Some((seq + 1, reject));
                                }
                                Err(e) => {
                                    outcome.error = Some(format!("handshake failed: {e}"));
                                }
                            }
                        }
                        None => {
                            // No path-secret state on this endpoint at all:
                            // same fallback signal as an evicted secret.
                            reply =
                                Some((seq + 1, derived_reject_flight("path secrets not enabled")));
                        }
                    }
                } else {
                    let result = match acceptor {
                        Some(a) => {
                            // Recover the cache even if another accepted endpoint
                            // panicked while holding the lock: the cache contents
                            // (a set of ClientHello randoms) stay valid.
                            let mut replay = a.replay.lock().unwrap_or_else(|p| p.into_inner());
                            machine.on_flight(
                                &flight,
                                Some(ZeroRttContext {
                                    issuer: &a.issuer,
                                    replay: &mut replay,
                                }),
                            )
                        }
                        None => machine.on_flight(&flight, None),
                    };
                    match result {
                        Ok(out) => {
                            outcome.early_data = out.early_data;
                            if let Some(bytes) = out.reply {
                                reply = Some((seq + 1, bytes));
                            }
                            if let Some(keys) = out.keys {
                                completion = Some((*keys, machine.resumed(), None));
                            }
                        }
                        Err(e) => outcome.error = Some(format!("handshake failed: {e}")),
                    }
                }
            }
        }

        if clear_early_sent {
            self.early_sent = false;
        }
        if outcome.error.is_some() {
            self.failed = true;
            self.deadline = None;
            return outcome;
        }
        if first_arrival && self.started_at.is_none() {
            self.started_at = Some(now);
        }
        // A completed public-key handshake mints the path secret for this
        // peer into the shared map — both sides derive identical material
        // from the shared resumption master — so the next connection between
        // these hosts can run the derived handshake.  Derived completions
        // leave the existing secret in place.
        if !derived_completion {
            if let Some((keys, _, _)) = &completion {
                match &self.role {
                    Role::Client {
                        secrets: Some(s),
                        server_name,
                        ..
                    } => {
                        s.insert(PathSecret::mint(keys, server_name));
                    }
                    Role::Server {
                        secrets: Some(s), ..
                    } => {
                        // Lookups on this side are by wire id; the peer key
                        // only needs uniqueness, so fall back to the id when
                        // the client presented no mTLS identity.
                        let mut ps = PathSecret::mint(keys, "");
                        ps.peer = keys.peer_identity.clone().unwrap_or_else(|| hex_id(&ps.id));
                        s.insert(ps);
                    }
                    _ => {}
                }
            }
        }
        if let Some((seq, bytes)) = reply {
            self.set_flight(seq, &bytes);
            if !self.complete {
                self.deadline = Some(now + self.rto_ns);
            }
        }
        if let Some((keys, resumed, ticket)) = completion {
            self.complete = true;
            self.deadline = None;
            let rtt_ns = now.saturating_sub(self.started_at.unwrap_or(now));
            outcome.complete = Some(Box::new(HandshakeResult {
                keys,
                rtt_ns,
                resumed,
                ticket,
                early_data_sent: self.early_sent,
            }));
        }
        outcome
    }

    /// Appends every queued handshake packet to `out`.
    pub fn poll_transmit(&mut self, out: &mut Vec<Packet>) -> usize {
        let n = self.outbox.len();
        for p in self.outbox.drain(..) {
            self.wire_bytes_sent += p.payload.wire_len() as u64;
            out.push(p);
        }
        n
    }

    /// The armed retransmission deadline, if the handshake is in flight.
    pub fn next_timeout(&self) -> Option<Nanos> {
        if self.in_progress() {
            self.deadline
        } else {
            None
        }
    }

    /// Fires the retransmission timer: re-queues the current flight.
    pub fn on_timeout(&mut self, now: Nanos) {
        if !self.in_progress() {
            return;
        }
        let Some(deadline) = self.deadline else {
            return;
        };
        if now < deadline || self.last_flight.is_empty() {
            return;
        }
        self.timeouts_fired += 1;
        self.retransmissions += self.last_flight.len() as u64;
        self.outbox.extend(self.last_flight.iter().cloned());
        self.deadline = Some(now + self.rto_ns);
    }

    /// Fragments `bytes` into CONTROL packets, records them as the current
    /// outgoing flight and queues them for transmission.
    fn set_flight(&mut self, seq: u64, bytes: &[u8]) {
        debug_assert!(!bytes.is_empty(), "handshake flights are never empty");
        let per = max_payload_per_packet(self.mtu).max(1);
        let total = bytes.len() as u32;
        let mut packets = Vec::with_capacity(bytes.len().div_ceil(per));
        let mut off = 0usize;
        while off < bytes.len() {
            let take = per.min(bytes.len() - off);
            let mut options = SmtOptionArea::new(seq, total);
            options.tso_offset = off as u32;
            let overlay = SmtOverlayHeader {
                tcp: OverlayTcpHeader::new(
                    self.path.src_port,
                    self.path.dst_port,
                    PacketType::Control,
                ),
                options,
            };
            packets.push(Packet {
                ip: IpHeader::V4(Ipv4Header::new(
                    self.path.src,
                    self.path.dst,
                    self.proto,
                    (IPV4_HEADER_LEN + SMT_OVERLAY_LEN + take) as u16,
                )),
                overlay,
                payload: PacketPayload::Data(Bytes::copy_from_slice(&bytes[off..off + take])),
                corrupted: false,
            });
            off += take;
        }
        self.last_flight = packets.clone();
        self.last_flight_seq = seq;
        self.outbox.extend(packets);
    }
}

/// Lowercase hex of a path-secret wire id, used as the server-side map key
/// when the client presented no mTLS identity.
fn hex_id(id: &[u8]) -> String {
    let mut out = String::with_capacity(id.len() * 2);
    for b in id {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Computes the per-stack transport protocol number stamped on handshake
/// CONTROL packets (cosmetic — the fabric routes by port).
pub(crate) fn control_proto(stack: StackKind) -> u8 {
    if stack.is_message_based() {
        smt_wire::IPPROTO_SMT
    } else {
        smt_wire::IPPROTO_TCP
    }
}
