//! Protocol constants shared by the SMT workspace.
//!
//! The values mirror the parameters used in the paper's implementation and
//! evaluation: a 1.5 KB default MTU (with a 9 KB jumbo-frame option used in §5.2),
//! 16 KB maximum TLS record size, 64 KB maximum TSO segment size, and a default
//! composite record-sequence-number split of 48 bits of message ID and 16 bits of
//! intra-message record index (§4.4.1).

/// IANA-style protocol number used by SMT in the IP header. SMT is a *native*
/// transport protocol: it overlays the TCP header structure for TSO compatibility
/// but announces its own protocol number (paper §2.3, §4.3).
pub const IPPROTO_SMT: u8 = 0x99;

/// Protocol number used by the (simulated) Homa baseline.
pub const IPPROTO_HOMA: u8 = 0x98;

/// Standard TCP protocol number, used by the TCP / kTLS / TCPLS baselines.
pub const IPPROTO_TCP: u8 = 6;

/// Standard UDP protocol number (unused by SMT but kept for completeness).
pub const IPPROTO_UDP: u8 = 17;

/// Default network MTU in bytes (Ethernet-class 1500 B, paper §5 "HW&OS").
pub const DEFAULT_MTU: usize = 1500;

/// Jumbo-frame MTU evaluated in §5.2 ("Impact of a larger MTU").
pub const JUMBO_MTU: usize = 9000;

/// Maximum TLS record plaintext size (RFC 8446 §5.1: 2^14 bytes).
pub const MAX_TLS_RECORD: usize = 16 * 1024;

/// Maximum TSO segment size handed to the NIC (64 KB, paper §4.3).
pub const MAX_TSO_SEGMENT: usize = 64 * 1024;

/// TLS record header length in bytes (content type, legacy version, length).
pub const TLS_RECORD_HEADER_LEN: usize = 5;

/// AEAD authentication tag length for AES-GCM (bytes).
pub const TLS_AUTH_TAG_LEN: usize = 16;

/// SMT framing header length: a 4-byte application-data length prefix
/// (paper Fig. 3, "Framing header (app data length)").
pub const FRAMING_HEADER_LEN: usize = 4;

/// Length of the overlay TCP common header (20 bytes, without options).
pub const TCP_COMMON_HEADER_LEN: usize = 20;

/// Length of the SMT option area carried in the TCP options space
/// (message ID, message length, TSO offset, resend packet offset, type, flags,
/// connection ID, key epoch).
pub const SMT_OPTION_AREA_LEN: usize = 36;

/// Total overlay header length: TCP common header + SMT option area.
pub const SMT_OVERLAY_HEADER_LEN: usize = TCP_COMMON_HEADER_LEN + SMT_OPTION_AREA_LEN;

/// IPv4 header length without options.
pub const IPV4_HEADER_LEN: usize = 20;

/// IPv6 fixed header length.
pub const IPV6_HEADER_LEN: usize = 40;

/// Default number of bits of the 64-bit composite record sequence number devoted
/// to the message ID (paper §4.4.1: "we opt for 48-bit message IDs").
pub const DEFAULT_MSG_ID_BITS: u32 = 48;

/// Default number of bits devoted to the intra-message record index (64 - 48).
pub const DEFAULT_RECORD_INDEX_BITS: u32 = 16;

/// Default maximum message size accepted by the Homa substrate (1 MB, the
/// Homa/Linux default quoted in §4.4.1).
pub const DEFAULT_MAX_MESSAGE_SIZE: usize = 1024 * 1024;

/// Homa-style unscheduled data window: bytes a sender may transmit for a fresh
/// message before receiving a GRANT (roughly one bandwidth-delay product).
pub const DEFAULT_UNSCHEDULED_BYTES: usize = 60 * 1024;

/// Maximum payload bytes carried by a single MTU-sized SMT packet with the
/// default MTU, after IPv4 + overlay headers.
pub const fn max_payload_per_packet(mtu: usize) -> usize {
    mtu.saturating_sub(IPV4_HEADER_LEN + SMT_OVERLAY_HEADER_LEN)
}

/// Per-record protocol expansion: record header plus authentication tag.
pub const RECORD_EXPANSION: usize = TLS_RECORD_HEADER_LEN + TLS_AUTH_TAG_LEN;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlay_header_fits_tcp_options_space() {
        // TCP allows at most 40 bytes of options; the SMT option area must fit.
        const { assert!(SMT_OPTION_AREA_LEN <= 40) };
        // The data-offset nibble counts 4-byte words, so the total header
        // length must stay 4-byte aligned and at most 60 bytes.
        const { assert!(SMT_OVERLAY_HEADER_LEN.is_multiple_of(4)) };
        const { assert!(SMT_OVERLAY_HEADER_LEN <= 60) };
        assert_eq!(SMT_OVERLAY_HEADER_LEN, 56);
    }

    #[test]
    fn default_bit_split_covers_64_bits() {
        assert_eq!(DEFAULT_MSG_ID_BITS + DEFAULT_RECORD_INDEX_BITS, 64);
    }

    #[test]
    fn mtu_payload_positive() {
        assert!(max_payload_per_packet(DEFAULT_MTU) > 1400);
        assert!(max_payload_per_packet(JUMBO_MTU) > 8900);
    }

    #[test]
    fn record_expansion_is_21_bytes() {
        assert_eq!(RECORD_EXPANSION, 21);
    }
}
