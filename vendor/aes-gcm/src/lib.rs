//! Offline stand-in for the [`aes-gcm`](https://docs.rs/aes-gcm) crate.
//!
//! Pure-Rust AES-128/256-GCM (NIST SP 800-38D) exposing the subset of the
//! RustCrypto API the workspace uses — `aead::{Aead, KeyInit, Payload}`,
//! [`Aes128Gcm`], [`Aes256Gcm`] — plus detached **in-place** seal/open entry
//! points ([`AesGcm::encrypt_in_place_detached`] /
//! [`AesGcm::decrypt_in_place_detached`]) that the zero-copy record datapath
//! builds on. Validated against NIST GCM test vectors below.
//!
//! # The fused multi-block engine
//!
//! The in-place entry points run a **fused CTR + GHASH pass** whose stride
//! width follows the backend tier selected at key install (see [`tier`
//! docs](CryptoTier)):
//!
//! * **`clmul-wide`** — 256-byte strides: sixteen CTR keystream blocks are
//!   generated together (VAES ymm pairs where detected, AES-NI xmm
//!   otherwise), XOR-ed into the buffer, and the fresh ciphertext is folded
//!   into the tag with the PCLMULQDQ 8-block aggregated-reduction GHASH
//!   (`ghash::GHashKey::update_bulk`).
//! * **`aesni-shoup` / `portable`** — 128-byte strides: eight CTR blocks via
//!   the AES-NI or interleaved T-table scheduler
//!   (`aes::Aes::ctr8_keystream`), with the aggregated four-block Shoup-table
//!   GHASH (`ghash::GHashKey::update4`).
//!
//! Either way each cache line of payload is touched exactly once, and all
//! per-key GHASH material is precomputed at key-install time in
//! [`KeyInit::new_from_slice`], never per record.
//!
//! The original scalar one-block implementation is **retained** as
//! [`AesGcm::encrypt_in_place_detached_reference`] /
//! [`AesGcm::decrypt_in_place_detached_reference`]: it shares no scheduling
//! code with the fused paths (single-block AES, nibble-table GHASH) and
//! serves as the bit-for-bit cross-check in the property tests below.
//!
//! `unsafe` is denied crate-wide except in `aes::ni` and `clmul`, the
//! runtime-detected hardware backends (x86-64 only); the portable T-table
//! path is used everywhere else and on every other architecture.

#![deny(unsafe_code)]

mod aes;
#[cfg(target_arch = "x86_64")]
mod clmul;
mod ghash;
mod tier;

use aes::{Aes, CTR_LANES, WIDE_LANES};
use ghash::{GHash, GHashKey};
pub use tier::{active_tier, CryptoTier};

/// Bytes processed per stride of the fused multi-block pass (Shoup tiers).
const STRIDE: usize = 16 * CTR_LANES;

/// Bytes processed per stride of the wide fused pass (CLMUL tier).
const WIDE_STRIDE: usize = 16 * WIDE_LANES;

/// GCM nonce length in bytes (96 bits, the only length supported here).
pub const NONCE_LEN: usize = 12;

/// GCM tag length in bytes.
pub const TAG_LEN: usize = 16;

/// A 96-bit GCM nonce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Nonce([u8; NONCE_LEN]);

impl From<[u8; NONCE_LEN]> for Nonce {
    fn from(b: [u8; NONCE_LEN]) -> Self {
        Nonce(b)
    }
}

impl From<&[u8; NONCE_LEN]> for Nonce {
    fn from(b: &[u8; NONCE_LEN]) -> Self {
        Nonce(*b)
    }
}

impl AsRef<[u8]> for Nonce {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// The `aead` facade module mirroring `aes_gcm::aead`.
pub mod aead {
    /// Opaque AEAD error (authentication failure or invalid input).
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
    pub struct Error;

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "aead::Error")
        }
    }

    impl std::error::Error for Error {}

    /// Payload with associated data, as in the RustCrypto `aead` crate.
    pub struct Payload<'msg, 'aad> {
        /// Message to encrypt/decrypt.
        pub msg: &'msg [u8],
        /// Additional authenticated data.
        pub aad: &'aad [u8],
    }

    impl<'msg> From<&'msg [u8]> for Payload<'msg, '_> {
        fn from(msg: &'msg [u8]) -> Self {
            Self { msg, aad: b"" }
        }
    }

    /// Key-initialisation trait.
    pub trait KeyInit: Sized {
        /// Creates a cipher instance from a key slice, checking its length.
        fn new_from_slice(key: &[u8]) -> Result<Self, Error>;
    }

    /// High-level AEAD encryption/decryption returning fresh buffers.
    pub trait Aead {
        /// Encrypts the payload, returning ciphertext with the tag appended.
        fn encrypt<'msg, 'aad>(
            &self,
            nonce: &super::Nonce,
            plaintext: impl Into<Payload<'msg, 'aad>>,
        ) -> Result<Vec<u8>, Error>;

        /// Decrypts ciphertext (with appended tag), verifying the tag.
        fn decrypt<'msg, 'aad>(
            &self,
            nonce: &super::Nonce,
            ciphertext: impl Into<Payload<'msg, 'aad>>,
        ) -> Result<Vec<u8>, Error>;
    }
}

use aead::{Aead, Error, KeyInit, Payload};

/// AES-GCM instance generic over key size (via the expanded AES schedule).
#[derive(Clone)]
pub struct AesGcm<const KEY_LEN: usize> {
    aes: Aes,
    /// Per-key GHASH tables for the fused multi-block path (`H..H⁴`), built
    /// once at key install.
    ghash: GHashKey,
    /// Retained scalar one-block reference path (nibble-table GHASH).
    ghash_ref: GHash,
}

/// AES-128-GCM.
pub type Aes128Gcm = AesGcm<16>;

/// AES-256-GCM.
pub type Aes256Gcm = AesGcm<32>;

impl<const KEY_LEN: usize> KeyInit for AesGcm<KEY_LEN> {
    fn new_from_slice(key: &[u8]) -> Result<Self, Error> {
        Self::new_with_tier(key, active_tier())
    }
}

impl<const KEY_LEN: usize> AesGcm<KEY_LEN> {
    /// Like [`KeyInit::new_from_slice`] but with the backend tier pinned by
    /// the caller instead of taken from [`active_tier`]. Tiers the CPU cannot
    /// support degrade to the best supported one at or below the request, so
    /// the result is always usable; tests and benches use this to cross-check
    /// tiers in one process.
    pub fn new_with_tier(key: &[u8], tier: CryptoTier) -> Result<Self, Error> {
        if key.len() != KEY_LEN {
            return Err(Error);
        }
        let aes = Aes::new_with_tier(key, tier).map_err(|_| Error)?;
        let mut h = [0u8; 16];
        aes.encrypt_block(&mut h);
        Ok(Self {
            ghash: GHashKey::with_tier(&h, tier),
            ghash_ref: GHash::new(&h),
            aes,
        })
    }

    /// The tier this instance actually runs on after feature detection (a
    /// [`Self::new_with_tier`] request for unsupported hardware degrades).
    pub fn tier(&self) -> CryptoTier {
        if self.ghash.is_clmul() {
            CryptoTier::WideClmul
        } else if self.aes.has_ni() {
            CryptoTier::AesNiShoup
        } else {
            CryptoTier::Portable
        }
    }

    /// Backend description for bench/log output: the tier name, with the
    /// keystream flavour appended on the wide tier (`"clmul-wide+vaes"` when
    /// the ymm generator is active, `"clmul-wide+aesni"` otherwise).
    pub fn backend(&self) -> String {
        match self.tier() {
            CryptoTier::WideClmul if self.aes.has_vaes() => "clmul-wide+vaes".into(),
            CryptoTier::WideClmul => "clmul-wide+aesni".into(),
            t => t.name().into(),
        }
    }

    fn counter_block(nonce: &[u8; NONCE_LEN], counter: u32) -> [u8; 16] {
        let mut block = [0u8; 16];
        block[..NONCE_LEN].copy_from_slice(nonce);
        block[12..16].copy_from_slice(&counter.to_be_bytes());
        block
    }

    /// Applies the CTR keystream over `buf` starting at counter 2 (counter 1 is
    /// reserved for the tag mask), without touching the GHASH state. Used to
    /// restore ciphertext on a failed fused decrypt; the keystream itself comes
    /// from the interleaved 8-way generator.
    fn ctr_xor(&self, nonce: &[u8; NONCE_LEN], buf: &mut [u8]) {
        let mut counter = 2u32;
        let mut ks = [0u8; STRIDE];
        for chunk in buf.chunks_mut(STRIDE) {
            self.aes.ctr8_keystream(nonce, counter, &mut ks);
            counter = counter.wrapping_add(CTR_LANES as u32);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
        }
    }

    /// XORs the encryption of `J0` (counter 1) into the GHASH digest.
    fn mask_tag(&self, nonce: &[u8; NONCE_LEN], tag: &mut [u8; 16]) {
        let mut j0 = Self::counter_block(nonce, 1);
        self.aes.encrypt_block(&mut j0);
        for (t, m) in tag.iter_mut().zip(j0.iter()) {
            *t ^= m;
        }
    }

    /// Encrypts `buf` in place and returns the detached 16-byte tag.
    ///
    /// This is the fused multi-block pass: per stride (256 bytes on the CLMUL
    /// tier, 128 otherwise), the CTR keystream blocks are generated together,
    /// XOR-ed into the buffer, and the fresh ciphertext is immediately folded
    /// into the tag with the aggregated GHASH — one pass over the payload.
    pub fn encrypt_in_place_detached(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        buf: &mut [u8],
    ) -> [u8; TAG_LEN] {
        let mut y = (0u64, 0u64);
        self.ghash.update_padded(&mut y, aad);

        if self.ghash.is_clmul() {
            self.encrypt_strides_wide(nonce, buf, &mut y);
        } else {
            self.encrypt_strides(nonce, buf, &mut y);
        }

        let mut tag = self.ghash.finalize_with_lengths(
            &mut y,
            (aad.len() as u64) * 8,
            (buf.len() as u64) * 8,
        );
        self.mask_tag(nonce, &mut tag);
        tag
    }

    /// 128-byte-stride fused seal loop (Shoup-GHASH tiers).
    fn encrypt_strides(&self, nonce: &[u8; NONCE_LEN], buf: &mut [u8], y: &mut (u64, u64)) {
        let mut counter = 2u32;
        let mut ks = [0u8; STRIDE];
        let mut strides = buf.chunks_exact_mut(STRIDE);
        for chunk in strides.by_ref() {
            self.aes.ctr8_keystream(nonce, counter, &mut ks);
            counter = counter.wrapping_add(CTR_LANES as u32);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
            self.ghash.update4(y, chunk[..64].try_into().expect("64"));
            self.ghash.update4(y, chunk[64..].try_into().expect("64"));
        }
        let rem = strides.into_remainder();
        if !rem.is_empty() {
            self.aes.ctr8_keystream(nonce, counter, &mut ks);
            for (b, k) in rem.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
            self.ghash.update_padded(y, rem);
        }
    }

    /// 256-byte-stride fused seal loop (CLMUL tier): sixteen keystream blocks
    /// per iteration feeding two 8-block aggregated GHASH reductions. The tail
    /// drops back to 8-block keystream granularity so short records never pay
    /// for unused keystream blocks.
    fn encrypt_strides_wide(&self, nonce: &[u8; NONCE_LEN], buf: &mut [u8], y: &mut (u64, u64)) {
        let mut counter = 2u32;
        let mut ks = [0u8; WIDE_STRIDE];
        let mut strides = buf.chunks_exact_mut(WIDE_STRIDE);
        for chunk in strides.by_ref() {
            self.aes.ctr16_keystream(nonce, counter, &mut ks);
            counter = counter.wrapping_add(WIDE_LANES as u32);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
            self.ghash.update_bulk(y, chunk);
        }
        let rem = strides.into_remainder();
        if !rem.is_empty() {
            let mut ks8 = [0u8; STRIDE];
            for part in rem.chunks_mut(STRIDE) {
                self.aes.ctr8_keystream(nonce, counter, &mut ks8);
                counter = counter.wrapping_add(CTR_LANES as u32);
                for (b, k) in part.iter_mut().zip(ks8.iter()) {
                    *b ^= k;
                }
            }
            self.ghash.update_padded(y, rem);
        }
    }

    /// Verifies `tag` over `buf` and decrypts it in place on success. The buffer
    /// is left as ciphertext when verification fails.
    ///
    /// The fused pass folds each ciphertext stride into the tag and then
    /// overwrites it with plaintext while the cache lines are hot; on a tag
    /// mismatch the (rare) failure path re-applies the keystream to restore the
    /// original ciphertext before returning the error.
    pub fn decrypt_in_place_detached(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        buf: &mut [u8],
        tag: &[u8],
    ) -> Result<(), Error> {
        if tag.len() != TAG_LEN {
            return Err(Error);
        }

        let mut y = (0u64, 0u64);
        self.ghash.update_padded(&mut y, aad);

        if self.ghash.is_clmul() {
            self.decrypt_strides_wide(nonce, buf, &mut y);
        } else {
            self.decrypt_strides(nonce, buf, &mut y);
        }

        let mut expected = self.ghash.finalize_with_lengths(
            &mut y,
            (aad.len() as u64) * 8,
            (buf.len() as u64) * 8,
        );
        self.mask_tag(nonce, &mut expected);

        // Constant-time-ish comparison.
        let mut diff = 0u8;
        for (a, b) in expected.iter().zip(tag.iter()) {
            diff |= a ^ b;
        }
        if diff != 0 {
            // Restore the ciphertext so callers observe the documented
            // leave-as-ciphertext failure contract.
            self.ctr_xor(nonce, buf);
            return Err(Error);
        }
        Ok(())
    }

    /// 128-byte-stride fused open loop (Shoup-GHASH tiers).
    fn decrypt_strides(&self, nonce: &[u8; NONCE_LEN], buf: &mut [u8], y: &mut (u64, u64)) {
        let mut counter = 2u32;
        let mut ks = [0u8; STRIDE];
        let mut strides = buf.chunks_exact_mut(STRIDE);
        for chunk in strides.by_ref() {
            // GHASH first (the tag covers ciphertext), then decrypt in place.
            self.ghash.update4(y, chunk[..64].try_into().expect("64"));
            self.ghash.update4(y, chunk[64..].try_into().expect("64"));
            self.aes.ctr8_keystream(nonce, counter, &mut ks);
            counter = counter.wrapping_add(CTR_LANES as u32);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
        }
        let rem = strides.into_remainder();
        if !rem.is_empty() {
            self.ghash.update_padded(y, rem);
            self.aes.ctr8_keystream(nonce, counter, &mut ks);
            for (b, k) in rem.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
        }
    }

    /// 256-byte-stride fused open loop (CLMUL tier); the keystream bytes are
    /// identical to the 8-block generator's, so mixed-width seal/open and the
    /// [`Self::ctr_xor`] restore path all interoperate.
    fn decrypt_strides_wide(&self, nonce: &[u8; NONCE_LEN], buf: &mut [u8], y: &mut (u64, u64)) {
        let mut counter = 2u32;
        let mut ks = [0u8; WIDE_STRIDE];
        let mut strides = buf.chunks_exact_mut(WIDE_STRIDE);
        for chunk in strides.by_ref() {
            self.ghash.update_bulk(y, chunk);
            self.aes.ctr16_keystream(nonce, counter, &mut ks);
            counter = counter.wrapping_add(WIDE_LANES as u32);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
        }
        let rem = strides.into_remainder();
        if !rem.is_empty() {
            self.ghash.update_padded(y, rem);
            let mut ks8 = [0u8; STRIDE];
            for part in rem.chunks_mut(STRIDE) {
                self.aes.ctr8_keystream(nonce, counter, &mut ks8);
                counter = counter.wrapping_add(CTR_LANES as u32);
                for (b, k) in part.iter_mut().zip(ks8.iter()) {
                    *b ^= k;
                }
            }
        }
    }

    /// Retained scalar reference seal: one AES block and one GHASH block at a
    /// time, in two separate passes (the pre-fused datapath). Exists purely as
    /// the independent cross-check for the fused engine.
    pub fn encrypt_in_place_detached_reference(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        buf: &mut [u8],
    ) -> [u8; TAG_LEN] {
        let mut counter = 2u32;
        for chunk in buf.chunks_mut(16) {
            let mut ks = Self::counter_block(nonce, counter);
            self.aes.encrypt_block(&mut ks);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
            counter = counter.wrapping_add(1);
        }
        self.reference_tag(nonce, aad, buf)
    }

    /// Retained scalar reference open; see
    /// [`Self::encrypt_in_place_detached_reference`].
    pub fn decrypt_in_place_detached_reference(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        buf: &mut [u8],
        tag: &[u8],
    ) -> Result<(), Error> {
        let expected = self.reference_tag(nonce, aad, buf);
        if tag.len() != TAG_LEN {
            return Err(Error);
        }
        let mut diff = 0u8;
        for (a, b) in expected.iter().zip(tag.iter()) {
            diff |= a ^ b;
        }
        if diff != 0 {
            return Err(Error);
        }
        let mut counter = 2u32;
        for chunk in buf.chunks_mut(16) {
            let mut ks = Self::counter_block(nonce, counter);
            self.aes.encrypt_block(&mut ks);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
            counter = counter.wrapping_add(1);
        }
        Ok(())
    }

    fn reference_tag(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], ciphertext: &[u8]) -> [u8; 16] {
        let mut ghash = self.ghash_ref.clone();
        ghash.update_padded(aad);
        ghash.update_padded(ciphertext);
        let mut tag =
            ghash.finalize_with_lengths((aad.len() as u64) * 8, (ciphertext.len() as u64) * 8);
        self.mask_tag(nonce, &mut tag);
        tag
    }
}

impl<const KEY_LEN: usize> Aead for AesGcm<KEY_LEN> {
    fn encrypt<'msg, 'aad>(
        &self,
        nonce: &Nonce,
        plaintext: impl Into<Payload<'msg, 'aad>>,
    ) -> Result<Vec<u8>, Error> {
        let payload = plaintext.into();
        let mut out = Vec::with_capacity(payload.msg.len() + TAG_LEN);
        out.extend_from_slice(payload.msg);
        let tag = self.encrypt_in_place_detached(&nonce.0, payload.aad, &mut out);
        out.extend_from_slice(&tag);
        Ok(out)
    }

    fn decrypt<'msg, 'aad>(
        &self,
        nonce: &Nonce,
        ciphertext: impl Into<Payload<'msg, 'aad>>,
    ) -> Result<Vec<u8>, Error> {
        let payload = ciphertext.into();
        if payload.msg.len() < TAG_LEN {
            return Err(Error);
        }
        let (ct, tag) = payload.msg.split_at(payload.msg.len() - TAG_LEN);
        let mut out = ct.to_vec();
        self.decrypt_in_place_detached(&nonce.0, payload.aad, &mut out, tag)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::aead::{Aead, KeyInit, Payload};
    use super::{Aes128Gcm, Aes256Gcm, Nonce};

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn nist_gcm_128_test_case_3() {
        // NIST GCM spec test case 3 (AES-128, no AAD).
        let key = unhex("feffe9928665731c6d6a8f9467308308");
        let nonce_bytes: [u8; 12] = unhex("cafebabefacedbaddecaf888").try_into().unwrap();
        let pt = unhex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a721c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
        );
        let cipher = Aes128Gcm::new_from_slice(&key).unwrap();
        let nonce: Nonce = (&nonce_bytes).into();
        let out = cipher.encrypt(&nonce, pt.as_slice()).unwrap();
        assert_eq!(
            hex(&out[..64]),
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985"
        );
        assert_eq!(hex(&out[64..]), "4d5c2af327cd64a62cf35abd2ba6fab4");
        let back = cipher.decrypt(&nonce, out.as_slice()).unwrap();
        assert_eq!(back, pt);
    }

    #[test]
    fn nist_gcm_128_test_case_4_with_aad() {
        // NIST GCM spec test case 4 (AES-128, with AAD, short final block).
        let key = unhex("feffe9928665731c6d6a8f9467308308");
        let nonce_bytes: [u8; 12] = unhex("cafebabefacedbaddecaf888").try_into().unwrap();
        let pt = unhex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a721c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
        );
        let aad = unhex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
        let cipher = Aes128Gcm::new_from_slice(&key).unwrap();
        let nonce: Nonce = (&nonce_bytes).into();
        let out = cipher
            .encrypt(
                &nonce,
                Payload {
                    msg: &pt,
                    aad: &aad,
                },
            )
            .unwrap();
        assert_eq!(
            hex(&out[..pt.len()]),
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091"
        );
        assert_eq!(hex(&out[pt.len()..]), "5bc94fbc3221a5db94fae95ae7121a47");
        let back = cipher
            .decrypt(
                &nonce,
                Payload {
                    msg: &out,
                    aad: &aad,
                },
            )
            .unwrap();
        assert_eq!(back, pt);
    }

    #[test]
    fn nist_gcm_256_test_case_14() {
        // AES-256-GCM, zero key, zero nonce, one zero block.
        let key = [0u8; 32];
        let nonce_bytes = [0u8; 12];
        let pt = [0u8; 16];
        let cipher = Aes256Gcm::new_from_slice(&key).unwrap();
        let nonce: Nonce = (&nonce_bytes).into();
        let out = cipher.encrypt(&nonce, pt.as_slice()).unwrap();
        assert_eq!(hex(&out[..16]), "cea7403d4d606b6e074ec5d3baf39d18");
        assert_eq!(hex(&out[16..]), "d0d1c8a799996bf0265b98b5d48ab919");
    }

    #[test]
    fn tamper_and_aad_mismatch_rejected() {
        let key = [7u8; 16];
        let cipher = Aes128Gcm::new_from_slice(&key).unwrap();
        let nonce_bytes = [1u8; 12];
        let nonce: Nonce = (&nonce_bytes).into();
        let mut out = cipher
            .encrypt(
                &nonce,
                Payload {
                    msg: b"hello",
                    aad: b"aad",
                },
            )
            .unwrap();
        assert!(cipher
            .decrypt(
                &nonce,
                Payload {
                    msg: &out,
                    aad: b"bad",
                }
            )
            .is_err());
        out[0] ^= 1;
        assert!(cipher
            .decrypt(
                &nonce,
                Payload {
                    msg: &out,
                    aad: b"aad",
                }
            )
            .is_err());
    }

    #[test]
    fn in_place_matches_buffered() {
        let key = [9u8; 16];
        let cipher = Aes128Gcm::new_from_slice(&key).unwrap();
        let nonce_bytes = [3u8; 12];
        let nonce: Nonce = (&nonce_bytes).into();
        let msg = b"in-place encryption check, length not a block multiple";
        let buffered = cipher
            .encrypt(&nonce, Payload { msg, aad: b"hdr" })
            .unwrap();
        let mut in_place = msg.to_vec();
        let tag = cipher.encrypt_in_place_detached(&nonce_bytes, b"hdr", &mut in_place);
        assert_eq!(&buffered[..msg.len()], in_place.as_slice());
        assert_eq!(&buffered[msg.len()..], tag.as_slice());
        cipher
            .decrypt_in_place_detached(&nonce_bytes, b"hdr", &mut in_place, &tag)
            .unwrap();
        assert_eq!(in_place.as_slice(), msg);
    }

    #[test]
    fn wrong_key_length_rejected() {
        assert!(Aes128Gcm::new_from_slice(&[0u8; 15]).is_err());
        assert!(Aes256Gcm::new_from_slice(&[0u8; 16]).is_err());
    }
}

/// Component-level timing probe for the fused engine (keystream generation,
/// GHASH and the fused seal separately). Ignored by default; run with
/// `cargo test -p aes-gcm --release -- --ignored --nocapture probe` when
/// tuning either backend.
#[cfg(test)]
mod perf_probe {
    use super::aead::KeyInit;
    use super::*;
    use std::time::Instant;

    #[test]
    #[ignore]
    fn probe() {
        let cipher = Aes128Gcm::new_from_slice(&[7u8; 16]).unwrap();
        let nonce = [1u8; 12];
        let mut buf = vec![0xabu8; 16384];
        // Warm.
        for _ in 0..50 {
            std::hint::black_box(cipher.encrypt_in_place_detached(&nonce, b"aad", &mut buf));
        }
        let iters = 2000;

        let t = Instant::now();
        let mut ks = [0u8; STRIDE];
        for i in 0..iters {
            let mut ctr = 2u32;
            for _ in 0..(16384 / STRIDE) {
                cipher.aes.ctr8_keystream(&nonce, ctr, &mut ks);
                ctr = ctr.wrapping_add(8);
            }
            std::hint::black_box((&ks, i));
        }
        let aes_ns = t.elapsed().as_nanos() as f64 / iters as f64;
        println!(
            "aes ctr8 only: {:.0} ns/16KiB = {:.2} ns/B",
            aes_ns,
            aes_ns / 16384.0
        );

        let t = Instant::now();
        for i in 0..iters {
            let mut y = (0u64, 0u64);
            cipher.ghash.update_padded(&mut y, &buf);
            std::hint::black_box((y, i));
        }
        let gh_ns = t.elapsed().as_nanos() as f64 / iters as f64;
        println!(
            "ghash agg4 only: {:.0} ns/16KiB = {:.2} ns/B",
            gh_ns,
            gh_ns / 16384.0
        );

        let t = Instant::now();
        for i in 0..iters {
            std::hint::black_box((
                cipher.encrypt_in_place_detached(&nonce, b"aad", &mut buf),
                i,
            ));
        }
        let full_ns = t.elapsed().as_nanos() as f64 / iters as f64;
        println!(
            "fused seal: {:.0} ns/16KiB = {:.2} ns/B",
            full_ns,
            full_ns / 16384.0
        );
    }
}
