//! Per-operation handshake timing (paper Table 2).
//!
//! The paper breaks the TLS 1.3 initial handshake into individually timed
//! operations on each side (S1–S3 on the server, C1.1–C5 on the client) to show
//! where the latency comes from and which operations the SMT key-exchange
//! optimisations (§4.5.1/§4.5.2) remove.  The handshake state machines in this
//! crate record the same breakdown so the Table 2 harness can regenerate the
//! measurement on the reproduction machine.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Identifiers of the timed handshake operations, matching Table 2 rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum OpId {
    // --- server side -----------------------------------------------------
    /// S1: parse and process the ClientHello.
    S1ProcessChlo,
    /// S2.1: generate the server ephemeral key share.
    S2_1KeyGen,
    /// S2.2: ECDH exchange with the client share.
    S2_2EcdhExchange,
    /// S2.3: build the ServerHello.
    S2_3ShloGen,
    /// S2.4: encode EncryptedExtensions and the certificate chain.
    S2_4EeCertEncode,
    /// S2.5: generate CertificateVerify (ECDSA sign over the transcript).
    S2_5CertVerifyGen,
    /// S2.6: derive handshake/application secrets.
    S2_6SecretDerive,
    /// S3: verify the client Finished.
    S3ProcessFinished,
    // --- client side -----------------------------------------------------
    /// C1.1: generate the client ephemeral key share.
    C1_1KeyGen,
    /// C1.2: build the rest of the ClientHello.
    C1_2OthersGen,
    /// C2.1: parse and process the ServerHello.
    C2_1ProcessShlo,
    /// C2.2: ECDH exchange with the server share.
    C2_2EcdhExchange,
    /// C2.3: derive handshake/application secrets.
    C2_3SecretDerive,
    /// C3.1: decode the certificate chain.
    C3_1DecodeCert,
    /// C3.2: validate the certificate chain against the CA.
    C3_2VerifyCert,
    /// C4.1: rebuild the CertificateVerify signed data.
    C4_1BuildSignData,
    /// C4.2: verify the CertificateVerify signature.
    C4_2VerifyCertVerify,
    /// C5: verify the server Finished and emit the client Finished.
    C5ProcessFinished,
}

impl std::fmt::Display for OpId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl OpId {
    /// The paper's row label for this operation (e.g. "S2.2").
    pub fn label(self) -> &'static str {
        match self {
            OpId::S1ProcessChlo => "S1",
            OpId::S2_1KeyGen => "S2.1",
            OpId::S2_2EcdhExchange => "S2.2",
            OpId::S2_3ShloGen => "S2.3",
            OpId::S2_4EeCertEncode => "S2.4",
            OpId::S2_5CertVerifyGen => "S2.5",
            OpId::S2_6SecretDerive => "S2.6",
            OpId::S3ProcessFinished => "S3",
            OpId::C1_1KeyGen => "C1.1",
            OpId::C1_2OthersGen => "C1.2",
            OpId::C2_1ProcessShlo => "C2.1",
            OpId::C2_2EcdhExchange => "C2.2",
            OpId::C2_3SecretDerive => "C2.3",
            OpId::C3_1DecodeCert => "C3.1",
            OpId::C3_2VerifyCert => "C3.2",
            OpId::C4_1BuildSignData => "C4.1",
            OpId::C4_2VerifyCertVerify => "C4.2",
            OpId::C5ProcessFinished => "C5",
        }
    }

    /// The paper's operation description for this row.
    pub fn description(self) -> &'static str {
        match self {
            OpId::S1ProcessChlo => "Process CHLO",
            OpId::S2_1KeyGen => "Key Gen",
            OpId::S2_2EcdhExchange => "ECDH Exchange",
            OpId::S2_3ShloGen => "SHLO Gen",
            OpId::S2_4EeCertEncode => "EE & Cert Encode",
            OpId::S2_5CertVerifyGen => "CertVerify Gen",
            OpId::S2_6SecretDerive => "Secret Derive",
            OpId::S3ProcessFinished => "Process Finished",
            OpId::C1_1KeyGen => "Key Gen",
            OpId::C1_2OthersGen => "Others Gen",
            OpId::C2_1ProcessShlo => "Process SHLO",
            OpId::C2_2EcdhExchange => "ECDH Exchange",
            OpId::C2_3SecretDerive => "Secret Derive",
            OpId::C3_1DecodeCert => "Decode Cert",
            OpId::C3_2VerifyCert => "Verify Cert",
            OpId::C4_1BuildSignData => "Build Sign Data",
            OpId::C4_2VerifyCertVerify => "Verify CertVerify",
            OpId::C5ProcessFinished => "Process Finished",
        }
    }

    /// True for server-side operations.
    pub fn is_server(self) -> bool {
        matches!(
            self,
            OpId::S1ProcessChlo
                | OpId::S2_1KeyGen
                | OpId::S2_2EcdhExchange
                | OpId::S2_3ShloGen
                | OpId::S2_4EeCertEncode
                | OpId::S2_5CertVerifyGen
                | OpId::S2_6SecretDerive
                | OpId::S3ProcessFinished
        )
    }

    /// All operations in Table 2 order.
    pub fn all() -> Vec<OpId> {
        vec![
            OpId::S1ProcessChlo,
            OpId::S2_1KeyGen,
            OpId::S2_2EcdhExchange,
            OpId::S2_3ShloGen,
            OpId::S2_4EeCertEncode,
            OpId::S2_5CertVerifyGen,
            OpId::S2_6SecretDerive,
            OpId::S3ProcessFinished,
            OpId::C1_1KeyGen,
            OpId::C1_2OthersGen,
            OpId::C2_1ProcessShlo,
            OpId::C2_2EcdhExchange,
            OpId::C2_3SecretDerive,
            OpId::C3_1DecodeCert,
            OpId::C3_2VerifyCert,
            OpId::C4_1BuildSignData,
            OpId::C4_2VerifyCertVerify,
            OpId::C5ProcessFinished,
        ]
    }
}

/// Accumulated per-operation durations for one handshake run.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct HandshakeTimings {
    durations: BTreeMap<OpId, Duration>,
}

impl HandshakeTimings {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Times `f`, attributing the elapsed time to `op` (accumulating if the
    /// operation is recorded more than once).
    pub fn time<T>(&mut self, op: OpId, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        let elapsed = start.elapsed();
        *self.durations.entry(op).or_default() += elapsed;
        out
    }

    /// Records an externally measured duration.
    pub fn record(&mut self, op: OpId, d: Duration) {
        *self.durations.entry(op).or_default() += d;
    }

    /// The recorded duration for `op`, if any.
    pub fn get(&self, op: OpId) -> Option<Duration> {
        self.durations.get(&op).copied()
    }

    /// Total time across all recorded operations.
    pub fn total(&self) -> Duration {
        self.durations.values().sum()
    }

    /// Total time across server-side (or client-side) operations.
    pub fn total_side(&self, server: bool) -> Duration {
        self.durations
            .iter()
            .filter(|(op, _)| op.is_server() == server)
            .map(|(_, d)| *d)
            .sum()
    }

    /// Iterates the recorded rows in Table 2 order.
    pub fn rows(&self) -> impl Iterator<Item = (OpId, Duration)> + '_ {
        OpId::all()
            .into_iter()
            .filter_map(move |op| self.durations.get(&op).map(|d| (op, *d)))
    }

    /// Merges another recorder into this one (e.g. client + server timings).
    pub fn merge(&mut self, other: &HandshakeTimings) {
        for (op, d) in &other.durations {
            *self.durations.entry(*op).or_default() += *d;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_and_accumulate() {
        let mut t = HandshakeTimings::new();
        let v = t.time(OpId::S1ProcessChlo, || 21 * 2);
        assert_eq!(v, 42);
        assert!(t.get(OpId::S1ProcessChlo).is_some());
        t.record(OpId::S1ProcessChlo, Duration::from_micros(10));
        assert!(t.get(OpId::S1ProcessChlo).unwrap() >= Duration::from_micros(10));
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(OpId::S2_5CertVerifyGen.label(), "S2.5");
        assert_eq!(OpId::C4_2VerifyCertVerify.label(), "C4.2");
        assert_eq!(OpId::C3_2VerifyCert.description(), "Verify Cert");
        assert_eq!(OpId::all().len(), 18);
    }

    #[test]
    fn side_totals() {
        let mut t = HandshakeTimings::new();
        t.record(OpId::S1ProcessChlo, Duration::from_micros(5));
        t.record(OpId::C1_1KeyGen, Duration::from_micros(7));
        assert_eq!(t.total_side(true), Duration::from_micros(5));
        assert_eq!(t.total_side(false), Duration::from_micros(7));
        assert_eq!(t.total(), Duration::from_micros(12));
    }

    #[test]
    fn merge_combines() {
        let mut a = HandshakeTimings::new();
        let mut b = HandshakeTimings::new();
        a.record(OpId::S1ProcessChlo, Duration::from_micros(1));
        b.record(OpId::C5ProcessFinished, Duration::from_micros(2));
        a.merge(&b);
        assert_eq!(a.rows().count(), 2);
    }

    #[test]
    fn rows_in_table_order() {
        let mut t = HandshakeTimings::new();
        t.record(OpId::C5ProcessFinished, Duration::from_micros(2));
        t.record(OpId::S1ProcessChlo, Duration::from_micros(1));
        let rows: Vec<_> = t.rows().map(|(op, _)| op).collect();
        assert_eq!(rows, vec![OpId::S1ProcessChlo, OpId::C5ProcessFinished]);
    }
}
