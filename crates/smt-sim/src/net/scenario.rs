//! The scenario layer: hosts real protocol engines on the fabric, drives them
//! in simulated time, and reports what happened.
//!
//! A [`Scenario`] describes a topology (hosts + flows), a workload (a
//! time-sorted list of [`ScheduledSend`]s) and the network conditions
//! ([`LinkConfig`] + [`FaultConfig`]).  [`run_scenario`] couples it to a set
//! of [`SimEndpoint`]s — two per flow, the real `smt-transport` engines in
//! production use — and runs the discrete-event loop: workload sends, packet
//! arrivals and retransmission timers, all on the virtual clock, until traffic
//! quiesces or the event budget runs out.
//!
//! Everything observable lands in a [`ScenarioReport`]: per-message latency
//! percentiles, goodput, retransmission/timeout/drop counters from both the
//! endpoints and the fabric, and an order-sensitive [`trace_hash`] digest of
//! the full event sequence that the determinism tests compare across runs.
//!
//! [`trace_hash`]: ScenarioReport::trace_hash

use super::adversary::{Adversary, AdversaryConfig, AdversaryStats};
use super::event::TraceHash;
use super::fabric::{
    EcnConfig, Fabric, FabricStats, FaultConfig, HostId, LinkConfig, PortId, Topology,
};
use crate::pipeline::LatencySummary;
use crate::time::{Nanos, SECOND};
use serde::{Deserialize, Serialize};
use smt_wire::Packet;
use std::collections::BTreeMap;

/// Counters a simulated endpoint exposes to the scenario layer, uniform
/// across protocol stacks.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimEndpointStats {
    /// Data packets retransmitted by the send side.
    pub retransmissions: u64,
    /// Retransmission timers that fired.
    pub timeouts_fired: u64,
    /// Received datagrams the endpoint discarded (failed authentication,
    /// malformed, or arrived after a fatal error).
    pub datagrams_dropped: u64,
    /// Messages delivered to the application.
    pub messages_delivered: u64,
    /// Wire payload bytes produced by the send side.
    pub wire_bytes_sent: u64,
    /// TLS records sealed in software by the send side (zero for plaintext
    /// and NIC-offloaded stacks).  [`run_scenario`] charges
    /// [`Scenario::cpu`] per record counted here.
    pub records_sealed: u64,
    /// Received datagrams rejected as structurally malformed before any
    /// cryptographic check.
    pub malformed_rejected: u64,
    /// Received records/packets whose authentication failed (forged or
    /// corrupted ciphertext).
    pub auth_failures: u64,
    /// Times a bounded per-peer buffer hit its cap and evicted state.
    pub state_evictions: u64,
    /// High-water mark of attacker-influenceable buffered bytes across the
    /// endpoint's bounded buffers.
    pub peak_tracked_bytes: u64,
    /// Median send→ack latency over this endpoint's completed messages, in
    /// nanoseconds (zero when the endpoint records no samples).
    pub op_latency_p50_ns: u64,
    /// 99th-percentile send→ack latency, in nanoseconds.
    pub op_latency_p99_ns: u64,
}

/// The contract a protocol engine implements to live on the fabric.
///
/// This is the time-based mirror of `smt-transport`'s `SecureEndpoint`: every
/// driving call carries the virtual clock, and the endpoint exposes its next
/// retransmission deadline instead of relying on a caller-owned tick loop.
/// (`smt-transport` implements it for its unified `Endpoint`, so any of the
/// eight evaluated stacks drops in here.)
pub trait SimEndpoint {
    /// Queues one application message at time `now`; returns its ID, or
    /// `None` if the endpoint refused it (fatal prior error).
    fn send(&mut self, data: &[u8], now: Nanos) -> Option<u64>;

    /// Processes one packet received from the fabric at time `now`.
    fn handle_datagram(&mut self, packet: &Packet, now: Nanos);

    /// Appends every packet the endpoint wants on the wire at time `now`,
    /// returning how many were appended.
    fn poll_transmit(&mut self, now: Nanos, out: &mut Vec<Packet>) -> usize;

    /// The absolute time of the endpoint's next retransmission deadline, if
    /// it has outstanding work.
    fn next_timeout(&self) -> Option<Nanos>;

    /// Fires the retransmission timer at time `now`.
    fn on_timeout(&mut self, now: Nanos);

    /// Drains completed deliveries as `(message_id, payload)` pairs.
    fn take_delivered(&mut self) -> Vec<(u64, Vec<u8>)>;

    /// Aggregate counters.
    fn sim_stats(&self) -> SimEndpointStats;
}

/// One bidirectional flow between two hosts; the scenario allocates a port
/// (and an endpoint) for each end.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FlowSpec {
    /// Host of the initiating (client) end.
    pub src_host: HostId,
    /// Host of the responding (server) end.
    pub dst_host: HostId,
}

/// A reply produced by a [`ScenarioApp`] host for one delivered request.
///
/// The two delay terms model the paper's two kinds of server-side time:
/// `compute_ns` occupies the (single) application core serving that endpoint
/// — back-to-back requests queue behind it, the Redis model — while
/// `fixed_ns` is pure latency that burns no CPU (an NVMe read in flight, the
/// blockstore model).  Both zero sends the reply at delivery time, exactly
/// like the plain `run_scenario` closure path.
#[derive(Debug, Clone)]
pub struct AppReply {
    /// Reply payload sent back on the same flow.
    pub data: Vec<u8>,
    /// Server application compute that occupies the endpoint's app core.
    pub compute_ns: Nanos,
    /// Server-side fixed latency that occupies no CPU (device time).
    pub fixed_ns: Nanos,
}

impl AppReply {
    /// A reply with no server-side delay (the echo server).
    pub fn immediate(data: Vec<u8>) -> Self {
        Self {
            data,
            compute_ns: 0,
            fixed_ns: 0,
        }
    }
}

/// An application host driven by [`run_scenario_app`]: the netbench-style
/// driver/scenario split.  The scenario owns time and the network; the app
/// owns request semantics (what a server replies, what a client asks next).
///
/// `on_request` runs at every server-end delivery and may return a clocked
/// [`AppReply`].  `on_reply` runs at every client-end reply delivery and may
/// return the *next* request for that flow — the closed-loop hook the
/// throughput and YCSB figures drive: seed the loop with `concurrency`
/// scheduled sends, then keep exactly that many RPCs outstanding.
pub trait ScenarioApp {
    /// Called for every workload message delivered at a server end; a
    /// returned reply is sent back on the same flow after its delays.
    fn on_request(&mut self, flow: usize, id: u64, request: &[u8], now: Nanos) -> Option<AppReply>;

    /// Called for every reply delivered back at a client end; a returned
    /// payload is sent as a fresh workload request on the same flow
    /// (closed-loop generation).  Defaults to open-loop (no new request).
    fn on_reply(&mut self, _flow: usize, _id: u64, _reply: &[u8], _now: Nanos) -> Option<Vec<u8>> {
        None
    }

    /// Called when a scheduled workload send fires, letting the app replace
    /// the deterministic filler payload with a real encoded request for the
    /// flow (the KV and blockstore hosts need request framing the scenario's
    /// size-only send list can't carry).  Defaults to the filler.
    fn initial_request(&mut self, _flow: usize, _size: usize, _now: Nanos) -> Option<Vec<u8>> {
        None
    }
}

/// Adapts the plain `run_scenario` reply closure to the [`ScenarioApp`]
/// contract (open-loop, zero server delay).
struct FnApp<F>(F);

impl<F: FnMut(usize, u64, &[u8], Nanos) -> Option<Vec<u8>>> ScenarioApp for FnApp<F> {
    fn on_request(&mut self, flow: usize, id: u64, request: &[u8], now: Nanos) -> Option<AppReply> {
        (self.0)(flow, id, request, now).map(AppReply::immediate)
    }
}

/// One workload-initiated message: at time `at`, the client end of `flow`
/// sends `size` bytes.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ScheduledSend {
    /// Virtual send time.
    pub at: Nanos,
    /// Index into [`Scenario::flows`].
    pub flow: usize,
    /// Application payload size in bytes.
    pub size: usize,
}

/// Sender-side CPU cost charged against the virtual clock for each workload
/// send, modelling the protocol-stack time a real host would burn sealing
/// records before the first byte reaches the wire.
///
/// The per-record and per-byte terms mirror `smt_sim::cost::CostModel`'s
/// software-crypto split (`CostModel::cpu_charge` builds one of these from
/// the calibrated model).  The charge is applied once per scheduled send,
/// scaled by how many records the endpoint actually sealed for it — an
/// offloaded or plaintext stack seals zero records and pays nothing, which
/// is exactly the asymmetry the paper's CPU-vs-latency trade-off hinges on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuCharge {
    /// Fixed cost per sealed record (AEAD setup, framing, seqno).
    pub sw_per_record_ns: Nanos,
    /// Marginal cost per application byte encrypted.
    pub sw_ns_per_byte: f64,
}

impl CpuCharge {
    /// Nanoseconds to seal `bytes` application bytes as `records` records.
    pub fn seal_ns(&self, bytes: u64, records: u64) -> Nanos {
        records * self.sw_per_record_ns + (bytes as f64 * self.sw_ns_per_byte) as Nanos
    }
}

/// A complete scenario description: topology, workload, network conditions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Human-readable scenario name (lands in the report and bench JSON).
    pub name: String,
    /// Number of hosts in the fabric.
    pub n_hosts: usize,
    /// The flows; endpoint pair `2*i` / `2*i + 1` serves flow `i`.
    pub flows: Vec<FlowSpec>,
    /// Workload sends, sorted by time.
    pub sends: Vec<ScheduledSend>,
    /// Link parameters shared by every host.
    pub link: LinkConfig,
    /// Fault injection applied to all traffic.
    pub faults: FaultConfig,
    /// Hard cap on processed events (a runaway-protocol backstop).
    pub max_events: u64,
    /// Sender CPU cost charged per workload send, scaled by the records the
    /// endpoint sealed for it.  `None` (the default, and what older scenario
    /// JSON deserializes to) runs the pre-existing zero-CPU-cost model.
    #[serde(default)]
    pub cpu: Option<CpuCharge>,
    /// Hostile-network model composed on top of [`Self::faults`]: forged
    /// replays, corrupted/truncated/spliced copies, garbage floods and an
    /// in-path stall window.  `None` (the default, and what older scenario
    /// JSON deserializes to) runs without an adversary.
    #[serde(default)]
    pub adversary: Option<AdversaryConfig>,
    /// Switching topology.  Defaults to the single big switch, which is also
    /// what older scenario JSON deserializes to.
    #[serde(default)]
    pub topology: Topology,
    /// ECN marking at fabric queues.  `None` (the default) never marks.
    #[serde(default)]
    pub ecn: Option<EcnConfig>,
}

impl Scenario {
    /// A scenario skeleton with default network conditions and event budget.
    pub fn new(name: impl Into<String>, n_hosts: usize) -> Self {
        Self {
            name: name.into(),
            n_hosts,
            flows: Vec::new(),
            sends: Vec::new(),
            link: LinkConfig::default(),
            faults: FaultConfig::none(),
            max_events: 20_000_000,
            cpu: None,
            adversary: None,
            topology: Topology::BigSwitch,
            ecn: None,
        }
    }

    /// Total workload bytes scheduled.
    pub fn offered_bytes(&self) -> u64 {
        self.sends.iter().map(|s| s.size as u64).sum()
    }

    /// Sorts the workload by `(time, flow)`; [`run_scenario`] requires sorted
    /// sends, and generators call this before returning.
    pub fn sort_sends(&mut self) {
        self.sends.sort_by_key(|s| (s.at, s.flow, s.size));
    }
}

/// Everything measured over one scenario run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: String,
    /// Workload messages handed to `send`.
    pub messages_sent: u64,
    /// Workload messages delivered end to end (excludes replies).
    pub messages_delivered: u64,
    /// Replies delivered back to the requesting end (RPC scenarios).
    pub replies_delivered: u64,
    /// Application bytes delivered (workload + replies).
    pub bytes_delivered: u64,
    /// Virtual time of the last processed event.
    pub duration_ns: Nanos,
    /// One-way delivery latency over workload messages (and replies, measured
    /// from their own send).
    pub latency: LatencySummary,
    /// Per-op application latency: full request-send → reply-delivery round
    /// trips, one sample per completed RPC (empty for reply-less scenarios).
    /// Figure bins read p50/p99 from here instead of re-deriving them.
    #[serde(default)]
    pub rpc_latency: LatencySummary,
    /// Worst per-endpoint p99 of send→ack message latency, as measured by the
    /// endpoints themselves ([`SimEndpointStats::op_latency_p99_ns`]).
    #[serde(default)]
    pub endpoint_op_p99_ns: u64,
    /// Delivered application bytes over the run duration, in Gb/s.
    pub goodput_gbps: f64,
    /// Data packets retransmitted, summed over all endpoints.
    pub retransmissions: u64,
    /// Retransmission timers fired, summed over all endpoints.
    pub timeouts_fired: u64,
    /// Datagrams discarded by endpoints (auth failures, malformed).
    pub endpoint_datagrams_dropped: u64,
    /// TLS records sealed in software, summed over all endpoints (zero for
    /// plaintext and offloaded stacks).
    pub records_sealed: u64,
    /// Structurally malformed datagrams rejected, summed over all endpoints.
    #[serde(default)]
    pub malformed_rejected: u64,
    /// Authentication failures (forged/corrupted ciphertext), summed over all
    /// endpoints.
    #[serde(default)]
    pub auth_failures: u64,
    /// Bounded-buffer cap evictions, summed over all endpoints.
    #[serde(default)]
    pub state_evictions: u64,
    /// Maximum over endpoints of the attacker-influenceable buffered-byte
    /// high-water mark — the chaos suite's boundedness gauge.
    #[serde(default)]
    pub peak_tracked_bytes: u64,
    /// What the adversary did (all zeros when [`Scenario::adversary`] is
    /// `None`).
    #[serde(default)]
    pub adversary: AdversaryStats,
    /// Fabric counters (offered/delivered/dropped/duplicated).
    pub fabric: FabricStats,
    /// Order-sensitive digest of the processed event sequence; equal digests
    /// mean bit-identical runs.
    pub trace_hash: u64,
    /// Events processed.
    pub events: u64,
    /// True when the run hit [`Scenario::max_events`] before quiescing.
    pub truncated: bool,
}

/// What caused an event, folded into the trace digest.
mod trace_tag {
    pub const SEND: u64 = 1;
    pub const ARRIVAL: u64 = 2;
    pub const TIMEOUT: u64 = 3;
    pub const DELIVERY: u64 = 4;
    pub const INJECT: u64 = 5;
    pub const APP: u64 = 6;
}

/// Runs `scenario` over `endpoints` (two per flow: index `2*f` is the client
/// end of flow `f`, `2*f + 1` the server end).
///
/// `on_deliver(flow, message_id, payload, now)` is invoked for every workload
/// message delivered at a server end; returning `Some(reply)` makes the
/// server end send that reply back on the same flow (the RPC pattern — the
/// bench harness plugs `smt-apps`' echo server in here).  Replies' deliveries
/// at the client end are measured like any other message but are counted
/// separately in the report.
pub fn run_scenario(
    scenario: &Scenario,
    endpoints: &mut [Box<dyn SimEndpoint + '_>],
    on_deliver: impl FnMut(usize, u64, &[u8], Nanos) -> Option<Vec<u8>>,
) -> ScenarioReport {
    run_scenario_app(scenario, endpoints, &mut FnApp(on_deliver))
}

/// One application send queued for a later virtual time: a server reply held
/// for its compute/device delay, or a closed-loop client request.
struct PendingSend {
    ep: usize,
    data: Vec<u8>,
    /// `Some(request send time)` marks this as a reply, keyed back to its
    /// originating request for round-trip latency accounting.
    req_start: Option<Nanos>,
}

/// [`run_scenario`] with a full [`ScenarioApp`] host instead of the plain
/// reply closure: clocked server replies (compute occupies the app core,
/// device time doesn't) and closed-loop client generation.  Deferred app
/// sends pay the [`Scenario::cpu`] sealing charge exactly like scheduled
/// workload sends; immediate replies keep the original uncharged fast path,
/// so closure-driven scenarios reproduce their previous traces bit for bit.
pub fn run_scenario_app(
    scenario: &Scenario,
    endpoints: &mut [Box<dyn SimEndpoint + '_>],
    app: &mut dyn ScenarioApp,
) -> ScenarioReport {
    assert_eq!(
        endpoints.len(),
        scenario.flows.len() * 2,
        "one endpoint per flow end"
    );
    let mut adversary = scenario.adversary.map(Adversary::new);
    let mut fabric = Fabric::with_topology(
        scenario.link,
        scenario.faults,
        scenario.topology,
        scenario.ecn,
    );
    for _ in 0..scenario.n_hosts {
        fabric.add_host();
    }
    let mut ports: Vec<PortId> = Vec::with_capacity(endpoints.len());
    for flow in &scenario.flows {
        let a = fabric.add_port(flow.src_host);
        let b = fabric.add_port(flow.dst_host);
        fabric.connect(a, b);
        ports.push(a);
        ports.push(b);
    }
    // Ports are allocated densely in endpoint order, so PortId == endpoint
    // index; keep the assertion in case the fabric ever changes.
    debug_assert!(ports.iter().enumerate().all(|(i, &p)| i == p));

    let mut trace = TraceHash::new();
    let mut now: Nanos = 0;
    let mut events: u64 = 0;
    let mut truncated = false;
    let mut send_idx = 0usize;
    // (endpoint index, message id) -> send time, for latency measurement.
    let mut in_flight: BTreeMap<(usize, u64), Nanos> = BTreeMap::new();
    let mut latencies: Vec<Nanos> = Vec::new();
    // (server endpoint, reply id) -> originating request's send time, for
    // round-trip per-op latency.
    let mut reply_origin: BTreeMap<(usize, u64), Nanos> = BTreeMap::new();
    let mut rpc_latencies: Vec<Nanos> = Vec::new();
    // App sends queued for a later virtual time, ordered (time, sequence).
    let mut pending: BTreeMap<(Nanos, u64), PendingSend> = BTreeMap::new();
    let mut pending_seq: u64 = 0;
    // The virtual time each server endpoint's application core frees up:
    // requests with compute cost queue behind each other (one app thread).
    let mut app_free: Vec<Nanos> = vec![0; endpoints.len()];
    let mut messages_sent: u64 = 0;
    let mut messages_delivered: u64 = 0;
    let mut replies_delivered: u64 = 0;
    let mut bytes_delivered: u64 = 0;
    let mut scratch: Vec<Packet> = Vec::new();

    // When the CPU charge is enabled: the virtual time each endpoint's CPU
    // becomes free again, so back-to-back sends on one host serialize behind
    // each other's sealing work (a busy core, not a busy network).
    let mut cpu_free: Vec<Nanos> = vec![0; endpoints.len()];

    // Drains transmit queues and deliveries of the endpoints in `dirty`,
    // feeding transmissions into the fabric and deliveries into the latency
    // accounting (and the reply hook, which may dirty further endpoints).
    // The two-argument form stamps this pump's transmissions with a later
    // time — the Send arm uses it to hold a sealed burst until the sending
    // host's CPU charge has elapsed, without warping the shared clock (which
    // would fire every other endpoint's retransmission timers spuriously).
    macro_rules! pump {
        ($dirty:expr) => {
            pump!($dirty, now)
        };
        ($dirty:expr, $t:expr) => {{
            let t: Nanos = $t;
            let mut work: Vec<usize> = $dirty;
            while let Some(ep) = work.pop() {
                scratch.clear();
                if endpoints[ep].poll_transmit(t, &mut scratch) > 0 {
                    if let Some(adv) = adversary.as_mut() {
                        adv.tap(t, ports[ep], &mut scratch);
                    }
                    fabric.send(t, ports[ep], std::mem::take(&mut scratch));
                }
                for (id, data) in endpoints[ep].take_delivered() {
                    trace.note(trace_tag::DELIVERY);
                    trace.note(t);
                    trace.note(ep as u64);
                    trace.note(id);
                    trace.note(data.len() as u64);
                    bytes_delivered += data.len() as u64;
                    let is_server_end = ep % 2 == 1;
                    if is_server_end {
                        messages_delivered += 1;
                        let flow = ep / 2;
                        let req_start = in_flight.remove(&(flow * 2, id));
                        if let Some(start) = req_start {
                            latencies.push(t.saturating_sub(start));
                        }
                        if let Some(reply) = app.on_request(flow, id, &data, t) {
                            // Compute occupies the app core (requests queue
                            // behind each other); device time adds latency on
                            // top without holding the core.
                            let ready = app_free[ep].max(t) + reply.compute_ns.min(SECOND);
                            if reply.compute_ns > 0 {
                                app_free[ep] = ready;
                            }
                            let send_at = ready + reply.fixed_ns.min(SECOND);
                            if send_at <= t {
                                if let Some(rid) = endpoints[ep].send(&reply.data, t) {
                                    in_flight.insert((ep, rid), t);
                                    if let Some(start) = req_start {
                                        reply_origin.insert((ep, rid), start);
                                    }
                                    if !work.contains(&ep) {
                                        work.push(ep);
                                    }
                                }
                            } else {
                                pending.insert(
                                    (send_at, pending_seq),
                                    PendingSend {
                                        ep,
                                        data: reply.data,
                                        req_start,
                                    },
                                );
                                pending_seq += 1;
                            }
                        }
                    } else {
                        replies_delivered += 1;
                        let flow = ep / 2;
                        if let Some(start) = in_flight.remove(&(flow * 2 + 1, id)) {
                            latencies.push(t.saturating_sub(start));
                        }
                        if let Some(start) = reply_origin.remove(&(flow * 2 + 1, id)) {
                            rpc_latencies.push(t.saturating_sub(start));
                        }
                        if let Some(next) = app.on_reply(flow, id, &data, t) {
                            pending.insert(
                                (t, pending_seq),
                                PendingSend {
                                    ep,
                                    data: next,
                                    req_start: None,
                                },
                            );
                            pending_seq += 1;
                        }
                    }
                }
                // The reply (or an ACK queued during delivery) may have left
                // fresh transmissions behind; one more pass catches them.
                scratch.clear();
                if endpoints[ep].poll_transmit(t, &mut scratch) > 0 {
                    if let Some(adv) = adversary.as_mut() {
                        adv.tap(t, ports[ep], &mut scratch);
                    }
                    fabric.send(t, ports[ep], std::mem::take(&mut scratch));
                }
            }
        }};
    }

    loop {
        if events >= scenario.max_events {
            truncated = true;
            break;
        }
        let t_send = scenario.sends.get(send_idx).map(|s| s.at);
        let t_net = fabric.next_arrival();
        let t_app = pending.keys().next().map(|(at, _)| *at);
        let t_adv = adversary.as_ref().and_then(|a| a.next_injection());
        let t_timer = endpoints.iter().filter_map(|e| e.next_timeout()).min();
        // Deterministic cause priority at equal times: workload sends, then
        // packet arrivals, then deferred app sends, then adversary
        // injections, then timers.
        enum Cause {
            Send,
            Net,
            App,
            Inject,
            Timer,
        }
        let next = [
            t_send.map(|t| (t, 0u8)),
            t_net.map(|t| (t, 1u8)),
            t_app.map(|t| (t, 2u8)),
            t_adv.map(|t| (t, 3u8)),
            t_timer.map(|t| (t, 4u8)),
        ]
        .into_iter()
        .flatten()
        .min();
        let Some((t, tag)) = next else { break };
        let cause = match tag {
            0 => Cause::Send,
            1 => Cause::Net,
            2 => Cause::App,
            3 => Cause::Inject,
            _ => Cause::Timer,
        };
        now = now.max(t);
        events += 1;
        match cause {
            Cause::Send => {
                let s = scenario.sends[send_idx];
                send_idx += 1;
                let ep = s.flow * 2;
                // Deterministic filler payload; contents don't matter to the
                // engines beyond their length.
                let fill = (s.flow as u8).wrapping_mul(31).wrapping_add(s.size as u8);
                let data = app
                    .initial_request(s.flow, s.size, now)
                    .unwrap_or_else(|| vec![fill; s.size]);
                trace.note(trace_tag::SEND);
                trace.note(now);
                trace.note(ep as u64);
                trace.note(data.len() as u64);
                let sealed_before = scenario
                    .cpu
                    .map(|_| endpoints[ep].sim_stats().records_sealed);
                if let Some(id) = endpoints[ep].send(&data, now) {
                    messages_sent += 1;
                    in_flight.insert((ep, id), now);
                }
                // Charge the sender's CPU for the records this send sealed
                // (counted by the endpoint, so offloaded and plaintext
                // stacks pay nothing): the sealed burst leaves the host only
                // once its core is free — consecutive sends on one endpoint
                // queue behind each other's sealing work.
                let mut tx_at = now;
                if let (Some(cpu), Some(before)) = (scenario.cpu, sealed_before) {
                    let records = endpoints[ep]
                        .sim_stats()
                        .records_sealed
                        .saturating_sub(before);
                    if records > 0 {
                        tx_at =
                            cpu_free[ep].max(now) + cpu.seal_ns(s.size as u64, records).min(SECOND);
                        cpu_free[ep] = tx_at;
                    }
                }
                pump!(vec![ep], tx_at);
            }
            Cause::Net => {
                let Some((at, port, packet)) = fabric.pop_arrival() else {
                    continue;
                };
                now = now.max(at);
                trace.note(trace_tag::ARRIVAL);
                trace.note(now);
                trace.note(port as u64);
                trace.note(packet.wire_len() as u64);
                endpoints[port].handle_datagram(&packet, now);
                pump!(vec![port]);
            }
            Cause::App => {
                let Some((&key, _)) = pending.iter().next() else {
                    continue;
                };
                let ps = pending.remove(&key).expect("key just observed");
                trace.note(trace_tag::APP);
                trace.note(now);
                trace.note(ps.ep as u64);
                trace.note(ps.data.len() as u64);
                let is_client_end = ps.ep.is_multiple_of(2);
                let sealed_before = scenario
                    .cpu
                    .map(|_| endpoints[ps.ep].sim_stats().records_sealed);
                if let Some(id) = endpoints[ps.ep].send(&ps.data, now) {
                    if is_client_end {
                        // A closed-loop request: accounted exactly like a
                        // scheduled workload send.
                        messages_sent += 1;
                        in_flight.insert((ps.ep, id), now);
                    } else {
                        in_flight.insert((ps.ep, id), now);
                        if let Some(start) = ps.req_start {
                            reply_origin.insert((ps.ep, id), start);
                        }
                    }
                }
                // Deferred app sends pay the sealing charge like workload
                // sends — the server's reply crypto is host CPU too.
                let mut tx_at = now;
                if let (Some(cpu), Some(before)) = (scenario.cpu, sealed_before) {
                    let records = endpoints[ps.ep]
                        .sim_stats()
                        .records_sealed
                        .saturating_sub(before);
                    if records > 0 {
                        tx_at = cpu_free[ps.ep].max(now)
                            + cpu.seal_ns(ps.data.len() as u64, records).min(SECOND);
                        cpu_free[ps.ep] = tx_at;
                    }
                }
                pump!(vec![ps.ep], tx_at);
            }
            Cause::Inject => {
                // Forged traffic enters the fabric from the recorded source
                // port — the adversary spoofing the victim's peer.  Injections
                // bypass the tap (the adversary does not forge its own
                // forgeries).
                if let Some(adv) = adversary.as_mut() {
                    for (port, packet) in adv.pop_due(now) {
                        trace.note(trace_tag::INJECT);
                        trace.note(now);
                        trace.note(port as u64);
                        trace.note(packet.wire_len() as u64);
                        fabric.send(now, port, vec![packet]);
                    }
                }
            }
            Cause::Timer => {
                let mut dirty = Vec::new();
                for (i, ep) in endpoints.iter_mut().enumerate() {
                    if ep.next_timeout().is_some_and(|d| d <= now) {
                        trace.note(trace_tag::TIMEOUT);
                        trace.note(now);
                        trace.note(i as u64);
                        ep.on_timeout(now);
                        dirty.push(i);
                    }
                }
                pump!(dirty);
            }
        }
    }

    let mut retransmissions = 0;
    let mut timeouts_fired = 0;
    let mut endpoint_datagrams_dropped = 0;
    let mut records_sealed = 0;
    let mut malformed_rejected = 0;
    let mut auth_failures = 0;
    let mut state_evictions = 0;
    let mut peak_tracked_bytes = 0u64;
    let mut endpoint_op_p99_ns = 0u64;
    for ep in endpoints.iter() {
        let s = ep.sim_stats();
        retransmissions += s.retransmissions;
        timeouts_fired += s.timeouts_fired;
        endpoint_datagrams_dropped += s.datagrams_dropped;
        records_sealed += s.records_sealed;
        malformed_rejected += s.malformed_rejected;
        auth_failures += s.auth_failures;
        state_evictions += s.state_evictions;
        peak_tracked_bytes = peak_tracked_bytes.max(s.peak_tracked_bytes);
        endpoint_op_p99_ns = endpoint_op_p99_ns.max(s.op_latency_p99_ns);
    }
    let duration_ns = now.max(1);
    ScenarioReport {
        name: scenario.name.clone(),
        messages_sent,
        messages_delivered,
        replies_delivered,
        bytes_delivered,
        duration_ns,
        latency: LatencySummary::from_nanos(latencies),
        rpc_latency: LatencySummary::from_nanos(rpc_latencies),
        endpoint_op_p99_ns,
        goodput_gbps: (bytes_delivered as f64 * 8.0) / (duration_ns as f64 / SECOND as f64) / 1e9,
        retransmissions,
        timeouts_fired,
        endpoint_datagrams_dropped,
        records_sealed,
        malformed_rejected,
        auth_failures,
        state_evictions,
        peak_tracked_bytes,
        adversary: adversary.map(|a| a.stats).unwrap_or_default(),
        fabric: fabric.stats,
        trace_hash: trace.digest(),
        events,
        truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy reliable endpoint: sends each message as one packet, retransmits
    /// on timeout until the peer's ACK arrives.  Exercises the runner without
    /// pulling protocol crates into smt-sim.
    #[derive(Default)]
    struct ToyEndpoint {
        outbox: Vec<Packet>,
        unacked: BTreeMap<u64, (Packet, Nanos)>,
        next_id: u64,
        delivered: Vec<(u64, Vec<u8>)>,
        seen: std::collections::BTreeSet<u64>,
        stats: SimEndpointStats,
        rto: Nanos,
        deadline: Option<Nanos>,
        port: (u16, u16),
    }

    impl ToyEndpoint {
        fn new(src: u16, dst: u16) -> Self {
            Self {
                rto: 100_000,
                port: (src, dst),
                ..Self::default()
            }
        }

        fn packet(&self, id: u64, payload: &[u8], ack: bool) -> Packet {
            use smt_wire::*;
            let ptype = if ack {
                PacketType::Ack
            } else {
                PacketType::Data
            };
            Packet {
                ip: IpHeader::V4(Ipv4Header::new(
                    [10, 0, 0, 1],
                    [10, 0, 0, 2],
                    IPPROTO_SMT,
                    (IPV4_HEADER_LEN + SMT_OVERLAY_LEN + payload.len()) as u16,
                )),
                overlay: SmtOverlayHeader {
                    tcp: OverlayTcpHeader::new(self.port.0, self.port.1, ptype),
                    options: SmtOptionArea::new(id, payload.len() as u32),
                },
                payload: if ack {
                    PacketPayload::Ack(HomaAck { message_id: id })
                } else {
                    PacketPayload::Data(payload.to_vec().into())
                },
                corrupted: false,
            }
        }
    }

    impl SimEndpoint for ToyEndpoint {
        fn send(&mut self, data: &[u8], now: Nanos) -> Option<u64> {
            let id = self.next_id;
            self.next_id += 1;
            let p = self.packet(id, data, false);
            self.stats.wire_bytes_sent += data.len() as u64;
            // The toy stack pretends to software-seal one record per message
            // so the CPU-charge path is exercised without protocol crates.
            self.stats.records_sealed += 1;
            self.outbox.push(p.clone());
            self.unacked.insert(id, (p, now));
            self.deadline = Some(
                self.deadline
                    .map_or(now + self.rto, |d| d.min(now + self.rto)),
            );
            Some(id)
        }

        fn handle_datagram(&mut self, packet: &Packet, now: Nanos) {
            use smt_wire::{PacketPayload, PacketType};
            match packet.overlay.tcp.packet_type {
                PacketType::Data => {
                    let id = packet.overlay.options.message_id;
                    if let PacketPayload::Data(d) = &packet.payload {
                        if self.seen.insert(id) {
                            self.delivered.push((id, d.to_vec()));
                            self.stats.messages_delivered += 1;
                        }
                    }
                    self.outbox.push(self.packet(id, &[], true));
                }
                PacketType::Ack => {
                    if let PacketPayload::Ack(a) = &packet.payload {
                        self.unacked.remove(&a.message_id);
                        if self.unacked.is_empty() {
                            self.deadline = None;
                        } else {
                            self.deadline = Some(now + self.rto);
                        }
                    }
                }
                _ => {}
            }
        }

        fn poll_transmit(&mut self, _now: Nanos, out: &mut Vec<Packet>) -> usize {
            let n = self.outbox.len();
            out.append(&mut self.outbox);
            n
        }

        fn next_timeout(&self) -> Option<Nanos> {
            self.deadline
        }

        fn on_timeout(&mut self, now: Nanos) {
            self.stats.timeouts_fired += 1;
            for (p, _) in self.unacked.values() {
                self.stats.retransmissions += 1;
                self.outbox.push(p.clone());
            }
            self.deadline = if self.unacked.is_empty() {
                None
            } else {
                Some(now + self.rto)
            };
        }

        fn take_delivered(&mut self) -> Vec<(u64, Vec<u8>)> {
            std::mem::take(&mut self.delivered)
        }

        fn sim_stats(&self) -> SimEndpointStats {
            self.stats
        }
    }

    fn toy_scenario(faults: FaultConfig) -> Scenario {
        let mut s = Scenario::new("toy", 2);
        s.flows.push(FlowSpec {
            src_host: 0,
            dst_host: 1,
        });
        s.faults = faults;
        for i in 0..40u64 {
            s.sends.push(ScheduledSend {
                at: i * 10_000,
                flow: 0,
                size: 600,
            });
        }
        s.sort_sends();
        s
    }

    fn toy_endpoints() -> Vec<Box<dyn SimEndpoint>> {
        vec![
            Box::new(ToyEndpoint::new(1, 2)),
            Box::new(ToyEndpoint::new(2, 1)),
        ]
    }

    #[test]
    fn lossless_run_delivers_everything_without_retransmission() {
        let s = toy_scenario(FaultConfig::none());
        let mut eps = toy_endpoints();
        let report = run_scenario(&s, &mut eps, |_, _, _, _| None);
        assert_eq!(report.messages_sent, 40);
        assert_eq!(report.messages_delivered, 40);
        assert_eq!(report.retransmissions, 0);
        assert!(!report.truncated);
        assert!(report.latency.p50_us > 0.0);
        assert!(report.goodput_gbps > 0.0);
    }

    #[test]
    fn lossy_run_recovers_via_timeouts() {
        let s = toy_scenario(FaultConfig::lossy(0.3, 9));
        let mut eps = toy_endpoints();
        let report = run_scenario(&s, &mut eps, |_, _, _, _| None);
        assert_eq!(report.messages_delivered, 40, "all messages recovered");
        assert!(report.retransmissions > 0);
        assert!(report.timeouts_fired > 0);
        assert!(report.fabric.dropped_faults > 0);
    }

    #[test]
    fn rpc_replies_flow_back_and_are_measured() {
        let s = toy_scenario(FaultConfig::none());
        let mut eps = toy_endpoints();
        let report = run_scenario(&s, &mut eps, |_, _, req, _| Some(req.to_vec()));
        assert_eq!(report.messages_delivered, 40);
        assert_eq!(report.replies_delivered, 40);
        assert_eq!(report.bytes_delivered, 2 * 40 * 600);
    }

    #[test]
    fn cpu_charge_delays_delivery_in_proportion_to_sealed_records() {
        let free = {
            let s = toy_scenario(FaultConfig::none());
            let mut eps = toy_endpoints();
            run_scenario(&s, &mut eps, |_, _, _, _| None)
        };
        let charged = {
            let mut s = toy_scenario(FaultConfig::none());
            s.cpu = Some(CpuCharge {
                sw_per_record_ns: 5_000,
                sw_ns_per_byte: 1.0,
            });
            let mut eps = toy_endpoints();
            run_scenario(&s, &mut eps, |_, _, _, _| None)
        };
        assert_eq!(free.messages_delivered, 40);
        assert_eq!(charged.messages_delivered, 40);
        assert_eq!(charged.records_sealed, 40);
        // Every send sealed one record: 5 µs + 600 B × 1 ns/B = 5.6 µs of
        // sender CPU now sits in front of each message's wire time.
        let added_us = charged.latency.p50_us - free.latency.p50_us;
        assert!(
            (added_us - 5.6).abs() < 0.5,
            "p50 grew by {added_us} µs, expected ≈5.6 µs"
        );
        assert_ne!(free.trace_hash, charged.trace_hash);
    }

    #[test]
    fn rpc_round_trips_land_in_rpc_latency() {
        let s = toy_scenario(FaultConfig::none());
        let mut eps = toy_endpoints();
        let report = run_scenario(&s, &mut eps, |_, _, req, _| Some(req.to_vec()));
        assert_eq!(report.replies_delivered, 40);
        // Every reply closes a request → 40 round-trip samples, and a round
        // trip is strictly longer than either one-way leg.
        assert!(report.rpc_latency.p50_us > report.latency.p50_us);
        assert!(report.rpc_latency.p99_us >= report.rpc_latency.p50_us);
    }

    #[test]
    fn app_host_closed_loop_and_clocked_replies() {
        struct KvLikeApp {
            remaining: usize,
        }
        impl ScenarioApp for KvLikeApp {
            fn on_request(
                &mut self,
                _flow: usize,
                _id: u64,
                request: &[u8],
                _now: Nanos,
            ) -> Option<AppReply> {
                Some(AppReply {
                    data: request.to_vec(),
                    compute_ns: 2_000,
                    fixed_ns: 50_000,
                })
            }
            fn on_reply(
                &mut self,
                _flow: usize,
                _id: u64,
                _reply: &[u8],
                _now: Nanos,
            ) -> Option<Vec<u8>> {
                if self.remaining > 0 {
                    self.remaining -= 1;
                    Some(vec![9u8; 600])
                } else {
                    None
                }
            }
        }
        let mut s = toy_scenario(FaultConfig::none());
        // Seed the loop with 4 outstanding requests; the app issues 20 more.
        s.sends.truncate(4);
        let mut eps = toy_endpoints();
        let mut app = KvLikeApp { remaining: 20 };
        let report = run_scenario_app(&s, &mut eps, &mut app);
        assert_eq!(report.messages_sent, 24, "closed loop issued the rest");
        assert_eq!(report.messages_delivered, 24);
        assert_eq!(report.replies_delivered, 24);
        // The 50 µs device delay plus 2 µs compute sits inside every round
        // trip but in none of the one-way legs.
        assert!(report.rpc_latency.p50_us > 52.0, "{report:?}");
        assert!(report.latency.p50_us < 52.0, "{report:?}");
    }

    #[test]
    fn identical_seeds_produce_identical_reports_and_traces() {
        let run = |seed| {
            let s = toy_scenario(FaultConfig::lossy(0.25, seed));
            let mut eps = toy_endpoints();
            run_scenario(&s, &mut eps, |_, _, _, _| None)
        };
        let (a, b) = (run(5), run(5));
        assert_eq!(a.trace_hash, b.trace_hash);
        assert_eq!(a, b);
        assert_ne!(run(5).trace_hash, run(6).trace_hash);
    }
}
