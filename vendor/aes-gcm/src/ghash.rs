//! GHASH universal hash over GF(2^128) (NIST SP 800-38D §6.4).
//!
//! [`GHashKey`] is the production type; it dispatches between two backends
//! chosen once at key install (see `tier::active_tier`):
//!
//! * **CLMUL** (`x86_64` with `pclmulqdq`, the [`CryptoTier::WideClmul`]
//!   tier) — hardware carry-less multiplication with precomputed powers
//!   `H..H⁸` and 8-block aggregated reduction; the kernel lives in the
//!   `clmul` module.
//! * **Shoup 8-bit tables** (every other tier) — per-key tables for `H`,
//!   `H²`, `H³` and `H⁴`, one byte absorbed per lookup, with runs of four
//!   blocks folded via the aggregated reduction
//!   `Y′ = (Y ⊕ C₀)·H⁴ ⊕ C₁·H³ ⊕ C₂·H² ⊕ C₃·H`, which turns the serial
//!   per-block dependency chain into four independent chains the CPU can
//!   overlap.
//!
//! [`GHash`] is the **retained scalar reference**: Shoup's 4-bit nibble
//! method processing one block at a time, kept as the independently-coded
//! cross-check for both backends (see the property tests in `lib.rs` and
//! `tests/`).
//!
//! # Per-key memory footprint
//!
//! Hashing state is built once per key install and borrowed immutably on the
//! datapath; nothing key-sized is rebuilt per record. The footprint differs
//! sharply by backend:
//!
//! | backend            | per-key state                  | shared static state        |
//! |--------------------|--------------------------------|----------------------------|
//! | CLMUL              | 128 B (powers `H..H⁸`)         | —                          |
//! | Shoup 8-bit tables | 16 KB (4 × 4 KB byte tables)   | 2 KB `x⁸` reduction table  |
//! | scalar reference   | 256 B (16-entry nibble table)  | —                          |
//!
//! The `x⁸` reduction table ([`r8_table`]) is **key-independent** and built
//! exactly once per process behind a `OnceLock`; every Shoup-backend key
//! borrows it. On the CLMUL tier no byte tables are built at all, cutting
//! per-key memory from 16 KB to 128 bytes — which matters once a per-host
//! `CryptoEngine` keeps many session keys installed concurrently.
//!
//! [`CryptoTier::WideClmul`]: crate::CryptoTier::WideClmul

use std::sync::OnceLock;

/// Reduction table for the 4-bit shift: R[i] = i·(x^124 mod P) folded into the
/// top 16 bits, for the GCM polynomial P = x^128 + x^7 + x^2 + x + 1.
const R: [u16; 16] = [
    0x0000, 0x1c20, 0x3840, 0x2460, 0x7080, 0x6ca0, 0x48c0, 0x54e0, 0xe100, 0xfd20, 0xd940, 0xc560,
    0x9180, 0x8da0, 0xa9c0, 0xb5e0,
];

/// One GF(2^128) element in GCM's reflected bit order, as (hi, lo) words.
pub type Element = (u64, u64);

/// A 256-entry Shoup table: `table[b]` = (byte `b`, MSB-first) · H^k.
type ByteTable = [Element; 256];

fn xor(a: Element, b: Element) -> Element {
    (a.0 ^ b.0, a.1 ^ b.1)
}

/// Multiply by x in GCM's reflected representation (right shift with reduction).
fn mul_by_x(v: Element) -> Element {
    let (hi, lo) = v;
    let carry = lo & 1;
    let lo = (lo >> 1) | (hi << 63);
    let hi = (hi >> 1) ^ (carry * 0xe100_0000_0000_0000);
    (hi, lo)
}

fn load(block: &[u8]) -> Element {
    (
        u64::from_be_bytes(block[0..8].try_into().expect("8 bytes")),
        u64::from_be_bytes(block[8..16].try_into().expect("8 bytes")),
    )
}

/// The key-independent 8-bit reduction table: `R8[b]` is the value folded into
/// the high word when the byte `b` is shifted off the low end of an element
/// (i.e. the reduction part of multiplying by x^8).
fn r8_table() -> &'static [u64; 256] {
    static R8: OnceLock<Box<[u64; 256]>> = OnceLock::new();
    R8.get_or_init(|| {
        let mut t = Box::new([0u64; 256]);
        for (b, slot) in t.iter_mut().enumerate() {
            // Shift the byte off one bit at a time; the accumulated reductions
            // are exactly the x^8 reduction constant for this byte value.
            let mut v: Element = (0, b as u64);
            for _ in 0..8 {
                v = mul_by_x(v);
            }
            debug_assert_eq!(v.1, 0);
            *slot = v.0;
        }
        t
    })
}

/// Multiply by x^8: shift one byte with table-driven reduction.
#[inline(always)]
fn mul_by_x8(z: Element, r8: &[u64; 256]) -> Element {
    let carry = (z.1 & 0xff) as usize;
    ((z.0 >> 8) ^ r8[carry], (z.1 >> 8) | (z.0 << 56))
}

/// Builds the 256-entry Shoup table for an arbitrary element `h`.
fn build_table(h: Element) -> ByteTable {
    let mut t = [(0u64, 0u64); 256];
    // Powers of two: table[0x80] = h (MSB ↦ h·x^0), halving the index walks up
    // the powers of x.
    t[0x80] = h;
    let mut i = 0x80usize;
    while i > 1 {
        let v = mul_by_x(t[i]);
        i >>= 1;
        t[i] = v;
    }
    // Composites: XOR of the power-of-two entries of their set bits.
    for i in 2..256usize {
        if !i.is_power_of_two() {
            let msb = 1usize << (usize::BITS - 1 - i.leading_zeros());
            t[i] = xor(t[msb], t[i - msb]);
        }
    }
    t
}

/// Bit-by-bit GF(2^128) multiply in the reflected representation — the slow,
/// independently-coded ground truth. Used to derive the CLMUL backend's key
/// powers at install time and by the unit tests as the reference multiply.
pub(crate) fn gf_mul_slow(x: Element, h: Element) -> Element {
    let mut z = (0u64, 0u64);
    let mut v = h;
    for i in 0..128 {
        let bit = if i < 64 {
            (x.0 >> (63 - i)) & 1
        } else {
            (x.1 >> (127 - i)) & 1
        };
        if bit == 1 {
            z = xor(z, v);
        }
        v = mul_by_x(v);
    }
    z
}

/// One full 128×128 table multiply: `x · H^k` for the table of `H^k`.
fn mul_words(t: &ByteTable, r8: &[u64; 256], x: Element) -> Element {
    let hi = x.0.to_be_bytes();
    let lo = x.1.to_be_bytes();
    let mut z = t[lo[7] as usize];
    for i in (0..15).rev() {
        let b = if i < 8 { hi[i] } else { lo[i - 8] };
        z = xor(mul_by_x8(z, r8), t[b as usize]);
    }
    z
}

/// Precomputed per-key GHASH state for the fused multi-block engine, with the
/// backend picked once at key install (never re-probed on the datapath).
///
/// See the module docs for the per-backend memory footprint.
#[derive(Clone)]
pub struct GHashKey {
    backend: Backend,
}

#[derive(Clone)]
enum Backend {
    /// Carry-less-multiply kernel with powers `H..H⁸` (128 B per key).
    #[cfg(target_arch = "x86_64")]
    Clmul(crate::clmul::ClmulKey),
    /// Shoup 8-bit byte tables for `H..H⁴` (16 KB per key) plus the shared
    /// static `x⁸` reduction table.
    Shoup(ShoupKey),
}

/// The Shoup-table backend state.
#[derive(Clone)]
struct ShoupKey {
    /// `tables[k]` is the byte table for `H^(k+1)`.
    tables: Box<[ByteTable; 4]>,
    r8: &'static [u64; 256],
}

impl GHashKey {
    /// Creates the per-key state with an explicit tier choice — the in-process
    /// way for tests and benches to pin a backend (the Portable and AesNiShoup
    /// tiers share the Shoup GHASH backend).
    pub fn with_tier(h: &[u8; 16], tier: crate::tier::CryptoTier) -> Self {
        #[cfg(target_arch = "x86_64")]
        if tier == crate::tier::CryptoTier::WideClmul && crate::clmul::supported() {
            return Self {
                backend: Backend::Clmul(crate::clmul::ClmulKey::new(load(h))),
            };
        }
        let _ = tier;
        Self {
            backend: Backend::Shoup(ShoupKey::new(h)),
        }
    }

    /// Whether this key hashes through the carry-less-multiply kernel (the
    /// fused engine widens its stride to 256 bytes when it does).
    #[inline]
    pub fn is_clmul(&self) -> bool {
        match &self.backend {
            #[cfg(target_arch = "x86_64")]
            Backend::Clmul(_) => true,
            Backend::Shoup(_) => false,
        }
    }

    /// Absorbs one 16-byte block: `y ← (y ⊕ block)·H`.
    #[inline]
    pub fn update_block(&self, y: &mut Element, block: &[u8]) {
        match &self.backend {
            #[cfg(target_arch = "x86_64")]
            Backend::Clmul(k) => k.update_blocks(y, block),
            Backend::Shoup(k) => k.update_block(y, block),
        }
    }

    /// Absorbs four consecutive blocks (64 bytes) with aggregated reduction.
    #[inline]
    pub fn update4(&self, y: &mut Element, c: &[u8; 64]) {
        match &self.backend {
            #[cfg(target_arch = "x86_64")]
            Backend::Clmul(k) => k.update_blocks(y, c),
            Backend::Shoup(k) => k.update4(y, c),
        }
    }

    /// Absorbs a whole-block byte string (`data.len() % 16 == 0`) through the
    /// widest aggregated path the backend has: 8-block carry-less runs on the
    /// CLMUL backend, 4-block table folds on the Shoup backend.
    #[inline]
    pub fn update_bulk(&self, y: &mut Element, data: &[u8]) {
        debug_assert_eq!(data.len() % 16, 0);
        match &self.backend {
            #[cfg(target_arch = "x86_64")]
            Backend::Clmul(k) => k.update_blocks(y, data),
            Backend::Shoup(k) => {
                let mut quads = data.chunks_exact(64);
                for quad in &mut quads {
                    k.update4(y, quad.try_into().expect("64 bytes"));
                }
                for block in quads.remainder().chunks_exact(16) {
                    k.update_block(y, block);
                }
            }
        }
    }

    /// Absorbs a byte string, zero-padding the final partial block.
    pub fn update_padded(&self, y: &mut Element, data: &[u8]) {
        let whole = data.len() - data.len() % 16;
        self.update_bulk(y, &data[..whole]);
        let rem = &data[whole..];
        if !rem.is_empty() {
            let mut block = [0u8; 16];
            block[..rem.len()].copy_from_slice(rem);
            self.update_block(y, &block);
        }
    }

    /// Absorbs the standard `len(A) ‖ len(C)` block and serializes the digest.
    pub fn finalize_with_lengths(&self, y: &mut Element, aad_bits: u64, ct_bits: u64) -> [u8; 16] {
        let mut block = [0u8; 16];
        block[0..8].copy_from_slice(&aad_bits.to_be_bytes());
        block[8..16].copy_from_slice(&ct_bits.to_be_bytes());
        self.update_block(y, &block);
        let mut out = [0u8; 16];
        out[0..8].copy_from_slice(&y.0.to_be_bytes());
        out[8..16].copy_from_slice(&y.1.to_be_bytes());
        out
    }
}

impl ShoupKey {
    /// Builds the key tables from `h` (the encryption of the zero block).
    fn new(h: &[u8; 16]) -> Self {
        let r8 = r8_table();
        let h1 = load(h);
        let t1 = build_table(h1);
        let h2 = mul_words(&t1, r8, h1);
        let h3 = mul_words(&t1, r8, h2);
        let h4 = mul_words(&t1, r8, h3);
        Self {
            tables: Box::new([t1, build_table(h2), build_table(h3), build_table(h4)]),
            r8,
        }
    }

    /// Absorbs one 16-byte block: `y ← (y ⊕ block)·H`.
    #[inline]
    fn update_block(&self, y: &mut Element, block: &[u8]) {
        let x = xor(*y, load(block));
        *y = mul_words(&self.tables[0], self.r8, x);
    }

    /// Absorbs four consecutive blocks (64 bytes) with aggregated reduction:
    /// the four table multiplies are independent dependency chains, so the CPU
    /// overlaps them instead of waiting block-by-block.
    #[inline]
    fn update4(&self, y: &mut Element, c: &[u8; 64]) {
        let [t1, t2, t3, t4] = &*self.tables;
        let r8 = self.r8;
        // First block carries the running state: (y ⊕ c0)·H⁴.
        let x0 = xor(*y, load(&c[0..16]));
        let b0hi = x0.0.to_be_bytes();
        let b0lo = x0.1.to_be_bytes();
        let mut z0 = t4[b0lo[7] as usize];
        let mut z1 = t3[c[31] as usize];
        let mut z2 = t2[c[47] as usize];
        let mut z3 = t1[c[63] as usize];
        for i in (0..15).rev() {
            let b0 = if i < 8 { b0hi[i] } else { b0lo[i - 8] };
            z0 = xor(mul_by_x8(z0, r8), t4[b0 as usize]);
            z1 = xor(mul_by_x8(z1, r8), t3[c[16 + i] as usize]);
            z2 = xor(mul_by_x8(z2, r8), t2[c[32 + i] as usize]);
            z3 = xor(mul_by_x8(z3, r8), t1[c[48 + i] as usize]);
        }
        *y = xor(xor(z0, z1), xor(z2, z3));
    }
}

impl std::fmt::Debug for GHashKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key-derived table material.
        write!(f, "GHashKey(..)")
    }
}

/// GHASH state with precomputed key tables — the retained scalar reference
/// implementation (Shoup 4-bit nibble tables, one block at a time).
#[derive(Clone)]
pub struct GHash {
    /// table[i] = (i as 4-bit value) · H in GF(2^128), bits stored as (hi, lo).
    table: [Element; 16],
    y: Element,
}

fn gf_mul_by_x4(v: Element) -> Element {
    // Multiply by x^4 (shift right by 4 in GCM's reflected bit order) and reduce.
    let (hi, lo) = v;
    let carry = (lo & 0xf) as usize;
    let lo = (lo >> 4) | (hi << 60);
    let hi = (hi >> 4) ^ ((R[carry] as u64) << 48);
    (hi, lo)
}

impl GHash {
    /// Creates a GHASH instance keyed with `h` (the encryption of the zero block).
    pub fn new(h: &[u8; 16]) -> Self {
        let h = load(h);
        // table[i] = i·H: build by GF additions of H·x^k terms.
        // In GCM's reflected convention, the multiplier nibble's bit j (MSB
        // first) selects H·x^j; table[1<<3-j]... Simplest: table[8] = H, and
        // table[i>>1] = table[i]·x, iterating powers downward.
        let mut table = [(0u64, 0u64); 16];
        table[8] = h; // 0b1000 ↦ H (MSB-first nibble encoding)
                      // H·x: divide index by 2.
        let mut v = h;
        let mut idx = 8usize;
        while idx > 1 {
            v = mul_by_x(v);
            idx >>= 1;
            table[idx] = v;
        }
        for i in [3usize, 5, 6, 7, 9, 10, 11, 12, 13, 14, 15] {
            // Decompose into set bits among {8,4,2,1}.
            let mut acc = (0u64, 0u64);
            for bit in [8usize, 4, 2, 1] {
                if i & bit != 0 {
                    acc = xor(acc, table[bit]);
                }
            }
            table[i] = acc;
        }
        Self { table, y: (0, 0) }
    }

    /// Absorbs one 16-byte block.
    pub fn update_block(&mut self, block: &[u8; 16]) {
        let x = load(block);
        let mut z = (0u64, 0u64);
        let y = xor(self.y, x);
        // Process 32 nibbles from least-significant end of the 128-bit value.
        let bytes = [y.1.to_be_bytes(), y.0.to_be_bytes()];
        // Iterate bytes from last (lowest) to first (highest).
        let mut first = true;
        for half in bytes.iter() {
            for &b in half.iter().rev() {
                for nib in [b & 0xf, b >> 4] {
                    if !first {
                        z = gf_mul_by_x4(z);
                    }
                    first = false;
                    z = xor(z, self.table[nib as usize]);
                }
            }
        }
        self.y = z;
    }

    /// Absorbs a byte string, zero-padding the final partial block.
    pub fn update_padded(&mut self, data: &[u8]) {
        let mut chunks = data.chunks_exact(16);
        for chunk in &mut chunks {
            self.update_block(chunk.try_into().expect("16 bytes"));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut block = [0u8; 16];
            block[..rem.len()].copy_from_slice(rem);
            self.update_block(&block);
        }
    }

    /// Finalizes with the standard `len(A) ‖ len(C)` block and returns the tag
    /// basis (before XOR with `E(K, J0)`), resetting the state.
    pub fn finalize_with_lengths(&mut self, aad_bits: u64, ct_bits: u64) -> [u8; 16] {
        let mut block = [0u8; 16];
        block[0..8].copy_from_slice(&aad_bits.to_be_bytes());
        block[8..16].copy_from_slice(&ct_bits.to_be_bytes());
        self.update_block(&block);
        let mut out = [0u8; 16];
        out[0..8].copy_from_slice(&self.y.0.to_be_bytes());
        out[8..16].copy_from_slice(&self.y.1.to_be_bytes());
        self.y = (0, 0);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tier::CryptoTier;

    /// Bit-by-bit GF(2^128) multiply, the independent ground truth.
    fn slow_mul(x: Element, h: Element) -> Element {
        gf_mul_slow(x, h)
    }

    /// The backends every machine can construct: the Shoup path always, the
    /// CLMUL path when the CPU supports it.
    fn backends() -> Vec<GHashKey> {
        let mut v = vec![GHashKey::with_tier(&H_BYTES, CryptoTier::Portable)];
        if crate::tier::active_tier() == CryptoTier::WideClmul {
            v.push(GHashKey::with_tier(&H_BYTES, CryptoTier::WideClmul));
        }
        v
    }

    const H_BYTES: [u8; 16] = [
        0x66, 0xe9, 0x4b, 0xd4, 0xef, 0x8a, 0x2c, 0x3b, 0x88, 0x4c, 0xfa, 0x59, 0xca, 0x34, 0x2b,
        0x2e,
    ];
    const BLOCK: [u8; 16] = [
        0x03, 0x88, 0xda, 0xce, 0x60, 0xb6, 0xa3, 0x92, 0xf3, 0x28, 0xc2, 0xb9, 0x71, 0xb2, 0xfe,
        0x78,
    ];

    #[test]
    fn nibble_order_matches_bitwise_reference() {
        // Compare the nibble-table implementation against a slow bit-by-bit mul.
        let mut g = GHash::new(&H_BYTES);
        g.update_block(&BLOCK);
        let expect = slow_mul(load(&BLOCK), load(&H_BYTES));
        assert_eq!(g.y, expect);
    }

    #[test]
    fn every_backend_matches_bitwise_reference() {
        for key in backends() {
            let mut y = (0u64, 0u64);
            key.update_block(&mut y, &BLOCK);
            let expect = slow_mul(load(&BLOCK), load(&H_BYTES));
            assert_eq!(y, expect, "clmul={}", key.is_clmul());
        }
    }

    #[test]
    fn aggregated_fold_matches_serial() {
        // Four blocks through update4 must equal four serial update_block
        // calls on every backend, and all must equal the retained nibble
        // reference.
        let mut data = [0u8; 64];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(37).wrapping_add(11);
        }
        let mut reference = GHash::new(&H_BYTES);
        reference.y = (7, 9);
        for block in data.chunks_exact(16) {
            reference.update_block(block.try_into().unwrap());
        }

        for key in backends() {
            let mut y_fast = (7u64, 9u64);
            key.update4(&mut y_fast, &data);

            let mut y_serial = (7u64, 9u64);
            for block in data.chunks_exact(16) {
                key.update_block(&mut y_serial, block);
            }
            assert_eq!(y_fast, y_serial, "clmul={}", key.is_clmul());
            assert_eq!(y_fast, reference.y, "clmul={}", key.is_clmul());
        }
    }

    #[test]
    fn update_padded_paths_agree_across_lengths() {
        // Lengths chosen to hit the 4-block fold boundary (64), the CLMUL
        // 8-block aggregation boundary (128), and partial finals around both.
        for len in [
            0usize, 1, 15, 16, 17, 48, 63, 64, 65, 127, 128, 129, 200, 255, 256, 257, 384, 511,
        ] {
            let data: Vec<u8> = (0..len).map(|i| (i * 31 + 7) as u8).collect();
            let mut reference = GHash::new(&H_BYTES);
            reference.update_padded(&data);
            for key in backends() {
                let mut y_fast = (0u64, 0u64);
                key.update_padded(&mut y_fast, &data);
                assert_eq!(y_fast, reference.y, "length {len} clmul={}", key.is_clmul());
            }
        }
    }

    #[test]
    fn clmul_and_shoup_digests_agree() {
        // Full digests (including the length block) must be identical across
        // backends when both are available.
        let keys = backends();
        if keys.len() < 2 {
            return;
        }
        let data: Vec<u8> = (0..1000).map(|i| (i * 13 + 5) as u8).collect();
        let digests: Vec<[u8; 16]> = keys
            .iter()
            .map(|k| {
                let mut y = (0u64, 0u64);
                k.update_padded(&mut y, &data);
                k.finalize_with_lengths(&mut y, 0, (data.len() as u64) * 8)
            })
            .collect();
        assert_eq!(digests[0], digests[1]);
    }

    #[test]
    fn mul_by_x8_equals_eight_single_shifts() {
        let r8 = r8_table();
        let mut v = load(&H_BYTES);
        for _ in 0..50 {
            let mut expect = v;
            for _ in 0..8 {
                expect = mul_by_x(expect);
            }
            assert_eq!(mul_by_x8(v, r8), expect);
            v = mul_by_x(xor(v, (0x1234_5678_9abc_def0, 0x0fed_cba9_8765_4321)));
        }
    }
}
