//! A Redis-like in-memory key-value store (paper §5.3).
//!
//! Redis adopts a single-threaded design with an epoll event loop; the paper
//! ports it to Homa/SMT by registering the SMT socket in the same loop, so TCP
//! and SMT clients share one database.  This module provides the store, a binary
//! request/response encoding (standing in for RESP), and per-operation compute
//! cost estimates used by the Fig. 8 workload model.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A key-value request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum KvRequest {
    /// Read a key.
    Get {
        /// Key to read.
        key: String,
    },
    /// Write a key.
    Put {
        /// Key to write.
        key: String,
        /// Value to store.
        value: Vec<u8>,
    },
    /// Read a range of keys starting at `start` (YCSB scan).
    Scan {
        /// First key of the range.
        start: String,
        /// Number of keys to return.
        count: u32,
    },
    /// Delete a key.
    Delete {
        /// Key to delete.
        key: String,
    },
}

/// A key-value response.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum KvResponse {
    /// Value found.
    Value(Vec<u8>),
    /// Multiple values (scan result).
    Values(Vec<Vec<u8>>),
    /// Operation succeeded with no payload.
    Ok,
    /// Key not found.
    NotFound,
}

impl KvRequest {
    /// Serializes the request (simple length-prefixed binary encoding).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            KvRequest::Get { key } => {
                out.push(1);
                put_bytes(&mut out, key.as_bytes());
            }
            KvRequest::Put { key, value } => {
                out.push(2);
                put_bytes(&mut out, key.as_bytes());
                put_bytes(&mut out, value);
            }
            KvRequest::Scan { start, count } => {
                out.push(3);
                put_bytes(&mut out, start.as_bytes());
                out.extend_from_slice(&count.to_be_bytes());
            }
            KvRequest::Delete { key } => {
                out.push(4);
                put_bytes(&mut out, key.as_bytes());
            }
        }
        out
    }

    /// Parses a request.
    pub fn decode(buf: &[u8]) -> Option<Self> {
        let (&tag, mut rest) = buf.split_first()?;
        match tag {
            1 => Some(KvRequest::Get {
                key: String::from_utf8(take_bytes(&mut rest)?).ok()?,
            }),
            2 => Some(KvRequest::Put {
                key: String::from_utf8(take_bytes(&mut rest)?).ok()?,
                value: take_bytes(&mut rest)?,
            }),
            3 => {
                let start = String::from_utf8(take_bytes(&mut rest)?).ok()?;
                let count = u32::from_be_bytes(rest.get(..4)?.try_into().ok()?);
                Some(KvRequest::Scan { start, count })
            }
            4 => Some(KvRequest::Delete {
                key: String::from_utf8(take_bytes(&mut rest)?).ok()?,
            }),
            _ => None,
        }
    }
}

impl KvResponse {
    /// Serializes the response.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            KvResponse::Value(v) => {
                out.push(1);
                put_bytes(&mut out, v);
            }
            KvResponse::Values(vs) => {
                out.push(2);
                out.extend_from_slice(&(vs.len() as u32).to_be_bytes());
                for v in vs {
                    put_bytes(&mut out, v);
                }
            }
            KvResponse::Ok => out.push(3),
            KvResponse::NotFound => out.push(4),
        }
        out
    }

    /// Parses a response.
    pub fn decode(buf: &[u8]) -> Option<Self> {
        let (&tag, mut rest) = buf.split_first()?;
        match tag {
            1 => Some(KvResponse::Value(take_bytes(&mut rest)?)),
            2 => {
                let n = u32::from_be_bytes(rest.get(..4)?.try_into().ok()?) as usize;
                rest = &rest[4..];
                let mut vs = Vec::with_capacity(n);
                for _ in 0..n {
                    vs.push(take_bytes(&mut rest)?);
                }
                Some(KvResponse::Values(vs))
            }
            3 => Some(KvResponse::Ok),
            4 => Some(KvResponse::NotFound),
            _ => None,
        }
    }
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_be_bytes());
    out.extend_from_slice(b);
}

fn take_bytes(rest: &mut &[u8]) -> Option<Vec<u8>> {
    let n = u32::from_be_bytes(rest.get(..4)?.try_into().ok()?) as usize;
    let out = rest.get(4..4 + n)?.to_vec();
    *rest = &rest[4 + n..];
    Some(out)
}

/// The single-threaded in-memory store.
#[derive(Debug, Default)]
pub struct KvStore {
    data: HashMap<String, Vec<u8>>,
    /// Operations served.
    pub operations: u64,
}

impl KvStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-loads `records` keys of `value_size` bytes (the YCSB load phase).
    pub fn load(&mut self, records: usize, value_size: usize) {
        for i in 0..records {
            self.data
                .insert(format!("user{i:08}"), vec![(i % 251) as u8; value_size]);
        }
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the store is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Executes one request.
    pub fn execute(&mut self, request: &KvRequest) -> KvResponse {
        self.operations += 1;
        match request {
            KvRequest::Get { key } => match self.data.get(key) {
                Some(v) => KvResponse::Value(v.clone()),
                None => KvResponse::NotFound,
            },
            KvRequest::Put { key, value } => {
                self.data.insert(key.clone(), value.clone());
                KvResponse::Ok
            }
            KvRequest::Scan { start, count } => {
                // Scans over a hash map are approximated by key order (YCSB-C
                // does the same for hash-backed stores).
                let mut keys: Vec<&String> = self.data.keys().filter(|k| *k >= start).collect();
                keys.sort();
                let values = keys
                    .into_iter()
                    .take(*count as usize)
                    .filter_map(|k| self.data.get(k).cloned())
                    .collect();
                KvResponse::Values(values)
            }
            KvRequest::Delete { key } => {
                if self.data.remove(key).is_some() {
                    KvResponse::Ok
                } else {
                    KvResponse::NotFound
                }
            }
        }
    }

    /// Handles an encoded request, producing an encoded response (the form used
    /// when requests arrive over an SMT or TCP socket).
    pub fn handle_wire(&mut self, request: &[u8]) -> Vec<u8> {
        match KvRequest::decode(request) {
            Some(req) => self.execute(&req).encode(),
            None => KvResponse::NotFound.encode(),
        }
    }

    /// Estimated single-threaded server compute per operation in nanoseconds
    /// (request parsing + hash lookup + response construction), used by the
    /// Fig. 8 workload model.  Scales mildly with the value size.
    pub fn compute_cost_ns(value_size: usize) -> u64 {
        1_800 + (value_size as f64 * 0.12) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_response_roundtrip() {
        let reqs = [
            KvRequest::Get { key: "a".into() },
            KvRequest::Put {
                key: "b".into(),
                value: vec![1, 2, 3],
            },
            KvRequest::Scan {
                start: "user".into(),
                count: 10,
            },
            KvRequest::Delete { key: "c".into() },
        ];
        for r in &reqs {
            assert_eq!(KvRequest::decode(&r.encode()).unwrap(), *r);
        }
        let resps = [
            KvResponse::Value(vec![9; 100]),
            KvResponse::Values(vec![vec![1], vec![2, 2]]),
            KvResponse::Ok,
            KvResponse::NotFound,
        ];
        for r in &resps {
            assert_eq!(KvResponse::decode(&r.encode()).unwrap(), *r);
        }
    }

    #[test]
    fn store_operations() {
        let mut store = KvStore::new();
        store.load(100, 64);
        assert_eq!(store.len(), 100);

        let get = KvRequest::Get {
            key: "user00000001".into(),
        };
        assert!(matches!(store.execute(&get), KvResponse::Value(v) if v.len() == 64));

        let put = KvRequest::Put {
            key: "new".into(),
            value: vec![5; 10],
        };
        assert_eq!(store.execute(&put), KvResponse::Ok);
        assert_eq!(
            store.execute(&KvRequest::Get { key: "new".into() }),
            KvResponse::Value(vec![5; 10])
        );

        let scan = KvRequest::Scan {
            start: "user00000090".into(),
            count: 5,
        };
        assert!(matches!(store.execute(&scan), KvResponse::Values(v) if v.len() == 5));

        assert_eq!(
            store.execute(&KvRequest::Delete { key: "new".into() }),
            KvResponse::Ok
        );
        assert_eq!(
            store.execute(&KvRequest::Get { key: "new".into() }),
            KvResponse::NotFound
        );
        assert!(store.operations >= 5);
    }

    #[test]
    fn wire_handling_tolerates_garbage() {
        let mut store = KvStore::new();
        let resp = store.handle_wire(&[0xff, 1, 2]);
        assert_eq!(KvResponse::decode(&resp).unwrap(), KvResponse::NotFound);
    }

    #[test]
    fn compute_cost_scales_with_value_size() {
        assert!(KvStore::compute_cost_ns(4096) > KvStore::compute_cost_ns(64));
    }
}
