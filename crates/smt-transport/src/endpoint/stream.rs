//! The stream-based endpoint backend: TCP, user-space TLS, kTLS-sw, kTLS-hw
//! and TCPLS.
//!
//! These stacks share one shape (paper §2.1): a reliable in-order bytestream
//! with the TLS record layer — or nothing, for plain TCP — layered on top, and
//! the application's own message framing above that.  This backend implements
//! that shape behind the [`SecureEndpoint`] contract:
//!
//! * **Framing.**  Each [`send`](SecureEndpoint::send) writes a 12-byte frame
//!   header (message ID + length) plus the payload onto the stream — the
//!   delimiting work TCP applications must do themselves, which SMT gets for
//!   free from message boundaries.
//! * **Record layer.**  Encrypted stacks run the framed bytes through the
//!   shared kTLS machinery ([`KtlsSender`]/[`KtlsReceiver`] from `smt-core`),
//!   so the crypto datapath is byte-identical to the kernel TLS baseline.
//!   kTLS-hw registers its offload key exactly like the kernel interface;
//!   receive-side crypto is always software (§5: nobody offloads receive).
//! * **Reliable delivery.**  The wire bytes are carried in TSO segments
//!   through the simulated NIC, with the stream offset in the overlay option
//!   area.  The receiver reassembles out-of-order segments, drops duplicates
//!   (counting them as replays), and acknowledges with a cumulative offset;
//!   the sender retransmits go-back-N from the highest cumulative ACK when
//!   its retransmission timer — an RTT multiple from `smt_core::SmtConfig`,
//!   armed in virtual time and exposed via
//!   [`next_timeout`](SecureEndpoint::next_timeout) — expires
//!   ([`on_timeout`](SecureEndpoint::on_timeout)).
//!   This is the minimal TCP: enough to recover from loss, reordering and
//!   duplication on the simulated link, while keeping the defining limitation
//!   that bytes — and therefore records — can only be *consumed* in order.
//!
//! The 64-bit stream offset is carried in the overlay option area: the low
//! 32 bits in `tso_offset` and the high 32 bits in the reserved word, so the
//! stream never wraps.
//!
//! Endpoints built via [`super::EndpointBuilder::connect`] /
//! [`super::EndpointBuilder::accept`] run a **TLS-style pre-data exchange**:
//! the [`HandshakeDriver`] carries the flights in CONTROL packets before any
//! stream bytes flow, application sends queue meanwhile, and on completion
//! the negotiated keys build the record layer and the queue flushes onto the
//! stream with the message IDs the application was already given.  A client
//! resuming with an SMT-ticket still piggybacks its first queued message as
//! 0-RTT early data in the first flight (TLS 1.3 semantics), delivered at
//! the server ahead of handshake completion.

use super::handshake::{control_proto, HandshakeDriver};
use super::{
    missing_keys, EndpointError, EndpointResult, EndpointStats, Event, MessageId, SecureEndpoint,
};
use crate::cc::{CcConfig, CongestionController, DctcpWindow, RttEstimator};
use crate::stack::StackKind;
use bytes::{Bytes, BytesMut};
use smt_core::config::CryptoMode;
use smt_core::ktls::{KtlsReceiver, KtlsSender, KtlsSession};
use smt_core::segment::PathInfo;
use smt_crypto::handshake::SessionKeys;
use smt_crypto::{CryptoEngineHandle, EngineConn};
use smt_sim::nic::NicModel;
use smt_sim::Nanos;
use smt_wire::{
    max_payload_per_packet, HomaAck, OverlayTcpHeader, Packet, PacketPayload, PacketType,
    SackRange, SmtOptionArea, SmtOverlayHeader, SmtSack, TsoSegment, IPPROTO_TCP, MAX_TSO_SEGMENT,
};
use std::collections::{BTreeMap, VecDeque};

/// Bytes of frame header preceding every message on the stream: message ID
/// (8 bytes BE) + payload length (4 bytes BE).
const FRAME_HEADER: usize = 12;

/// Cap on bytes parked in the out-of-order reorder buffer.  Everything in it
/// is attacker-influenceable wire data; beyond the cap the furthest-ahead
/// segment is evicted (go-back-N resends it) — DESIGN.md §8.
const MAX_OOO_BYTES: usize = 4 << 20;

/// Largest length a stream frame header may declare.  A larger value means
/// the stream framing is corrupted (on plain TCP, undetectably injected):
/// without the cap the frame buffer would grow forever waiting for a
/// 4 GiB frame that never completes.
const MAX_FRAME_LEN: usize = 16 << 20;

use super::handshake::MAX_QUEUED_BYTES;

/// A [`SecureEndpoint`] over a TCP-like reliable bytestream.
pub struct StreamEndpoint {
    stack: StackKind,
    path: PathInfo,
    mtu: usize,
    tso: bool,
    nic: NicModel,
    /// Record layer, `None` for plain TCP (or before the in-band handshake
    /// installs the negotiated keys).
    tls_tx: Option<KtlsSender>,
    tls_rx: Option<KtlsReceiver>,
    /// Record crypto mode of this stack, kept so the in-band handshake can
    /// build the record layer on completion.
    crypto_mode: Option<CryptoMode>,
    /// The in-band handshake driver; `None` on key-injected endpoints.
    hs: Option<HandshakeDriver>,
    /// Shared per-host batch crypto engine, when configured on the builder.
    engine: Option<CryptoEngineHandle>,
    /// This sender's registration with the engine (software crypto only).
    engine_conn: Option<EngineConn>,
    /// Wire bytes staged with the engine but not yet flushed into `wire`.
    staged_wire: usize,
    /// Sends queued while the handshake runs, with their assigned IDs.
    queued: VecDeque<(MessageId, Vec<u8>)>,
    /// Bytes held in `queued` (bounded by [`MAX_QUEUED_BYTES`]).
    queued_bytes: usize,

    // Transmit side.
    /// Unacknowledged wire bytes; `wire[0]` is stream offset `wire_base`.
    wire: BytesMut,
    /// Stream offset of the first retained (= first unacked) wire byte.
    wire_base: u64,
    /// Next stream offset to put on the wire (rewound by retransmission).
    next_send: u64,
    /// Highest cumulative ACK received.
    acked: u64,
    /// Outstanding messages: (id, wire offset at which the message ends).
    inflight: VecDeque<(MessageId, u64)>,
    next_msg_id: u64,

    // Receive side.
    /// Next in-order stream offset expected.
    recv_next: u64,
    /// Out-of-order wire segments keyed by stream offset.
    ooo: BTreeMap<u64, Bytes>,
    /// Bytes held in `ooo` (bounded by [`MAX_OOO_BYTES`]).
    ooo_bytes: usize,
    /// Decrypted, in-order plaintext awaiting frame delimiting.
    frame_buf: BytesMut,
    /// A cumulative ACK should be emitted on the next poll.
    ack_pending: bool,

    /// Retransmission timeout (go-back-N timer period) when the RTO is
    /// pinned; the adaptive path asks [`RttEstimator::rto_ns`] instead.
    rto_ns: Nanos,
    /// Absolute deadline of the armed retransmission timer, if any.
    rto_deadline: Option<Nanos>,
    /// Highest stream offset ever handed to the NIC; emitting below this
    /// marks packets as retransmissions.
    sent_high: u64,

    // Congestion control (DESIGN.md §10).
    /// Tuning shared with the timers; `cc.enabled == false` reproduces the
    /// pre-cc fixed-RTO go-back-N baseline.
    cc: CcConfig,
    /// DCTCP window machine; `None` when cc is disabled.
    cwnd: Option<DctcpWindow>,
    /// RFC 6298 SRTT/RTTVAR estimator driving the adaptive RTO.
    rtt: RttEstimator,
    /// Peer-SACKed byte ranges above `acked` (start → end, disjoint): data
    /// the receiver already holds, which selective retransmit skips.
    sacked: BTreeMap<u64, u64>,
    /// `(chunk end offset, send time)` of never-retransmitted chunks, for
    /// Karn-safe RTT sampling; cleared whenever anything is retransmitted.
    timed: VecDeque<(u64, Nanos)>,
    /// Message-ID → send time for per-op latency (unlike `timed`, survives
    /// retransmission: it measures the app-visible completion time).
    op_sent: BTreeMap<u64, Nanos>,
    /// Send→ack latency histogram over completed messages, feeding the
    /// per-op latency percentiles in [`EndpointStats`].
    op_latency: super::OpLatencyHistogram,
    /// Timing breakdown of the completed in-band handshake (Table 2), kept
    /// from the negotiated keys at completion.
    hs_timings: Option<smt_crypto::handshake::HandshakeTimings>,
    /// CE-marked / total data packets received since the last SACK went out
    /// (the receiver's DCTCP ECN echo).
    ecn_ce_pending: u64,
    ecn_total_pending: u64,
    /// RTO fires without cumulative progress; at two in a row the sender
    /// distrusts its SACK scoreboard (possibly forged) and goes back-N.
    consecutive_timeouts: u32,
    /// Exponential backoff shift applied to the adaptive RTO: doubled on
    /// every fire, cleared on cumulative progress (as Linux does) — repeated
    /// fires with *no* progress mean the estimate is stale or the path is
    /// gone, while a recovering incast round makes progress every RTO and
    /// keeps the baseline cadence.
    rto_backoff: u32,
    /// Duplicate SACKs (no cumulative progress, ranges present) since the
    /// last advance; the third triggers fast retransmit of the holes.
    dup_sacks: u32,

    events: VecDeque<Event>,
    stats: EndpointStats,
    /// Set after a fatal stream error; all further traffic is dropped.
    dead: bool,
    /// Connection ID stamped into the option area of every egress packet so
    /// a [`super::Listener`] can demux many connections over one socket.
    /// Zero (the default) means "not multiplexed" and stamps nothing.
    connection_id: u32,
}

impl std::fmt::Debug for StreamEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamEndpoint")
            .field("stack", &self.stack)
            .field("acked", &self.acked)
            .field("recv_next", &self.recv_next)
            .field("dead", &self.dead)
            .finish_non_exhaustive()
    }
}

/// Record crypto mode of one of the stream-based stacks.
///
/// User-space TLS, kTLS-sw and TCPLS all run software record crypto over the
/// same datapath; their differences (syscall boundary, record size,
/// multiplexing) live in the cost profiles.
fn stack_crypto_mode(stack: StackKind) -> Option<CryptoMode> {
    match stack {
        StackKind::Tcp => None,
        StackKind::KtlsHw => Some(CryptoMode::HardwareOffload),
        _ => Some(CryptoMode::Software),
    }
}

impl StreamEndpoint {
    /// Disjoint SACKed ranges tracked at most; beyond this new ranges are
    /// dropped (the RTO still recovers them), so forged SACKs cannot grow
    /// sender state without bound.
    const MAX_SACK_SCOREBOARD: usize = 64;

    /// Builds the backend for one of the stream-based stacks from out-of-band
    /// handshake keys (the key-injection fast path).
    #[allow(clippy::too_many_arguments)] // internal builder plumbing
    pub(crate) fn new(
        stack: StackKind,
        keys: Option<&SessionKeys>,
        mtu: usize,
        tso: bool,
        path: PathInfo,
        rto_ns: Nanos,
        cc: CcConfig,
        engine: Option<CryptoEngineHandle>,
    ) -> EndpointResult<Self> {
        let mut ep = Self::unkeyed(stack, mtu, tso, path, rto_ns, cc, engine);
        if let Some(mode) = ep.crypto_mode {
            let keys = keys.ok_or_else(|| missing_keys(stack))?;
            let session = KtlsSession::new(keys, mode)?;
            ep.tls_tx = Some(session.sender);
            ep.tls_rx = Some(session.receiver);
            ep.register_engine();
            ep.events.push_back(Event::HandshakeComplete {
                peer_identity: keys.peer_identity.clone(),
                forward_secret: keys.forward_secret,
                rtt_ns: 0,
                resumed: keys.resumed,
            });
        }
        Ok(ep)
    }

    /// Builds an endpoint that runs the in-band handshake as the client
    /// (a TLS-style pre-data exchange before any stream bytes flow).
    #[allow(clippy::too_many_arguments)] // internal builder plumbing
    pub(crate) fn connect(
        stack: StackKind,
        config: super::ConnectConfig,
        mtu: usize,
        tso: bool,
        path: PathInfo,
        rto_ns: Nanos,
        cc: CcConfig,
        engine: Option<CryptoEngineHandle>,
    ) -> EndpointResult<Self> {
        let mut ep = Self::unkeyed(stack, mtu, tso, path, rto_ns, cc, engine);
        if ep.crypto_mode.is_some() {
            ep.hs = Some(HandshakeDriver::client(
                config,
                path,
                mtu,
                control_proto(stack),
                rto_ns,
            ));
        }
        Ok(ep)
    }

    /// Builds an endpoint that runs the in-band handshake as the server.
    #[allow(clippy::too_many_arguments)] // internal builder plumbing
    pub(crate) fn accept(
        stack: StackKind,
        config: super::AcceptConfig,
        mtu: usize,
        tso: bool,
        path: PathInfo,
        rto_ns: Nanos,
        cc: CcConfig,
        engine: Option<CryptoEngineHandle>,
    ) -> EndpointResult<Self> {
        let mut ep = Self::unkeyed(stack, mtu, tso, path, rto_ns, cc, engine);
        if ep.crypto_mode.is_some() {
            ep.hs = Some(HandshakeDriver::server(
                config,
                path,
                mtu,
                control_proto(stack),
                rto_ns,
            ));
        }
        Ok(ep)
    }

    fn unkeyed(
        stack: StackKind,
        mtu: usize,
        tso: bool,
        path: PathInfo,
        rto_ns: Nanos,
        cc: CcConfig,
        engine: Option<CryptoEngineHandle>,
    ) -> Self {
        debug_assert!(!stack.is_message_based());
        // The estimator opens at the builder's RTO so the first deadline is
        // identical whether the adaptive path is on or pinned.
        let est_config = CcConfig {
            initial_rto_ns: rto_ns.max(1),
            ..cc
        };
        Self {
            stack,
            path,
            mtu,
            tso,
            nic: NicModel::new(mtu, tso),
            tls_tx: None,
            tls_rx: None,
            crypto_mode: stack_crypto_mode(stack),
            hs: None,
            engine,
            engine_conn: None,
            staged_wire: 0,
            queued: VecDeque::new(),
            queued_bytes: 0,
            wire: BytesMut::new(),
            wire_base: 0,
            next_send: 0,
            acked: 0,
            inflight: VecDeque::new(),
            next_msg_id: 0,
            recv_next: 0,
            ooo: BTreeMap::new(),
            ooo_bytes: 0,
            frame_buf: BytesMut::new(),
            ack_pending: false,
            rto_ns: rto_ns.max(1),
            rto_deadline: None,
            sent_high: 0,
            cc,
            cwnd: cc.enabled.then(|| DctcpWindow::new(cc)),
            rtt: RttEstimator::new(&est_config),
            sacked: BTreeMap::new(),
            timed: VecDeque::new(),
            op_sent: BTreeMap::new(),
            op_latency: super::OpLatencyHistogram::default(),
            hs_timings: None,
            ecn_ce_pending: 0,
            ecn_total_pending: 0,
            consecutive_timeouts: 0,
            rto_backoff: 0,
            dup_sacks: 0,
            events: VecDeque::new(),
            stats: EndpointStats::default(),
            dead: false,
            connection_id: 0,
        }
    }

    /// Sets the connection ID stamped into every egress packet (zero stamps
    /// nothing); ingress demux is the [`super::Listener`]'s job.
    pub(crate) fn set_connection_id(&mut self, id: u32) {
        self.connection_id = id;
    }

    /// Stamps the configured connection ID onto freshly appended packets.
    fn stamp_connection_id(&self, out: &mut [Packet]) {
        if self.connection_id != 0 {
            for p in out {
                p.overlay.options.connection_id = self.connection_id;
            }
        }
    }

    /// Registers this sender with the shared batch crypto engine, if one was
    /// configured on the builder and the stack runs *software* record crypto
    /// (hardware offload seals in the NIC, so there is nothing to batch).
    fn register_engine(&mut self) {
        let Some(engine) = &self.engine else { return };
        let Some(tx) = &self.tls_tx else { return };
        if self.crypto_mode == Some(CryptoMode::Software) {
            self.engine_conn = Some(engine.register(tx.sealer()));
        }
    }

    /// True while the in-band handshake is still running (sends must queue).
    fn handshaking(&self) -> bool {
        self.hs.as_ref().is_some_and(|h| h.in_progress())
    }

    /// True once the record layer (or the plain-TCP bytestream) is live.
    pub fn is_established(&self) -> bool {
        !self.handshaking() && !self.dead
    }

    /// The key material registered with the NIC for kTLS-hw, mirroring the
    /// kernel TLS offload interface.
    pub fn offload_key(
        &self,
    ) -> Option<(smt_crypto::CipherSuite, &smt_crypto::key_schedule::Secret)> {
        self.tls_tx.as_ref().and_then(|tx| tx.offload_key())
    }

    /// NIC model statistics (TSO expansion of the stream).
    pub fn nic_stats(&self) -> smt_sim::nic::NicStats {
        self.nic.stats
    }

    /// Stream offset one past the last produced wire byte.
    fn produced(&self) -> u64 {
        self.wire_base + self.wire.len() as u64
    }

    /// The retransmission timer period: the RTT-estimated RTO when cc runs
    /// adaptively, the builder's fixed override otherwise.
    fn rto(&self) -> Nanos {
        if self.cc.enabled && self.cc.adaptive_rto {
            let factor = 1u64 << self.rto_backoff.min(16);
            self.rtt
                .rto_ns()
                .saturating_mul(factor)
                .min(self.cc.max_rto_ns.max(1))
        } else {
            self.rto_ns
        }
    }

    fn fatal(&mut self, msg: String) -> EndpointError {
        self.dead = true;
        // The datagram whose bytes failed the record layer is discarded.
        self.stats.datagrams_dropped += 1;
        self.events.push_back(Event::Error(msg.clone()));
        EndpointError::Stream(msg)
    }

    /// Records the current high-water mark of attacker-growable buffers.
    fn note_tracked_bytes(&mut self) {
        let tracked = (self.ooo_bytes + self.frame_buf.len() + self.queued_bytes) as u64;
        self.stats.peak_tracked_bytes = self.stats.peak_tracked_bytes.max(tracked);
    }

    fn ack_packet(&self) -> Packet {
        let overlay = SmtOverlayHeader {
            tcp: OverlayTcpHeader::new(self.path.src_port, self.path.dst_port, PacketType::Ack),
            // The cumulative stream offset rides in the ACK body's message-id
            // field; the option area is unused on a pure-ACK packet.
            options: SmtOptionArea::new(0, 0),
        };
        Packet {
            ip: smt_wire::IpHeader::V4(smt_wire::Ipv4Header::new(
                self.path.src,
                self.path.dst,
                IPPROTO_TCP,
                (smt_wire::IPV4_HEADER_LEN + smt_wire::SMT_OVERLAY_LEN + HomaAck::LEN) as u16,
            )),
            overlay,
            payload: PacketPayload::Ack(HomaAck {
                message_id: self.recv_next,
            }),
            corrupted: false,
        }
    }

    /// The receiver's acknowledgement for the next poll: with cc enabled, a
    /// SACK frame carrying the cumulative offset, up to
    /// [`SmtSack::MAX_RANGES`] reorder-buffer ranges (the sender's selective
    /// retransmit scoreboard) and the DCTCP ECN echo; with cc disabled, the
    /// legacy bare cumulative ACK.
    fn recv_report(&mut self) -> Packet {
        if !self.cc.enabled {
            return self.ack_packet();
        }
        // Coalesce the reorder buffer into disjoint, ascending ranges.  Keys
        // are strictly above `recv_next` (the in-order prefix was drained),
        // which is exactly what the SACK codec's validator demands.
        let mut ranges: Vec<SackRange> = Vec::new();
        for (&off, chunk) in &self.ooo {
            let end = off + chunk.len() as u64;
            match ranges.last_mut() {
                Some(last) if off <= last.end => last.end = last.end.max(end),
                _ => {
                    if ranges.len() == SmtSack::MAX_RANGES {
                        break;
                    }
                    ranges.push(SackRange { start: off, end });
                }
            }
        }
        let ecn_total = self.ecn_total_pending.min(u64::from(u16::MAX)) as u16;
        let ecn_ce = self.ecn_ce_pending.min(u64::from(ecn_total)) as u16;
        self.ecn_ce_pending = 0;
        self.ecn_total_pending = 0;
        let sack = SmtSack {
            ack_offset: self.recv_next,
            ecn_ce,
            ecn_total,
            ranges,
        };
        let overlay = SmtOverlayHeader {
            tcp: OverlayTcpHeader::new(self.path.src_port, self.path.dst_port, PacketType::Sack),
            options: SmtOptionArea::new(0, 0),
        };
        Packet {
            ip: smt_wire::IpHeader::V4(smt_wire::Ipv4Header::new(
                self.path.src,
                self.path.dst,
                IPPROTO_TCP,
                (smt_wire::IPV4_HEADER_LEN + smt_wire::SMT_OVERLAY_LEN + sack.wire_len()) as u16,
            )),
            overlay,
            payload: PacketPayload::Sack(sack),
            corrupted: false,
        }
    }

    /// Consumes newly in-order wire bytes: record-layer decryption (when
    /// encrypted), then frame delimiting into delivered messages.
    fn deliver_in_order(&mut self, bytes: &[u8]) -> EndpointResult<()> {
        let plaintext = match &mut self.tls_rx {
            Some(rx) => match rx.on_bytes(bytes) {
                Ok(p) => p,
                Err(e) => {
                    if matches!(
                        e,
                        smt_core::SmtError::Crypto(smt_crypto::CryptoError::AuthenticationFailed)
                    ) {
                        self.stats.auth_failures += 1;
                    }
                    return Err(self.fatal(format!("record layer failed on in-order stream: {e}")));
                }
            },
            None => bytes.to_vec(),
        };
        self.frame_buf.extend_from_slice(&plaintext);
        self.note_tracked_bytes();
        while self.frame_buf.len() >= FRAME_HEADER {
            let header: &[u8] = &self.frame_buf;
            let Some(id_bytes) = header.get(..8).and_then(|s| <[u8; 8]>::try_from(s).ok()) else {
                break;
            };
            let Some(len_bytes) = header.get(8..12).and_then(|s| <[u8; 4]>::try_from(s).ok())
            else {
                break;
            };
            let id = u64::from_be_bytes(id_bytes);
            let len = u32::from_be_bytes(len_bytes) as usize;
            if len > MAX_FRAME_LEN {
                // A corrupted (or, on plain TCP, injected) frame header: the
                // stream can never resynchronise, and waiting for the declared
                // bytes would grow the frame buffer without bound.
                self.stats.malformed_rejected += 1;
                return Err(self.fatal(format!(
                    "stream framing corrupted: declared frame of {len} bytes exceeds {MAX_FRAME_LEN}"
                )));
            }
            if self.frame_buf.len() < FRAME_HEADER + len {
                break;
            }
            let _ = self.frame_buf.split_to(FRAME_HEADER);
            let data = self.frame_buf.split_to(len)[..].to_vec();
            self.stats.messages_delivered += 1;
            self.stats.bytes_delivered += data.len() as u64;
            self.events.push_back(Event::MessageDelivered {
                id: MessageId(id),
                data,
            });
        }
        Ok(())
    }

    fn handle_data(&mut self, datagram: &Packet) -> EndpointResult<()> {
        let Some(bytes) = datagram.payload.as_data() else {
            return Ok(());
        };
        if bytes.is_empty() {
            return Ok(());
        }
        self.stats.wire_bytes_received += bytes.len() as u64;
        if self.cc.enabled {
            // DCTCP ECN echo: count every data packet and the CE-marked
            // subset since the last SACK went out.
            self.ecn_total_pending += 1;
            if datagram.ip.is_ce_marked() {
                self.ecn_ce_pending += 1;
            }
        }
        // Stream offset of this packet: the segment's 64-bit base offset
        // (low word in tso_offset, high word in the reserved field) plus the
        // packet's position within the TSO expansion, at the sender's stride
        // (carried in the resend-packet-offset word; fall back to our own MTU
        // for a peer that did not stamp it).
        let stride = match datagram.overlay.options.resend_packet_offset {
            0 => max_payload_per_packet(self.mtu) as u64,
            s => u64::from(s),
        };
        let base = (u64::from(datagram.overlay.options.reserved) << 32)
            | u64::from(datagram.overlay.options.tso_offset);
        let offset = base + u64::from(datagram.packet_offset().unwrap_or(0)) * stride;
        let end = offset + bytes.len() as u64;

        if end <= self.recv_next {
            // Entirely old data: a network duplicate or a spurious
            // retransmission. Re-ACK so the sender advances.
            self.stats.replays_rejected += 1;
            self.ack_pending = true;
            return Ok(());
        }
        match self.ooo.get(&offset) {
            Some(existing) if existing.len() >= bytes.len() => {
                // Byte-identical duplicate still waiting in the reorder buffer.
                self.stats.replays_rejected += 1;
                self.ack_pending = true;
                return Ok(());
            }
            _ => {
                if let Some(replaced) = self.ooo.insert(offset, bytes.clone()) {
                    self.ooo_bytes = self.ooo_bytes.saturating_sub(replaced.len());
                }
                self.ooo_bytes += bytes.len();
            }
        }
        // Bounded reorder buffer: evict the furthest-ahead segment (the
        // sender's go-back-N covers it again) until back under the cap.
        while self.ooo_bytes > MAX_OOO_BYTES {
            let Some((&far, _)) = self.ooo.iter().next_back() else {
                self.ooo_bytes = 0;
                break;
            };
            if let Some(evicted) = self.ooo.remove(&far) {
                self.ooo_bytes = self.ooo_bytes.saturating_sub(evicted.len());
            }
            self.stats.state_evictions += 1;
        }
        self.note_tracked_bytes();

        // Advance the in-order prefix through the reorder buffer.
        let mut in_order = Vec::new();
        while let Some((&off, _)) = self.ooo.iter().next() {
            if off > self.recv_next {
                break;
            }
            let Some(chunk) = self.ooo.remove(&off) else {
                break;
            };
            self.ooo_bytes = self.ooo_bytes.saturating_sub(chunk.len());
            let chunk_end = off + chunk.len() as u64;
            if chunk_end <= self.recv_next {
                continue; // Buffered bytes that a larger chunk already covered.
            }
            let skip = (self.recv_next - off) as usize;
            in_order.extend_from_slice(&chunk[skip..]);
            self.recv_next = chunk_end;
        }
        self.ack_pending = true;
        if in_order.is_empty() {
            return Ok(());
        }
        self.deliver_in_order(&in_order)
    }

    /// Frames `data` as message `id` and appends it to the reliable stream
    /// (through the record layer when encrypted), returning the wire bytes
    /// produced.
    fn enqueue_framed(&mut self, id: MessageId, data: &[u8]) -> EndpointResult<usize> {
        let mut framed = Vec::with_capacity(FRAME_HEADER + data.len());
        framed.extend_from_slice(&id.0.to_be_bytes());
        framed.extend_from_slice(&(data.len() as u32).to_be_bytes());
        framed.extend_from_slice(data);
        let appended = match &mut self.tls_tx {
            Some(tx) => {
                if let (Some(engine), Some(conn)) = (&self.engine, self.engine_conn) {
                    // Stage the records with the shared batch engine instead
                    // of sealing inline; the ciphertext lands in `wire` at the
                    // next poll's fused flush. The staged size is exact, so
                    // stream offsets can be assigned now.
                    let n = tx.stage_into(&framed, engine, conn)?;
                    self.staged_wire += n;
                    n
                } else {
                    tx.send_into(&framed, &mut self.wire)?
                }
            }
            None => {
                self.wire.extend_from_slice(&framed);
                framed.len()
            }
        };
        self.inflight
            .push_back((id, self.produced() + self.staged_wire as u64));
        self.stats.wire_bytes_sent += appended as u64;
        Ok(appended)
    }

    /// Takes the first queued message as 0-RTT early data, if it fits in one
    /// record.
    fn take_early_candidate(&mut self) -> Option<Vec<u8>> {
        let eligible = matches!(
            self.queued.front(),
            Some((MessageId(0), data)) if data.len() <= super::handshake::EARLY_DATA_MAX
        );
        if !eligible {
            return None;
        }
        let (_, data) = self.queued.pop_front()?;
        self.queued_bytes = self.queued_bytes.saturating_sub(data.len());
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += data.len() as u64;
        Some(data)
    }

    /// Applies the effects of one handled handshake CONTROL packet.
    fn apply_hs_outcome(&mut self, outcome: super::handshake::DriverOutcome, now: Nanos) {
        if let Some(data) = outcome.requeue_early {
            // A rejected derived attempt collapsed to a full handshake, which
            // cannot carry early data: message 0 goes back to the front of
            // the queue (its send counters were bumped when it was taken) and
            // flushes normally on completion.
            self.stats.messages_sent = self.stats.messages_sent.saturating_sub(1);
            self.stats.bytes_sent = self.stats.bytes_sent.saturating_sub(data.len() as u64);
            self.queued_bytes += data.len();
            self.queued.push_front((MessageId(0), data));
            self.note_tracked_bytes();
        }
        if let Some(early) = outcome.early_data {
            self.stats.messages_delivered += 1;
            self.stats.bytes_delivered += early.len() as u64;
            self.events.push_back(Event::MessageDelivered {
                id: MessageId(0),
                data: early,
            });
        }
        if let Some(err) = outcome.error {
            self.dead = true;
            self.events.push_back(Event::Error(err));
            return;
        }
        let Some(result) = outcome.complete else {
            return;
        };
        self.hs_timings = Some(result.keys.timings.clone());
        if let Some(mode) = self.crypto_mode {
            match KtlsSession::new(&result.keys, mode) {
                Ok(session) => {
                    self.tls_tx = Some(session.sender);
                    self.tls_rx = Some(session.receiver);
                    self.register_engine();
                }
                Err(e) => {
                    self.dead = true;
                    self.events.push_back(Event::Error(format!(
                        "installing negotiated keys failed: {e}"
                    )));
                    return;
                }
            }
        }
        self.events.push_back(Event::HandshakeComplete {
            peer_identity: result.keys.peer_identity.clone(),
            forward_secret: result.keys.forward_secret,
            rtt_ns: result.rtt_ns,
            resumed: result.resumed,
        });
        if let Some(ticket) = result.ticket {
            self.events
                .push_back(Event::TicketReceived(Box::new(ticket)));
        }
        if result.early_data_sent {
            // The server flight proves the 0-RTT record was accepted; the
            // piggybacked message is done end to end.
            if let Some(sent_at) = self.op_sent.remove(&0) {
                self.op_latency.record(now.saturating_sub(sent_at));
            }
            self.events.push_back(Event::MessageAcked(MessageId(0)));
        }
        // Flush the sends that queued during the handshake onto the stream.
        self.queued_bytes = 0;
        for (id, data) in std::mem::take(&mut self.queued) {
            self.stats.messages_sent += 1;
            self.stats.bytes_sent += data.len() as u64;
            if let Err(e) = self.enqueue_framed(id, &data) {
                self.dead = true;
                self.events
                    .push_back(Event::Error(format!("flushing queued send failed: {e}")));
                return;
            }
        }
        if self.produced() + self.staged_wire as u64 > self.acked && self.rto_deadline.is_none() {
            self.rto_deadline = Some(now + self.rto());
        }
    }

    /// Ratchets the send keys one epoch forward by appending an in-band TLS
    /// The per-operation timing breakdown recorded by this endpoint's
    /// completed in-band handshake (paper Table 2); `None` before completion
    /// and for key-injected endpoints.
    pub fn handshake_timings(&self) -> Option<&smt_crypto::handshake::HandshakeTimings> {
        self.hs_timings.as_ref()
    }

    /// KeyUpdate record to the reliable stream (RFC 8446 §4.6.3): ciphertext
    /// staged with the shared batch engine under the old key is materialised
    /// first so stream ordering is preserved, the KeyUpdate is sealed under
    /// the *current* keys, and every later record seals under the ratcheted
    /// secret with its sequence number reset.  The engine registration is
    /// refreshed so later staged records use the new key.  Fails before
    /// handshake completion and on plain TCP.
    pub fn rekey(&mut self, now: Nanos) -> EndpointResult<u16> {
        if self.dead {
            return Err(EndpointError::Stream("endpoint is dead".into()));
        }
        if self.handshaking() {
            return Err(EndpointError::Stream(
                "cannot rekey before handshake completion".into(),
            ));
        }
        if self.tls_tx.is_none() {
            return Err(EndpointError::Stream(
                "plain TCP has no record keys to rekey".into(),
            ));
        }
        // Old-key ciphertext staged with the engine must land on the stream
        // before the KeyUpdate record.
        if self.staged_wire > 0 {
            let engine = self.engine.as_ref().expect("staged bytes imply an engine");
            let conn = self.engine_conn.expect("staged bytes imply registration");
            engine.flush();
            let sealed = engine.drain(conn);
            debug_assert_eq!(sealed.len(), self.staged_wire);
            self.wire.extend_from_slice(&sealed);
            self.staged_wire = 0;
        }
        let tx = self.tls_tx.as_mut().expect("checked above");
        let ku = tx.key_update()?;
        let epoch = tx.epoch();
        self.stats.wire_bytes_sent += ku.len() as u64;
        self.wire.extend_from_slice(&ku);
        self.register_engine();
        // The KeyUpdate record itself needs reliable delivery: arm the
        // retransmission timer if it was idle.
        if self.rto_deadline.is_none() {
            self.rto_deadline = Some(now + self.rto());
        }
        Ok(epoch)
    }

    fn handle_ack(&mut self, offset: u64, now: Nanos) {
        let offset = offset.min(self.produced());
        if offset <= self.acked {
            return;
        }
        self.acked = offset;
        self.consecutive_timeouts = 0;
        self.rto_backoff = 0;
        self.dup_sacks = 0;
        // Progress restarts the retransmission timer; full acknowledgement
        // disarms it.
        self.rto_deadline = if offset < self.produced() {
            Some(now + self.rto())
        } else {
            None
        };
        if self.next_send < offset {
            self.next_send = offset;
        }
        // Release the acknowledged prefix of the retransmit buffer.
        let drop = (offset - self.wire_base) as usize;
        let _ = self.wire.split_to(drop);
        self.wire_base = offset;
        // SACKed ranges at or below the cumulative offset are history.
        while let Some((&start, &end)) = self.sacked.iter().next() {
            if start >= offset {
                break;
            }
            self.sacked.remove(&start);
            if end > offset {
                self.sacked.insert(offset, end);
            }
        }
        // Karn-safe RTT samples: `timed` only holds never-retransmitted
        // chunks (it is cleared on every retransmission), so any entry the
        // cumulative offset covers is a clean round trip.
        while let Some(&(end, sent_at)) = self.timed.front() {
            if end > offset {
                break;
            }
            self.timed.pop_front();
            self.rtt.on_sample(now.saturating_sub(sent_at));
            self.rto_backoff = 0;
        }
        while let Some(&(id, end)) = self.inflight.front() {
            if end > offset {
                break;
            }
            self.inflight.pop_front();
            if let Some(sent_at) = self.op_sent.remove(&id.0) {
                self.op_latency.record(now.saturating_sub(sent_at));
            }
            self.events.push_back(Event::MessageAcked(id));
        }
    }

    /// Records one peer-SACKed range, merging overlaps and keeping the
    /// scoreboard bounded (a hostile peer cannot grow it past
    /// [`Self::MAX_SACK_SCOREBOARD`] disjoint ranges).
    fn insert_sacked(&mut self, mut start: u64, mut end: u64) {
        let mut merged: Vec<u64> = Vec::new();
        for (&s, &e) in self.sacked.range(..=end) {
            if e >= start {
                start = start.min(s);
                end = end.max(e);
                merged.push(s);
            }
        }
        let absorbed = !merged.is_empty();
        for s in merged {
            self.sacked.remove(&s);
        }
        if absorbed || self.sacked.len() < Self::MAX_SACK_SCOREBOARD {
            self.sacked.insert(start, end);
        }
    }

    /// Processes one SACK frame: cumulative progress, the DCTCP ECN echo,
    /// scoreboard updates, and duplicate-SACK fast retransmit.
    fn handle_sack(&mut self, sack: &SmtSack, now: Nanos) {
        let produced = self.produced();
        let prev_acked = self.acked;
        let newly = sack.ack_offset.min(produced).saturating_sub(prev_acked);
        if let Some(w) = &mut self.cwnd {
            let total = u64::from(sack.ecn_total).max(u64::from(sack.ecn_ce));
            w.on_ack(newly, u64::from(sack.ecn_ce), total, now);
        }
        self.handle_ack(sack.ack_offset, now);
        for r in &sack.ranges {
            // Clamp to reality: a forged range cannot mark bytes that were
            // never produced, or rewrite already-acknowledged history.
            let start = r.start.max(self.acked);
            let end = r.end.min(produced);
            if end > start {
                self.insert_sacked(start, end);
            }
        }
        // Duplicate SACKs with ranges mean later data keeps landing while a
        // hole stays open: on the third, infer loss and retransmit the holes
        // now instead of waiting out the RTO (fast retransmit).
        if self.cc.enabled
            && self.acked == prev_acked
            && !sack.ranges.is_empty()
            && self.acked < produced
        {
            self.dup_sacks += 1;
            if self.dup_sacks == 3 {
                if let Some(w) = &mut self.cwnd {
                    w.on_loss(now);
                }
                self.timed.clear();
                self.next_send = self.acked;
                self.rto_deadline = Some(now + self.rto());
            }
        }
    }
}

impl SecureEndpoint for StreamEndpoint {
    fn stack(&self) -> StackKind {
        self.stack
    }

    fn send(&mut self, data: &[u8], now: Nanos) -> EndpointResult<MessageId> {
        if self.dead {
            return Err(EndpointError::Stream("endpoint is dead".into()));
        }
        let id = MessageId(self.next_msg_id);
        self.next_msg_id += 1;
        if self.handshaking() {
            // Pre-data exchange still running: queue; the first queued
            // message may ride the ClientHello flight as 0-RTT early data.
            // Send counters are bumped when the bytes actually leave (flush
            // or early-data piggyback), like the message backend.
            if self.queued_bytes + data.len() > MAX_QUEUED_BYTES {
                self.next_msg_id -= 1;
                return Err(EndpointError::Stream(format!(
                    "handshake send queue full ({MAX_QUEUED_BYTES} bytes); retry after \
                     HandshakeComplete"
                )));
            }
            self.queued.push_back((id, data.to_vec()));
            self.queued_bytes += data.len();
            self.note_tracked_bytes();
            if self.op_sent.len() < 1024 {
                self.op_sent.insert(id.0, now);
            }
            return Ok(id);
        }
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += data.len() as u64;
        self.enqueue_framed(id, data)?;
        if self.op_sent.len() < 1024 {
            self.op_sent.insert(id.0, now);
        }
        if self.rto_deadline.is_none() {
            self.rto_deadline = Some(now + self.rto());
        }
        Ok(id)
    }

    fn handle_datagram(&mut self, datagram: &Packet, now: Nanos) -> EndpointResult<()> {
        if self.dead {
            self.stats.datagrams_dropped += 1;
            return Ok(());
        }
        if datagram.overlay.tcp.packet_type == PacketType::Control {
            if let Some(mut hs) = self.hs.take() {
                let outcome = hs.handle_control(datagram, now);
                self.hs = Some(hs);
                self.apply_hs_outcome(outcome, now);
            }
            return Ok(());
        }
        if self.handshaking() {
            // Stream bytes raced ahead of the pre-data exchange (reordering):
            // the sender's go-back-N timer recovers them once keys exist.
            self.stats.datagrams_dropped += 1;
            return Ok(());
        }
        match datagram.overlay.tcp.packet_type {
            PacketType::Data => self.handle_data(datagram),
            PacketType::Ack => {
                if let PacketPayload::Ack(a) = &datagram.payload {
                    self.handle_ack(a.message_id, now);
                }
                Ok(())
            }
            // Processed regardless of this side's own cc switch so a
            // cc-enabled receiver still acknowledges to a baseline sender.
            PacketType::Sack => {
                if let PacketPayload::Sack(sack) = &datagram.payload {
                    self.handle_sack(sack, now);
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }

    fn poll_transmit(&mut self, now: Nanos, out: &mut Vec<Packet>) -> usize {
        // A dead endpoint emits nothing — in particular not a pending ACK
        // covering bytes the record layer rejected, which would make the
        // sender release (and report as acknowledged) an undelivered message.
        if self.dead {
            return 0;
        }
        let before = out.len();
        if let Some(mut hs) = self.hs.take() {
            if hs.needs_start() {
                let early = if hs.wants_early_data() {
                    self.take_early_candidate()
                } else {
                    None
                };
                if let Err(e) = hs.start_client(now, early) {
                    self.dead = true;
                    self.events.push_back(Event::Error(e));
                }
            }
            hs.poll_transmit(out);
            self.hs = Some(hs);
            if self.dead {
                self.stamp_connection_id(&mut out[before..]);
                return out.len() - before;
            }
        }
        if self.ack_pending {
            self.ack_pending = false;
            let report = self.recv_report();
            out.push(report);
        }
        // Materialise ciphertext staged with the shared batch engine: the
        // first endpoint to poll runs one fused pass over every registered
        // connection's staged records; each connection then drains its own
        // bytes (here, or on its own next poll).
        if self.staged_wire > 0 {
            let engine = self.engine.as_ref().expect("staged bytes imply an engine");
            let conn = self.engine_conn.expect("staged bytes imply registration");
            engine.flush();
            let sealed = engine.drain(conn);
            debug_assert_eq!(sealed.len(), self.staged_wire);
            self.wire.extend_from_slice(&sealed);
            self.staged_wire = 0;
        }
        // Hand the unsent stream suffix to the NIC in TSO segments (one MTU
        // payload per segment when TSO is off, like the real no-TSO path).
        let seg_max = if self.tso {
            MAX_TSO_SEGMENT
        } else {
            max_payload_per_packet(self.mtu)
        };
        let window = self.cwnd.as_ref().map(|w| w.window());
        while self.next_send < self.produced() {
            if self.cc.enabled {
                // Selective retransmit: hop over ranges the peer already
                // SACKed instead of resending them.
                loop {
                    match self.sacked.range(..=self.next_send).next_back() {
                        Some((_, &end)) if end > self.next_send => self.next_send = end,
                        _ => break,
                    }
                }
                if self.next_send >= self.produced() {
                    break;
                }
            }
            if let Some(w) = window {
                // DCTCP window: pause once a window's worth is in flight;
                // the next SACK reopens it.
                if self.next_send.saturating_sub(self.acked) >= w {
                    break;
                }
            }
            let start = (self.next_send - self.wire_base) as usize;
            let mut take = seg_max.min(self.wire.len() - start);
            if self.cc.enabled {
                // A chunk must stop at the next SACKed range, not overlap it.
                if let Some((&s, _)) = self.sacked.range(self.next_send + 1..).next() {
                    take = take.min((s - self.next_send) as usize);
                }
            }
            let chunk = Bytes::copy_from_slice(&self.wire[start..start + take]);
            let mut overlay = SmtOverlayHeader {
                tcp: OverlayTcpHeader::new(
                    self.path.src_port,
                    self.path.dst_port,
                    PacketType::Data,
                ),
                options: SmtOptionArea::new(0, take as u32),
            };
            overlay.options.tso_offset = self.next_send as u32;
            overlay.options.reserved = (self.next_send >> 32) as u32;
            // The receiver reconstructs each packet's stream offset as
            // base + IPID * stride, where the stride is the *sender's* NIC
            // per-packet payload. Carry it in the (otherwise unused on a
            // stream flow) resend-packet-offset word so mixed-MTU endpoints
            // cannot desync.
            overlay.options.resend_packet_offset =
                max_payload_per_packet(self.mtu).min(u16::MAX as usize) as u16;
            let segment =
                TsoSegment::new(self.path.src, self.path.dst, IPPROTO_TCP, overlay, chunk);
            let (mut packets, _nic_ns) = self.nic.transmit(0, &segment);
            if self.cc.enabled {
                // Egress data is ECN-capable: fabric queues past their
                // marking threshold CE-mark it instead of dropping.
                for p in &mut packets {
                    p.ip.set_ecn_capable();
                    p.overlay.options.flags |= SmtOptionArea::FLAG_ECN_CAPABLE;
                }
            }
            if self.next_send < self.sent_high {
                // The chunk's prefix below the high-water mark has been on
                // the wire before (selective or go-back-N recovery); packets
                // past it carry fresh bytes and are not retransmissions.
                let retx_bytes = (self.sent_high - self.next_send).min(take as u64);
                let stride = max_payload_per_packet(self.mtu).max(1) as u64;
                self.stats.retransmissions += retx_bytes.div_ceil(stride).min(packets.len() as u64);
            } else if self.timed.len() < 1024 {
                // An entirely-fresh chunk is a clean RTT probe (Karn's rule:
                // retransmitted ranges are never sampled).
                self.timed.push_back((self.next_send + take as u64, now));
            }
            out.extend(packets);
            self.next_send += take as u64;
            self.sent_high = self.sent_high.max(self.next_send);
        }
        self.stamp_connection_id(&mut out[before..]);
        out.len() - before
    }

    fn poll_event(&mut self) -> Option<Event> {
        self.events.pop_front()
    }

    fn next_timeout(&self) -> Option<Nanos> {
        if self.dead {
            return None;
        }
        let hs = self.hs.as_ref().and_then(|h| h.next_timeout());
        [hs, self.rto_deadline].into_iter().flatten().min()
    }

    fn on_timeout(&mut self, now: Nanos) {
        // Expired timer with unacknowledged data: go-back-N from the
        // cumulative ACK (the TCP retransmission timer).
        if self.dead {
            return;
        }
        if let Some(hs) = &mut self.hs {
            hs.on_timeout(now);
        }
        let Some(deadline) = self.rto_deadline else {
            return;
        };
        if now < deadline {
            return; // Early tick: not due yet.
        }
        if self.acked < self.produced() {
            self.stats.timeouts_fired += 1;
            self.rto_backoff = (self.rto_backoff + 1).min(16);
            if self.cc.enabled {
                self.consecutive_timeouts += 1;
                if let Some(w) = &mut self.cwnd {
                    w.on_loss(now);
                }
                self.timed.clear();
                if self.consecutive_timeouts >= 2 {
                    // The scoreboard failed to produce progress — stale or
                    // forged SACKs.  Distrust it: plain go-back-N recovers
                    // whatever the peer actually holds.
                    self.sacked.clear();
                }
            }
            self.next_send = self.acked;
            self.rto_deadline = Some(now + self.rto());
        } else {
            self.rto_deadline = None;
        }
    }

    fn stats(&self) -> EndpointStats {
        let mut stats = self.stats;
        if let Some(w) = &self.cwnd {
            let snap = w.snapshot();
            stats.ecn_marks_seen = snap.ecn_marks_seen;
            stats.cwnd_bytes = snap.cwnd_bytes;
        }
        stats.srtt_ns = self.rtt.srtt_ns();
        stats.op_latency_p50_ns = self.op_latency.quantile(0.50);
        stats.op_latency_p99_ns = self.op_latency.quantile(0.99);
        if let Some(tx) = &self.tls_tx {
            if tx.crypto_mode() == CryptoMode::Software {
                stats.records_sealed += tx.records_sent;
            }
        }
        if let Some(hs) = &self.hs {
            stats.wire_bytes_sent += hs.wire_bytes_sent;
            stats.wire_bytes_received += hs.wire_bytes_received;
            stats.retransmissions += hs.retransmissions;
            stats.timeouts_fired += hs.timeouts_fired;
            stats.datagrams_dropped += hs.datagrams_dropped;
            stats.malformed_rejected += hs.malformed_rejected;
            stats.peak_tracked_bytes = stats.peak_tracked_bytes.max(hs.peak_tracked_bytes);
        }
        stats
    }
}
