//! Regenerates Fig. 7: concurrent RPC throughput (plus the 9 KB-MTU variant),
//! then the functional sweep — real closed-loop echo RPCs through the
//! endpoint API over the simulated fabric — cross-checked against the
//! analytic band in process.  `--analytic-only` skips the functional section.
use smt_bench::functional::{assert_rows, fig7_functional, fig_table, FigScale, FIG_TABLE_HEADER};
use smt_bench::scenarios::scenario_keys;
use smt_bench::{fig7_throughput, output};

fn main() {
    let mtu = if std::env::args().any(|a| a == "--mtu9000") {
        9000
    } else {
        1500
    };
    let analytic_only = std::env::args().any(|a| a == "--analytic-only");
    let rows = fig7_throughput(mtu);
    if output::maybe_json(&rows) {
        return;
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|p| vec![p.series.clone(), p.x.clone(), output::krate(p.y)])
        .collect();
    output::print_table(
        &format!("Fig. 7: throughput (K RPC/s), MTU {mtu}"),
        &["stack-size", "concurrency", "K RPC/s"],
        &table,
    );

    if analytic_only {
        return;
    }
    let keys = scenario_keys();
    let functional = fig7_functional(&FigScale::smoke(), &keys);
    assert_rows(&functional);
    output::print_table(
        "Fig. 7 (functional): measured on the real datapath vs analytic band",
        &FIG_TABLE_HEADER,
        &fig_table(&functional),
    );
}
