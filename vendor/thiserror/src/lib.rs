//! Offline stand-in for the [`thiserror`](https://docs.rs/thiserror) crate.
//!
//! Provides `#[derive(Error)]` with the attribute subset this workspace uses:
//!
//! * `#[error("format string")]` — generates `Display` using the literal as a
//!   format template; named fields are captured implicitly, positional `{0}`
//!   references are rewritten to generated bindings;
//! * `#[error(transparent)]` — `Display` delegates to the single inner field;
//! * `#[from]` on a variant's single field — generates a `From` impl.
//!
//! The input is parsed directly from the token stream (no `syn`), supporting
//! non-generic enums — which is every error type in this workspace.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
enum DisplayAttr {
    Format(String),
    Transparent,
}

#[derive(Debug)]
enum Fields {
    Unit,
    /// Tuple fields: (count, index-with-`#[from]`, type string of that field).
    Tuple(usize, Option<(usize, String)>),
    /// Named fields in declaration order.
    Named(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    display: Option<DisplayAttr>,
    fields: Fields,
}

/// Derives `Display`, `std::error::Error` and `From` impls.
#[proc_macro_derive(Error, attributes(error, from, source, backtrace))]
pub fn derive_error(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility.
    skip_attributes(&tokens, &mut i);
    if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    let kind = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected enum/struct, got {other:?}"),
    };
    if kind != "enum" {
        panic!("this offline thiserror supports #[derive(Error)] on enums only");
    }
    i += 1;
    let name = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected enum name, got {other:?}"),
    };
    i += 1;
    let body = loop {
        match &tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.clone(),
            Some(_) => i += 1,
            None => panic!("enum body not found"),
        }
    };

    let variants = parse_variants(body.stream());
    let mut out = String::new();

    // Display impl.
    out.push_str(&format!(
        "impl ::std::fmt::Display for {name} {{\n\
         fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {{\n\
         match self {{\n"
    ));
    for v in &variants {
        let vn = &v.name;
        match (&v.display, &v.fields) {
            (Some(DisplayAttr::Transparent), Fields::Tuple(1, _)) => {
                out.push_str(&format!(
                    "{name}::{vn}(inner) => ::std::fmt::Display::fmt(inner, f),\n"
                ));
            }
            (Some(DisplayAttr::Format(fmt)), Fields::Unit) => {
                out.push_str(&format!("{name}::{vn} => write!(f, {fmt}),\n"));
            }
            (Some(DisplayAttr::Format(fmt)), Fields::Named(fields)) => {
                let pattern = fields.join(", ");
                out.push_str(&format!(
                    "{name}::{vn} {{ {pattern} }} => write!(f, {fmt}),\n"
                ));
            }
            (Some(DisplayAttr::Format(fmt)), Fields::Tuple(count, _)) => {
                let bindings: Vec<String> = (0..*count).map(|k| format!("arg{k}")).collect();
                let rewritten = rewrite_positional(fmt);
                out.push_str(&format!(
                    "{name}::{vn}({}) => {{ {} write!(f, {rewritten}) }},\n",
                    bindings.join(", "),
                    // Silence unused warnings for fields the template skips.
                    bindings
                        .iter()
                        .map(|b| format!("let _ = {b};"))
                        .collect::<String>(),
                ));
            }
            (None, _) => {
                // No #[error] attr: fall back to the variant name.
                let pattern = match &v.fields {
                    Fields::Unit => String::new(),
                    Fields::Tuple(..) => "(..)".to_string(),
                    Fields::Named(_) => "{ .. }".to_string(),
                };
                out.push_str(&format!("{name}::{vn} {pattern} => write!(f, \"{vn}\"),\n"));
            }
            (Some(DisplayAttr::Transparent), _) => {
                panic!("#[error(transparent)] requires exactly one tuple field")
            }
        }
    }
    out.push_str("}\n}\n}\n");

    // std::error::Error impl.
    out.push_str(&format!("impl ::std::error::Error for {name} {{}}\n"));

    // From impls for #[from] fields.
    for v in &variants {
        if let Fields::Tuple(1, Some((0, ty))) = &v.fields {
            let vn = &v.name;
            out.push_str(&format!(
                "impl ::std::convert::From<{ty}> for {name} {{\n\
                 fn from(source: {ty}) -> Self {{ {name}::{vn}(source) }}\n\
                 }}\n"
            ));
        }
    }

    out.parse().expect("generated impl parses")
}

/// Rewrites `{0}` / `{0:spec}` positional references to `{arg0}` bindings.
fn rewrite_positional(fmt: &str) -> String {
    let mut out = String::with_capacity(fmt.len() + 8);
    let chars: Vec<char> = fmt.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if chars[i] == '{' && i + 1 < chars.len() && chars[i + 1].is_ascii_digit() {
            let mut j = i + 1;
            while j < chars.len() && chars[j].is_ascii_digit() {
                j += 1;
            }
            if j < chars.len() && (chars[j] == '}' || chars[j] == ':') {
                out.push('{');
                out.push_str("arg");
                out.extend(&chars[i + 1..j]);
                i = j;
                continue;
            }
        }
        out.push(chars[i]);
        i += 1;
    }
    out
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while matches!(&tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        if matches!(&tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '!') {
            *i += 1;
        }
        if matches!(&tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
        {
            *i += 1;
        }
    }
}

/// Reads attributes at the cursor, returning the `#[error(...)]` payload if any.
fn read_attrs(tokens: &[TokenTree], i: &mut usize) -> Option<DisplayAttr> {
    let mut display = None;
    while matches!(&tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        let Some(TokenTree::Group(g)) = tokens.get(*i) else {
            break;
        };
        if g.delimiter() == Delimiter::Bracket {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "error") {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    let args: Vec<TokenTree> = args.stream().into_iter().collect();
                    display = match args.first() {
                        Some(TokenTree::Ident(id)) if id.to_string() == "transparent" => {
                            Some(DisplayAttr::Transparent)
                        }
                        Some(TokenTree::Literal(_)) => {
                            // Keep the whole argument list verbatim (the format
                            // literal plus any extra format args).
                            let text: String = args
                                .iter()
                                .map(|t| t.to_string())
                                .collect::<Vec<_>>()
                                .join(" ");
                            Some(DisplayAttr::Format(text))
                        }
                        _ => None,
                    };
                }
            }
            *i += 1;
        } else {
            break;
        }
    }
    display
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let display = read_attrs(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            panic!("expected variant name at {:?}", tokens.get(i));
        };
        let name = id.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                parse_tuple_fields(g.stream())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip to (and past) the separating comma.
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant {
            name,
            display,
            fields,
        });
    }
    variants
}

fn parse_tuple_fields(stream: TokenStream) -> Fields {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut count = 0usize;
    let mut from_field: Option<(usize, String)> = None;
    let mut i = 0;
    while i < tokens.len() {
        // Attributes on this field.
        let mut has_from = false;
        while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Bracket {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    if matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "from")
                    {
                        has_from = true;
                    }
                    i += 1;
                }
            }
        }
        // Optional visibility.
        if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        // Type tokens until a top-level comma.
        let mut ty = String::new();
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                TokenTree::Punct(p) => {
                    if p.as_char() == '<' {
                        depth += 1;
                    }
                    if p.as_char() == '>' {
                        depth -= 1;
                    }
                    ty.push_str(&p.to_string());
                    i += 1;
                }
                t => {
                    if !ty.is_empty()
                        && !ty.ends_with(':')
                        && !ty.ends_with('<')
                        && !ty.ends_with('&')
                    {
                        ty.push(' ');
                    }
                    ty.push_str(&t.to_string());
                    i += 1;
                }
            }
        }
        if has_from {
            from_field = Some((count, ty.trim().to_string()));
        }
        count += 1;
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    Fields::Tuple(count, from_field)
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let Some(TokenTree::Ident(field)) = tokens.get(i) else {
            break;
        };
        names.push(field.to_string());
        i += 1;
        // Skip ": Type" until top-level comma.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                TokenTree::Punct(p) => {
                    if p.as_char() == '<' {
                        depth += 1;
                    }
                    if p.as_char() == '>' {
                        depth -= 1;
                    }
                    i += 1;
                }
                _ => i += 1,
            }
        }
    }
    names
}
