//! Packet-level NIC model: TSO and TLS autonomous offload (paper §2.3, §3.2,
//! Fig. 2).
//!
//! The model enforces the interface contract of the ConnectX-6/7 "autonomous
//! offload" architecture as described by Pismenny et al. and the kernel TLS
//! offload documentation, which is what SMT's flow-context design (§4.4.2) is
//! built against:
//!
//! * each **flow context** lives in NIC memory and holds a self-incrementing
//!   expected record sequence number;
//! * a segment whose first record matches the context's expectation is encrypted
//!   correctly and the expectation advances by the segment's record count;
//! * a **resync descriptor** queued before a segment re-targets the expectation;
//! * a segment that arrives out of sequence *without* a resync produces corrupted
//!   ciphertext (modelled by the `corrupted` packet flag), exactly the "Out-seq."
//!   case of Fig. 2;
//! * descriptors are only ordered **within one queue** — the model keeps
//!   per-queue state and nothing else, so cross-queue races surface naturally.
//!
//! The actual AEAD bytes were already produced by `smt-core` (see DESIGN.md);
//! the NIC model validates the descriptor discipline, expands TSO segments into
//! MTU-sized packets (replicating the overlay header and stamping IPIDs), and
//! accounts the offloaded crypto bytes so the cost model can credit them to the
//! NIC instead of the CPU.

use crate::time::Nanos;
use serde::{Deserialize, Serialize};
use smt_wire::{Packet, TsoSegment};
use std::collections::HashMap;

/// Counters kept by the NIC model.
#[derive(Debug, Default, Clone, Copy, Serialize, Deserialize)]
pub struct NicStats {
    /// TSO segments submitted.
    pub segments: u64,
    /// Packets emitted onto the wire.
    pub packets: u64,
    /// Payload bytes emitted.
    pub bytes: u64,
    /// Records encrypted by the offload engine.
    pub offload_records: u64,
    /// Payload bytes encrypted by the offload engine.
    pub offload_bytes: u64,
    /// Resync descriptors processed.
    pub resyncs: u64,
    /// Flow contexts allocated in NIC memory.
    pub contexts_allocated: u64,
    /// Segments encrypted with a stale sequence expectation (corrupted output).
    pub out_of_sequence: u64,
}

#[derive(Debug, Clone, Copy)]
struct FlowContextState {
    expected_seq: u64,
    valid: bool,
}

/// The transmit-side NIC model for one host.
#[derive(Debug)]
pub struct NicModel {
    mtu: usize,
    tso_enabled: bool,
    /// Per-queue flow-context tables: (queue, context id) → state.
    contexts: HashMap<(usize, u32), FlowContextState>,
    /// Counters.
    pub stats: NicStats,
}

impl NicModel {
    /// Creates a NIC with the given MTU and TSO capability.
    pub fn new(mtu: usize, tso_enabled: bool) -> Self {
        Self {
            mtu,
            tso_enabled,
            contexts: HashMap::new(),
            stats: NicStats::default(),
        }
    }

    /// The configured MTU.
    pub fn mtu(&self) -> usize {
        self.mtu
    }

    /// Whether TSO is enabled.
    pub fn tso_enabled(&self) -> bool {
        self.tso_enabled
    }

    /// Number of flow contexts currently held in NIC memory.
    pub fn context_count(&self) -> usize {
        self.contexts.len()
    }

    /// Processes one TSO segment submitted on `queue`, returning the packets
    /// that go onto the wire and the NIC processing time to charge.
    ///
    /// If the segment carries an offload descriptor, the flow-context discipline
    /// is enforced: out-of-sequence submissions without a resync yield packets
    /// flagged `corrupted` (undecryptable at the receiver).
    pub fn transmit(&mut self, queue: usize, segment: &TsoSegment) -> (Vec<Packet>, Nanos) {
        self.stats.segments += 1;
        let record_count = segment.options().record_count as u64;

        let mut corrupted = false;
        if let Some(desc) = segment.offload {
            let key = (queue, desc.flow_context_id);
            let entry = self.contexts.entry(key).or_insert_with(|| {
                self.stats.contexts_allocated += 1;
                FlowContextState {
                    expected_seq: 0,
                    valid: false,
                }
            });
            if desc.resync {
                self.stats.resyncs += 1;
                entry.expected_seq = desc.first_record_seq;
                entry.valid = true;
            }
            if !entry.valid || entry.expected_seq != desc.first_record_seq {
                // Fig. 2 "Out-seq.": the engine encrypts with the wrong counter.
                corrupted = true;
                self.stats.out_of_sequence += 1;
            }
            // The self-incrementing counter advances over the segment's records
            // regardless (that is what makes the corruption persistent until the
            // next resync).
            entry.expected_seq = entry.expected_seq.wrapping_add(record_count);
            entry.valid = true;

            self.stats.offload_records += record_count;
            self.stats.offload_bytes += segment.len() as u64;
        }

        let mut packets = segment
            .packetize(self.effective_mtu(segment))
            .expect("segment within limits");
        if corrupted {
            for p in &mut packets {
                p.corrupted = true;
            }
        }
        self.stats.packets += packets.len() as u64;
        self.stats.bytes += segment.len() as u64;

        // NIC processing time: DMA + per-packet emission; crypto is effectively
        // line-rate in the offload engine and hidden behind serialization.
        let per_packet_ns: Nanos = 15;
        (packets, per_packet_ns * record_count.max(1))
    }

    fn effective_mtu(&self, _segment: &TsoSegment) -> usize {
        if self.tso_enabled {
            self.mtu
        } else {
            // Without TSO the stack already limited segments to one packet; the
            // MTU still bounds the emitted packet size.
            self.mtu
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use smt_wire::{SmtOverlayHeader, TlsOffloadDescriptor, DEFAULT_MTU, IPPROTO_SMT};

    fn segment(message_id: u64, first_record_index: u16, records: u16, len: usize) -> TsoSegment {
        let mut overlay = SmtOverlayHeader::data(1, 2, message_id, len as u32);
        overlay.options.record_count = records;
        overlay.options.first_record_index = first_record_index;
        TsoSegment::new(
            [10, 0, 0, 1],
            [10, 0, 0, 2],
            IPPROTO_SMT,
            overlay,
            Bytes::from(vec![0u8; len]),
        )
    }

    fn with_offload(mut seg: TsoSegment, ctx: u32, seq: u64, resync: bool) -> TsoSegment {
        seg.offload = Some(TlsOffloadDescriptor {
            flow_context_id: ctx,
            first_record_seq: seq,
            resync,
        });
        seg
    }

    #[test]
    fn tso_expands_and_stamps_ipids() {
        let mut nic = NicModel::new(DEFAULT_MTU, true);
        let (pkts, _) = nic.transmit(0, &segment(1, 0, 3, 40_000));
        assert!(pkts.len() > 20);
        for (i, p) in pkts.iter().enumerate() {
            assert_eq!(p.packet_offset(), Some(i as u16));
            assert!(!p.corrupted);
        }
        assert_eq!(nic.stats.packets as usize, pkts.len());
    }

    #[test]
    fn in_sequence_offload_is_clean() {
        let mut nic = NicModel::new(DEFAULT_MTU, true);
        // Fresh context, resync on first segment, continuation in sequence.
        let (p1, _) = nic.transmit(0, &with_offload(segment(1, 0, 2, 3000), 7, 0, true));
        let (p2, _) = nic.transmit(0, &with_offload(segment(1, 2, 2, 3000), 7, 2, false));
        assert!(p1.iter().chain(p2.iter()).all(|p| !p.corrupted));
        assert_eq!(nic.stats.out_of_sequence, 0);
        assert_eq!(nic.stats.contexts_allocated, 1);
        assert_eq!(nic.stats.resyncs, 1);
    }

    #[test]
    fn out_of_sequence_without_resync_corrupts() {
        // Paper Fig. 2: S3 after S1 without R3 produces a corrupted segment.
        let mut nic = NicModel::new(DEFAULT_MTU, true);
        nic.transmit(0, &with_offload(segment(1, 0, 1, 1000), 7, 0, true));
        // Skip ahead (a different message's seqno) without a resync.
        let (pkts, _) = nic.transmit(0, &with_offload(segment(2, 0, 1, 1000), 7, 1 << 16, false));
        assert!(pkts.iter().all(|p| p.corrupted));
        assert_eq!(nic.stats.out_of_sequence, 1);
    }

    #[test]
    fn resync_recovers_out_of_sequence() {
        // Fig. 2 "Out-resync": the resync descriptor retargets the counter.
        let mut nic = NicModel::new(DEFAULT_MTU, true);
        nic.transmit(0, &with_offload(segment(1, 0, 1, 1000), 7, 0, true));
        let (pkts, _) = nic.transmit(0, &with_offload(segment(2, 0, 1, 1000), 7, 1 << 16, true));
        assert!(pkts.iter().all(|p| !p.corrupted));
    }

    #[test]
    fn queues_have_independent_contexts() {
        // The same context id on different queues is a different piece of NIC
        // state (descriptors are only ordered within a queue, §3.2).
        let mut nic = NicModel::new(DEFAULT_MTU, true);
        nic.transmit(0, &with_offload(segment(1, 0, 1, 100), 7, 0, true));
        nic.transmit(1, &with_offload(segment(2, 0, 1, 100), 7, 99, true));
        assert_eq!(nic.context_count(), 2);
        assert_eq!(nic.stats.out_of_sequence, 0);
    }

    #[test]
    fn unprogrammed_context_without_resync_is_corrupted() {
        let mut nic = NicModel::new(DEFAULT_MTU, true);
        let (pkts, _) = nic.transmit(0, &with_offload(segment(1, 0, 1, 100), 3, 42, false));
        assert!(pkts.iter().all(|p| p.corrupted));
    }

    #[test]
    fn plain_segments_pass_through() {
        let mut nic = NicModel::new(DEFAULT_MTU, true);
        let (pkts, _) = nic.transmit(0, &segment(9, 0, 0, 512));
        assert_eq!(pkts.len(), 1);
        assert_eq!(nic.stats.offload_records, 0);
    }
}
