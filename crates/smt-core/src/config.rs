//! Protocol-engine configuration.

use serde::{Deserialize, Serialize};
use smt_wire::{DEFAULT_MTU, FRAMING_HEADER_LEN, MAX_TLS_RECORD, MAX_TSO_SEGMENT};

/// Where encryption happens for a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum CryptoMode {
    /// No encryption (the plain Homa baseline in the evaluation).
    Plaintext,
    /// Software AES-GCM performed by the host CPU (SMT-sw / kTLS-sw).
    #[default]
    Software,
    /// NIC autonomous offload: the stack emits plaintext records plus offload
    /// descriptors and the NIC encrypts on transmit (SMT-hw / kTLS-hw).
    HardwareOffload,
}

impl CryptoMode {
    /// True when the NIC performs the cryptography.
    pub fn is_offloaded(self) -> bool {
        matches!(self, CryptoMode::HardwareOffload)
    }

    /// True when any encryption is applied.
    pub fn is_encrypted(self) -> bool {
        !matches!(self, CryptoMode::Plaintext)
    }
}

/// Configuration of the SMT protocol engine for one endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SmtConfig {
    /// Network MTU in bytes.
    pub mtu: usize,
    /// Maximum TSO segment payload handed to the NIC.
    pub max_tso_segment: usize,
    /// Maximum plaintext bytes per TLS record (≤ 16 KB).
    pub max_record_payload: usize,
    /// Whether TSO is available (Fig. 11 evaluates the no-TSO fallback; without
    /// TSO each packet is sent as its own segment of at most one MTU).
    pub tso_enabled: bool,
    /// Whether the per-record framing header is emitted (§4.3 notes it could be
    /// removed; the ablation bench flips this).
    pub framing_header: bool,
    /// Where encryption happens.
    pub crypto_mode: CryptoMode,
    /// Length-concealment padding granularity in bytes (0 disables padding).
    pub padding_granularity: usize,
    /// Maximum number of NIC flow contexts per TX queue for this session
    /// (§4.4.2; the paper's implementation uses one per queue).
    pub flow_contexts_per_queue: usize,
    /// Number of NIC TX queues (one per sending core in the evaluation setup).
    pub nic_queues: usize,
    /// Baseline network round-trip time in nanoseconds, used to derive the
    /// sender retransmission timeout (the paper's testbed RTT is a few µs).
    pub base_rtt_ns: u64,
    /// Sender retransmission timeout as a multiple of `base_rtt_ns` (the
    /// HomaEndpoint unscheduled-prefix retransmit and the StreamEndpoint
    /// go-back-N timer both fire after [`SmtConfig::rto_ns`]).
    pub rto_rtt_multiple: u32,
}

impl Default for SmtConfig {
    fn default() -> Self {
        Self {
            mtu: DEFAULT_MTU,
            max_tso_segment: MAX_TSO_SEGMENT,
            max_record_payload: MAX_TLS_RECORD - FRAMING_HEADER_LEN - 64,
            tso_enabled: true,
            framing_header: true,
            crypto_mode: CryptoMode::Software,
            padding_granularity: 0,
            flow_contexts_per_queue: 1,
            nic_queues: 4,
            base_rtt_ns: 10_000,
            rto_rtt_multiple: 4,
        }
    }
}

impl SmtConfig {
    /// Configuration matching the paper's SMT-sw setup.
    pub fn software() -> Self {
        Self::default()
    }

    /// Configuration matching the paper's SMT-hw setup (NIC TLS offload).
    pub fn hardware_offload() -> Self {
        Self {
            crypto_mode: CryptoMode::HardwareOffload,
            ..Self::default()
        }
    }

    /// Configuration of the unencrypted Homa baseline.
    pub fn plaintext() -> Self {
        Self {
            crypto_mode: CryptoMode::Plaintext,
            ..Self::default()
        }
    }

    /// Disables TSO (Fig. 11 "SMT-HW-w/o-TSO" mode).
    pub fn without_tso(mut self) -> Self {
        self.tso_enabled = false;
        self
    }

    /// Sets the MTU (the §5.2 jumbo-frame experiment uses 9000).
    pub fn with_mtu(mut self, mtu: usize) -> Self {
        self.mtu = mtu;
        self
    }

    /// Sets the baseline RTT the retransmission timeout is derived from.
    pub fn with_base_rtt_ns(mut self, rtt_ns: u64) -> Self {
        self.base_rtt_ns = rtt_ns;
        self
    }

    /// The sender retransmission timeout: `base_rtt_ns * rto_rtt_multiple`,
    /// never zero.
    pub fn rto_ns(&self) -> u64 {
        (self.base_rtt_ns * u64::from(self.rto_rtt_multiple)).max(1)
    }

    /// Largest application payload a single record may carry under this
    /// configuration (accounts for the framing header when enabled).
    pub fn record_app_capacity(&self) -> usize {
        if self.framing_header {
            self.max_record_payload
        } else {
            self.max_record_payload + FRAMING_HEADER_LEN
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert_eq!(SmtConfig::software().crypto_mode, CryptoMode::Software);
        assert_eq!(
            SmtConfig::hardware_offload().crypto_mode,
            CryptoMode::HardwareOffload
        );
        assert_eq!(SmtConfig::plaintext().crypto_mode, CryptoMode::Plaintext);
        assert!(CryptoMode::HardwareOffload.is_offloaded());
        assert!(!CryptoMode::Plaintext.is_encrypted());
    }

    #[test]
    fn builders() {
        let c = SmtConfig::software().without_tso().with_mtu(9000);
        assert!(!c.tso_enabled);
        assert_eq!(c.mtu, 9000);
    }

    #[test]
    fn rto_is_an_rtt_multiple_and_never_zero() {
        let c = SmtConfig::default();
        assert_eq!(c.rto_ns(), c.base_rtt_ns * u64::from(c.rto_rtt_multiple));
        let z = SmtConfig {
            base_rtt_ns: 0,
            ..SmtConfig::default()
        };
        assert_eq!(z.rto_ns(), 1);
        assert_eq!(
            SmtConfig::default().with_base_rtt_ns(25_000).rto_ns(),
            100_000
        );
    }

    #[test]
    fn record_capacity_respects_framing() {
        let with = SmtConfig::default();
        let without = SmtConfig {
            framing_header: false,
            ..SmtConfig::default()
        };
        assert_eq!(
            without.record_app_capacity(),
            with.record_app_capacity() + FRAMING_HEADER_LEN
        );
        assert!(with.max_record_payload + FRAMING_HEADER_LEN <= MAX_TLS_RECORD);
    }
}
