//! Offline stand-in for the [`serde`](https://docs.rs/serde) crate.
//!
//! Instead of serde's visitor-based data model, [`Serialize`] converts a value
//! into a self-describing [`Value`] tree that `serde_json` renders. That is the
//! only serialization this workspace performs (`--json` experiment output), so
//! the simplified model keeps every `#[derive(Serialize, Deserialize)]` in the
//! tree compiling without the real crate. [`Deserialize`] is a marker trait —
//! nothing in the workspace deserializes.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (JSON-shaped).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// null
    Null,
    /// true / false
    Bool(bool),
    /// A number, stored pre-formatted to preserve integer width and float shape.
    Number(String),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An ordered map (field order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an [`Value::Object`] by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of a [`Value::Array`].
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The contents of a [`Value::String`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// A [`Value::Number`] parsed as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.parse().ok(),
            _ => None,
        }
    }
}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a serialized value.
    fn to_value(&self) -> Value;
}

/// Marker trait for deserializable types (derive-compatible; unused at runtime).
pub trait Deserialize {}

macro_rules! impl_serialize_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(self.to_string())
            }
        }
        impl Deserialize for $t {}
    )*};
}

impl_serialize_num!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(format_float(*self as f64))
    }
}
impl Deserialize for f32 {}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(format_float(*self))
    }
}
impl Deserialize for f64 {}

fn format_float(v: f64) -> String {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{v:.1}")
        } else {
            format!("{v}")
        }
    } else {
        // JSON has no NaN/Infinity; mirror serde_json's `null`.
        "null".to_string()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Deserialize for char {}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T, const N: usize> Deserialize for [T; N] {}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T> Deserialize for Option<T> {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T> Deserialize for Box<T> {}

macro_rules! impl_serialize_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t),+> Deserialize for ($($t,)+) {}
    )*};
}

impl_serialize_tuple! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        // Mirrors real serde's {secs, nanos} representation.
        Value::Object(vec![
            ("secs".to_string(), self.as_secs().to_value()),
            ("nanos".to_string(), self.subsec_nanos().to_value()),
        ])
    }
}
impl Deserialize for std::time::Duration {}

impl<K: ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}
impl<K, V> Deserialize for std::collections::BTreeMap<K, V> {}

impl<K: ToString, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}
impl<K, V> Deserialize for std::collections::HashMap<K, V> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives() {
        assert_eq!(42u64.to_value(), Value::Number("42".to_string()));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!((1.5f64).to_value(), Value::Number("1.5".to_string()));
        assert_eq!((2.0f64).to_value(), Value::Number("2.0".to_string()));
        assert_eq!("hi".to_value(), Value::String("hi".to_string()));
        assert_eq!(Option::<u8>::None.to_value(), Value::Null);
    }

    #[test]
    fn containers() {
        let v = vec![1u8, 2, 3];
        assert_eq!(
            v.to_value(),
            Value::Array(vec![
                Value::Number("1".into()),
                Value::Number("2".into()),
                Value::Number("3".into())
            ])
        );
        let t = (1u8, "x".to_string());
        assert_eq!(
            t.to_value(),
            Value::Array(vec![Value::Number("1".into()), Value::String("x".into())])
        );
    }
}
