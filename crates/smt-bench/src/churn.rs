//! The connection-churn scenario family: many-connection setup under storm.
//!
//! A single [`Listener`] terminates every connection of a stack on one
//! simulated host while waves of concurrent clients connect, send one
//! request, and disconnect — the many-connection regime the paper's
//! connection-management design targets (§4.5): handshakes must stay cheap
//! when *thousands* of them happen, not just one at a time.
//!
//! Each wave mixes the three setup modes round-robin, so every mode fights
//! the same incast contention on the listener's NIC:
//!
//! * `cold` — full certificate handshake (1-RTT, ECDSA on both ends).
//! * `resumed` — 0-RTT SMT-ticket resumption against the listener's shared
//!   [`ZeroRttAcceptor`]; tickets come from earlier cold connects' in-band
//!   mints.
//! * `derived` — path-secret derived keys ([`SharedPathSecrets`]): the
//!   first cold connect between the host pair minted a path secret, later
//!   connects HKDF-derive fresh per-connection keys with zero extra round
//!   trips *and* no per-connection ticket to carry.
//!
//! Per connection the harness records **setup latency**: virtual time from
//! the wave start to the listener delivering that connection's first
//! request.  Per `(stack, mode)` it reports the p50/p99 of that
//! distribution; per stack it reports the aggregate handshake rate in
//! virtual time.  The paper's claim, asserted by the binary: at storm scale
//! the derived mode's median setup is at or below ticket resumption —
//! deriving from a cached path secret never costs more than carrying a
//! ticket.
//!
//! Virtual time only advances with propagation and serialization, so the
//! distributions are deterministic per seed up to ECDSA signature-length
//! variation — the same tolerance the other wire benches absorb.

use std::collections::HashMap;

use smt_crypto::cert::CertificateAuthority;
use smt_crypto::handshake::{SmtTicket, SmtTicketIssuer};
use smt_sim::Nanos;
use smt_transport::{
    ConnectConfig, Endpoint, Event, Listener, ListenerFabric, SecureEndpoint, SharedPathSecrets,
    StackKind, ZeroRttAcceptor,
};

/// Application bytes of the one request each connection sends.
pub const REQUEST_BYTES: usize = 256;

/// The server name every churn connection dials.
const SERVER_NAME: &str = "churn.dc.local";

/// The three measured setup modes, in wave round-robin order.
const MODES: [&str; 3] = ["cold", "resumed", "derived"];

/// One `(stack, mode)` cell of the churn matrix.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ChurnRow {
    /// Stack label (paper legend).
    pub stack: String,
    /// `"cold"`, `"resumed"`, `"derived"`, or the per-stack `"all"` summary.
    pub mode: &'static str,
    /// Connections measured in this cell.
    pub connects: u64,
    /// Median setup latency: wave start → first request delivered.
    pub setup_p50_ns: Nanos,
    /// 99th-percentile setup latency.
    pub setup_p99_ns: Nanos,
    /// Completed handshakes per *virtual* second across the stack's whole
    /// run (same value on every row of a stack).
    pub handshakes_per_sec: f64,
    /// Path secrets evicted server-side plus listener-table evictions.
    pub state_evictions: u64,
}

/// Nearest-rank percentile of an ascending-sorted sample set.
fn percentile(sorted: &[Nanos], p: f64) -> Nanos {
    assert!(!sorted.is_empty(), "no samples");
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Runs `waves` waves of `wave_size` mixed-mode connects against one
/// listener and returns the matrix rows for `stack`.
fn run_stack(stack: StackKind, waves: usize, wave_size: usize) -> Vec<ChurnRow> {
    let ca = CertificateAuthority::new("churn-ca");
    let identity = ca.issue_identity(SERVER_NAME);
    let acceptor = ZeroRttAcceptor::new(SmtTicketIssuer::new(identity.clone(), 3600), 1 << 16);
    // The client host's path-secret cache holds the one secret for this
    // host pair; the server side is sized for the whole storm (every full
    // handshake mints an entry) so the hot secret is never evicted under it.
    let client_secrets = SharedPathSecrets::new(64, 1 << 16);
    let server_secrets = SharedPathSecrets::new(1 << 13, 1 << 16);
    let mut listener = Listener::new(
        Endpoint::builder().stack(stack),
        identity,
        ca.verifying_key(),
        wave_size * 2,
    )
    .zero_rtt(acceptor)
    .ticket_time(100)
    .path_secrets(server_secrets.clone());
    let mut fabric = ListenerFabric::reliable();

    let mut tickets: Vec<SmtTicket> = Vec::new();
    let mut next_ticket = 0usize;
    let mut next_cid = 1u32;
    let mut samples: HashMap<&'static str, Vec<Nanos>> =
        MODES.iter().map(|m| (*m, Vec::new())).collect();

    // Mint wave: one cold connect carrying the client's path-secret map
    // mints the pair's path secret and the first resumption ticket.
    run_wave(
        stack,
        &ca,
        &mut listener,
        &mut fabric,
        &mut next_cid,
        &[("mint", None)],
        &client_secrets,
        &mut tickets,
        &mut samples,
    );
    assert_eq!(client_secrets.len(), 1, "mint wave stored the path secret");
    assert!(!tickets.is_empty(), "mint wave delivered a ticket");

    for _ in 0..waves {
        let plan: Vec<(&'static str, Option<SmtTicket>)> = (0..wave_size)
            .map(|i| {
                let mode = MODES[i % MODES.len()];
                let ticket = (mode == "resumed").then(|| {
                    let t = tickets[next_ticket % tickets.len()].clone();
                    next_ticket += 1;
                    t
                });
                (mode, ticket)
            })
            .collect();
        run_wave(
            stack,
            &ca,
            &mut listener,
            &mut fabric,
            &mut next_cid,
            &plan,
            &client_secrets,
            &mut tickets,
            &mut samples,
        );
    }

    let evictions = server_secrets.evictions() + listener.state_evictions();
    let virtual_secs = fabric.now() as f64 / 1e9;
    let measured: u64 = MODES.iter().map(|m| samples[m].len() as u64).sum();
    let hps = measured as f64 / virtual_secs;

    let mut rows = Vec::new();
    let mut all: Vec<Nanos> = Vec::new();
    for mode in MODES {
        let mut s = samples.remove(mode).unwrap();
        s.sort_unstable();
        rows.push(ChurnRow {
            stack: stack.label().to_string(),
            mode,
            connects: s.len() as u64,
            setup_p50_ns: percentile(&s, 0.50),
            setup_p99_ns: percentile(&s, 0.99),
            handshakes_per_sec: hps,
            state_evictions: evictions,
        });
        all.extend_from_slice(&s);
    }
    all.sort_unstable();
    rows.push(ChurnRow {
        stack: stack.label().to_string(),
        mode: "all",
        connects: all.len() as u64,
        setup_p50_ns: percentile(&all, 0.50),
        setup_p99_ns: percentile(&all, 0.99),
        handshakes_per_sec: hps,
        state_evictions: evictions,
    });
    rows
}

/// Launches one wave of concurrent connects per `plan` (`(mode, ticket)` per
/// client), drives the storm to quiescence, records per-connection setup
/// latencies into `samples` (the `"mint"` mode is not measured), harvests
/// freshly minted tickets, and closes the wave's connections.
#[allow(clippy::too_many_arguments)]
fn run_wave(
    stack: StackKind,
    ca: &CertificateAuthority,
    listener: &mut Listener,
    fabric: &mut ListenerFabric,
    next_cid: &mut u32,
    plan: &[(&'static str, Option<SmtTicket>)],
    client_secrets: &SharedPathSecrets,
    tickets: &mut Vec<SmtTicket>,
    samples: &mut HashMap<&'static str, Vec<Nanos>>,
) {
    let wave_start = fabric.now();
    let mut modes: HashMap<u32, &'static str> = HashMap::new();
    let mut clients: Vec<(u32, Endpoint)> = Vec::with_capacity(plan.len());
    for (mode, ticket) in plan {
        let cid = *next_cid;
        *next_cid += 1;
        let mut config = ConnectConfig::new(ca.verifying_key(), SERVER_NAME);
        match *mode {
            "resumed" => {
                let t = ticket.clone().expect("resumed connect needs a ticket");
                let at = t.issued_at;
                config = config.resume(t, at);
            }
            "derived" | "mint" => config = config.path_secrets(client_secrets.clone()),
            _ => {}
        }
        fabric.attach(cid);
        let mut client = Endpoint::builder()
            .stack(stack)
            .connection_id(cid)
            .path(smt_core::segment::PathInfo::pair(4000, 5201).0)
            .connect(config)
            .unwrap_or_else(|e| panic!("{}/{mode}: connect: {e}", stack.label()));
        client
            .send(&[0x42u8; REQUEST_BYTES], wave_start)
            .expect("queue the request");
        modes.insert(cid, mode);
        clients.push((cid, client));
    }

    // One fabric event per step so `fabric.now()` at a delivery event is
    // that connection's exact setup-completion time.
    let mut delivered = 0usize;
    loop {
        let processed = fabric.drive(&mut clients, listener, 1);
        while let Some((cid, ev)) = listener.poll_event() {
            match ev {
                Event::MessageDelivered { .. } => {
                    let mode = modes[&cid];
                    if mode != "mint" {
                        samples
                            .get_mut(mode)
                            .unwrap()
                            .push(fabric.now() - wave_start);
                    }
                    delivered += 1;
                }
                Event::Error(e) => panic!("{} conn {cid}: listener error: {e}", stack.label()),
                _ => {}
            }
        }
        if processed == 0 {
            break;
        }
    }
    assert_eq!(
        delivered,
        plan.len(),
        "{}: wave lost requests",
        stack.label()
    );

    for (cid, client) in &mut clients {
        let mode = modes[cid];
        let mut completed = false;
        while let Some(ev) = client.poll_event() {
            match ev {
                Event::HandshakeComplete { resumed, .. } => {
                    completed = true;
                    assert_eq!(
                        resumed,
                        mode == "resumed" || mode == "derived",
                        "{} conn {cid} ({mode}): wrong resumption flag",
                        stack.label()
                    );
                }
                Event::TicketReceived(t) if tickets.len() < 1 << 12 => tickets.push(*t),
                Event::Error(e) => panic!("{} conn {cid} ({mode}): {e}", stack.label()),
                _ => {}
            }
        }
        assert!(
            completed,
            "{} conn {cid} ({mode}): no handshake completion",
            stack.label()
        );
        listener.close(*cid);
    }
}

/// Runs the churn matrix.  Full mode storms every encrypted stack with
/// 10k+ total connects; `smoke` restricts it to the CI subset (SMT-sw and
/// kTLS-sw, small waves) under the same benchmark names.
pub fn churn_matrix(smoke: bool) -> Vec<ChurnRow> {
    let stacks: Vec<StackKind> = if smoke {
        vec![StackKind::SmtSw, StackKind::KtlsSw]
    } else {
        StackKind::all()
            .into_iter()
            .filter(|s| s.is_encrypted())
            .collect()
    };
    let (waves, wave_size) = if smoke { (3, 24) } else { (35, 50) };
    let mut rows = Vec::new();
    for stack in stacks {
        rows.extend(run_stack(stack, waves, wave_size));
    }
    rows
}

/// Asserts the storm-scale acceptance criterion: per stack, the derived
/// mode's median setup is at or below ticket resumption's — a cached path
/// secret never costs more than carrying a ticket.
pub fn assert_derived_at_or_below_resumed(rows: &[ChurnRow]) {
    let find = |stack: &str, mode: &str| {
        rows.iter()
            .find(|r| r.stack == stack && r.mode == mode)
            .unwrap_or_else(|| panic!("missing {mode} row for {stack}"))
    };
    let stacks: Vec<&str> = rows
        .iter()
        .filter(|r| r.mode == "all")
        .map(|r| r.stack.as_str())
        .collect();
    for stack in stacks {
        let derived = find(stack, "derived");
        let resumed = find(stack, "resumed");
        assert!(
            derived.setup_p50_ns <= resumed.setup_p50_ns,
            "{stack}: derived setup p50 ({} ns) above resumed p50 ({} ns)",
            derived.setup_p50_ns,
            resumed.setup_p50_ns,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_storm_measures_all_modes_and_derived_wins() {
        let rows = run_stack(StackKind::SmtSw, 2, 12);
        // cold / resumed / derived / all.
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert!(row.connects > 0, "{}/{}: empty cell", row.stack, row.mode);
            assert!(row.setup_p50_ns > 0);
            assert!(row.setup_p99_ns >= row.setup_p50_ns);
            assert!(row.handshakes_per_sec > 0.0);
        }
        let all = rows.iter().find(|r| r.mode == "all").unwrap();
        assert_eq!(all.connects, 24);
        assert_derived_at_or_below_resumed(&rows);
    }

    #[test]
    fn storm_is_deterministic_up_to_signature_length() {
        let a = run_stack(StackKind::SmtSw, 1, 9);
        let b = run_stack(StackKind::SmtSw, 1, 9);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.connects, y.connects);
            // DER signature lengths shift flight serialization by a few ns
            // per hop; a storm compounds that across a wave, still far
            // inside the CI gate's tolerance.
            assert!(
                x.setup_p50_ns.abs_diff(y.setup_p50_ns) <= 2048,
                "{}/{}: {} vs {}",
                x.stack,
                x.mode,
                x.setup_p50_ns,
                y.setup_p50_ns
            );
        }
    }
}
