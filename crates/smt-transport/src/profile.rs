//! Stack profiles: per-RPC cost derivation for each evaluated transport.
//!
//! A [`StackProfile`] turns (stack, message size) into the wire/packet/record
//! accounting and the per-stage CPU costs that the pipeline simulator consumes.
//! The mapping captures the structural differences the paper's evaluation turns
//! on:
//!
//! * **Where crypto runs.**  Software stacks (kTLS-sw, SMT-sw, TCPLS, user-space
//!   TLS) pay AES-GCM on the sending application core; offload stacks (kTLS-hw,
//!   SMT-hw) pay only per-record descriptor costs on the transmit path.  Nobody
//!   offloads receive-side crypto (§5 "we don't use receive-side offload"), so
//!   every encrypted stack pays software decryption at the receiver.
//! * **Message vs stream delivery.**  TCP-based stacks overlap packet reception
//!   with delivery of the bytestream to the application, while Homa/SMT deliver
//!   a message only after it is complete (§5.1) — at 64 KB this erodes most of
//!   Homa's latency advantage.
//! * **Core steering.**  TCP-based stacks pin a connection's stack work to one
//!   softirq core (5-tuple affinity, HoLB at a core); Homa/SMT steer per message.
//! * **The Homa pacer.**  Message-based stacks pay a per-message cost on a
//!   single pacer thread per host, which is what caps small-RPC throughput at
//!   ≈0.7 M RPC/s in Homa/Linux (§5.2).
//! * **TSO.**  All stacks use TSO by default; disabling it (Fig. 11) makes the
//!   transmit path pay per-packet instead of per-segment costs.

use crate::stack::StackKind;
use serde::{Deserialize, Serialize};
use smt_sim::cost::CostModel;
use smt_sim::pipeline::{PipelineConfig, RpcCosts, SoftirqSteering};
use smt_sim::time::Nanos;
use smt_wire::{
    FRAMING_HEADER_LEN, IPV4_HEADER_LEN, MAX_TLS_RECORD, MAX_TSO_SEGMENT, RECORD_EXPANSION,
    SMT_OVERLAY_HEADER_LEN,
};

/// TCP per-packet header bytes (IP + TCP with typical options).
const TCP_HEADERS: usize = IPV4_HEADER_LEN + 32;
/// SMT/Homa per-packet header bytes (IP + overlay TCP header + option area).
const SMT_HEADERS: usize = IPV4_HEADER_LEN + SMT_OVERLAY_HEADER_LEN;
/// Application payload per kTLS record.
const KTLS_RECORD_PAYLOAD: usize = MAX_TLS_RECORD - 256;
/// Application payload per SMT record (matches `SmtConfig::default`).
const SMT_RECORD_PAYLOAD: usize = MAX_TLS_RECORD - FRAMING_HEADER_LEN - 64;
/// Packets aggregated per GRO batch on the TCP receive path (Homa/SMT cannot
/// use GRO because they carry a non-TCP protocol number, §7).
const GRO_BATCH_PACKETS: usize = 8;
/// Application payload per TCPLS record (TCPLS frames streams in 4 KB records).
const TCPLS_RECORD_PAYLOAD: usize = 4096;
/// Cost of generating/processing TCP acknowledgements per GRO batch, charged to
/// the data sender (ACK receive) and data receiver (ACK transmit).
const TCP_ACK_TX_NS: u64 = 200;
/// See [`TCP_ACK_TX_NS`].
const TCP_ACK_RX_NS: u64 = 400;

/// One RPC's workload parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RpcWorkload {
    /// Request size in bytes.
    pub request_bytes: usize,
    /// Response size in bytes.
    pub response_bytes: usize,
    /// Server-side application compute per request (0 for the echo server,
    /// request parsing + store access for the KV store).
    pub server_compute_ns: Nanos,
    /// Server-side fixed latency that does not occupy a CPU (e.g. NVMe read).
    pub server_fixed_latency_ns: Nanos,
}

impl RpcWorkload {
    /// A symmetric echo RPC of `bytes` in each direction (Figs. 6, 7, 10, 11).
    pub fn echo(bytes: usize) -> Self {
        Self {
            request_bytes: bytes,
            response_bytes: bytes,
            server_compute_ns: 0,
            server_fixed_latency_ns: 0,
        }
    }
}

/// Wire accounting for a message of a given size on a given stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireCounts {
    /// TLS records (0 for unencrypted stacks).
    pub records: usize,
    /// TSO segments handed to the NIC.
    pub segments: usize,
    /// MTU-sized packets on the wire.
    pub packets: usize,
    /// Total bytes on the wire including all headers.
    pub wire_bytes: usize,
}

/// Per-direction stage costs (internal helper).
#[derive(Debug, Clone, Copy, Default)]
struct DirCosts {
    app_send_ns: Nanos,
    pacer_tx_ns: Nanos,
    tx_softirq_ns: Nanos,
    wire_bytes: usize,
    rx_softirq_ns: Nanos,
    pacer_rx_ns: Nanos,
    app_recv_ns: Nanos,
}

/// A per-stack cost/accounting profile.
#[derive(Debug, Clone, Copy)]
pub struct StackProfile {
    /// Which stack this profile models.
    pub stack: StackKind,
    /// The host cost model.
    pub cost: CostModel,
    /// Network MTU.
    pub mtu: usize,
    /// Whether TSO is enabled (Fig. 11 ablation).
    pub tso: bool,
}

impl StackProfile {
    /// Creates a profile with the calibrated cost model and default MTU.
    pub fn new(stack: StackKind) -> Self {
        Self {
            stack,
            cost: CostModel::calibrated(),
            mtu: smt_wire::DEFAULT_MTU,
            tso: true,
        }
    }

    /// Overrides the MTU (§5.2 jumbo-frame experiment).
    pub fn with_mtu(mut self, mtu: usize) -> Self {
        self.mtu = mtu;
        self
    }

    /// Disables TSO (Fig. 11).
    pub fn without_tso(mut self) -> Self {
        self.tso = false;
        self
    }

    /// Overrides the cost model (sensitivity sweeps).
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// The softirq steering policy for this stack.
    pub fn steering(&self) -> SoftirqSteering {
        if self.stack.is_message_based() {
            SoftirqSteering::PerMessage
        } else {
            SoftirqSteering::PerConnection
        }
    }

    /// Wire accounting for a message of `size` application bytes.
    pub fn counts(&self, size: usize) -> WireCounts {
        let size = size.max(1);
        let message_based = self.stack.is_message_based();
        let encrypted = self.stack.is_encrypted();
        let per_packet_payload = if message_based {
            self.mtu - SMT_HEADERS
        } else {
            self.mtu - TCP_HEADERS
        };
        let headers = if message_based {
            SMT_HEADERS
        } else {
            TCP_HEADERS
        };

        let (records, payload_bytes) = if !encrypted {
            (0, size)
        } else if message_based {
            let records = size.div_ceil(SMT_RECORD_PAYLOAD).max(1);
            (
                records,
                size + records * (RECORD_EXPANSION + 1 + FRAMING_HEADER_LEN),
            )
        } else if self.stack == StackKind::Tcpls {
            // TCPLS multiplexes streams over 4 KB TLS records.
            let records = size.div_ceil(TCPLS_RECORD_PAYLOAD).max(1);
            (
                records,
                size + records * (RECORD_EXPANSION + 1 + FRAMING_HEADER_LEN),
            )
        } else {
            let records = size.div_ceil(KTLS_RECORD_PAYLOAD).max(1);
            (records, size + records * (RECORD_EXPANSION + 1))
        };

        let packets = payload_bytes.div_ceil(per_packet_payload).max(1);
        let segments = if self.tso {
            payload_bytes.div_ceil(MAX_TSO_SEGMENT).max(1)
        } else {
            packets
        };
        WireCounts {
            records,
            segments,
            packets,
            wire_bytes: payload_bytes + packets * headers,
        }
    }

    fn direction(&self, size: usize) -> DirCosts {
        let m = &self.cost;
        let c = self.counts(size);
        let stack = self.stack;
        let message_based = stack.is_message_based();
        let encrypted = stack.is_encrypted();
        let sw_tx_crypto = encrypted && !stack.offloads_tx_crypto();
        let userspace_tls = matches!(stack, StackKind::UserTls | StackKind::Tcpls);
        let records = c.records as Nanos;

        let mut app_send;
        let mut pacer_tx = 0;
        let mut pacer_rx = 0;
        let mut tx_softirq = 0;
        let mut rx_softirq;
        let mut app_recv = m.app_wakeup_ns + m.copy_ns(size);

        if message_based {
            // --- Homa / SMT -----------------------------------------------------
            // Send: syscall + copy (+ SMT record bookkeeping and most of the
            // software crypto) in the application's syscall context.
            app_send = m.syscall_ns + m.copy_ns(size);
            if encrypted {
                app_send += m.smt_record_ns * records;
                if sw_tx_crypto {
                    let crypto = m.crypto_sw_ns(size, c.records);
                    let pacer_share =
                        (crypto as f64 * m.smt_pacer_crypto_fraction).round() as Nanos;
                    app_send += crypto - pacer_share;
                    pacer_tx += pacer_share;
                }
            }
            // All messages of the host pair share one flow 5-tuple, so the
            // per-packet stack work funnels through the single stack (softirq /
            // pacer) thread — the ~0.7 M RPC/s ceiling of §5.2.
            pacer_tx +=
                m.tx_stack_ns(c.segments, c.packets, self.tso) + m.homa_pacer_per_message_ns;
            if stack.offloads_tx_crypto() {
                pacer_tx += m.offload_tx_ns(c.records, 1, 0);
            }
            // Per-packet receive demux on the stack thread is cheap (no in-order
            // queueing, no ACK generation): roughly half the TCP per-packet cost.
            pacer_rx += (m.per_packet_rx_ns / 2) * c.packets as Nanos + m.homa_pacer_per_message_ns;
            // Message-level receive work (SRPT dispatch, reassembly bookkeeping)
            // is spread across the other cores.
            rx_softirq = m.per_message_rx_ns;
            // Receive-side crypto is always software and runs where the data is
            // delivered to the application.
            if encrypted {
                app_recv += m.crypto_sw_ns(size, c.records) + m.smt_record_ns * records;
            }
        } else {
            // --- TCP-based stacks -------------------------------------------------
            app_send = m.syscall_ns + m.copy_ns(size);
            if userspace_tls {
                // User-space TLS / TCPLS: crypto, record handling and an extra
                // copy all happen in the application before the plain-TCP socket.
                app_send += m.copy_ns(size)
                    + m.crypto_sw_ns(size, c.records)
                    + 2 * m.crypto_sw_per_record_ns * records;
                if stack == StackKind::Tcpls {
                    app_send += m.crypto_sw_per_record_ns * records + 1500;
                }
                app_recv += m.copy_ns(size)
                    + m.crypto_sw_ns(size, c.records)
                    + m.crypto_sw_per_record_ns * records;
            }

            // Everything under the socket lock serializes on the connection's
            // core: stack traversal, TCP bookkeeping, and (for kTLS) the record
            // layer plus software crypto.  TCP benefits from GRO on receive and
            // TSO on transmit, so its per-packet costs are paid per aggregate;
            // Homa/SMT cannot use GRO (non-TCP protocol number) and pay per
            // packet on their single stack thread instead.
            let gro_batches = c.packets.div_ceil(GRO_BATCH_PACKETS).max(1) as Nanos;
            let tx_units = if self.tso {
                c.segments as Nanos
            } else {
                c.packets as Nanos
            };
            tx_softirq += m.tx_stack_ns(c.segments, c.packets, self.tso)
                + m.tcp_per_packet_extra_ns * tx_units
                + TCP_ACK_RX_NS * gro_batches;
            rx_softirq = m.per_message_rx_ns
                + (m.per_packet_rx_ns + m.tcp_per_packet_extra_ns) * gro_batches
                + TCP_ACK_TX_NS * gro_batches;
            if encrypted && !userspace_tls {
                // kTLS: record-layer cost on both paths; AES only where software.
                tx_softirq += m.ktls_record_ns * records;
                rx_softirq += m.ktls_record_ns * records + m.crypto_sw_ns(size, c.records);
                if sw_tx_crypto {
                    tx_softirq += m.crypto_sw_ns(size, c.records);
                } else {
                    tx_softirq += m.offload_tx_ns(c.records, 1, 0);
                }
            }

            // Stream transports overlap reception with delivery: the copy of
            // earlier bytes proceeds while later packets are still arriving
            // (§5.1 explains why Homa's margin shrinks at 64 KB).  The first
            // GRO batch cannot be overlapped (nothing has been delivered yet).
            if c.packets > 1 {
                let batches = c.packets.div_ceil(GRO_BATCH_PACKETS).max(1) as u64;
                let overlappable = m.serialization_ns(c.wire_bytes) * (batches - 1) / batches;
                let overlap = overlappable.min(app_recv.saturating_sub(m.app_wakeup_ns));
                app_recv -= overlap;
            }
        }

        DirCosts {
            app_send_ns: app_send,
            pacer_tx_ns: pacer_tx,
            tx_softirq_ns: tx_softirq,
            wire_bytes: c.wire_bytes,
            rx_softirq_ns: rx_softirq,
            pacer_rx_ns: pacer_rx,
            app_recv_ns: app_recv,
        }
    }

    /// Full per-RPC stage costs for a request/response workload.
    pub fn rpc_costs(&self, workload: &RpcWorkload) -> RpcCosts {
        let req = self.direction(workload.request_bytes);
        let resp = self.direction(workload.response_bytes);
        let m = &self.cost;
        RpcCosts {
            client_app_send_ns: req.app_send_ns,
            client_pacer_tx_ns: req.pacer_tx_ns,
            client_tx_softirq_ns: req.tx_softirq_ns,
            request_wire_bytes: req.wire_bytes,
            wire_fixed_ns: 2 * m.nic_latency_ns + m.propagation_ns,
            server_rx_softirq_ns: req.rx_softirq_ns,
            server_pacer_rx_ns: req.pacer_rx_ns,
            server_app_ns: req.app_recv_ns + workload.server_compute_ns + resp.app_send_ns,
            server_app_fixed_ns: workload.server_fixed_latency_ns,
            server_pacer_tx_ns: resp.pacer_tx_ns,
            server_tx_softirq_ns: resp.tx_softirq_ns,
            response_wire_bytes: resp.wire_bytes,
            client_rx_softirq_ns: resp.rx_softirq_ns,
            client_pacer_rx_ns: resp.pacer_rx_ns,
            client_app_recv_ns: resp.app_recv_ns,
        }
    }

    /// The paper's throughput-experiment pipeline configuration (§5.2: 12
    /// application threads and 4 stack/softirq threads per host).
    pub fn pipeline_config(&self, concurrency: usize) -> PipelineConfig {
        PipelineConfig {
            client_app_threads: 12,
            server_app_threads: 12,
            client_softirq_cores: 4,
            server_softirq_cores: 4,
            concurrency,
            steering: self.steering(),
            link_gbps: self.cost.link_gbps,
            duration: 20 * smt_sim::time::MILLISECOND,
            warmup: 2 * smt_sim::time::MILLISECOND,
        }
    }

    /// The unloaded RTT (single outstanding RPC) in microseconds, for Figs. 6,
    /// 10 and 11.
    pub fn unloaded_rtt_us(&self, bytes: usize) -> f64 {
        let costs = self.rpc_costs(&RpcWorkload::echo(bytes));
        let mut config = self.pipeline_config(1);
        config.duration = 5 * smt_sim::time::MILLISECOND;
        config.warmup = smt_sim::time::MILLISECOND / 2;
        smt_sim::RpcPipelineSim::new(config, costs)
            .run()
            .latency
            .mean_us
    }

    /// Throughput (RPCs/s) at the given concurrency for a symmetric echo
    /// workload (Fig. 7).
    pub fn throughput_rps(&self, bytes: usize, concurrency: usize) -> f64 {
        let costs = self.rpc_costs(&RpcWorkload::echo(bytes));
        smt_sim::RpcPipelineSim::new(self.pipeline_config(concurrency), costs)
            .run()
            .throughput_rps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rtt(stack: StackKind, bytes: usize) -> f64 {
        StackProfile::new(stack).unloaded_rtt_us(bytes)
    }

    #[test]
    fn accounting_roughly_matches_real_segmenter() {
        // Cross-check the analytic accounting against the real SMT engine.
        use smt_core::segment::{PathInfo, SmtSegmenter};
        use smt_crypto::key_schedule::Secret;
        use smt_crypto::record::RecordProtector;
        let profile = StackProfile::new(StackKind::SmtSw);
        let segmenter = SmtSegmenter::new(smt_core::SmtConfig::software(), Default::default());
        let cipher = RecordProtector::from_secret(
            smt_crypto::CipherSuite::Aes128GcmSha256,
            &Secret::from_slice(&[1u8; 32]).unwrap(),
        )
        .unwrap();
        for size in [64usize, 1024, 8192, 65536] {
            let counts = profile.counts(size);
            let data = vec![0u8; size];
            let real = segmenter
                .segment_message(
                    PathInfo::loopback(1, 2),
                    0,
                    &data,
                    0,
                    Some(&cipher),
                    None,
                    4 << 20,
                )
                .unwrap();
            assert_eq!(counts.records, real.record_count, "records at {size}");
            assert_eq!(counts.segments, real.segments.len(), "segments at {size}");
            // Wire payload bytes agree within a few bytes per record (padding of
            // the analytic model).
            let diff =
                counts.wire_bytes as i64 - (real.wire_len + counts.packets * SMT_HEADERS) as i64;
            assert!(diff.abs() < 64, "wire bytes at {size}: {diff}");
        }
    }

    #[test]
    fn fig6_orderings_hold() {
        for bytes in [64usize, 1024, 4096, 16384] {
            let tcp = rtt(StackKind::Tcp, bytes);
            let homa = rtt(StackKind::Homa, bytes);
            let ktls_sw = rtt(StackKind::KtlsSw, bytes);
            let ktls_hw = rtt(StackKind::KtlsHw, bytes);
            let smt_sw = rtt(StackKind::SmtSw, bytes);
            let smt_hw = rtt(StackKind::SmtHw, bytes);
            // Homa is faster than TCP; encryption costs something on both.
            assert!(homa < tcp, "homa {homa} vs tcp {tcp} at {bytes}");
            assert!(ktls_sw > tcp, "ktls {ktls_sw} vs tcp {tcp} at {bytes}");
            assert!(smt_sw > homa);
            // SMT beats kTLS, with and without offload (13–32 % in the paper).
            assert!(
                smt_sw < ktls_sw,
                "smt {smt_sw} vs ktls {ktls_sw} at {bytes}"
            );
            assert!(smt_hw < ktls_hw);
            // Offload never hurts.
            assert!(smt_hw <= smt_sw + 0.01);
            assert!(ktls_hw <= ktls_sw + 0.01);
        }
    }

    #[test]
    fn fig6_smt_advantage_within_paper_band() {
        // Paper §5.1: SMT outperforms kTLS by 13–32 % with offload and
        // 10–35 % without, over 64 B – 64 KB RPCs.
        for bytes in [64usize, 512, 1024, 4096, 16384] {
            let ktls_sw = rtt(StackKind::KtlsSw, bytes);
            let smt_sw = rtt(StackKind::SmtSw, bytes);
            let gain = (ktls_sw - smt_sw) / ktls_sw;
            assert!(
                gain > 0.05 && gain < 0.45,
                "sw gain {gain:.2} at {bytes} bytes"
            );
        }
    }

    #[test]
    fn fig6_margin_smallest_at_64kb() {
        // §5.1: the Homa/SMT margin over TCP/kTLS is smallest for 64 KB RPCs
        // because the receiver waits for the whole message before delivery.
        let gain_small = {
            let k = rtt(StackKind::KtlsSw, 1024);
            let s = rtt(StackKind::SmtSw, 1024);
            (k - s) / k
        };
        let gain_large = {
            let k = rtt(StackKind::KtlsSw, 65536);
            let s = rtt(StackKind::SmtSw, 65536);
            (k - s) / k
        };
        assert!(
            gain_large < gain_small,
            "gain at 64KB {gain_large:.2} should be below gain at 1KB {gain_small:.2}"
        );
    }

    #[test]
    fn fig7_small_rpc_throughput_shape() {
        // 64 B RPCs at 100 concurrent: SMT beats kTLS (16–40 % in the paper);
        // Homa/SMT are capped by the pacer around 0.6–0.8 M RPC/s.
        let smt = StackProfile::new(StackKind::SmtSw).throughput_rps(64, 100);
        let ktls = StackProfile::new(StackKind::KtlsSw).throughput_rps(64, 100);
        let homa = StackProfile::new(StackKind::Homa).throughput_rps(64, 100);
        assert!(smt > ktls * 1.10, "smt {smt} vs ktls {ktls}");
        assert!(homa > 500_000.0 && homa < 900_000.0, "homa {homa}");
    }

    #[test]
    fn fig7_large_rpc_throughput_flips() {
        // 8 KB RPCs: kTLS/TCP outperform SMT/Homa (by 3–15 % in the paper)
        // because Homa is unoptimised for large messages.
        let smt = StackProfile::new(StackKind::SmtSw).throughput_rps(8192, 100);
        let ktls = StackProfile::new(StackKind::KtlsSw).throughput_rps(8192, 100);
        assert!(
            ktls > smt,
            "ktls {ktls} should exceed smt {smt} for 8 KB RPCs"
        );
        let ratio = (ktls - smt) / ktls;
        assert!(ratio < 0.35, "gap {ratio:.2} too large");
    }

    #[test]
    fn offload_benefit_larger_under_load_than_unloaded() {
        // §5.1/§5.2: hardware offload helps little for unloaded RTT but more
        // under concurrency (CPU cycles freed).
        let p_sw = StackProfile::new(StackKind::SmtSw);
        let p_hw = StackProfile::new(StackKind::SmtHw);
        let rtt_gain =
            (p_sw.unloaded_rtt_us(1024) - p_hw.unloaded_rtt_us(1024)) / p_sw.unloaded_rtt_us(1024);
        let thr_gain = (p_hw.throughput_rps(1024, 150) - p_sw.throughput_rps(1024, 150))
            / p_sw.throughput_rps(1024, 150);
        assert!(rtt_gain < 0.10, "unloaded RTT gain {rtt_gain:.2}");
        assert!(thr_gain >= 0.0, "throughput gain {thr_gain:.2}");
    }

    #[test]
    fn fig10_tcpls_slower_than_smt() {
        for bytes in [64usize, 1024, 4096, 16384] {
            let tcpls = rtt(StackKind::Tcpls, bytes);
            let smt_sw = rtt(StackKind::SmtSw, bytes);
            let smt_hw = rtt(StackKind::SmtHw, bytes);
            assert!(
                smt_sw < tcpls,
                "smt-sw {smt_sw} vs tcpls {tcpls} at {bytes}"
            );
            assert!(smt_hw < tcpls);
        }
    }

    #[test]
    fn fig11_tso_helps() {
        for bytes in [512usize, 2048, 8192] {
            let with = StackProfile::new(StackKind::SmtHw).unloaded_rtt_us(bytes);
            let without = StackProfile::new(StackKind::SmtHw)
                .without_tso()
                .unloaded_rtt_us(bytes);
            assert!(without >= with, "no-TSO {without} vs TSO {with} at {bytes}");
        }
    }

    #[test]
    fn jumbo_mtu_improves_throughput() {
        // §5.2: with a 9 KB MTU, 8 KB RPC throughput improves by 13–31 %.
        let std = StackProfile::new(StackKind::SmtSw).throughput_rps(8192, 100);
        let jumbo = StackProfile::new(StackKind::SmtSw)
            .with_mtu(smt_wire::JUMBO_MTU)
            .throughput_rps(8192, 100);
        let gain = (jumbo - std) / std;
        assert!(gain > 0.05, "jumbo gain {gain:.2}");
    }

    #[test]
    fn counts_monotone_in_size() {
        let p = StackProfile::new(StackKind::SmtSw);
        let small = p.counts(64);
        let large = p.counts(65536);
        assert!(large.packets > small.packets);
        assert!(large.records >= small.records);
        assert!(large.wire_bytes > small.wire_bytes);
        assert_eq!(small.records, 1);
    }

    #[test]
    fn analytic_wire_accounting_matches_functional_endpoints() {
        // The profiles feed the pipeline simulator from closed-form wire
        // accounting; the endpoint API runs the same stacks functionally.
        // The two must agree on payload wire bytes (records + tags + framing,
        // excluding per-packet headers) to within a few percent, or the
        // simulated figures drift away from what the datapath actually emits.
        use crate::endpoint::{drive_pair, Endpoint, PairFabric, SecureEndpoint};
        use smt_crypto::cert::CertificateAuthority;
        use smt_crypto::handshake::{establish, ClientConfig, ServerConfig};

        let ca = CertificateAuthority::new("profile-ca");
        let id = ca.issue_identity("server");
        for stack in [
            StackKind::SmtSw,
            StackKind::KtlsSw,
            StackKind::Tcpls,
            StackKind::Tcp,
            StackKind::Homa,
        ] {
            for size in [1024usize, 16_000, 120_000] {
                let profile = StackProfile::new(stack);
                let c = profile.counts(size);
                let headers = if stack.is_message_based() {
                    SMT_HEADERS
                } else {
                    TCP_HEADERS
                };
                let analytic_payload = (c.wire_bytes - c.packets * headers) as f64;

                let (ck, sk) = establish(
                    ClientConfig::new(ca.verifying_key(), "server"),
                    ServerConfig::new(id.clone(), ca.verifying_key()),
                )
                .unwrap();
                let (mut a, mut b) = Endpoint::builder()
                    .stack(stack)
                    .pair(&ck, &sk, 1, 2)
                    .unwrap();
                a.send(&vec![0u8; size], 0).unwrap();
                let mut link = PairFabric::reliable();
                drive_pair(&mut a, &mut b, &mut link, 1_000_000);
                let measured = a.stats().wire_bytes_sent as f64;

                let tolerance = analytic_payload * 0.05 + 96.0;
                assert!(
                    (measured - analytic_payload).abs() <= tolerance,
                    "{} at {size}B: analytic {analytic_payload} vs measured {measured}",
                    stack.label()
                );
            }
        }
    }
}
