//! Regenerates Fig. 7: concurrent RPC throughput (plus the 9 KB-MTU variant).
use smt_bench::{fig7_throughput, output};

fn main() {
    let mtu = if std::env::args().any(|a| a == "--mtu9000") {
        9000
    } else {
        1500
    };
    let rows = fig7_throughput(mtu);
    if output::maybe_json(&rows) {
        return;
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|p| vec![p.series.clone(), p.x.clone(), output::krate(p.y)])
        .collect();
    output::print_table(
        &format!("Fig. 7: throughput (K RPC/s), MTU {mtu}"),
        &["stack-size", "concurrency", "K RPC/s"],
        &table,
    );
}
