//! YCSB workload generator (paper Fig. 8 uses YCSB A–E via YCSB-C).
//!
//! The standard core workloads are reproduced:
//!
//! | Workload | Mix                         | Request distribution |
//! |----------|-----------------------------|----------------------|
//! | A        | 50 % read / 50 % update     | zipfian              |
//! | B        | 95 % read / 5 % update      | zipfian              |
//! | C        | 100 % read                  | zipfian              |
//! | D        | 95 % read / 5 % insert      | latest               |
//! | E        | 95 % scan / 5 % insert      | zipfian              |

use crate::kv::KvRequest;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The YCSB core workloads used in Fig. 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum YcsbWorkload {
    /// Update heavy (50/50).
    A,
    /// Read mostly (95/5).
    B,
    /// Read only.
    C,
    /// Read latest.
    D,
    /// Short ranges (scan heavy).
    E,
}

impl YcsbWorkload {
    /// All workloads in figure order.
    pub fn all() -> [YcsbWorkload; 5] {
        [
            YcsbWorkload::A,
            YcsbWorkload::B,
            YcsbWorkload::C,
            YcsbWorkload::D,
            YcsbWorkload::E,
        ]
    }

    /// The figure label.
    pub fn label(self) -> &'static str {
        match self {
            YcsbWorkload::A => "A",
            YcsbWorkload::B => "B",
            YcsbWorkload::C => "C",
            YcsbWorkload::D => "D",
            YcsbWorkload::E => "E",
        }
    }

    /// Fraction of operations that are writes (update or insert).
    pub fn write_fraction(self) -> f64 {
        match self {
            YcsbWorkload::A => 0.5,
            YcsbWorkload::B | YcsbWorkload::D | YcsbWorkload::E => 0.05,
            YcsbWorkload::C => 0.0,
        }
    }

    /// Whether reads are scans (workload E).
    pub fn uses_scans(self) -> bool {
        matches!(self, YcsbWorkload::E)
    }
}

/// Generator configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct YcsbConfig {
    /// Number of records loaded into the store.
    pub record_count: usize,
    /// Value size in bytes (64 B / 1 KB / 4 KB in Fig. 8).
    pub value_size: usize,
    /// Zipfian skew parameter (YCSB default 0.99).
    pub zipf_theta: f64,
    /// Maximum scan length for workload E.
    pub max_scan_len: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for YcsbConfig {
    fn default() -> Self {
        Self {
            record_count: 100_000,
            value_size: 1024,
            zipf_theta: 0.99,
            max_scan_len: 100,
            seed: 42,
        }
    }
}

/// One generated operation with its wire sizes (used by the workload model).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct YcsbOp {
    /// The request to send.
    pub request: KvRequest,
    /// Approximate request size on the wire (application bytes).
    pub request_bytes: usize,
    /// Approximate response size (application bytes).
    pub response_bytes: usize,
}

/// O(1) zipfian sampler after Gray et al., *Quickly Generating
/// Billion-Record Synthetic Databases* (SIGMOD '94) — the same rejection-free
/// transform YCSB-C uses.  Construction is O(n) (one harmonic sum); every
/// sample after that is constant time, which is what makes the ~1M-op
/// functional figure runs affordable.
#[derive(Debug, Clone)]
pub struct ZipfianSampler {
    items: usize,
    theta: f64,
    zetan: f64,
    alpha: f64,
    eta: f64,
}

impl ZipfianSampler {
    /// Creates a sampler over `items` ranks with skew `theta` (YCSB: 0.99).
    pub fn new(items: usize, theta: f64) -> Self {
        let items = items.max(1);
        let zetan: f64 = (1..=items).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let zeta2: f64 = 1.0 + 0.5f64.powf(theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / items as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Self {
            items,
            theta,
            zetan,
            alpha,
            eta,
        }
    }

    /// Draws a rank in `0..items` (0 is the hottest).
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.items as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as usize;
        rank.min(self.items - 1)
    }

    /// Number of ranks the sampler draws from.
    pub fn items(&self) -> usize {
        self.items
    }
}

/// The YCSB operation generator.
#[derive(Debug)]
pub struct YcsbGenerator {
    workload: YcsbWorkload,
    config: YcsbConfig,
    rng: StdRng,
    zipf: ZipfianSampler,
    inserted: usize,
}

impl YcsbGenerator {
    /// Creates a generator.
    pub fn new(workload: YcsbWorkload, config: YcsbConfig) -> Self {
        Self {
            workload,
            config,
            rng: StdRng::seed_from_u64(config.seed),
            zipf: ZipfianSampler::new(config.record_count, config.zipf_theta),
            inserted: 0,
        }
    }

    /// The workload this generator produces.
    pub fn workload(&self) -> YcsbWorkload {
        self.workload
    }

    fn zipfian_index(&mut self) -> usize {
        self.zipf.sample(&mut self.rng)
    }

    fn latest_index(&mut self) -> usize {
        // "Latest" distribution: skewed towards recently inserted records.
        let total = self.config.record_count + self.inserted;
        let z = self.zipfian_index();
        total - 1 - z.min(total - 1)
    }

    fn key(&self, index: usize) -> String {
        format!("user{index:08}")
    }

    /// Generates the next operation.
    pub fn next_op(&mut self) -> YcsbOp {
        let write = self.rng.gen::<f64>() < self.workload.write_fraction();
        let value_size = self.config.value_size;
        let key_len = 12usize;

        if write {
            let (key, is_insert) = match self.workload {
                YcsbWorkload::D | YcsbWorkload::E => {
                    self.inserted += 1;
                    (self.key(self.config.record_count + self.inserted), true)
                }
                _ => {
                    let idx = self.zipfian_index();
                    (self.key(idx), false)
                }
            };
            let _ = is_insert;
            YcsbOp {
                request: KvRequest::Put {
                    key,
                    value: vec![0xa5; value_size],
                },
                request_bytes: key_len + value_size + 16,
                response_bytes: 8,
            }
        } else if self.workload.uses_scans() {
            let len = self.rng.gen_range(1..=self.config.max_scan_len);
            YcsbOp {
                request: {
                    let idx = self.zipfian_index();
                    KvRequest::Scan {
                        start: self.key(idx),
                        count: len,
                    }
                },
                request_bytes: key_len + 16,
                response_bytes: len as usize * value_size,
            }
        } else {
            let idx = if self.workload == YcsbWorkload::D {
                self.latest_index()
            } else {
                self.zipfian_index()
            };
            YcsbOp {
                request: KvRequest::Get { key: self.key(idx) },
                request_bytes: key_len + 8,
                response_bytes: value_size + 8,
            }
        }
    }

    /// Mean request/response application sizes over `samples` generated
    /// operations — the (request, response) sizes fed to the Fig. 8 model.
    pub fn mean_sizes(&mut self, samples: usize) -> (usize, usize) {
        let mut req = 0usize;
        let mut resp = 0usize;
        for _ in 0..samples {
            let op = self.next_op();
            req += op.request_bytes;
            resp += op.response_bytes;
        }
        (req / samples.max(1), resp / samples.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> YcsbConfig {
        YcsbConfig {
            record_count: 1000,
            value_size: 1024,
            ..YcsbConfig::default()
        }
    }

    #[test]
    fn workload_mixes_match_spec() {
        for wl in YcsbWorkload::all() {
            let mut gen = YcsbGenerator::new(wl, config());
            let mut writes = 0;
            let mut scans = 0;
            let n = 2000;
            for _ in 0..n {
                match gen.next_op().request {
                    KvRequest::Put { .. } => writes += 1,
                    KvRequest::Scan { .. } => scans += 1,
                    _ => {}
                }
            }
            let write_frac = writes as f64 / n as f64;
            assert!(
                (write_frac - wl.write_fraction()).abs() < 0.05,
                "{wl:?}: write fraction {write_frac}"
            );
            if wl.uses_scans() {
                assert!(scans > n / 2);
            } else {
                assert_eq!(scans, 0);
            }
        }
    }

    #[test]
    fn zipfian_is_skewed() {
        let mut gen = YcsbGenerator::new(YcsbWorkload::C, config());
        let mut hot = 0;
        let n = 2000;
        for _ in 0..n {
            if let KvRequest::Get { key } = gen.next_op().request {
                let idx: usize = key[4..].parse().unwrap();
                if idx < 10 {
                    hot += 1;
                }
            }
        }
        // The hottest 1 % of keys receive far more than 1 % of requests.
        assert!(hot as f64 / n as f64 > 0.05, "hot fraction {hot}/{n}");
    }

    #[test]
    fn o1_sampler_matches_analytic_head_frequency() {
        let items = 10_000usize;
        let theta = 0.99;
        let sampler = ZipfianSampler::new(items, theta);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 40_000;
        let rank0 = (0..n).filter(|_| sampler.sample(&mut rng) == 0).count();
        let zetan: f64 = (1..=items).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let expected = n as f64 / zetan;
        let got = rank0 as f64;
        assert!(
            got > expected * 0.8 && got < expected * 1.2,
            "rank-0 hits {got} vs analytic {expected}"
        );
    }

    #[test]
    fn deterministic_with_same_seed() {
        let mut a = YcsbGenerator::new(YcsbWorkload::A, config());
        let mut b = YcsbGenerator::new(YcsbWorkload::A, config());
        for _ in 0..50 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn response_sizes_reflect_value_size() {
        let mut small = YcsbGenerator::new(
            YcsbWorkload::C,
            YcsbConfig {
                value_size: 64,
                record_count: 1000,
                ..YcsbConfig::default()
            },
        );
        let mut large = YcsbGenerator::new(
            YcsbWorkload::C,
            YcsbConfig {
                value_size: 4096,
                record_count: 1000,
                ..YcsbConfig::default()
            },
        );
        let (_, resp_small) = small.mean_sizes(200);
        let (_, resp_large) = large.mean_sizes(200);
        assert!(resp_large > resp_small * 10);
    }
}
