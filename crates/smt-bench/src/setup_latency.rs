//! The setup-latency scenario family: the paper's Fig. 12 / Table 2 claim —
//! connection setup is cheap because the handshake piggybacks on the first
//! message and resumption is 0-RTT — measured **over the wire**.
//!
//! Each case runs one connection through the in-band handshake
//! (`Endpoint::builder().connect(..)/.accept(..)`) on the two-host fabric in
//! simulated time and records:
//!
//! * `hs_rtt_ns` — the client's measured handshake latency (the `rtt_ns`
//!   carried by the real `HandshakeComplete` event): first flight transmitted
//!   → keys installed.
//! * `ttfb_ns` — time to first request byte: virtual time at which the
//!   server delivers the client's first message.  Cold connections pay the
//!   full pre-data exchange (~1.5 RTT on stream stacks); resumed (0-RTT)
//!   connections deliver the request from the first flight (~0.5 RTT), the
//!   ≥ 1 RTT saving the paper claims.
//!
//! The matrix covers every stack (the plaintext stacks as no-handshake
//! baselines), cold vs. resumed, and a 10 % loss variant in which the
//! handshake flights must survive through the endpoints' RTO/retransmit
//! machinery.  Virtual time only advances with network propagation and
//! serialization, so the handshake's *compute* cost is excluded here by
//! construction — that is what the `fig12_key_exchange` /
//! `table2_handshake_breakdown` binaries measure.
//!
//! The `setup_latency` binary prints the matrix and emits
//! `BENCH_setup_latency.json` in the bench-diff-compatible shape, gated in CI
//! like the scenario matrix.  Simulation output is deterministic per seed up
//! to ECDSA signature length (DER signatures vary by a byte or two, shifting
//! flight serialization time by a few ns) — far inside the CI gate.

use smt_crypto::cert::{CertificateAuthority, Identity};
use smt_crypto::handshake::{SmtTicket, SmtTicketIssuer};
use smt_sim::net::LinkConfig;
use smt_sim::Nanos;
use smt_transport::{
    drive_pair, AcceptConfig, ConnectConfig, Endpoint, Event, PairFabric, SecureEndpoint,
    StackKind, ZeroRttAcceptor,
};

/// Application bytes of the first request each connection sends.
pub const REQUEST_BYTES: usize = 512;

/// One measured connection setup.
#[derive(Debug, Clone, serde::Serialize)]
pub struct SetupRow {
    /// Stack label (paper legend).
    pub stack: String,
    /// `"cold"` (full handshake) or `"resumed"` (SMT-ticket 0-RTT).
    pub mode: &'static str,
    /// Injected uniform loss, in percent.
    pub loss_pct: f64,
    /// The client's measured handshake latency (0 for the plaintext stacks,
    /// which have nothing to negotiate).
    pub hs_rtt_ns: Nanos,
    /// Virtual time at which the server delivered the first request.
    pub ttfb_ns: Nanos,
    /// Virtual time at which the pair quiesced (request delivered and acked).
    pub done_ns: Nanos,
    /// Whether the connection resumed (0-RTT) — mirrors the event flag.
    pub resumed: bool,
    /// Packets retransmitted across both ends (handshake flights + data).
    pub retransmissions: u64,
    /// Messages the server delivered (always 1 here).
    pub delivered: u64,
}

/// One network round trip on the default evaluation link (propagation only;
/// serialization of the small setup packets adds a few hundred ns on top).
pub fn one_rtt_ns() -> Nanos {
    2 * LinkConfig::default().propagation_ns
}

/// Runs one connection setup and returns the measured row plus the in-band
/// SMT-ticket the client collected (for the subsequent resumed run).
fn run_one(
    stack: StackKind,
    ca: &CertificateAuthority,
    identity: &Identity,
    acceptor: &ZeroRttAcceptor,
    ticket: Option<&SmtTicket>,
    loss: f64,
    seed: u64,
) -> (SetupRow, Option<SmtTicket>) {
    let mut connect = ConnectConfig::new(ca.verifying_key(), "setup.dc.local");
    if let Some(t) = ticket {
        connect = connect.resume(t.clone(), t.issued_at);
    }
    let accept = AcceptConfig::new(identity.clone(), ca.verifying_key())
        .zero_rtt(acceptor.clone())
        .ticket_time(100);
    let (mut client, mut server) = Endpoint::builder()
        .stack(stack)
        .handshake_pair(connect, accept, 4000, 4443)
        .expect("setup endpoints");
    client
        .send(&[0x42u8; REQUEST_BYTES], 0)
        .expect("queue the first request");

    let mut link = if loss > 0.0 {
        PairFabric::lossy(loss, seed)
    } else {
        PairFabric::reliable()
    };
    let mut ttfb: Option<Nanos> = None;
    let mut hs_rtt: Nanos = 0;
    let mut resumed = false;
    let mut got_ticket: Option<SmtTicket> = None;
    loop {
        // One event per call, so `link.now()` at a delivery event is the
        // exact virtual delivery time.
        let processed = drive_pair(&mut client, &mut server, &mut link, 1);
        while let Some(ev) = server.poll_event() {
            if matches!(ev, Event::MessageDelivered { .. }) && ttfb.is_none() {
                ttfb = Some(link.now());
            }
        }
        while let Some(ev) = client.poll_event() {
            match ev {
                Event::HandshakeComplete {
                    rtt_ns, resumed: r, ..
                } => {
                    hs_rtt = rtt_ns;
                    resumed = r;
                }
                Event::TicketReceived(t) => got_ticket = Some(*t),
                _ => {}
            }
        }
        if processed == 0 {
            break;
        }
    }
    let row = SetupRow {
        stack: stack.label().to_string(),
        mode: if ticket.is_some() { "resumed" } else { "cold" },
        loss_pct: loss * 100.0,
        hs_rtt_ns: hs_rtt,
        ttfb_ns: ttfb.unwrap_or_else(|| {
            panic!(
                "{}/{} at {loss} loss: request never delivered",
                stack.label(),
                if ticket.is_some() { "resumed" } else { "cold" }
            )
        }),
        done_ns: link.now(),
        resumed,
        retransmissions: client.stats().retransmissions + server.stats().retransmissions,
        delivered: server.stats().messages_delivered,
    };
    (row, got_ticket)
}

/// Runs the setup-latency matrix: every stack, cold and resumed, lossless
/// and (full mode) under 10 % loss.  `smoke` restricts it to the CI subset:
/// SMT-sw and kTLS-sw, lossless only.
pub fn setup_latency_matrix(smoke: bool) -> Vec<SetupRow> {
    let ca = CertificateAuthority::new("setup-ca");
    let identity = ca.issue_identity("setup.dc.local");
    let stacks: Vec<StackKind> = if smoke {
        vec![StackKind::SmtSw, StackKind::KtlsSw]
    } else {
        StackKind::all().to_vec()
    };
    let losses: &[f64] = if smoke { &[0.0] } else { &[0.0, 0.10] };
    let mut rows = Vec::new();
    for (li, &loss) in losses.iter().enumerate() {
        for (si, &stack) in stacks.iter().enumerate() {
            // One listener (issuer + shared anti-replay cache) per case; the
            // cold connection mints the in-band ticket the resumed one uses.
            let acceptor =
                ZeroRttAcceptor::new(SmtTicketIssuer::new(identity.clone(), 3600), 1 << 16);
            let seed = 9000 + (li as u64) * 100 + (si as u64) * 2;
            let (cold, ticket) = run_one(stack, &ca, &identity, &acceptor, None, loss, seed);
            rows.push(cold);
            if stack.is_encrypted() {
                let ticket = ticket.expect("cold handshake delivers an in-band ticket");
                let (resumed, _) = run_one(
                    stack,
                    &ca,
                    &identity,
                    &acceptor,
                    Some(&ticket),
                    loss,
                    seed + 1,
                );
                rows.push(resumed);
            }
        }
    }
    rows
}

/// Asserts the acceptance criterion: on the lossless link, resumed (0-RTT)
/// setup delivers the first request at least one network RTT earlier than
/// cold setup on each of `stacks`.
pub fn assert_zero_rtt_wins(rows: &[SetupRow], stacks: &[&str]) {
    for name in stacks {
        let find = |mode: &str| {
            rows.iter()
                .find(|r| r.stack == *name && r.mode == mode && r.loss_pct == 0.0)
                .unwrap_or_else(|| panic!("missing {mode} row for {name}"))
        };
        let cold = find("cold");
        let resumed = find("resumed");
        assert!(resumed.resumed, "{name}: resumed run did not resume");
        assert!(!cold.resumed, "{name}: cold run claims resumption");
        assert!(
            resumed.ttfb_ns + one_rtt_ns() <= cold.ttfb_ns,
            "{name}: resumed setup ({} ns) is not ≥ 1 RTT ({} ns) faster than cold ({} ns)",
            resumed.ttfb_ns,
            one_rtt_ns(),
            cold.ttfb_ns,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_matrix_measures_and_zero_rtt_wins() {
        let rows = setup_latency_matrix(true);
        // SMT-sw and kTLS-sw, cold + resumed each.
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert_eq!(row.delivered, 1, "{}/{}", row.stack, row.mode);
            assert!(row.ttfb_ns > 0);
        }
        assert_zero_rtt_wins(&rows, &["SMT-sw", "kTLS-sw"]);
        // Cold setup pays the handshake before data: the client's measured
        // handshake RTT is at least one network round trip.
        let cold = rows.iter().find(|r| r.mode == "cold").unwrap();
        assert!(cold.hs_rtt_ns >= one_rtt_ns());
    }

    #[test]
    fn matrix_is_stable_across_runs() {
        // Timings are deterministic up to ECDSA signature length (DER
        // signatures vary by a byte or two, shifting flight serialization by
        // a few ns) — the same tolerance the CI bench_diff gate absorbs.
        let a = setup_latency_matrix(true);
        let b = setup_latency_matrix(true);
        for (x, y) in a.iter().zip(&b) {
            let close = |p: Nanos, q: Nanos| p.abs_diff(q) <= 64;
            assert!(close(x.ttfb_ns, y.ttfb_ns), "{}/{}", x.stack, x.mode);
            assert!(close(x.hs_rtt_ns, y.hs_rtt_ns), "{}/{}", x.stack, x.mode);
        }
    }
}
