//! GHASH universal hash over GF(2^128) (NIST SP 800-38D §6.4).
//!
//! Uses Shoup's 4-bit table method: 16 precomputed multiples of the hash key
//! `H`, processed one nibble at a time — a reasonable speed/simplicity point
//! for a pure-Rust implementation.

/// Reduction table for the 4-bit shift: R[i] = i·(x^124 mod P) folded into the
/// top 16 bits, for the GCM polynomial P = x^128 + x^7 + x^2 + x + 1.
const R: [u16; 16] = [
    0x0000, 0x1c20, 0x3840, 0x2460, 0x7080, 0x6ca0, 0x48c0, 0x54e0, 0xe100, 0xfd20, 0xd940, 0xc560,
    0x9180, 0x8da0, 0xa9c0, 0xb5e0,
];

/// GHASH state with precomputed key tables.
#[derive(Clone)]
pub struct GHash {
    /// table[i] = (i as 4-bit value) · H in GF(2^128), bits stored as (hi, lo).
    table: [(u64, u64); 16],
    y: (u64, u64),
}

fn gf_mul_by_x4(v: (u64, u64)) -> (u64, u64) {
    // Multiply by x^4 (shift right by 4 in GCM's reflected bit order) and reduce.
    let (hi, lo) = v;
    let carry = (lo & 0xf) as usize;
    let lo = (lo >> 4) | (hi << 60);
    let hi = (hi >> 4) ^ ((R[carry] as u64) << 48);
    (hi, lo)
}

fn xor(a: (u64, u64), b: (u64, u64)) -> (u64, u64) {
    (a.0 ^ b.0, a.1 ^ b.1)
}

impl GHash {
    /// Creates a GHASH instance keyed with `h` (the encryption of the zero block).
    pub fn new(h: &[u8; 16]) -> Self {
        let h = (
            u64::from_be_bytes(h[0..8].try_into().unwrap()),
            u64::from_be_bytes(h[8..16].try_into().unwrap()),
        );
        // table[i] = i·H: build by GF additions of H·x^k terms.
        // In GCM's reflected convention, the multiplier nibble's bit j (MSB
        // first) selects H·x^j; table[1<<3-j]... Simplest: table[8] = H, and
        // table[i>>1] = table[i]·x, iterating powers downward.
        let mut table = [(0u64, 0u64); 16];
        table[8] = h; // 0b1000 ↦ H (MSB-first nibble encoding)
                      // H·x: divide index by 2.
        let mut v = h;
        let mut idx = 8usize;
        while idx > 1 {
            v = mul_by_x(v);
            idx >>= 1;
            table[idx] = v;
        }
        for i in [3usize, 5, 6, 7, 9, 10, 11, 12, 13, 14, 15] {
            // Decompose into set bits among {8,4,2,1}.
            let mut acc = (0u64, 0u64);
            for bit in [8usize, 4, 2, 1] {
                if i & bit != 0 {
                    acc = xor(acc, table[bit]);
                }
            }
            table[i] = acc;
        }
        Self { table, y: (0, 0) }
    }

    /// Absorbs one 16-byte block.
    pub fn update_block(&mut self, block: &[u8; 16]) {
        let x = (
            u64::from_be_bytes(block[0..8].try_into().unwrap()),
            u64::from_be_bytes(block[8..16].try_into().unwrap()),
        );
        let mut z = (0u64, 0u64);
        let y = xor(self.y, x);
        // Process 32 nibbles from least-significant end of the 128-bit value.
        let bytes = [y.1.to_be_bytes(), y.0.to_be_bytes()];
        // Iterate bytes from last (lowest) to first (highest).
        let mut first = true;
        for half in bytes.iter() {
            for &b in half.iter().rev() {
                for nib in [b & 0xf, b >> 4] {
                    if !first {
                        z = gf_mul_by_x4(z);
                    }
                    first = false;
                    z = xor(z, self.table[nib as usize]);
                }
            }
        }
        self.y = z;
    }

    /// Absorbs a byte string, zero-padding the final partial block.
    pub fn update_padded(&mut self, data: &[u8]) {
        let mut chunks = data.chunks_exact(16);
        for chunk in &mut chunks {
            self.update_block(chunk.try_into().expect("16 bytes"));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut block = [0u8; 16];
            block[..rem.len()].copy_from_slice(rem);
            self.update_block(&block);
        }
    }

    /// Finalizes with the standard `len(A) ‖ len(C)` block and returns the tag
    /// basis (before XOR with `E(K, J0)`), resetting the state.
    pub fn finalize_with_lengths(&mut self, aad_bits: u64, ct_bits: u64) -> [u8; 16] {
        let mut block = [0u8; 16];
        block[0..8].copy_from_slice(&aad_bits.to_be_bytes());
        block[8..16].copy_from_slice(&ct_bits.to_be_bytes());
        self.update_block(&block);
        let mut out = [0u8; 16];
        out[0..8].copy_from_slice(&self.y.0.to_be_bytes());
        out[8..16].copy_from_slice(&self.y.1.to_be_bytes());
        self.y = (0, 0);
        out
    }
}

/// Multiply by x in GCM's reflected representation (right shift with reduction).
fn mul_by_x(v: (u64, u64)) -> (u64, u64) {
    let (hi, lo) = v;
    let carry = lo & 1;
    let lo = (lo >> 1) | (hi << 63);
    let hi = (hi >> 1) ^ (carry * 0xe100_0000_0000_0000);
    (hi, lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nibble_order_matches_bitwise_reference() {
        // Compare the table implementation against a slow bit-by-bit GF mul.
        fn slow_mul(x: (u64, u64), h: (u64, u64)) -> (u64, u64) {
            let mut z = (0u64, 0u64);
            let mut v = h;
            for i in 0..128 {
                let bit = if i < 64 {
                    (x.0 >> (63 - i)) & 1
                } else {
                    (x.1 >> (127 - i)) & 1
                };
                if bit == 1 {
                    z = xor(z, v);
                }
                v = mul_by_x(v);
            }
            z
        }

        let h_bytes: [u8; 16] = [
            0x66, 0xe9, 0x4b, 0xd4, 0xef, 0x8a, 0x2c, 0x3b, 0x88, 0x4c, 0xfa, 0x59, 0xca, 0x34,
            0x2b, 0x2e,
        ];
        let mut g = GHash::new(&h_bytes);
        let block: [u8; 16] = [
            0x03, 0x88, 0xda, 0xce, 0x60, 0xb6, 0xa3, 0x92, 0xf3, 0x28, 0xc2, 0xb9, 0x71, 0xb2,
            0xfe, 0x78,
        ];
        g.update_block(&block);
        let h = (
            u64::from_be_bytes(h_bytes[0..8].try_into().unwrap()),
            u64::from_be_bytes(h_bytes[8..16].try_into().unwrap()),
        );
        let x = (
            u64::from_be_bytes(block[0..8].try_into().unwrap()),
            u64::from_be_bytes(block[8..16].try_into().unwrap()),
        );
        let expect = slow_mul(x, h);
        assert_eq!(g.y, expect);
    }
}
