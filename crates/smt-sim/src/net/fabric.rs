//! The multi-host fabric: queued links, finite buffers and fault injection.
//!
//! Two topologies are modeled behind one interface ([`Topology`]):
//!
//! * **Big switch** (the default): every host connects to one switch core
//!   through an **egress** link and an **ingress** link, each a serial
//!   resource with the configured bandwidth and a finite tail-drop buffer.
//!   A packet sent from host A to host B serializes onto A's egress link,
//!   crosses the core (pure propagation delay), then serializes onto B's
//!   ingress link — which is where N→1 incast congestion queues up and
//!   overflows, exactly the scenario the paper's load experiments (and
//!   Ousterhout's TCP critique) are about.
//!
//! * **Leaf–spine** ([`Topology::LeafSpine`]): hosts attach to leaves in
//!   groups of [`LeafSpineConfig::hosts_per_leaf`]; every leaf connects to
//!   every spine.  Cross-leaf packets take host-egress → leaf→spine uplink →
//!   spine→leaf downlink → host-ingress, each hop a queued serial resource
//!   plus one propagation delay, with the spine chosen per flow by a
//!   deterministic ECMP hash of the 4-tuple.  Uplink bandwidth is the host
//!   rate times `hosts_per_leaf / spines`, divided by the configured
//!   [`oversubscription`](LeafSpineConfig::oversubscription) — the knob that
//!   makes the fabric core, not just the receiver edge, a contended
//!   resource.
//!
//! Either topology can run **ECN marking** ([`EcnConfig`]): a queue whose
//! instantaneous backlog exceeds the threshold CE-marks ECN-capable packets
//! (DCTCP's switch half; the endpoints' DCTCP window reacts to the echoed
//! marks).
//!
//! On top of the queueing model, a seeded [`FaultyLink`] injects loss,
//! reordering (extra per-packet delay) and duplication.  The same fault model
//! backs both the fabric and the batch [`FaultyLink::scramble_flight`] helper
//! the conformance tests use, so tests and scenarios agree on what "a bad
//! network" means.
//!
//! The fabric itself never touches an endpoint: it moves [`Packet`]s between
//! *ports* (one endpoint attachment point each) in virtual time.  The scenario
//! runner ([`crate::net::run_scenario`]) couples ports to protocol engines.

use super::event::EventQueue;
use crate::resource::Resource;
use crate::time::Nanos;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use smt_wire::Packet;

/// Identifies a host in the fabric.
pub type HostId = usize;

/// Identifies a port (one endpoint attachment) in the fabric.
pub type PortId = usize;

/// Per-direction link parameters of every host's fabric attachment.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Link bandwidth in Gb/s (the paper's testbed runs 100 Gb/s CX-7s).
    pub gbps: f64,
    /// One-way propagation delay through the switch core.
    pub propagation_ns: Nanos,
    /// Buffer capacity per link direction, in MTU-sized packets; beyond this
    /// backlog the link tail-drops.
    pub buffer_packets: usize,
    /// MTU used to convert `buffer_packets` into a time backlog bound.
    pub mtu: usize,
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self {
            gbps: 100.0,
            propagation_ns: 1_000,
            buffer_packets: 256,
            mtu: smt_wire::DEFAULT_MTU,
        }
    }
}

impl LinkConfig {
    /// Serialization time of `bytes` at the link rate.
    pub fn serialization_ns(&self, bytes: usize) -> Nanos {
        ((bytes as f64 * 8.0) / self.gbps).round() as Nanos
    }

    /// The deepest backlog (in time) a link direction may hold before
    /// tail-dropping.
    pub fn buffer_ns(&self) -> Nanos {
        self.serialization_ns(self.mtu) * self.buffer_packets as Nanos
    }
}

/// ECN marking at fabric queues — the switch half of DCTCP.  A packet that
/// arrives at a queue whose instantaneous backlog exceeds the threshold is
/// CE-marked if its IP header declares ECN capability; the transport echoes
/// the mark fraction back to the sender, whose DCTCP window reacts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EcnConfig {
    /// Instantaneous-queue marking threshold in MTU-sized packets (DCTCP's
    /// K; the paper's testbed discipline marks early, well before
    /// tail-drop).
    pub marking_threshold_packets: usize,
}

impl Default for EcnConfig {
    fn default() -> Self {
        Self {
            marking_threshold_packets: 32,
        }
    }
}

/// Shape of a two-tier leaf–spine (Clos) fabric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeafSpineConfig {
    /// Hosts attached to each leaf switch (host `h` sits on leaf
    /// `h / hosts_per_leaf`).
    pub hosts_per_leaf: usize,
    /// Spine switches; every leaf uplinks to every spine and flows are
    /// ECMP-hashed across them.
    pub spines: usize,
    /// Uplink oversubscription factor: 1.0 is a non-blocking Clos (aggregate
    /// uplink bandwidth equals aggregate host bandwidth per leaf); 4.0 gives
    /// the classic 4:1 oversubscribed datacenter pod.
    pub oversubscription: f64,
}

impl Default for LeafSpineConfig {
    fn default() -> Self {
        Self {
            hosts_per_leaf: 16,
            spines: 4,
            oversubscription: 1.0,
        }
    }
}

impl LeafSpineConfig {
    /// Bandwidth of one leaf↔spine link in Gb/s.
    pub fn uplink_gbps(&self, host_gbps: f64) -> f64 {
        let fair = host_gbps * self.hosts_per_leaf as f64 / self.spines.max(1) as f64;
        fair / self.oversubscription.max(1e-6)
    }
}

/// The fabric's switching topology.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum Topology {
    /// One big switch: egress → core propagation → ingress (the original
    /// model, and what older scenario JSON deserializes to).
    #[default]
    BigSwitch,
    /// Two-tier leaf–spine Clos with ECMP flow hashing and configurable
    /// oversubscription.
    LeafSpine(LeafSpineConfig),
}

/// Seeded fault-injection parameters shared by tests and scenarios.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Probability a packet is dropped on the wire.
    pub loss: f64,
    /// Probability a packet is duplicated (the copy arrives slightly later).
    pub duplicate: f64,
    /// Probability a packet is delayed past its successors (reordering).
    pub reorder: f64,
    /// Maximum extra delay applied to a reordered packet.
    pub reorder_delay_ns: Nanos,
    /// RNG seed; the same seed reproduces the same fault pattern.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            loss: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            reorder_delay_ns: 20_000,
            seed: 0,
        }
    }
}

impl FaultConfig {
    /// No faults at all.
    pub fn none() -> Self {
        Self::default()
    }

    /// Uniform random loss with probability `loss`.
    pub fn lossy(loss: f64, seed: u64) -> Self {
        Self {
            loss,
            seed,
            ..Self::default()
        }
    }

    /// Heavy reordering plus one duplicate of (almost) every packet — the
    /// chaos profile the endpoint conformance matrix drives.
    pub fn chaotic(seed: u64) -> Self {
        Self {
            duplicate: 1.0,
            reorder: 1.0,
            seed,
            ..Self::default()
        }
    }
}

/// Counters of what a [`FaultyLink`] did to the traffic.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Packets passed through unmodified.
    pub passed: u64,
    /// Packets dropped.
    pub dropped: u64,
    /// Extra copies injected.
    pub duplicated: u64,
    /// Packets given extra (reordering) delay.
    pub reordered: u64,
}

/// What the fault model decided for one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The packet is lost.
    Drop,
    /// The packet is delivered with `extra_delay_ns` of reorder jitter; if
    /// `duplicate_delay_ns` is set, a second copy arrives that much later
    /// than the original.
    Deliver {
        /// Reordering delay added to the propagation time.
        extra_delay_ns: Nanos,
        /// Extra delay of the duplicated copy, when one is injected.
        duplicate_delay_ns: Option<Nanos>,
    },
}

/// A seeded fault model for one traffic direction or one whole fabric.
///
/// This is the *single* fault model in the repository: the fabric consults it
/// per packet ([`admit`](Self::admit)), and flight-oriented tests apply it per
/// batch ([`scramble_flight`](Self::scramble_flight)).
#[derive(Debug)]
pub struct FaultyLink {
    config: FaultConfig,
    rng: StdRng,
    /// What happened to the traffic so far.
    pub stats: FaultStats,
}

impl FaultyLink {
    /// Creates a fault model from its configuration (seeded RNG).
    pub fn new(config: FaultConfig) -> Self {
        Self {
            config,
            rng: StdRng::seed_from_u64(config.seed ^ 0x5eed_11ac_0ffe_e000),
            stats: FaultStats::default(),
        }
    }

    /// A link that never misbehaves.
    pub fn reliable() -> Self {
        Self::new(FaultConfig::none())
    }

    /// The configuration this link was built from.
    pub fn config(&self) -> FaultConfig {
        self.config
    }

    /// Decides the fate of one packet.
    pub fn admit(&mut self) -> Admission {
        let c = self.config;
        if c.loss > 0.0 && self.rng.gen::<f64>() < c.loss {
            self.stats.dropped += 1;
            return Admission::Drop;
        }
        let extra_delay_ns = if c.reorder > 0.0 && self.rng.gen::<f64>() < c.reorder {
            self.stats.reordered += 1;
            1 + self.rng.gen_range(0..c.reorder_delay_ns.max(1))
        } else {
            0
        };
        let duplicate_delay_ns = if c.duplicate > 0.0 && self.rng.gen::<f64>() < c.duplicate {
            self.stats.duplicated += 1;
            Some(1 + self.rng.gen_range(0..c.reorder_delay_ns.max(1)))
        } else {
            None
        };
        self.stats.passed += 1;
        Admission::Deliver {
            extra_delay_ns,
            duplicate_delay_ns,
        }
    }

    /// Applies the fault model to one flight of packets in place: drops each
    /// packet with the loss probability, appends a duplicate of surviving
    /// packets with the duplication probability, then (when reordering is
    /// enabled) Fisher–Yates-shuffles the whole flight.
    ///
    /// This is the batch form of [`admit`](Self::admit) for drivers that move
    /// whole flights instead of timed packets (the endpoint conformance
    /// matrix).
    pub fn scramble_flight(&mut self, packets: &mut Vec<Packet>) {
        let c = self.config;
        if c.loss > 0.0 {
            let before = packets.len();
            packets.retain(|_| self.rng.gen::<f64>() >= c.loss);
            self.stats.dropped += (before - packets.len()) as u64;
        }
        if c.duplicate > 0.0 {
            let mut dups = Vec::new();
            for p in packets.iter() {
                if self.rng.gen::<f64>() < c.duplicate {
                    dups.push(p.clone());
                }
            }
            self.stats.duplicated += dups.len() as u64;
            packets.extend(dups);
        }
        if c.reorder > 0.0 && packets.len() > 1 {
            for i in (1..packets.len()).rev() {
                let j = self.rng.gen_range(0usize..=i);
                if i != j {
                    self.stats.reordered += 1;
                }
                packets.swap(i, j);
            }
        }
        self.stats.passed += packets.len() as u64;
    }
}

/// Aggregate counters for one fabric.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FabricStats {
    /// Packets offered by endpoints.
    pub offered: u64,
    /// Packet arrivals delivered to destination ports (duplicates included).
    pub delivered: u64,
    /// Packets dropped by the fault model.
    pub dropped_faults: u64,
    /// Packets tail-dropped at a full egress buffer.
    pub dropped_egress: u64,
    /// Packets tail-dropped at a full ingress buffer (incast overflow).
    pub dropped_ingress: u64,
    /// Duplicate copies injected by the fault model.
    pub duplicated: u64,
    /// Wire bytes carried end to end.
    pub wire_bytes: u64,
    /// Packets tail-dropped at a full leaf–spine uplink or downlink buffer
    /// (zero on the big-switch topology).
    #[serde(default)]
    pub dropped_spine: u64,
    /// Packets CE-marked by an over-threshold queue (zero without
    /// [`EcnConfig`]).
    #[serde(default)]
    pub ecn_marked: u64,
    /// High-water mark of any single host-ingress queue, in MTU-sized
    /// packets — the receiver-queue-occupancy gauge the incast bench bounds.
    #[serde(default)]
    pub peak_ingress_backlog_packets: u64,
}

impl FabricStats {
    /// Every packet lost inside the fabric, for any reason.
    pub fn dropped(&self) -> u64 {
        self.dropped_faults + self.dropped_egress + self.dropped_ingress + self.dropped_spine
    }
}

#[derive(Debug)]
struct HostLinks {
    egress: Resource,
    ingress: Resource,
}

#[derive(Debug)]
struct PortInfo {
    host: HostId,
    peer: Option<PortId>,
}

#[derive(Debug)]
enum NetEvent {
    /// Packet reached its source leaf; contend for the ECMP-chosen
    /// leaf→spine uplink (leaf–spine topology only).
    UplinkArrive {
        dst: PortId,
        src_leaf: usize,
        spine: usize,
        packet: Packet,
    },
    /// Packet crossed the spine; contend for the spine→leaf downlink toward
    /// the destination leaf (leaf–spine topology only).
    DownlinkArrive {
        dst: PortId,
        dst_leaf: usize,
        spine: usize,
        packet: Packet,
    },
    /// Packet reached the far edge of the core; contend for the destination
    /// host's ingress link.
    IngressArrive { dst: PortId, packet: Packet },
    /// Packet fully received at the destination port.
    Deliver { dst: PortId, packet: Packet },
}

/// The multi-host fabric: per-host queued links around a big-switch core,
/// with seeded fault injection, advancing on a deterministic event queue.
#[derive(Debug)]
pub struct Fabric {
    link: LinkConfig,
    topology: Topology,
    ecn: Option<EcnConfig>,
    faults: FaultyLink,
    hosts: Vec<HostLinks>,
    ports: Vec<PortInfo>,
    /// Leaf→spine uplink queues, indexed `leaf * spines + spine`
    /// (leaf–spine topology only; grown on demand).
    uplinks: Vec<Resource>,
    /// Spine→leaf downlink queues, same indexing.
    downlinks: Vec<Resource>,
    queue: EventQueue<NetEvent>,
    /// Aggregate traffic counters.
    pub stats: FabricStats,
}

impl Fabric {
    /// Creates an empty fabric with uniform link parameters and one shared
    /// fault model.
    pub fn new(link: LinkConfig, faults: FaultConfig) -> Self {
        Self::with_topology(link, faults, Topology::BigSwitch, None)
    }

    /// Creates an empty fabric with an explicit topology and optional ECN
    /// marking.
    pub fn with_topology(
        link: LinkConfig,
        faults: FaultConfig,
        topology: Topology,
        ecn: Option<EcnConfig>,
    ) -> Self {
        Self {
            link,
            topology,
            ecn,
            faults: FaultyLink::new(faults),
            hosts: Vec::new(),
            ports: Vec::new(),
            uplinks: Vec::new(),
            downlinks: Vec::new(),
            queue: EventQueue::new(),
            stats: FabricStats::default(),
        }
    }

    /// The link parameters all hosts share.
    pub fn link(&self) -> LinkConfig {
        self.link
    }

    /// The fabric's switching topology.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Serialization time of `bytes` on one leaf↔spine link.
    fn spine_serialization_ns(&self, ls: &LeafSpineConfig, bytes: usize) -> Nanos {
        ((bytes as f64 * 8.0) / ls.uplink_gbps(self.link.gbps)).round() as Nanos
    }

    /// Queue index of a leaf↔spine link.
    fn spine_link_index(&mut self, ls: &LeafSpineConfig, leaf: usize, spine: usize) -> usize {
        let idx = leaf * ls.spines + spine;
        if self.uplinks.len() <= idx {
            self.uplinks.resize_with(idx + 1, Resource::new);
            self.downlinks.resize_with(idx + 1, Resource::new);
        }
        idx
    }

    /// Deterministic ECMP spine choice: an FNV-1a fold of the packet's
    /// 4-tuple, so every packet of one flow takes one path (no intra-flow
    /// reordering from the fabric itself) while flows spread across spines.
    fn ecmp_spine(ls: &LeafSpineConfig, packet: &Packet) -> usize {
        let (src, dst) = match &packet.ip {
            smt_wire::IpHeader::V4(h) => (u64::from(u32::from_be_bytes(h.src)), {
                u64::from(u32::from_be_bytes(h.dst))
            }),
            smt_wire::IpHeader::V6(h) => {
                let fold = |a: &[u8; 16]| a.iter().fold(0u64, |acc, &b| acc << 1 ^ u64::from(b));
                (fold(&h.src), fold(&h.dst))
            }
        };
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for word in [
            src,
            dst,
            u64::from(packet.overlay.tcp.src_port),
            u64::from(packet.overlay.tcp.dst_port),
        ] {
            hash ^= word;
            hash = hash.wrapping_mul(0x1_0000_01b3);
        }
        (hash % ls.spines.max(1) as u64) as usize
    }

    /// CE-marks the packet if ECN marking is on, the packet is ECN-capable
    /// and the queue it just joined was over threshold.
    fn maybe_mark(
        ecn: Option<EcnConfig>,
        stats: &mut FabricStats,
        packet: &mut Packet,
        backlog_ns: Nanos,
        per_packet_ns: Nanos,
    ) {
        let Some(ecn) = ecn else { return };
        let threshold_ns = per_packet_ns.max(1) * ecn.marking_threshold_packets as Nanos;
        if backlog_ns > threshold_ns && packet.ip.is_ecn_capable() {
            packet.ip.mark_ce();
            stats.ecn_marked += 1;
        }
    }

    /// Fault-model counters.
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.stats
    }

    /// Adds a host (an egress/ingress link pair); returns its ID.
    pub fn add_host(&mut self) -> HostId {
        self.hosts.push(HostLinks {
            egress: Resource::new(),
            ingress: Resource::new(),
        });
        self.hosts.len() - 1
    }

    /// Adds a port on `host`; returns its ID.  Ports carry endpoints; a port
    /// must be [`connect`](Self::connect)ed to its peer before sending.
    pub fn add_port(&mut self, host: HostId) -> PortId {
        assert!(host < self.hosts.len(), "unknown host {host}");
        self.ports.push(PortInfo { host, peer: None });
        self.ports.len() - 1
    }

    /// Connects two ports as the ends of one bidirectional flow.
    pub fn connect(&mut self, a: PortId, b: PortId) {
        self.ports[a].peer = Some(b);
        self.ports[b].peer = Some(a);
    }

    /// The host a port is attached to.
    pub fn port_host(&self, port: PortId) -> HostId {
        self.ports[port].host
    }

    /// Number of ports.
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }

    /// Injects `packets` from `src` at time `now`: egress queueing (tail-drop
    /// at a full buffer), fault injection, core propagation, then a scheduled
    /// ingress arrival at the peer's host.
    pub fn send(&mut self, now: Nanos, src: PortId, packets: Vec<Packet>) {
        let dst = self.ports[src]
            .peer
            .expect("port used before connect() wired its peer");
        let src_host = self.ports[src].host;
        let buffer_ns = self.link.buffer_ns();
        for packet in packets {
            self.stats.offered += 1;
            let bytes = packet.wire_len();
            let egress = &mut self.hosts[src_host].egress;
            if egress.free_at().saturating_sub(now) > buffer_ns {
                self.stats.dropped_egress += 1;
                continue;
            }
            let tx_done = egress.schedule(now, self.link.serialization_ns(bytes));
            match self.faults.admit() {
                Admission::Drop => {
                    self.stats.dropped_faults += 1;
                }
                Admission::Deliver {
                    extra_delay_ns,
                    duplicate_delay_ns,
                } => {
                    let base = tx_done + self.link.propagation_ns + extra_delay_ns;
                    // Same-leaf traffic (and the whole big-switch topology)
                    // goes straight to the destination's ingress; cross-leaf
                    // traffic climbs to an ECMP-chosen spine first.
                    let first_hop = |packet: &Packet| match self.topology {
                        Topology::LeafSpine(ls) => {
                            let src_leaf = src_host / ls.hosts_per_leaf.max(1);
                            let dst_leaf = self.ports[dst].host / ls.hosts_per_leaf.max(1);
                            if src_leaf == dst_leaf {
                                NetEvent::IngressArrive {
                                    dst,
                                    packet: packet.clone(),
                                }
                            } else {
                                NetEvent::UplinkArrive {
                                    dst,
                                    src_leaf,
                                    spine: Self::ecmp_spine(&ls, packet),
                                    packet: packet.clone(),
                                }
                            }
                        }
                        Topology::BigSwitch => NetEvent::IngressArrive {
                            dst,
                            packet: packet.clone(),
                        },
                    };
                    if let Some(extra) = duplicate_delay_ns {
                        self.stats.duplicated += 1;
                        self.queue.push(base + extra, first_hop(&packet));
                    }
                    self.queue.push(base, first_hop(&packet));
                }
            }
        }
    }

    /// Time of the fabric's next internal event (an ingress-edge arrival or a
    /// completed delivery), if traffic is in flight.  This is a lower bound
    /// on the next delivery time: schedulers must re-poll after every
    /// [`pop_arrival`](Self::pop_arrival) call, bookkeeping steps included.
    pub fn next_arrival(&self) -> Option<Nanos> {
        self.queue.next_at()
    }

    /// Advances the fabric by exactly one internal event and returns the
    /// delivery as `(time, port, packet)` if that event completed one.
    ///
    /// Ingress-contention bookkeeping (a packet reaching the far edge of the
    /// core and queueing on the destination host's ingress link, possibly
    /// tail-dropping) returns `None`; the caller re-polls
    /// [`next_arrival`](Self::next_arrival) — which may now be later than
    /// other scheduler causes (workload sends, timers), so processing only
    /// one event per call keeps the global event order correct.
    pub fn pop_arrival(&mut self) -> Option<(Nanos, PortId, Packet)> {
        let buffer_ns = self.link.buffer_ns();
        let (at, ev) = self.queue.pop()?;
        match ev {
            NetEvent::UplinkArrive {
                dst,
                src_leaf,
                spine,
                mut packet,
            } => {
                let Topology::LeafSpine(ls) = self.topology else {
                    unreachable!("uplink event on a big-switch fabric");
                };
                let per_packet_ns = self.spine_serialization_ns(&ls, self.link.mtu);
                let spine_buffer_ns = per_packet_ns * self.link.buffer_packets as Nanos;
                let idx = self.spine_link_index(&ls, src_leaf, spine);
                let uplink = &mut self.uplinks[idx];
                let backlog_ns = uplink.free_at().saturating_sub(at);
                if backlog_ns > spine_buffer_ns {
                    self.stats.dropped_spine += 1;
                    return None;
                }
                Self::maybe_mark(
                    self.ecn,
                    &mut self.stats,
                    &mut packet,
                    backlog_ns,
                    per_packet_ns,
                );
                let ser = self.spine_serialization_ns(&ls, packet.wire_len());
                let up_done = self.uplinks[idx].schedule(at, ser);
                let dst_leaf = self.ports[dst].host / ls.hosts_per_leaf.max(1);
                self.queue.push(
                    up_done + self.link.propagation_ns,
                    NetEvent::DownlinkArrive {
                        dst,
                        dst_leaf,
                        spine,
                        packet,
                    },
                );
                None
            }
            NetEvent::DownlinkArrive {
                dst,
                dst_leaf,
                spine,
                mut packet,
            } => {
                let Topology::LeafSpine(ls) = self.topology else {
                    unreachable!("downlink event on a big-switch fabric");
                };
                let per_packet_ns = self.spine_serialization_ns(&ls, self.link.mtu);
                let spine_buffer_ns = per_packet_ns * self.link.buffer_packets as Nanos;
                let idx = self.spine_link_index(&ls, dst_leaf, spine);
                let downlink = &mut self.downlinks[idx];
                let backlog_ns = downlink.free_at().saturating_sub(at);
                if backlog_ns > spine_buffer_ns {
                    self.stats.dropped_spine += 1;
                    return None;
                }
                Self::maybe_mark(
                    self.ecn,
                    &mut self.stats,
                    &mut packet,
                    backlog_ns,
                    per_packet_ns,
                );
                let ser = self.spine_serialization_ns(&ls, packet.wire_len());
                let down_done = self.downlinks[idx].schedule(at, ser);
                self.queue.push(
                    down_done + self.link.propagation_ns,
                    NetEvent::IngressArrive { dst, packet },
                );
                None
            }
            NetEvent::IngressArrive { dst, mut packet } => {
                let host = self.ports[dst].host;
                let per_packet_ns = self.link.serialization_ns(self.link.mtu).max(1);
                let ingress = &mut self.hosts[host].ingress;
                let backlog_ns = ingress.free_at().saturating_sub(at);
                if backlog_ns > buffer_ns {
                    self.stats.dropped_ingress += 1;
                    return None;
                }
                self.stats.peak_ingress_backlog_packets = self
                    .stats
                    .peak_ingress_backlog_packets
                    .max(backlog_ns / per_packet_ns);
                Self::maybe_mark(
                    self.ecn,
                    &mut self.stats,
                    &mut packet,
                    backlog_ns,
                    per_packet_ns,
                );
                let bytes = packet.wire_len();
                let ingress = &mut self.hosts[host].ingress;
                let rx_done = ingress.schedule(at, self.link.serialization_ns(bytes));
                self.queue.push(rx_done, NetEvent::Deliver { dst, packet });
                None
            }
            NetEvent::Deliver { dst, packet } => {
                self.stats.delivered += 1;
                self.stats.wire_bytes += packet.wire_len() as u64;
                Some((at, dst, packet))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_wire::{OverlayTcpHeader, PacketPayload, PacketType, SmtOptionArea, SmtOverlayHeader};

    /// Payload length that puts exactly 1250 B on the wire (= 100 ns of
    /// serialization at the default 100 Gb/s), whatever the header overhead.
    const LEN_1250B: usize = 1250 - smt_wire::IPV4_HEADER_LEN - smt_wire::SMT_OVERLAY_LEN;

    fn packet(len: usize) -> Packet {
        Packet {
            ip: smt_wire::IpHeader::V4(smt_wire::Ipv4Header::new(
                [10, 0, 0, 1],
                [10, 0, 0, 2],
                smt_wire::IPPROTO_SMT,
                (smt_wire::IPV4_HEADER_LEN + smt_wire::SMT_OVERLAY_LEN + len) as u16,
            )),
            overlay: SmtOverlayHeader {
                tcp: OverlayTcpHeader::new(1, 2, PacketType::Data),
                options: SmtOptionArea::new(0, len as u32),
            },
            payload: PacketPayload::Data(vec![0xaa; len].into()),
            corrupted: false,
        }
    }

    /// Drains fabric bookkeeping until the next delivery (test convenience
    /// for the one-event-per-call `pop_arrival` contract).
    fn next_delivery(f: &mut Fabric) -> Option<(Nanos, PortId, Packet)> {
        while f.next_arrival().is_some() {
            if let Some(d) = f.pop_arrival() {
                return Some(d);
            }
        }
        None
    }

    fn two_port_fabric(link: LinkConfig, faults: FaultConfig) -> (Fabric, PortId, PortId) {
        let mut f = Fabric::new(link, faults);
        let h0 = f.add_host();
        let h1 = f.add_host();
        let a = f.add_port(h0);
        let b = f.add_port(h1);
        f.connect(a, b);
        (f, a, b)
    }

    #[test]
    fn packets_arrive_after_serialization_and_propagation() {
        let (mut f, a, b) = two_port_fabric(LinkConfig::default(), FaultConfig::none());
        f.send(0, a, vec![packet(LEN_1250B)]); // 100 ns at 100 Gb/s
        let (at, port, _) = next_delivery(&mut f).unwrap();
        assert_eq!(port, b);
        // 100 ns egress + 1000 ns core + 100 ns ingress.
        assert_eq!(at, 1200);
        assert!(next_delivery(&mut f).is_none());
        assert_eq!(f.stats.delivered, 1);
    }

    #[test]
    fn egress_serialization_queues_back_to_back_packets() {
        let (mut f, a, _) = two_port_fabric(LinkConfig::default(), FaultConfig::none());
        f.send(0, a, vec![packet(LEN_1250B), packet(LEN_1250B)]);
        let (t1, _, _) = next_delivery(&mut f).unwrap();
        let (t2, _, _) = next_delivery(&mut f).unwrap();
        assert_eq!(t2 - t1, 100, "second packet serialized behind the first");
    }

    #[test]
    fn incast_contends_on_the_receiver_ingress_link() {
        let mut f = Fabric::new(LinkConfig::default(), FaultConfig::none());
        let sinks = f.add_host();
        let sink_a = f.add_port(sinks);
        let sink_b = f.add_port(sinks);
        let ha = f.add_host();
        let hb = f.add_host();
        let pa = f.add_port(ha);
        let pb = f.add_port(hb);
        f.connect(pa, sink_a);
        f.connect(pb, sink_b);
        // Two senders transmit simultaneously; their packets serialize in
        // parallel on their own egress links but share the sink's ingress.
        f.send(0, pa, vec![packet(LEN_1250B)]);
        f.send(0, pb, vec![packet(LEN_1250B)]);
        let (t1, _, _) = next_delivery(&mut f).unwrap();
        let (t2, _, _) = next_delivery(&mut f).unwrap();
        assert_eq!(t1, 1200);
        assert_eq!(t2, 1300, "second sender queued behind the first at ingress");
    }

    #[test]
    fn finite_buffers_tail_drop() {
        let link = LinkConfig {
            buffer_packets: 2,
            ..LinkConfig::default()
        };
        let (mut f, a, _) = two_port_fabric(link, FaultConfig::none());
        let burst: Vec<Packet> = (0..64).map(|_| packet(1400)).collect();
        f.send(0, a, burst);
        assert!(f.stats.dropped_egress > 0, "egress buffer overflowed");
        let mut arrivals = 0;
        while next_delivery(&mut f).is_some() {
            arrivals += 1;
        }
        assert_eq!(arrivals + f.stats.dropped_egress, 64);
    }

    #[test]
    fn seeded_faults_reproduce_exactly() {
        let run = |seed: u64| {
            let cfg = FaultConfig {
                loss: 0.2,
                duplicate: 0.3,
                reorder: 0.5,
                seed,
                ..FaultConfig::default()
            };
            let (mut f, a, _) = two_port_fabric(LinkConfig::default(), cfg);
            for _ in 0..50 {
                f.send(0, a, vec![packet(500)]);
            }
            let mut order = Vec::new();
            while let Some((at, _, _)) = next_delivery(&mut f) {
                order.push(at);
            }
            (order, f.fault_stats())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).1, run(8).1);
    }

    #[test]
    fn scramble_flight_duplicates_and_shuffles() {
        let mut link = FaultyLink::new(FaultConfig::chaotic(3));
        let mut flight: Vec<Packet> = (1..=20).map(|i| packet(i * 10)).collect();
        let original = flight.clone();
        link.scramble_flight(&mut flight);
        assert_eq!(flight.len(), 40, "every packet duplicated");
        assert!(
            flight
                .iter()
                .zip(&original)
                .any(|(shuffled, orig)| shuffled != orig),
            "flight order changed"
        );
        assert_eq!(link.stats.dropped, 0);
        assert_eq!(link.stats.duplicated, 20);
    }

    /// Leaf–spine fabric: `n_hosts` hosts, one port each, port `i` connected
    /// to port `i ^ 1` (so pair (0,1), (2,3), ... are flow endpoints is NOT
    /// assumed — callers connect explicitly).
    fn leaf_spine_fabric(
        n_hosts: usize,
        ls: LeafSpineConfig,
        link: LinkConfig,
        ecn: Option<EcnConfig>,
    ) -> (Fabric, Vec<PortId>) {
        let mut f = Fabric::with_topology(link, FaultConfig::none(), Topology::LeafSpine(ls), ecn);
        let ports: Vec<PortId> = (0..n_hosts)
            .map(|_| {
                let h = f.add_host();
                f.add_port(h)
            })
            .collect();
        (f, ports)
    }

    #[test]
    fn leaf_spine_cross_leaf_pays_two_switch_hops() {
        let ls = LeafSpineConfig {
            hosts_per_leaf: 2,
            spines: 2,
            oversubscription: 1.0,
        };
        // Hosts 0,1 on leaf 0; hosts 2,3 on leaf 1.  Uplinks run at
        // 100 Gb/s * 2 hosts / 2 spines = the host rate, so serialization is
        // 100 ns per 1250 B everywhere.
        let (mut f, p) = leaf_spine_fabric(4, ls, LinkConfig::default(), None);
        f.connect(p[0], p[2]);
        f.send(0, p[0], vec![packet(LEN_1250B)]);
        let (at, port, _) = next_delivery(&mut f).unwrap();
        assert_eq!(port, p[2]);
        // egress 100 + prop 1000 + uplink 100 + prop 1000 + downlink 100 +
        // prop 1000 + ingress 100.
        assert_eq!(at, 3400);
    }

    #[test]
    fn leaf_spine_same_leaf_matches_big_switch_timing() {
        let ls = LeafSpineConfig {
            hosts_per_leaf: 2,
            spines: 2,
            oversubscription: 1.0,
        };
        let (mut f, p) = leaf_spine_fabric(4, ls, LinkConfig::default(), None);
        f.connect(p[0], p[1]); // both on leaf 0
        f.send(0, p[0], vec![packet(LEN_1250B)]);
        let (at, _, _) = next_delivery(&mut f).unwrap();
        assert_eq!(at, 1200, "intra-leaf traffic never climbs to a spine");
        assert_eq!(f.stats.dropped_spine, 0);
    }

    #[test]
    fn ecmp_is_deterministic_per_flow_and_spreads_across_spines() {
        let ls = LeafSpineConfig {
            hosts_per_leaf: 2,
            spines: 4,
            oversubscription: 1.0,
        };
        let mut seen = [false; 4];
        for port in 0..64u16 {
            let mut pk = packet(100);
            pk.overlay.tcp.src_port = port;
            assert_eq!(
                Fabric::ecmp_spine(&ls, &pk),
                Fabric::ecmp_spine(&ls, &pk),
                "same 4-tuple, same spine"
            );
            seen[Fabric::ecmp_spine(&ls, &pk)] = true;
        }
        assert!(seen.iter().all(|&s| s), "64 flows cover all 4 spines");
    }

    #[test]
    fn oversubscribed_uplink_is_the_bottleneck() {
        let ls = LeafSpineConfig {
            hosts_per_leaf: 2,
            spines: 1,
            oversubscription: 4.0,
        };
        // Uplink: 100 Gb/s * 2/1 / 4.0 = 50 Gb/s -> 200 ns per 1250 B.
        let (mut f, p) = leaf_spine_fabric(4, ls, LinkConfig::default(), None);
        f.connect(p[0], p[2]);
        f.send(0, p[0], vec![packet(LEN_1250B); 3]);
        let mut arrivals = Vec::new();
        while let Some((at, _, _)) = next_delivery(&mut f) {
            arrivals.push(at);
        }
        assert_eq!(arrivals.len(), 3);
        assert_eq!(
            arrivals[1] - arrivals[0],
            200,
            "deliveries paced by the slow uplink, not the 100 ns host link"
        );
        assert_eq!(arrivals[2] - arrivals[1], 200);
    }

    #[test]
    fn full_spine_buffer_tail_drops() {
        let ls = LeafSpineConfig {
            hosts_per_leaf: 2,
            spines: 1,
            oversubscription: 16.0,
        };
        let link = LinkConfig {
            buffer_packets: 2,
            ..LinkConfig::default()
        };
        let (mut f, p) = leaf_spine_fabric(4, ls, link, None);
        f.connect(p[0], p[2]);
        // Pace sends at the 100 ns host-egress rate so the egress queue
        // stays empty and the 800 ns/packet uplink is the overflow point.
        for i in 0..32 {
            f.send(i * 100, p[0], vec![packet(LEN_1250B)]);
        }
        while next_delivery(&mut f).is_some() {}
        assert!(f.stats.dropped_spine > 0, "overflow lands in dropped_spine");
        assert_eq!(
            f.stats.delivered + f.stats.dropped_spine,
            32,
            "every packet either arrives or is accounted as a spine drop"
        );
    }

    #[test]
    fn ecn_marks_over_threshold_queues_and_tracks_peak_backlog() {
        // Big-switch incast: four senders flood one receiver so its ingress
        // backlog crosses the 2-packet ECN threshold.
        let ecn = EcnConfig {
            marking_threshold_packets: 2,
        };
        let mut f = Fabric::with_topology(
            LinkConfig::default(),
            FaultConfig::none(),
            Topology::BigSwitch,
            Some(ecn),
        );
        let sink = f.add_host();
        let mut sender_ports = Vec::new();
        let mut sink_ports = Vec::new();
        for _ in 0..4 {
            let h = f.add_host();
            let sp = f.add_port(h);
            let rp = f.add_port(sink);
            f.connect(sp, rp);
            sender_ports.push(sp);
            sink_ports.push(rp);
        }
        for &sp in &sender_ports {
            let mut pk = packet(LEN_1250B);
            pk.ip.set_ecn_capable();
            f.send(0, sp, vec![pk.clone(), pk.clone(), pk]);
        }
        let mut ce = 0;
        while let Some((_, _, pk)) = next_delivery(&mut f) {
            if pk.ip.is_ce_marked() {
                ce += 1;
            }
        }
        assert!(ce > 0, "deep ingress queue CE-marks ECN-capable packets");
        assert_eq!(f.stats.ecn_marked, ce);
        assert!(
            f.stats.peak_ingress_backlog_packets >= 2,
            "peak backlog gauge saw the incast queue (got {})",
            f.stats.peak_ingress_backlog_packets
        );
    }

    #[test]
    fn ecn_never_marks_non_capable_packets() {
        let ecn = EcnConfig {
            marking_threshold_packets: 0,
        };
        let (mut f, a, _) = {
            let mut f = Fabric::with_topology(
                LinkConfig::default(),
                FaultConfig::none(),
                Topology::BigSwitch,
                Some(ecn),
            );
            let h0 = f.add_host();
            let h1 = f.add_host();
            let a = f.add_port(h0);
            let b = f.add_port(h1);
            f.connect(a, b);
            (f, a, b)
        };
        f.send(0, a, vec![packet(LEN_1250B); 4]);
        while let Some((_, _, pk)) = next_delivery(&mut f) {
            assert!(!pk.ip.is_ce_marked());
        }
        assert_eq!(f.stats.ecn_marked, 0, "not-ECT packets pass unmarked");
    }
}
