//! NIC flow-context management for TLS autonomous offload (paper §4.4.2).
//!
//! Autonomous offload keeps a *flow context* in NIC memory: the AEAD key, the
//! static IV and a **self-incrementing record sequence number**.  A segment whose
//! first record does not match the context's expected sequence number must be
//! preceded by a *resync descriptor* in the same queue, otherwise the NIC
//! produces corrupted ciphertext (paper Fig. 2).
//!
//! Per-message record sequence spaces make this workable for a message-based
//! transport: messages that share a (5-tuple, queue) pair can share one flow
//! context, because segments within a queue are serialized, so a resync
//! descriptor deterministically applies to the segment that follows it.  Messages
//! sent from different cores go to different queues and therefore use different
//! contexts, avoiding the cross-queue ordering problem of §3.2.  The paper's
//! implementation allocates **one context per queue per 5-tuple**, which is the
//! default here; the ablation benches vary `contexts_per_queue`.

use serde::{Deserialize, Serialize};
use smt_wire::TlsOffloadDescriptor;

/// What the sender must do for a segment it is about to queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowContextUpdate {
    /// The offload descriptor to attach to the TSO segment.
    pub descriptor: TlsOffloadDescriptor,
    /// True if a new flow context had to be allocated in NIC memory (expensive:
    /// requires programming the key) rather than reusing one via resync.
    pub allocated: bool,
}

#[derive(Debug, Clone, Copy)]
struct FlowContext {
    id: u32,
    /// Record sequence number the NIC expects next, `None` until first use.
    expected_seq: Option<u64>,
}

/// Allocates and tracks flow contexts for one session (one 5-tuple).
#[derive(Debug)]
pub struct FlowContextManager {
    queues: Vec<Vec<FlowContext>>,
    contexts_per_queue: usize,
    next_context_id: u32,
    /// Counters for the ablation study.
    pub stats: FlowContextStats,
}

/// Statistics on flow-context usage.
#[derive(Debug, Default, Clone, Copy, Serialize, Deserialize)]
pub struct FlowContextStats {
    /// Contexts allocated (key programmed into NIC memory).
    pub allocations: u64,
    /// Segments that required a resync descriptor.
    pub resyncs: u64,
    /// Segments that matched the context's expected sequence number.
    pub in_sequence: u64,
}

impl FlowContextManager {
    /// Creates a manager for `nic_queues` queues with at most
    /// `contexts_per_queue` contexts each.
    pub fn new(nic_queues: usize, contexts_per_queue: usize) -> Self {
        Self {
            queues: vec![Vec::new(); nic_queues.max(1)],
            contexts_per_queue: contexts_per_queue.max(1),
            next_context_id: 0,
            stats: FlowContextStats::default(),
        }
    }

    /// Number of NIC queues managed.
    pub fn queue_count(&self) -> usize {
        self.queues.len()
    }

    /// Total contexts currently allocated (across queues).
    pub fn allocated_contexts(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// Prepares a segment whose first record uses `first_record_seq` and which
    /// contains `record_count` records, to be sent on `queue`.
    ///
    /// Returns the offload descriptor (flow context id + resync flag) and
    /// advances the chosen context's expected sequence number past the segment.
    pub fn prepare_segment(
        &mut self,
        queue: usize,
        first_record_seq: u64,
        record_count: u64,
    ) -> FlowContextUpdate {
        let queue_idx = queue % self.queues.len();
        let contexts_per_queue = self.contexts_per_queue;

        // Prefer a context already expecting exactly this sequence number
        // (continuation of the same message on the same queue: no resync).
        let q = &mut self.queues[queue_idx];
        let position = q
            .iter()
            .position(|c| c.expected_seq == Some(first_record_seq));

        let (idx, allocated) = match position {
            Some(i) => (i, false),
            None => {
                if q.len() < contexts_per_queue {
                    // Allocate a fresh context (programs the key into the NIC).
                    let id = self.next_context_id;
                    self.next_context_id += 1;
                    q.push(FlowContext {
                        id,
                        expected_seq: None,
                    });
                    self.stats.allocations += 1;
                    (q.len() - 1, true)
                } else {
                    // Reuse the least-recently-used context via resync (cheaper
                    // than allocation, §4.4.2).
                    (0, false)
                }
            }
        };

        let ctx = &mut q[idx];
        let resync = ctx.expected_seq != Some(first_record_seq);
        if resync {
            self.stats.resyncs += 1;
        } else {
            self.stats.in_sequence += 1;
        }
        ctx.expected_seq = Some(first_record_seq + record_count);
        // Move the context to the back so repeated reuse cycles fairly (LRU).
        let ctx_copy = *ctx;
        q.remove(idx);
        q.push(ctx_copy);

        FlowContextUpdate {
            descriptor: TlsOffloadDescriptor {
                flow_context_id: ctx_copy.id,
                first_record_seq,
                resync,
            },
            allocated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_message_same_queue_needs_no_resync() {
        let mut m = FlowContextManager::new(4, 1);
        // Message 0: records 0..4 sent as two segments of two records each.
        let a = m.prepare_segment(0, 0, 2);
        let b = m.prepare_segment(0, 2, 2);
        assert!(a.allocated);
        assert!(a.descriptor.resync); // first use of a fresh context
        assert!(!b.descriptor.resync); // continuation is in sequence
        assert_eq!(a.descriptor.flow_context_id, b.descriptor.flow_context_id);
        assert_eq!(m.stats.in_sequence, 1);
    }

    #[test]
    fn new_message_on_same_queue_reuses_context_with_resync() {
        let mut m = FlowContextManager::new(1, 1);
        let layout = smt_crypto::SeqnoLayout::default();
        let msg1 = layout.compose(1, 0).unwrap().value();
        let msg2 = layout.compose(2, 0).unwrap().value();
        let a = m.prepare_segment(0, msg1, 1);
        let b = m.prepare_segment(0, msg2, 1);
        // One context total: the second message resyncs it rather than
        // allocating a new one (cheap reuse, §4.4.2).
        assert_eq!(m.allocated_contexts(), 1);
        assert_eq!(a.descriptor.flow_context_id, b.descriptor.flow_context_id);
        assert!(b.descriptor.resync);
        assert!(!b.allocated);
        assert_eq!(m.stats.allocations, 1);
        assert_eq!(m.stats.resyncs, 2);
    }

    #[test]
    fn different_queues_use_different_contexts() {
        let mut m = FlowContextManager::new(4, 1);
        let a = m.prepare_segment(0, 0, 1);
        let b = m.prepare_segment(1, 100, 1);
        assert_ne!(a.descriptor.flow_context_id, b.descriptor.flow_context_id);
        assert_eq!(m.allocated_contexts(), 2);
    }

    #[test]
    fn interleaved_messages_alternate_resyncs() {
        // Two messages interleaving on one queue with one context: every switch
        // between them costs a resync, but correctness is preserved because the
        // queue serializes descriptor + segment pairs.
        let mut m = FlowContextManager::new(1, 1);
        let layout = smt_crypto::SeqnoLayout::default();
        let m1r0 = layout.compose(1, 0).unwrap().value();
        let m2r0 = layout.compose(2, 0).unwrap().value();
        let m1r1 = layout.compose(1, 1).unwrap().value();
        let m2r1 = layout.compose(2, 1).unwrap().value();
        m.prepare_segment(0, m1r0, 1);
        m.prepare_segment(0, m2r0, 1);
        m.prepare_segment(0, m1r1, 1);
        m.prepare_segment(0, m2r1, 1);
        assert_eq!(m.stats.resyncs, 4);
        assert_eq!(m.stats.in_sequence, 0);
    }

    #[test]
    fn more_contexts_reduce_resyncs_for_interleaving() {
        // Ablation: with two contexts per queue, two interleaved messages each
        // keep their own context and stay in sequence after the first segment.
        let mut m = FlowContextManager::new(1, 2);
        let layout = smt_crypto::SeqnoLayout::default();
        for record in 0..4u64 {
            for msg in [1u64, 2u64] {
                let seq = layout.compose(msg, record).unwrap().value();
                m.prepare_segment(0, seq, 1);
            }
        }
        assert_eq!(m.allocated_contexts(), 2);
        // First segment of each message is a resync; the remaining 6 are not.
        assert_eq!(m.stats.resyncs, 2);
        assert_eq!(m.stats.in_sequence, 6);
    }

    #[test]
    fn queue_index_wraps() {
        let mut m = FlowContextManager::new(2, 1);
        let a = m.prepare_segment(5, 0, 1); // 5 % 2 == 1
        let b = m.prepare_segment(1, 1, 1);
        assert_eq!(a.descriptor.flow_context_id, b.descriptor.flow_context_id);
    }
}
