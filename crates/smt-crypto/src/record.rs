//! TLS 1.3 record protection as used by SMT, kTLS and TCPLS — the **single
//! shared record datapath** for the whole workspace.
//!
//! A protected record is `AEAD(plaintext ‖ content-type ‖ zero-padding)` with the
//! serialized record header as additional authenticated data and a nonce derived
//! from the per-direction IV and the record sequence number (RFC 8446 §5.2/§5.3).
//!
//! For **TLS/TCP and kTLS** the sequence number is the per-connection counter; for
//! **SMT** it is the composite value from [`crate::seqno`] (message ID ‖ record
//! index), which keeps nonces unique across the per-message sequence spaces
//! (paper §4.4, Fig. 4).  [`RecordProtector`] is agnostic: it just takes a 64-bit
//! number — both the SMT segmenter/reassembler and the kTLS baseline drive the
//! same seal/open implementation, so the evaluation compares *sequence-number
//! disciplines*, never two different AEAD framings.
//!
//! Two API levels exist:
//!
//! * the **zero-copy hot path** — [`RecordProtector::seal_parts_into`] appends a
//!   finished wire record straight into a caller-supplied [`BytesMut`] and
//!   encrypts in place; [`RecordProtector::open`] decrypts into an internal
//!   reusable scratch buffer and lends the plaintext out by reference. In steady
//!   state neither direction performs a per-record heap allocation.
//! * the **allocating conveniences** — [`RecordProtector::encrypt_record`] /
//!   [`RecordProtector::decrypt_record`] keep the original `Vec`-returning shape
//!   for handshake flights, tests and examples.
//!
//! Padding (`pad_to`) implements the length-concealment mechanism discussed in
//! §6.1: the true application-data length is hidden by zero padding inside the
//! ciphertext, and the plaintext framing/length metadata then reflects the padded
//! size.

use crate::aead::{AeadKey, Iv, TAG_LEN};
use crate::key_schedule::{Secret, TrafficKeys};
use crate::suite::CipherSuite;
use crate::{CryptoError, CryptoResult};
use bytes::BytesMut;
use smt_wire::{ContentType, TlsRecordHeader, MAX_TLS_RECORD};

/// A decrypted record: its inner content type and plaintext (padding removed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordPlaintext {
    /// The inner content type (application data, handshake, alert).
    pub content_type: ContentType,
    /// The plaintext with padding stripped.
    pub plaintext: Vec<u8>,
}

/// A decrypted record borrowed from the protector's scratch buffer
/// (the zero-copy counterpart of [`RecordPlaintext`]).
#[derive(Debug, PartialEq, Eq)]
pub struct OpenedRecord<'a> {
    /// The inner content type (application data, handshake, alert).
    pub content_type: ContentType,
    /// The plaintext with padding stripped, valid until the next `open` call.
    pub plaintext: &'a [u8],
}

/// Padding policy for one sealed record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Padding {
    /// Use the protector's configured policy (`with_padding`).
    #[default]
    Default,
    /// No padding for this record, regardless of configuration.
    None,
    /// Pad this record's plaintext up to a multiple of the given granularity.
    Granularity(usize),
}

/// One direction of record protection: seals or opens records given an explicit
/// 64-bit record sequence number. This is the one shared datapath driven by the
/// SMT composite-seqno engine and the kTLS per-connection baseline alike.
pub struct RecordProtector {
    key: AeadKey,
    iv: Iv,
    /// Optional padded size: every record is padded up to a multiple of this
    /// value (length concealment, §6.1). `None` disables padding.
    pad_to: Option<usize>,
    /// Reusable decrypt scratch; cleared and refilled on every `open`.
    scratch: BytesMut,
}

/// Backwards-compatible name from the seed tree; the type was unified into
/// [`RecordProtector`] when the duplicated datapaths were merged.
pub type RecordCipher = RecordProtector;

impl std::fmt::Debug for RecordProtector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecordProtector")
            .field("pad_to", &self.pad_to)
            .finish_non_exhaustive()
    }
}

impl RecordProtector {
    /// Creates a record protector from derived traffic keys.
    pub fn new(keys: TrafficKeys) -> Self {
        Self {
            key: keys.key,
            iv: keys.iv,
            pad_to: None,
            scratch: BytesMut::new(),
        }
    }

    /// Creates a record protector directly from a traffic secret.
    pub fn from_secret(suite: CipherSuite, secret: &Secret) -> CryptoResult<Self> {
        Ok(Self::new(TrafficKeys::derive(suite, secret)?))
    }

    /// Enables length-concealment padding to multiples of `granularity` bytes.
    pub fn with_padding(mut self, granularity: usize) -> Self {
        self.pad_to = if granularity <= 1 {
            None
        } else {
            Some(granularity)
        };
        self
    }

    fn granularity_for(&self, padding: Padding) -> Option<usize> {
        match padding {
            Padding::Default => self.pad_to,
            Padding::None => None,
            Padding::Granularity(g) if g > 1 => Some(g),
            Padding::Granularity(_) => None,
        }
    }

    fn padded_len_with(&self, len: usize, padding: Padding) -> usize {
        match self.granularity_for(padding) {
            Some(g) => len.div_ceil(g).max(1) * g,
            None => len,
        }
    }

    /// Size of the on-the-wire record (header + ciphertext + tag) produced for a
    /// plaintext of `len` bytes under the configured padding policy.
    pub fn wire_record_len(&self, len: usize) -> usize {
        self.wire_record_len_with(len, Padding::Default)
    }

    /// [`Self::wire_record_len`] under an explicit padding policy.
    pub fn wire_record_len_with(&self, len: usize, padding: Padding) -> usize {
        let padded = self.padded_len_with(len, padding);
        TlsRecordHeader::LEN + TlsRecordHeader::ciphertext_len(padded)
    }

    /// Seals one record whose plaintext is the concatenation of `parts`,
    /// appending the full wire encoding (5-byte header, ciphertext, tag) to
    /// `out`. Returns the number of bytes appended.
    ///
    /// This is the zero-allocation hot path: the inner plaintext is assembled
    /// directly in `out` and encrypted in place, so a warmed-up `out` buffer
    /// makes the whole seal allocation-free.
    pub fn seal_parts_into(
        &self,
        seq: u64,
        content_type: ContentType,
        parts: &[&[u8]],
        padding: Padding,
        out: &mut BytesMut,
    ) -> CryptoResult<usize> {
        let plaintext_len: usize = parts.iter().map(|p| p.len()).sum();
        if plaintext_len > MAX_TLS_RECORD {
            return Err(CryptoError::RecordTooLarge {
                size: plaintext_len,
                max: MAX_TLS_RECORD,
            });
        }
        let padded_len = self.padded_len_with(plaintext_len, padding);
        if padded_len > MAX_TLS_RECORD {
            return Err(CryptoError::RecordTooLarge {
                size: padded_len,
                max: MAX_TLS_RECORD,
            });
        }

        // Inner plaintext: content ‖ content-type ‖ zero padding, assembled
        // directly in the output buffer after the 5-byte header.
        let inner_len = padded_len + 1;
        let body_len = inner_len + TAG_LEN;
        let header = TlsRecordHeader::application_data(body_len)?;
        let start = out.len();
        out.reserve(TlsRecordHeader::LEN + body_len);
        out.extend_from_slice(&header.aad());
        for part in parts {
            out.extend_from_slice(part);
        }
        out.put_u8(content_type as u8);
        out.resize(start + TlsRecordHeader::LEN + inner_len, 0);

        let nonce = self.iv.nonce_for(seq);
        let aad = header.aad();
        let body_start = start + TlsRecordHeader::LEN;
        let tag = self
            .key
            .seal_in_place_detached(&nonce, &aad, &mut out[body_start..]);
        out.extend_from_slice(&tag);
        Ok(TlsRecordHeader::LEN + body_len)
    }

    /// Seals one record, appending its wire encoding to `out`
    /// (single-slice convenience over [`Self::seal_parts_into`]).
    pub fn seal_into(
        &self,
        seq: u64,
        content_type: ContentType,
        plaintext: &[u8],
        out: &mut BytesMut,
    ) -> CryptoResult<usize> {
        self.seal_parts_into(seq, content_type, &[plaintext], Padding::Default, out)
    }

    /// Opens one record from its full wire encoding (header + body), decrypting
    /// into the internal scratch buffer. Returns the borrowed plaintext and the
    /// number of wire bytes consumed. No per-record heap allocation occurs once
    /// the scratch buffer has warmed up.
    pub fn open(&mut self, seq: u64, wire: &[u8]) -> CryptoResult<(OpenedRecord<'_>, usize)> {
        let (header, hdr_len) = TlsRecordHeader::decode(wire)?;
        let body_len = header.length as usize;
        if wire.len() < hdr_len + body_len {
            return Err(CryptoError::Wire(smt_wire::WireError::Truncated {
                needed: hdr_len + body_len,
                available: wire.len(),
            }));
        }
        if body_len < TAG_LEN + 1 {
            return Err(CryptoError::AuthenticationFailed);
        }
        let (ciphertext, tag) = wire[hdr_len..hdr_len + body_len].split_at(body_len - TAG_LEN);
        let aad = header.aad();
        let nonce = self.iv.nonce_for(seq);

        self.scratch.clear();
        self.scratch.extend_from_slice(ciphertext);
        self.key
            .open_in_place_detached(&nonce, &aad, &mut self.scratch, tag)?;

        // Strip zero padding, then the inner content type byte (RFC 8446 §5.4).
        let mut end = self.scratch.len();
        while end > 0 && self.scratch[end - 1] == 0 {
            end -= 1;
        }
        if end == 0 {
            return Err(CryptoError::AuthenticationFailed);
        }
        let content_type =
            ContentType::from_u8(self.scratch[end - 1]).map_err(CryptoError::Wire)?;
        Ok((
            OpenedRecord {
                content_type,
                plaintext: &self.scratch[..end - 1],
            },
            hdr_len + body_len,
        ))
    }

    /// Encrypts one record, returning the full wire encoding as a fresh `Vec`
    /// (allocating convenience over [`Self::seal_parts_into`]).
    pub fn encrypt_record(
        &self,
        seq: u64,
        content_type: ContentType,
        plaintext: &[u8],
    ) -> CryptoResult<Vec<u8>> {
        let mut out = BytesMut::with_capacity(self.wire_record_len(plaintext.len()));
        self.seal_into(seq, content_type, plaintext, &mut out)?;
        Ok(out.into_vec())
    }

    /// Decrypts one record from its full wire encoding, returning an owned
    /// plaintext plus the number of bytes consumed (allocating convenience over
    /// [`Self::open`]).
    pub fn decrypt_record(
        &mut self,
        seq: u64,
        wire: &[u8],
    ) -> CryptoResult<(RecordPlaintext, usize)> {
        let (opened, consumed) = self.open(seq, wire)?;
        Ok((
            RecordPlaintext {
                content_type: opened.content_type,
                plaintext: opened.plaintext.to_vec(),
            },
            consumed,
        ))
    }
}

/// A matched pair of record protectors for a bidirectional session
/// (convenience for tests and the simulator).
pub struct RecordProtectorPair {
    /// Protector sealing data we send.
    pub sender: RecordProtector,
    /// Protector opening data we receive.
    pub receiver: RecordProtector,
}

/// Backwards-compatible name from the seed tree.
pub type RecordCipherPair = RecordProtectorPair;

impl RecordProtectorPair {
    /// Derives a symmetric pair from two traffic secrets.
    pub fn derive(
        suite: CipherSuite,
        send_secret: &Secret,
        recv_secret: &Secret,
    ) -> CryptoResult<Self> {
        Ok(Self {
            sender: RecordProtector::from_secret(suite, send_secret)?,
            receiver: RecordProtector::from_secret(suite, recv_secret)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key_schedule::HASH_LEN;

    fn cipher_pair() -> (RecordProtector, RecordProtector) {
        let secret = Secret([0x33; HASH_LEN]);
        let a = RecordProtector::from_secret(CipherSuite::Aes128GcmSha256, &secret).unwrap();
        let b = RecordProtector::from_secret(CipherSuite::Aes128GcmSha256, &secret).unwrap();
        (a, b)
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let (tx, mut rx) = cipher_pair();
        let wire = tx
            .encrypt_record(5, ContentType::ApplicationData, b"hello smt")
            .unwrap();
        let (pt, consumed) = rx.decrypt_record(5, &wire).unwrap();
        assert_eq!(consumed, wire.len());
        assert_eq!(pt.plaintext, b"hello smt");
        assert_eq!(pt.content_type, ContentType::ApplicationData);
    }

    #[test]
    fn zero_copy_seal_open_roundtrip() {
        let (tx, mut rx) = cipher_pair();
        let mut out = BytesMut::with_capacity(4096);
        let n1 = tx
            .seal_parts_into(
                1,
                ContentType::ApplicationData,
                &[b"hello ", b"zero-copy"],
                Padding::Default,
                &mut out,
            )
            .unwrap();
        let n2 = tx
            .seal_into(2, ContentType::ApplicationData, b"second", &mut out)
            .unwrap();
        assert_eq!(out.len(), n1 + n2);

        let (first, used1) = rx.open(1, &out).unwrap();
        assert_eq!(first.plaintext, b"hello zero-copy");
        assert_eq!(used1, n1);
        let (second, used2) = rx.open(2, &out[n1..]).unwrap();
        assert_eq!(second.plaintext, b"second");
        assert_eq!(used2, n2);
    }

    #[test]
    fn zero_copy_matches_allocating_path() {
        let (tx, mut rx) = cipher_pair();
        let mut out = BytesMut::new();
        tx.seal_into(9, ContentType::ApplicationData, b"same bytes", &mut out)
            .unwrap();
        let wire = tx
            .encrypt_record(9, ContentType::ApplicationData, b"same bytes")
            .unwrap();
        assert_eq!(out.as_ref(), wire.as_slice());
        assert_eq!(
            rx.decrypt_record(9, &wire).unwrap().0.plaintext,
            b"same bytes"
        );
    }

    #[test]
    fn steady_state_seal_reuses_buffer_capacity() {
        let (tx, _) = cipher_pair();
        let mut out = BytesMut::with_capacity(8192);
        tx.seal_into(0, ContentType::ApplicationData, &[7u8; 1024], &mut out)
            .unwrap();
        let cap = out.capacity();
        for seq in 1..50u64 {
            out.clear();
            tx.seal_into(seq, ContentType::ApplicationData, &[7u8; 1024], &mut out)
                .unwrap();
        }
        // The warmed buffer is never regrown by the hot path.
        assert_eq!(out.capacity(), cap);
    }

    #[test]
    fn wrong_sequence_number_rejected() {
        // This is the property the NIC autonomous offload relies on: a record
        // encrypted under seq N only decrypts under seq N (paper Fig. 2).
        let (tx, mut rx) = cipher_pair();
        let wire = tx
            .encrypt_record(7, ContentType::ApplicationData, b"data")
            .unwrap();
        assert!(rx.decrypt_record(8, &wire).is_err());
        assert!(rx.decrypt_record(7, &wire).is_ok());
    }

    #[test]
    fn tampering_rejected() {
        let (tx, mut rx) = cipher_pair();
        let mut wire = tx
            .encrypt_record(1, ContentType::ApplicationData, b"data")
            .unwrap();
        let last = wire.len() - 1;
        wire[last] ^= 0x80;
        assert_eq!(
            rx.decrypt_record(1, &wire).unwrap_err(),
            CryptoError::AuthenticationFailed
        );
    }

    #[test]
    fn header_is_authenticated() {
        let (tx, mut rx) = cipher_pair();
        let mut wire = tx
            .encrypt_record(1, ContentType::ApplicationData, b"data")
            .unwrap();
        // Forge the declared length (part of the AAD): must fail authentication
        // or truncation, never return plaintext.
        wire[4] = wire[4].wrapping_add(1);
        assert!(rx.decrypt_record(1, &wire).is_err());
    }

    #[test]
    fn handshake_content_type_preserved() {
        let (tx, mut rx) = cipher_pair();
        let wire = tx
            .encrypt_record(0, ContentType::Handshake, b"finished")
            .unwrap();
        let (pt, _) = rx.decrypt_record(0, &wire).unwrap();
        assert_eq!(pt.content_type, ContentType::Handshake);
    }

    #[test]
    fn padding_conceals_length() {
        let secret = Secret([0x44; HASH_LEN]);
        let tx = RecordProtector::from_secret(CipherSuite::Aes128GcmSha256, &secret)
            .unwrap()
            .with_padding(256);
        let mut rx = RecordProtector::from_secret(CipherSuite::Aes128GcmSha256, &secret).unwrap();

        let w1 = tx
            .encrypt_record(1, ContentType::ApplicationData, b"a")
            .unwrap();
        let w2 = tx
            .encrypt_record(2, ContentType::ApplicationData, &[b'b'; 200])
            .unwrap();
        // Both pad to the same wire size...
        assert_eq!(w1.len(), w2.len());
        assert_eq!(tx.wire_record_len(1), w1.len());
        // ...but decrypt to the true plaintexts.
        assert_eq!(rx.decrypt_record(1, &w1).unwrap().0.plaintext, b"a");
        assert_eq!(
            rx.decrypt_record(2, &w2).unwrap().0.plaintext,
            vec![b'b'; 200]
        );
    }

    #[test]
    fn per_record_padding_override() {
        let (tx, mut rx) = cipher_pair();
        let mut out = BytesMut::new();
        tx.seal_parts_into(
            1,
            ContentType::ApplicationData,
            &[b"x"],
            Padding::Granularity(128),
            &mut out,
        )
        .unwrap();
        assert_eq!(
            out.len(),
            tx.wire_record_len_with(1, Padding::Granularity(128))
        );
        assert_eq!(rx.open(1, &out).unwrap().0.plaintext, b"x");
    }

    #[test]
    fn zero_length_plaintext_roundtrips() {
        let (tx, mut rx) = cipher_pair();
        let wire = tx
            .encrypt_record(9, ContentType::ApplicationData, b"")
            .unwrap();
        let (pt, _) = rx.decrypt_record(9, &wire).unwrap();
        assert!(pt.plaintext.is_empty());
    }

    #[test]
    fn oversize_record_rejected() {
        let (tx, _) = cipher_pair();
        let big = vec![0u8; MAX_TLS_RECORD + 1];
        assert!(matches!(
            tx.encrypt_record(0, ContentType::ApplicationData, &big),
            Err(CryptoError::RecordTooLarge { .. })
        ));
    }

    #[test]
    fn truncated_wire_rejected() {
        let (tx, mut rx) = cipher_pair();
        let wire = tx
            .encrypt_record(0, ContentType::ApplicationData, b"data")
            .unwrap();
        assert!(rx.decrypt_record(0, &wire[..wire.len() - 4]).is_err());
        assert!(rx.decrypt_record(0, &wire[..3]).is_err());
    }

    #[test]
    fn composite_seqnos_give_unique_nonces_across_messages() {
        use crate::seqno::SeqnoLayout;
        let (tx, mut rx) = cipher_pair();
        let layout = SeqnoLayout::default();
        // Record 0 of message 1 and record 0 of message 2 share a record index
        // but must not share a nonce: decrypting one under the other's seq fails.
        let s1 = layout.compose(1, 0).unwrap().value();
        let s2 = layout.compose(2, 0).unwrap().value();
        let wire = tx
            .encrypt_record(s1, ContentType::ApplicationData, b"msg1")
            .unwrap();
        assert!(rx.decrypt_record(s2, &wire).is_err());
        assert_eq!(rx.decrypt_record(s1, &wire).unwrap().0.plaintext, b"msg1");
    }

    #[test]
    fn cipher_pair_helper() {
        let c = Secret([1u8; HASH_LEN]);
        let s = Secret([2u8; HASH_LEN]);
        let client = RecordProtectorPair::derive(CipherSuite::Aes128GcmSha256, &c, &s).unwrap();
        let mut server = RecordProtectorPair::derive(CipherSuite::Aes128GcmSha256, &s, &c).unwrap();
        let wire = client
            .sender
            .encrypt_record(0, ContentType::ApplicationData, b"ping")
            .unwrap();
        let (pt, _) = server.receiver.decrypt_record(0, &wire).unwrap();
        assert_eq!(pt.plaintext, b"ping");
    }
}
