//! Offline stand-in for the [`p256`](https://docs.rs/p256) crate.
//!
//! Pure-Rust NIST P-256 (secp256r1) with the API subset the workspace uses:
//! [`ecdh::EphemeralSecret`] / [`PublicKey`] for key agreement and
//! [`ecdsa::SigningKey`] / [`ecdsa::VerifyingKey`] / [`ecdsa::Signature`] for
//! signatures (DER-encoded, message prehashed with SHA-256 as in the real
//! crate's `Signer` impl). Field and group arithmetic are validated against
//! RFC 6979 / NIST vectors in the `arith` and `curve` modules.

#![forbid(unsafe_code)]

mod arith;
mod curve;

use arith::{from_be_bytes, to_be_bytes, U256};
use curve::{fn_, Affine, Point, N};
use rand::RngCore;

/// Error type covering every failure mode (invalid encodings, bad signatures).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p256 error")
    }
}

impl std::error::Error for Error {}

/// A validated P-256 public key (affine point).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublicKey {
    point: Affine,
}

impl PublicKey {
    /// Parses an SEC1-encoded point (uncompressed `04 ‖ x ‖ y` only).
    pub fn from_sec1_bytes(bytes: &[u8]) -> Result<Self, Error> {
        if bytes.len() != 65 || bytes[0] != 0x04 {
            return Err(Error);
        }
        let x = from_be_bytes(bytes[1..33].try_into().expect("32 bytes"));
        let y = from_be_bytes(bytes[33..65].try_into().expect("32 bytes"));
        let point = Affine {
            x,
            y,
            infinity: false,
        };
        if !point.is_on_curve() {
            return Err(Error);
        }
        Ok(Self { point })
    }

    /// Serializes to uncompressed SEC1 form (65 bytes).
    pub fn to_sec1_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(65);
        out.push(0x04);
        out.extend_from_slice(&to_be_bytes(&self.point.x));
        out.extend_from_slice(&to_be_bytes(&self.point.y));
        out
    }

    /// Returns an encoded-point wrapper (compatibility with the real API).
    pub fn to_encoded_point(&self, compress: bool) -> EncodedPoint {
        assert!(!compress, "compressed points are not supported");
        EncodedPoint {
            bytes: self.to_sec1_bytes(),
        }
    }

    fn to_point(self) -> Point {
        Point::from_affine(&self.point)
    }
}

/// An SEC1-encoded point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedPoint {
    bytes: Vec<u8>,
}

impl EncodedPoint {
    /// The raw encoding.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

/// Samples a uniform non-zero scalar in `[1, n-1]`.
fn random_scalar(rng: &mut impl RngCore) -> U256 {
    loop {
        let mut buf = [0u8; 32];
        rng.fill_bytes(&mut buf);
        let candidate = from_be_bytes(&buf);
        if !arith::is_zero(&candidate) && arith::lt(&candidate, &N) {
            return candidate;
        }
    }
}

/// Elliptic-curve Diffie–Hellman.
pub mod ecdh {
    use super::*;

    /// An ephemeral ECDH secret scalar.
    pub struct EphemeralSecret {
        scalar: U256,
    }

    impl EphemeralSecret {
        /// Generates a fresh ephemeral secret.
        pub fn random(rng: &mut impl RngCore) -> Self {
            Self {
                scalar: random_scalar(rng),
            }
        }

        /// The corresponding public key.
        pub fn public_key(&self) -> PublicKey {
            PublicKey {
                point: Point::generator().mul(&self.scalar).to_affine(),
            }
        }

        /// Computes the shared secret with a peer public key.
        pub fn diffie_hellman(&self, peer: &PublicKey) -> SharedSecret {
            let shared = peer.to_point().mul(&self.scalar).to_affine();
            SharedSecret {
                bytes: to_be_bytes(&shared.x),
            }
        }
    }

    /// The raw x-coordinate shared secret.
    pub struct SharedSecret {
        bytes: [u8; 32],
    }

    impl SharedSecret {
        /// The raw shared-secret bytes (the x coordinate).
        pub fn raw_secret_bytes(&self) -> &[u8; 32] {
            &self.bytes
        }
    }
}

/// ECDSA signing and verification (SHA-256 prehash, DER signatures).
pub mod ecdsa {
    use super::*;
    use sha2::Sha256;

    /// Re-export of the signing/verification traits (mirrors `p256::ecdsa::signature`).
    pub mod signature {
        /// Signs messages, producing signatures of type `S`.
        pub trait Signer<S> {
            /// Signs `msg`, panicking on RNG failure (mirrors the real trait's
            /// `sign`, which is the infallible wrapper over `try_sign`).
            fn sign(&self, msg: &[u8]) -> S;
        }

        /// Verifies message signatures of type `S`.
        pub trait Verifier<S> {
            /// Verifies `signature` over `msg`.
            fn verify(&self, msg: &[u8], signature: &S) -> Result<(), super::Error>;
        }
    }

    pub use super::Error;

    /// An ECDSA/P-256 signing key.
    #[derive(Clone)]
    pub struct SigningKey {
        scalar: U256,
        verifying: VerifyingKey,
    }

    /// An ECDSA/P-256 verifying key.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct VerifyingKey {
        key: PublicKey,
    }

    /// An ECDSA signature (r, s), normalised scalars.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Signature {
        r: U256,
        s: U256,
    }

    impl SigningKey {
        /// Generates a fresh signing key.
        pub fn random(rng: &mut impl RngCore) -> Self {
            let scalar = random_scalar(rng);
            Self::from_scalar(scalar)
        }

        fn from_scalar(scalar: U256) -> Self {
            let point = Point::generator().mul(&scalar).to_affine();
            Self {
                scalar,
                verifying: VerifyingKey {
                    key: PublicKey { point },
                },
            }
        }

        /// The corresponding verifying key.
        pub fn verifying_key(&self) -> VerifyingKey {
            self.verifying
        }
    }

    impl VerifyingKey {
        /// Parses from SEC1 bytes.
        pub fn from_sec1_bytes(bytes: &[u8]) -> Result<Self, Error> {
            Ok(Self {
                key: PublicKey::from_sec1_bytes(bytes)?,
            })
        }

        /// SEC1 encoded-point form.
        pub fn to_encoded_point(&self, compress: bool) -> EncodedPoint {
            self.key.to_encoded_point(compress)
        }
    }

    /// Hash the message and reduce into the scalar field.
    fn message_scalar(msg: &[u8]) -> U256 {
        let digest = Sha256::digest(msg);
        let z = from_be_bytes(&digest);
        fn_().reduce(&z)
    }

    impl signature::Signer<Signature> for SigningKey {
        fn sign(&self, msg: &[u8]) -> Signature {
            let n = fn_();
            let z = message_scalar(msg);
            loop {
                let k = random_scalar(&mut rand::rngs::OsRng);
                let point = Point::generator().mul(&k).to_affine();
                let r = n.reduce(&point.x);
                if arith::is_zero(&r) {
                    continue;
                }
                // s = k⁻¹ (z + r·d) mod n, all in Montgomery form.
                let km = n.to_mont(&k);
                let rm = n.to_mont(&r);
                let dm = n.to_mont(&self.scalar);
                let zm = n.to_mont(&z);
                let rd = n.mont_mul(&rm, &dm);
                let sum = n.add(&zm, &rd);
                let kinv = n.mont_inv(&km);
                let s = n.from_mont(&n.mont_mul(&kinv, &sum));
                if arith::is_zero(&s) {
                    continue;
                }
                return Signature { r, s };
            }
        }
    }

    impl signature::Verifier<Signature> for VerifyingKey {
        fn verify(&self, msg: &[u8], signature: &Signature) -> Result<(), Error> {
            let n = fn_();
            let Signature { r, s } = *signature;
            if arith::is_zero(&r) || arith::is_zero(&s) || !arith::lt(&r, &N) || !arith::lt(&s, &N)
            {
                return Err(Error);
            }
            let z = message_scalar(msg);
            let sm = n.to_mont(&s);
            let sinv = n.mont_inv(&sm);
            let u1 = n.from_mont(&n.mont_mul(&n.to_mont(&z), &sinv));
            let u2 = n.from_mont(&n.mont_mul(&n.to_mont(&r), &sinv));
            let point = Point::generator()
                .mul(&u1)
                .add(&self.key.to_point().mul(&u2));
            let affine = point.to_affine();
            if affine.infinity {
                return Err(Error);
            }
            if n.reduce(&affine.x) == r {
                Ok(())
            } else {
                Err(Error)
            }
        }
    }

    impl Signature {
        /// DER-encodes the signature (SEQUENCE of two INTEGERs).
        pub fn to_der(&self) -> DerSignature {
            fn encode_int(v: &U256, out: &mut Vec<u8>) {
                let bytes = to_be_bytes(v);
                let first = bytes.iter().position(|&b| b != 0).unwrap_or(31);
                let mut body: Vec<u8> = bytes[first..].to_vec();
                if body[0] & 0x80 != 0 {
                    body.insert(0, 0);
                }
                out.push(0x02);
                out.push(body.len() as u8);
                out.extend_from_slice(&body);
            }
            let mut body = Vec::with_capacity(72);
            encode_int(&self.r, &mut body);
            encode_int(&self.s, &mut body);
            let mut bytes = Vec::with_capacity(body.len() + 2);
            bytes.push(0x30);
            bytes.push(body.len() as u8);
            bytes.extend_from_slice(&body);
            DerSignature { bytes }
        }

        /// Parses a DER-encoded signature.
        pub fn from_der(bytes: &[u8]) -> Result<Self, Error> {
            fn read_int(b: &[u8]) -> Result<(U256, usize), Error> {
                if b.len() < 2 || b[0] != 0x02 {
                    return Err(Error);
                }
                let len = b[1] as usize;
                if len == 0 || len > 33 || b.len() < 2 + len {
                    return Err(Error);
                }
                let raw = &b[2..2 + len];
                let raw = if raw.len() == 33 {
                    if raw[0] != 0 {
                        return Err(Error);
                    }
                    &raw[1..]
                } else {
                    raw
                };
                let mut buf = [0u8; 32];
                buf[32 - raw.len()..].copy_from_slice(raw);
                Ok((from_be_bytes(&buf), 2 + len))
            }
            if bytes.len() < 2 || bytes[0] != 0x30 || bytes[1] as usize != bytes.len() - 2 {
                return Err(Error);
            }
            let (r, used) = read_int(&bytes[2..])?;
            let (s, used2) = read_int(&bytes[2 + used..])?;
            if 2 + used + used2 != bytes.len() {
                return Err(Error);
            }
            Ok(Self { r, s })
        }
    }

    /// An owned DER-encoded signature.
    #[derive(Debug, Clone)]
    pub struct DerSignature {
        bytes: Vec<u8>,
    }

    impl DerSignature {
        /// The DER bytes.
        pub fn as_bytes(&self) -> &[u8] {
            &self.bytes
        }
    }

    #[cfg(test)]
    mod tests {
        use super::signature::{Signer, Verifier};
        use super::*;

        #[test]
        fn sign_verify_roundtrip() {
            let key = SigningKey::random(&mut rand::rngs::OsRng);
            let vk = key.verifying_key();
            let sig = key.sign(b"message");
            vk.verify(b"message", &sig).unwrap();
            assert!(vk.verify(b"other message", &sig).is_err());
        }

        #[test]
        fn der_roundtrip() {
            let key = SigningKey::random(&mut rand::rngs::OsRng);
            let sig = key.sign(b"x");
            let der = sig.to_der();
            let back = Signature::from_der(der.as_bytes()).unwrap();
            assert_eq!(back, sig);
            assert!(Signature::from_der(&[0x30, 0x01, 0x00]).is_err());
        }

        #[test]
        fn sec1_roundtrip_and_validation() {
            let key = SigningKey::random(&mut rand::rngs::OsRng);
            let vk = key.verifying_key();
            let encoded = vk.to_encoded_point(false);
            let back = VerifyingKey::from_sec1_bytes(encoded.as_bytes()).unwrap();
            assert_eq!(back, vk);
            assert!(VerifyingKey::from_sec1_bytes(&[0u8; 65]).is_err());
            assert!(VerifyingKey::from_sec1_bytes(&[4u8; 12]).is_err());
        }

        #[test]
        fn cross_key_verification_fails() {
            let a = SigningKey::random(&mut rand::rngs::OsRng);
            let b = SigningKey::random(&mut rand::rngs::OsRng);
            let sig = a.sign(b"payload");
            assert!(b.verifying_key().verify(b"payload", &sig).is_err());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::ecdh::EphemeralSecret;
    use super::PublicKey;

    #[test]
    fn ecdh_agreement() {
        let a = EphemeralSecret::random(&mut rand::rngs::OsRng);
        let b = EphemeralSecret::random(&mut rand::rngs::OsRng);
        let pa = a.public_key();
        let pb = b.public_key();
        let s1 = a.diffie_hellman(&pb);
        let s2 = b.diffie_hellman(&pa);
        assert_eq!(s1.raw_secret_bytes(), s2.raw_secret_bytes());
    }

    #[test]
    fn sec1_bytes_shape() {
        let a = EphemeralSecret::random(&mut rand::rngs::OsRng);
        let bytes = a.public_key().to_sec1_bytes();
        assert_eq!(bytes.len(), 65);
        assert_eq!(bytes[0], 0x04);
        let back = PublicKey::from_sec1_bytes(&bytes).unwrap();
        assert_eq!(back, a.public_key());
    }

    #[test]
    fn invalid_points_rejected() {
        assert!(PublicKey::from_sec1_bytes(&[0u8; 65]).is_err());
        let mut bytes = EphemeralSecret::random(&mut rand::rngs::OsRng)
            .public_key()
            .to_sec1_bytes();
        bytes[40] ^= 1;
        assert!(PublicKey::from_sec1_bytes(&bytes).is_err());
    }
}
