//! The back-to-back link between the two simulated hosts.

use crate::cost::CostModel;
use crate::resource::Resource;
use crate::time::Nanos;
use serde::{Deserialize, Serialize};

/// A full-duplex point-to-point link (the paper's testbed connects the two hosts
/// back to back with 100 Gb/s ConnectX-7 NICs).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Link {
    /// Bandwidth in Gb/s.
    pub gbps: f64,
    /// Propagation delay in nanoseconds.
    pub propagation_ns: Nanos,
    /// Network MTU in bytes.
    pub mtu: usize,
    forward: Resource,
    reverse: Resource,
}

impl Link {
    /// Creates a link from the cost model's bandwidth/propagation parameters.
    pub fn from_cost_model(model: &CostModel, mtu: usize) -> Self {
        Self {
            gbps: model.link_gbps,
            propagation_ns: model.propagation_ns,
            mtu,
            forward: Resource::new(),
            reverse: Resource::new(),
        }
    }

    /// Serialization time for `bytes` bytes.
    pub fn serialization_ns(&self, bytes: usize) -> Nanos {
        ((bytes as f64 * 8.0) / self.gbps).round() as Nanos
    }

    /// Transmits `bytes` in the client→server direction starting no earlier than
    /// `ready`; returns the time the last bit arrives at the far end.
    pub fn send_forward(&mut self, ready: Nanos, bytes: usize) -> Nanos {
        let ser = self.serialization_ns(bytes);
        self.forward.schedule(ready, ser) + self.propagation_ns
    }

    /// Transmits `bytes` in the server→client direction.
    pub fn send_reverse(&mut self, ready: Nanos, bytes: usize) -> Nanos {
        let ser = self.serialization_ns(bytes);
        self.reverse.schedule(ready, ser) + self.propagation_ns
    }

    /// Utilisation of the busier direction over a horizon.
    pub fn utilisation(&self, horizon: Nanos) -> f64 {
        self.forward
            .utilisation(horizon)
            .max(self.reverse.utilisation(horizon))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directions_are_independent() {
        let model = CostModel::calibrated();
        let mut link = Link::from_cost_model(&model, 1500);
        let f = link.send_forward(0, 125_000); // 10 µs at 100 Gb/s
        let r = link.send_reverse(0, 125_000);
        assert_eq!(f, r);
        assert_eq!(f, 10_000 + model.propagation_ns);
    }

    #[test]
    fn serialization_queues_within_a_direction() {
        let model = CostModel::calibrated();
        let mut link = Link::from_cost_model(&model, 1500);
        let a = link.send_forward(0, 125_000);
        let b = link.send_forward(0, 125_000);
        assert!(b > a);
        assert!(link.utilisation(b) > 0.5);
    }
}
