//! # smt-bench — experiment harness for every table and figure
//!
//! Each `figures::*` function regenerates one table or figure of the paper's
//! evaluation and returns structured rows; the binaries in `src/bin/` print them
//! as text tables (or JSON with `--json`), and `EXPERIMENTS.md` records the
//! measured values next to the paper's.  The criterion benches in `benches/`
//! micro-benchmark the real crypto and record-layer hot paths.

#![forbid(unsafe_code)]

pub mod chaos;
pub mod churn;
pub mod figures;
pub mod functional;
pub mod incast;
pub mod output;
pub mod scenarios;
pub mod setup_latency;

pub use figures::*;
pub use output::print_table;
