//! Datacenter-internal certificates and signatures.
//!
//! The paper assumes certificates are issued by an internal CA operated by the
//! datacenter/cloud provider (§4.5.1/§4.5.2): chains are short, all endpoints have
//! the CA verification key pre-installed, and backward-compatibility baggage can
//! be omitted.  This module implements exactly that model with ECDSA-P256 (the
//! paper's `secp256r1` signature algorithm): a [`CertificateAuthority`] issues
//! [`Certificate`]s binding a subject name to an ECDSA verifying key, and
//! [`CertificateChain`]s of length one or two are validated against the CA.

use crate::codec::{Reader, Writer};
use crate::{CryptoError, CryptoResult};
use p256::ecdsa::signature::{Signer, Verifier};
use p256::ecdsa::{Signature, SigningKey as P256SigningKey, VerifyingKey as P256VerifyingKey};
use rand::rngs::OsRng;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// An ECDSA-P256 signing (private) key.
#[derive(Clone)]
pub struct SigningKey {
    inner: P256SigningKey,
}

impl std::fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SigningKey(..)")
    }
}

/// An ECDSA-P256 verifying (public) key.
#[derive(Clone, PartialEq, Eq)]
pub struct VerifyingKey {
    encoded: Vec<u8>,
}

impl std::fmt::Debug for VerifyingKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VerifyingKey({} bytes)", self.encoded.len())
    }
}

impl SigningKey {
    /// Generates a fresh signing key.
    pub fn generate() -> Self {
        Self {
            inner: P256SigningKey::random(&mut OsRng),
        }
    }

    /// The corresponding verifying key.
    pub fn verifying_key(&self) -> VerifyingKey {
        VerifyingKey {
            encoded: self
                .inner
                .verifying_key()
                .to_encoded_point(false)
                .as_bytes()
                .to_vec(),
        }
    }

    /// Signs a message, returning a DER-encoded ECDSA signature.
    pub fn sign(&self, message: &[u8]) -> Vec<u8> {
        let sig: Signature = self.inner.sign(message);
        sig.to_der().as_bytes().to_vec()
    }
}

impl VerifyingKey {
    /// Serialized (uncompressed SEC1) form of the key.
    pub fn as_bytes(&self) -> &[u8] {
        &self.encoded
    }

    /// Parses a verifying key from its serialized form.
    pub fn from_bytes(bytes: &[u8]) -> CryptoResult<Self> {
        P256VerifyingKey::from_sec1_bytes(bytes)
            .map_err(|e| CryptoError::Signature(format!("bad verifying key: {e}")))?;
        Ok(Self {
            encoded: bytes.to_vec(),
        })
    }

    /// Verifies a DER-encoded ECDSA signature over `message`.
    pub fn verify(&self, message: &[u8], signature: &[u8]) -> CryptoResult<()> {
        let key = P256VerifyingKey::from_sec1_bytes(&self.encoded)
            .map_err(|e| CryptoError::Signature(format!("bad verifying key: {e}")))?;
        let sig = Signature::from_der(signature)
            .map_err(|e| CryptoError::Signature(format!("bad signature encoding: {e}")))?;
        key.verify(message, &sig)
            .map_err(|_| CryptoError::Signature("signature verification failed".into()))
    }
}

/// A certificate binding a subject name to an ECDSA verifying key, signed by the
/// internal CA (or self-signed for the CA root).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Certificate {
    /// Subject name (e.g. "kv-server.cluster.local").
    pub subject: String,
    /// Issuer name.
    pub issuer: String,
    /// Serialized subject public key.
    pub public_key: Vec<u8>,
    /// Certificate serial number.
    pub serial: u64,
    /// Issuer's signature over the to-be-signed encoding.
    pub signature: Vec<u8>,
}

impl Certificate {
    fn to_be_signed(subject: &str, issuer: &str, public_key: &[u8], serial: u64) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_vec16(subject.as_bytes())
            .put_vec16(issuer.as_bytes())
            .put_vec16(public_key)
            .put_u64(serial);
        w.finish()
    }

    /// The subject's verifying key.
    pub fn verifying_key(&self) -> CryptoResult<VerifyingKey> {
        VerifyingKey::from_bytes(&self.public_key)
    }

    /// Serializes the certificate for transmission in a handshake flight.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_vec16(self.subject.as_bytes())
            .put_vec16(self.issuer.as_bytes())
            .put_vec16(&self.public_key)
            .put_u64(self.serial)
            .put_vec16(&self.signature);
        w.finish()
    }

    /// Parses a certificate from its serialized form.
    pub fn decode(bytes: &[u8]) -> CryptoResult<Self> {
        let mut r = Reader::new(bytes);
        let cert = Self::decode_from(&mut r)?;
        r.expect_end()?;
        Ok(cert)
    }

    /// Parses a certificate from a reader (used when decoding chains).
    pub fn decode_from(r: &mut Reader<'_>) -> CryptoResult<Self> {
        let subject = String::from_utf8(r.get_vec16()?)
            .map_err(|_| CryptoError::Certificate("subject not UTF-8".into()))?;
        let issuer = String::from_utf8(r.get_vec16()?)
            .map_err(|_| CryptoError::Certificate("issuer not UTF-8".into()))?;
        let public_key = r.get_vec16()?;
        let serial = r.get_u64()?;
        let signature = r.get_vec16()?;
        Ok(Self {
            subject,
            issuer,
            public_key,
            serial,
            signature,
        })
    }
}

/// A certificate chain: the end-entity certificate first, optionally followed by
/// intermediates (the datacenter model keeps chains short, §4.5.1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CertificateChain {
    /// End-entity certificate followed by zero or more intermediates.
    pub certificates: Vec<Certificate>,
}

impl CertificateChain {
    /// A chain with a single end-entity certificate (the common datacenter case).
    pub fn single(cert: Certificate) -> Self {
        Self {
            certificates: vec![cert],
        }
    }

    /// The end-entity (leaf) certificate.
    pub fn leaf(&self) -> CryptoResult<&Certificate> {
        self.certificates
            .first()
            .ok_or_else(|| CryptoError::Certificate("empty certificate chain".into()))
    }

    /// Serializes the chain.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u16(self.certificates.len() as u16);
        for c in &self.certificates {
            w.put_vec32(&c.encode());
        }
        w.finish()
    }

    /// Parses a chain.
    pub fn decode(bytes: &[u8]) -> CryptoResult<Self> {
        let mut r = Reader::new(bytes);
        let n = r.get_u16()? as usize;
        if n == 0 || n > 8 {
            return Err(CryptoError::Certificate(format!(
                "implausible chain length {n}"
            )));
        }
        let mut certificates = Vec::with_capacity(n);
        for _ in 0..n {
            let raw = r.get_vec32()?;
            certificates.push(Certificate::decode(&raw)?);
        }
        r.expect_end()?;
        Ok(Self { certificates })
    }
}

/// The datacenter's internal certificate authority.
///
/// The CA's verifying key is assumed to be pre-installed on every endpoint, so
/// chain validation is a single signature check per certificate (the paper's
/// "short certificate chain" optimisation, §4.5.1).
pub struct CertificateAuthority {
    name: String,
    key: SigningKey,
    next_serial: std::sync::atomic::AtomicU64,
}

impl std::fmt::Debug for CertificateAuthority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CertificateAuthority")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

impl CertificateAuthority {
    /// Creates a new CA with a fresh root key.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            key: SigningKey::generate(),
            next_serial: std::sync::atomic::AtomicU64::new(1),
        }
    }

    /// The CA's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The CA verification key that endpoints pre-install.
    pub fn verifying_key(&self) -> VerifyingKey {
        self.key.verifying_key()
    }

    /// Issues a certificate binding `subject` to `subject_key`.
    pub fn issue(&self, subject: impl Into<String>, subject_key: &VerifyingKey) -> Certificate {
        let subject = subject.into();
        let serial = self
            .next_serial
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tbs = Certificate::to_be_signed(&subject, &self.name, subject_key.as_bytes(), serial);
        let signature = self.key.sign(&tbs);
        Certificate {
            subject,
            issuer: self.name.clone(),
            public_key: subject_key.as_bytes().to_vec(),
            serial,
            signature,
        }
    }

    /// Issues a full identity (signing key + single-certificate chain).
    pub fn issue_identity(&self, subject: impl Into<String>) -> Identity {
        let key = SigningKey::generate();
        let cert = self.issue(subject, &key.verifying_key());
        Identity {
            chain: CertificateChain::single(cert),
            key,
        }
    }

    /// Signs arbitrary bytes with the CA key (used for SMT-tickets, §4.5.2).
    pub fn sign(&self, message: &[u8]) -> Vec<u8> {
        self.key.sign(message)
    }
}

/// Validates a certificate chain against a trusted CA verifying key.
///
/// Returns the leaf's verifying key on success.  Expected subject, when given,
/// must match the leaf subject (server-name pinning within the datacenter).
pub fn validate_chain(
    chain: &CertificateChain,
    ca_key: &VerifyingKey,
    expected_subject: Option<&str>,
) -> CryptoResult<VerifyingKey> {
    let leaf = chain.leaf()?;
    if let Some(want) = expected_subject {
        if leaf.subject != want {
            return Err(CryptoError::Certificate(format!(
                "subject mismatch: expected {want}, got {}",
                leaf.subject
            )));
        }
    }
    // In the short-chain datacenter model every certificate is signed directly by
    // the internal CA; validate each one against the pre-installed CA key.
    for cert in &chain.certificates {
        let tbs =
            Certificate::to_be_signed(&cert.subject, &cert.issuer, &cert.public_key, cert.serial);
        ca_key.verify(&tbs, &cert.signature).map_err(|_| {
            CryptoError::Certificate(format!("certificate '{}' not signed by CA", cert.subject))
        })?;
    }
    leaf.verifying_key()
}

/// A private key plus its certificate chain.
#[derive(Debug, Clone)]
pub struct Identity {
    /// The certificate chain presented during the handshake.
    pub chain: CertificateChain,
    /// The private signing key.
    pub key: SigningKey,
}

/// Generates random bytes (helper shared by handshake code).
pub fn random_bytes(n: usize) -> Vec<u8> {
    let mut v = vec![0u8; n];
    OsRng.fill_bytes(&mut v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let key = SigningKey::generate();
        let vk = key.verifying_key();
        let sig = key.sign(b"hello");
        vk.verify(b"hello", &sig).unwrap();
        assert!(vk.verify(b"hullo", &sig).is_err());
    }

    #[test]
    fn certificate_issue_and_validate() {
        let ca = CertificateAuthority::new("smt-internal-ca");
        let id = ca.issue_identity("server.dc.local");
        let leaf_key =
            validate_chain(&id.chain, &ca.verifying_key(), Some("server.dc.local")).unwrap();
        assert_eq!(leaf_key, id.key.verifying_key());
    }

    #[test]
    fn wrong_ca_rejected() {
        let ca = CertificateAuthority::new("ca-a");
        let other = CertificateAuthority::new("ca-b");
        let id = ca.issue_identity("server");
        assert!(validate_chain(&id.chain, &other.verifying_key(), None).is_err());
    }

    #[test]
    fn subject_mismatch_rejected() {
        let ca = CertificateAuthority::new("ca");
        let id = ca.issue_identity("server-a");
        assert!(validate_chain(&id.chain, &ca.verifying_key(), Some("server-b")).is_err());
    }

    #[test]
    fn tampered_certificate_rejected() {
        let ca = CertificateAuthority::new("ca");
        let mut id = ca.issue_identity("server");
        id.chain.certificates[0].subject = "attacker".into();
        assert!(validate_chain(&id.chain, &ca.verifying_key(), None).is_err());
    }

    #[test]
    fn certificate_encode_decode() {
        let ca = CertificateAuthority::new("ca");
        let id = ca.issue_identity("server");
        let encoded = id.chain.encode();
        let decoded = CertificateChain::decode(&encoded).unwrap();
        assert_eq!(decoded, id.chain);
        // Validation still passes after a round trip.
        validate_chain(&decoded, &ca.verifying_key(), Some("server")).unwrap();
    }

    #[test]
    fn empty_and_oversized_chains_rejected() {
        let empty = CertificateChain {
            certificates: vec![],
        };
        assert!(empty.leaf().is_err());
        let mut w = Writer::new();
        w.put_u16(0);
        assert!(CertificateChain::decode(&w.finish()).is_err());
    }

    #[test]
    fn serials_increment() {
        let ca = CertificateAuthority::new("ca");
        let a = ca.issue_identity("a");
        let b = ca.issue_identity("b");
        assert_ne!(
            a.chain.certificates[0].serial,
            b.chain.certificates[0].serial
        );
    }

    #[test]
    fn verifying_key_parse_rejects_garbage() {
        assert!(VerifyingKey::from_bytes(&[1, 2, 3]).is_err());
    }

    #[test]
    fn debug_does_not_leak_private_key() {
        let key = SigningKey::generate();
        assert_eq!(format!("{key:?}"), "SigningKey(..)");
    }
}
