//! The incast scenario family: deep N→1 bursts, mice-vs-elephants mixes and
//! a loaded-latency sweep on a leaf–spine fabric — the congestion-control
//! evaluation.
//!
//! Every case runs on a two-tier leaf–spine topology ([`Topology::LeafSpine`])
//! with ECN marking at the switch queues, and every `(scenario, stack)` cell
//! is measured **twice**: once with the congestion-control subsystem
//! (receiver-driven SRPT grants on the message stacks, DCTCP windowing plus
//! SACK selective retransmit on the stream stacks) and once as the
//! go-back-N / fixed-RTO baseline ([`CcConfig::disabled`]) the subsystem
//! replaces.  The `incast` binary asserts the headline claims in-process:
//! on the deep incast, cc keeps p99 completion at or below the baseline's
//! and never queues deeper at the receiver's ingress buffer.
//!
//! Sender CPU is charged per sealed record from the **measured** record-layer
//! numbers: [`measured_cost_model`] reads the committed
//! `BENCH_record_layer.json` and two-point-fits the per-record intercept and
//! per-byte slope, so protocol CPU shows up in loaded-scenario latency at
//! whatever the current record engine actually costs (falling back to
//! [`CostModel::calibrated`] when the file is absent, e.g. in a bare
//! checkout).

use smt_sim::net::{
    background_elephants, incast_scenario, poisson_pair_scenario, run_scenario, EcnConfig,
    FaultConfig, LeafSpineConfig, LinkConfig, Scenario, ScenarioReport, SizeMix, Topology,
};
use smt_sim::CostModel;
use smt_transport::{scenario_endpoints_cc, CcConfig, StackKind};

use crate::scenarios::scenario_keys;

/// One `(scenario, stack, cc-mode)` cell of the incast matrix.
#[derive(Debug, Clone, serde::Serialize)]
pub struct IncastRow {
    /// Scenario name.
    pub scenario: String,
    /// Stack label (paper legend).
    pub stack: String,
    /// `true` = congestion control on; `false` = go-back-N / fixed-RTO
    /// baseline.
    pub cc: bool,
    /// Message slowdown at the median: p50 completion over the run's best
    /// observed completion (the self-normalized unloaded reference).
    pub slowdown_p50: f64,
    /// Message slowdown at the 99th percentile.
    pub slowdown_p99: f64,
    /// p99 completion delta vs the stack's plaintext counterpart in the same
    /// cc mode, in percent (`None` on the plaintext stacks themselves).
    pub vs_plaintext_p99_pct: Option<f64>,
    /// Everything measured.
    pub report: ScenarioReport,
}

/// The plaintext stack an encrypted stack is compared against for the
/// encrypted-vs-plaintext delta (`None` for the plaintext stacks).
fn plaintext_counterpart(stack: StackKind) -> Option<StackKind> {
    if !stack.is_encrypted() {
        return None;
    }
    Some(if stack.is_message_based() {
        StackKind::Homa
    } else {
        StackKind::Tcp
    })
}

/// Builds a [`CostModel`] whose software-crypto terms come from the
/// committed `BENCH_record_layer.json` (two-point linear fit over the 64 B
/// and 1024 B `seal_into` rows), falling back to the calibrated defaults
/// when the file or the rows are missing.
pub fn measured_cost_model() -> CostModel {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_record_layer.json");
    let Ok(text) = std::fs::read_to_string(path) else {
        return CostModel::calibrated();
    };
    let Ok(value) = serde_json::from_str(&text) else {
        return CostModel::calibrated();
    };
    let mean = |name: &str| -> Option<f64> {
        value
            .get("benchmarks")?
            .as_array()?
            .iter()
            .find(|b| b.get("name").and_then(|n| n.as_str()) == Some(name))?
            .get("mean_ns")?
            .as_f64()
    };
    let (Some(small), Some(large)) = (
        mean("record_layer/seal_into/64"),
        mean("record_layer/seal_into/1024"),
    ) else {
        return CostModel::calibrated();
    };
    let ns_per_byte = ((large - small) / (1024.0 - 64.0)).max(0.0);
    let per_record_ns = (small - 64.0 * ns_per_byte).max(0.0).round() as u64;
    CostModel::calibrated().with_sw_crypto(per_record_ns, ns_per_byte)
}

/// The leaf–spine shape every incast case runs on.
fn fabric_shape(oversubscription: f64) -> Topology {
    Topology::LeafSpine(LeafSpineConfig {
        hosts_per_leaf: 16,
        spines: 4,
        oversubscription,
    })
}

/// Applies the shared fabric knobs: leaf–spine topology, switch-queue ECN
/// marking and the measured per-record CPU charge.
fn dress(mut s: Scenario, oversubscription: f64) -> Scenario {
    s.topology = fabric_shape(oversubscription);
    s.ecn = Some(EcnConfig::default());
    s.cpu = Some(measured_cost_model().cpu_charge());
    s
}

/// The incast suite.  `smoke` keeps the same scenario names at reduced
/// scale, so the CI gate diffs against the committed full-scale baseline the
/// way the churn gate does (smoke latencies sit at or below it).
pub fn suite(smoke: bool) -> Vec<Scenario> {
    let link = LinkConfig::default();
    // Deep incast: hundreds-to-one on the full run.  Scheduled packets
    // overflow the 256-packet ingress buffer many times over when every
    // sender blasts unpaced, which is exactly what the grant scheduler and
    // the DCTCP window are there to prevent.
    // 64 KB messages: tens of packets each, so only the unscheduled prefix
    // (capped by cc) or the initial window goes unpaced — the regime where
    // receiver-driven grants and the ECN window govern the queue rather than
    // just cleaning up after the first-RTT burst.
    let deep_senders = if smoke { 32 } else { 128 };
    let mut deep = incast_scenario(deep_senders, 64 * 1024, 1, link, FaultConfig::none());
    deep.name = "deep-incast".into();

    // Mice sharing the fabric with seeded background elephants over a 4:1
    // oversubscribed core: the mice's completion tail is what the priority
    // grants protect.
    let (mice, elephants) = if smoke { (8, 2) } else { (24, 6) };
    let mut mix = incast_scenario(mice, 2048, 2, link, FaultConfig::none());
    mix.name = "mice-elephants".into();
    background_elephants(&mut mix, elephants, 128 * 1024, 4, 50_000, 9);

    // Open-loop loaded latency at a medium arrival rate (the sweep's knee
    // point); the measured CPU charge makes software crypto visible here.
    let mut loaded = poisson_pair_scenario(
        200_000.0,
        2 * smt_sim::time::MILLISECOND,
        &SizeMix::rpc_medium(),
        11,
        link,
        FaultConfig::none(),
    );
    loaded.name = "loaded-200k".into();

    vec![dress(deep, 1.0), dress(mix, 4.0), dress(loaded, 1.0)]
}

/// Runs one scenario on one stack in one cc mode.
pub fn run_cell(scenario: &Scenario, stack: StackKind, cc: bool) -> ScenarioReport {
    let keys = scenario_keys();
    let config = if cc {
        CcConfig::default()
    } else {
        CcConfig::disabled()
    };
    let mut endpoints = scenario_endpoints_cc(scenario, stack, &keys.0, &keys.1, config);
    run_scenario(scenario, &mut endpoints, |_, _, _, _| None)
}

/// Runs the matrix: every suite scenario on every stack, cc on and off
/// (`smoke`: the reduced suite on SMT-sw, kTLS-sw and their plaintext
/// counterparts, which the deltas need).
pub fn incast_matrix(smoke: bool) -> Vec<IncastRow> {
    let stacks: Vec<StackKind> = if smoke {
        vec![
            StackKind::Homa,
            StackKind::SmtSw,
            StackKind::Tcp,
            StackKind::KtlsSw,
        ]
    } else {
        StackKind::all().to_vec()
    };
    let mut rows = Vec::new();
    for scenario in suite(smoke) {
        for &cc in &[true, false] {
            for &stack in &stacks {
                let report = run_cell(&scenario, stack, cc);
                let floor = report.latency.min_us.max(1e-3);
                rows.push(IncastRow {
                    scenario: scenario.name.clone(),
                    stack: stack.label().to_string(),
                    cc,
                    slowdown_p50: report.latency.p50_us / floor,
                    slowdown_p99: report.latency.p99_us / floor,
                    vs_plaintext_p99_pct: None,
                    report,
                });
            }
        }
    }
    // Encrypted-vs-plaintext deltas within each (scenario, cc mode).
    let reference: Vec<(String, bool, String, f64)> = rows
        .iter()
        .map(|r| {
            (
                r.scenario.clone(),
                r.cc,
                r.stack.clone(),
                r.report.latency.p99_us,
            )
        })
        .collect();
    for row in &mut rows {
        let Some(base) = StackKind::all()
            .into_iter()
            .find(|s| s.label() == row.stack)
            .and_then(plaintext_counterpart)
        else {
            continue;
        };
        if let Some((.., base_p99)) = reference
            .iter()
            .find(|(sc, cc, st, _)| *sc == row.scenario && *cc == row.cc && *st == base.label())
        {
            if *base_p99 > 0.0 {
                row.vs_plaintext_p99_pct =
                    Some((row.report.latency.p99_us / base_p99 - 1.0) * 100.0);
            }
        }
    }
    rows
}

/// Asserts the congestion-control acceptance criteria on the deep incast:
/// per stack, cc-enabled runs (a) deliver everything, (b) keep p99
/// completion at or below the go-back-N / fixed-RTO baseline and (c) never
/// queue deeper at the receiver ingress than the baseline — bounded receiver
/// queue occupancy under hundreds-to-one fan-in.
pub fn assert_cc_improves(rows: &[IncastRow]) {
    let cell = |stack: &str, cc: bool| {
        rows.iter()
            .find(|r| r.scenario == "deep-incast" && r.stack == stack && r.cc == cc)
            .unwrap_or_else(|| panic!("missing deep-incast row for {stack}/cc={cc}"))
    };
    let stacks: Vec<&str> = rows
        .iter()
        .filter(|r| r.scenario == "deep-incast" && r.cc)
        .map(|r| r.stack.as_str())
        .collect();
    for stack in stacks {
        let with_cc = cell(stack, true);
        let baseline = cell(stack, false);
        assert_eq!(
            with_cc.report.messages_delivered, with_cc.report.messages_sent,
            "{stack}: cc run lost messages"
        );
        assert!(!with_cc.report.truncated, "{stack}: cc run never quiesced");
        // A baseline that failed to deliver everything (go-back-N livelock
        // under the burst — its storm can outlast the harness's event budget)
        // is unboundedly worse, not a p99 of whatever it managed to finish.
        let base_completed = baseline.report.messages_delivered == baseline.report.messages_sent
            && !baseline.report.truncated;
        assert!(
            !base_completed || with_cc.report.latency.p99_us <= baseline.report.latency.p99_us,
            "{stack}: cc p99 {:.1}µs above baseline p99 {:.1}µs",
            with_cc.report.latency.p99_us,
            baseline.report.latency.p99_us,
        );
        assert!(
            with_cc.report.fabric.peak_ingress_backlog_packets
                <= baseline.report.fabric.peak_ingress_backlog_packets,
            "{stack}: cc peak ingress backlog {} above baseline {}",
            with_cc.report.fabric.peak_ingress_backlog_packets,
            baseline.report.fabric.peak_ingress_backlog_packets,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_cost_model_tracks_committed_bench_json() {
        let m = measured_cost_model();
        // The committed record-layer numbers sit in the same regime the
        // calibrated model was fit from; a parse failure would silently
        // return the fallback, so pin the measured values' plausibility.
        assert!(m.crypto_sw_per_record_ns > 50 && m.crypto_sw_per_record_ns < 1000);
        assert!(m.crypto_sw_ns_per_byte > 0.05 && m.crypto_sw_ns_per_byte < 2.0);
    }

    #[test]
    fn deep_incast_cc_beats_baseline_on_a_message_and_a_stream_stack() {
        let link = LinkConfig::default();
        // Same fan-in as the smoke suite: 32→1 is the shallowest burst where
        // pacing reliably beats the rotating go-back-N re-blast on tail
        // latency — at 16→1 the ingress queue absorbs enough of each volley
        // that the blast can luck into a lower p99.
        let mut deep = incast_scenario(32, 64 * 1024, 1, link, FaultConfig::none());
        deep.name = "deep-incast".into();
        let deep = dress(deep, 1.0);
        let mut rows = Vec::new();
        for stack in [StackKind::SmtSw, StackKind::KtlsSw] {
            for cc in [true, false] {
                let report = run_cell(&deep, stack, cc);
                assert_eq!(
                    report.messages_delivered, report.messages_sent,
                    "{stack:?}/cc={cc}: lost messages"
                );
                rows.push(IncastRow {
                    scenario: deep.name.clone(),
                    stack: stack.label().to_string(),
                    cc,
                    slowdown_p50: 0.0,
                    slowdown_p99: 0.0,
                    vs_plaintext_p99_pct: None,
                    report,
                });
            }
        }
        assert_cc_improves(&rows);
    }

    #[test]
    fn leaf_spine_run_marks_ecn_and_uses_spines() {
        let link = LinkConfig::default();
        let mut deep = incast_scenario(16, 64 * 1024, 1, link, FaultConfig::none());
        deep.name = "deep-incast".into();
        let deep = dress(deep, 1.0);
        let report = run_cell(&deep, StackKind::SmtSw, true);
        assert!(
            report.fabric.peak_ingress_backlog_packets > 0,
            "incast queued at the receiver: {report:?}"
        );
    }
}
