//! Message-uniqueness enforcement (paper §4.4.1, §6.1 "Non-replayability").
//!
//! Per-message record sequence number spaces mean the *relative* record sequence
//! number can repeat across messages, so TLS's implicit replay protection no
//! longer applies at the record level.  SMT instead guarantees that a **message
//! ID is accepted at most once per session**: the receiver discards any packet
//! whose message ID it has already completed (or abandoned), without decrypting —
//! just as TCP discards packets with past sequence numbers.
//!
//! Message IDs are allocated monotonically by the sender, so the guard tracks a
//! low-water mark plus the sparse set of IDs above it that are complete or in
//! progress; memory stays bounded no matter how many messages a session carries.

use std::collections::BTreeSet;

/// Caps the sparse completed-ID set.  Message IDs are allocated monotonically
/// by the sender, so a peer whose newest completions sit more than this many
/// gaps above the oldest outstanding ID is either broken or hostile; the
/// guard force-advances the low-water mark past the oldest tracked ID,
/// treating the skipped gap IDs as rejected (they can no longer complete).
pub const MAX_TRACKED_IDS: usize = 4096;

/// Tracks which message IDs have been seen/completed on the receive side.
#[derive(Debug, Default)]
pub struct ReplayGuard {
    /// Every ID strictly below this value has been completed (or rejected).
    low_water: u64,
    /// Completed IDs at or above the low-water mark.
    completed: BTreeSet<u64>,
    /// Forced low-water advances taken to stay under [`MAX_TRACKED_IDS`].
    evictions: u64,
}

impl ReplayGuard {
    /// Creates an empty guard.
    pub fn new() -> Self {
        Self::default()
    }

    /// True if `id` has already been completed (i.e. accepting more packets for
    /// it would constitute a replay).
    pub fn is_replayed(&self, id: u64) -> bool {
        id < self.low_water || self.completed.contains(&id)
    }

    /// Marks `id` as completed. Returns `false` if it was already completed
    /// (a replay), `true` if this is the first completion.
    pub fn mark_completed(&mut self, id: u64) -> bool {
        if self.is_replayed(id) {
            return false;
        }
        self.completed.insert(id);
        self.compact();
        // Bounded memory even against an adversarial ID pattern: evict the
        // oldest tracked ID (and thereby reject every gap below it) once the
        // sparse set would exceed its cap.
        while self.completed.len() > MAX_TRACKED_IDS {
            if let Some(&oldest) = self.completed.iter().next() {
                self.completed.remove(&oldest);
                self.low_water = oldest + 1;
                self.evictions += 1;
                self.compact();
            }
        }
        true
    }

    /// Number of IDs tracked above the low-water mark (bounded-memory check).
    pub fn tracked(&self) -> usize {
        self.completed.len()
    }

    /// The current low-water mark (all IDs below it are considered replayed).
    pub fn low_water(&self) -> u64 {
        self.low_water
    }

    /// Forced low-water advances taken to keep the sparse set under
    /// [`MAX_TRACKED_IDS`] (surfaced as `state_evictions`).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    fn compact(&mut self) {
        // Advance the low-water mark over any contiguous prefix of completed IDs.
        while self.completed.remove(&self.low_water) {
            self.low_water += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_completion_accepted_second_rejected() {
        let mut g = ReplayGuard::new();
        assert!(!g.is_replayed(5));
        assert!(g.mark_completed(5));
        assert!(g.is_replayed(5));
        assert!(!g.mark_completed(5));
    }

    #[test]
    fn low_water_compacts_contiguous_ids() {
        let mut g = ReplayGuard::new();
        for id in 0..1000 {
            assert!(g.mark_completed(id));
        }
        // All contiguous from zero: memory stays O(1).
        assert_eq!(g.tracked(), 0);
        assert_eq!(g.low_water(), 1000);
        assert!(g.is_replayed(999));
        assert!(!g.is_replayed(1000));
    }

    #[test]
    fn out_of_order_completion_tracked_sparsely() {
        let mut g = ReplayGuard::new();
        // Messages complete out of order (the whole point of SMT/Homa).
        assert!(g.mark_completed(3));
        assert!(g.mark_completed(1));
        assert!(g.mark_completed(4));
        assert_eq!(g.tracked(), 3);
        assert!(!g.is_replayed(0));
        assert!(!g.is_replayed(2));
        // Filling the gaps collapses the set.
        assert!(g.mark_completed(0));
        assert!(g.mark_completed(2));
        assert_eq!(g.tracked(), 0);
        assert_eq!(g.low_water(), 5);
    }

    #[test]
    fn adversarial_gap_pattern_stays_bounded() {
        let mut g = ReplayGuard::new();
        // Complete only odd IDs: every completion leaves a gap, the worst
        // case for the sparse set.
        for id in 0..3 * MAX_TRACKED_IDS as u64 {
            g.mark_completed(2 * id + 1);
        }
        assert!(g.tracked() <= MAX_TRACKED_IDS);
        assert!(g.evictions() > 0);
        // Evicted gap IDs count as replayed — they can no longer complete.
        assert!(g.is_replayed(0));
        assert!(!g.mark_completed(0));
    }

    #[test]
    fn replay_below_low_water_rejected() {
        let mut g = ReplayGuard::new();
        for id in 0..10 {
            g.mark_completed(id);
        }
        assert!(g.is_replayed(0));
        assert!(!g.mark_completed(7));
    }
}
