//! # smt-crypto — cryptography for the Secure Message Transport protocol
//!
//! This crate provides every cryptographic building block SMT needs, mirroring the
//! design of the paper *"Designing Transport-Level Encryption for Datacenter
//! Networks"*:
//!
//! * [`aead`] — AES-128/256-GCM AEAD with the TLS 1.3 per-record nonce
//!   construction (static IV XOR record sequence number);
//! * [`seqno`] — the **composite 64-bit record sequence number** of §4.4.1: a
//!   configurable split between a message-ID field (upper bits, default 48) and an
//!   intra-message record index (lower bits, default 16), plus the Fig. 5
//!   trade-off computation;
//! * [`key_schedule`] — the TLS 1.3 key schedule (HKDF-SHA256 extract / expand
//!   label) producing handshake, application, resumption and exporter secrets;
//! * [`record`] — TLS 1.3 record protection (inner content type, optional padding
//!   for length concealment, AAD derived from the record header);
//! * [`cert`] — a minimal datacenter-internal certificate model: ECDSA-P256 keys,
//!   a single internal CA, short chains (§4.5.1);
//! * [`handshake`] — TLS 1.3-style handshakes: the standard 1-RTT exchange, the
//!   pre-shared-key resumption exchange, and the paper's **SMT-ticket 0-RTT**
//!   exchange with or without forward secrecy (§4.5.2/§4.5.3), all instrumented
//!   with the per-operation timing breakdown of Table 2;
//! * [`engine`] — a shared per-host batch crypto engine that collects record
//!   seal work from many sessions between polls and runs it as one fused pass.
//!
//! The crate is transport-agnostic: it never touches packets or sockets.  The SMT
//! protocol engine (`smt-core`) combines these primitives with the wire formats
//! from `smt-wire`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod aead;
pub mod cert;
pub mod codec;
pub mod engine;
pub mod error;
pub mod handshake;
pub mod key_schedule;
pub mod record;
pub mod seqno;
pub mod suite;

pub use aead::{AeadAlgorithm, AeadKey, Iv, NONCE_LEN};
pub use aes_gcm::{active_tier, CryptoTier};
pub use cert::{Certificate, CertificateAuthority, CertificateChain, SigningKey, VerifyingKey};
pub use engine::{CryptoEngine, CryptoEngineHandle, EngineConn, EngineStats};
pub use error::CryptoError;
pub use key_schedule::{KeySchedule, Secret, TrafficKeys};
pub use record::{
    OpenedRecord, Padding, RecordCipher, RecordCipherPair, RecordPlaintext, RecordProtector,
    RecordProtectorPair, RecordSealer,
};
pub use seqno::{CompositeSeqno, SeqnoLayout};
pub use suite::CipherSuite;

/// Result alias for crypto operations.
pub type CryptoResult<T> = std::result::Result<T, CryptoError>;
