//! Criterion benchmarks of the packet-level datapath (segmentation + NIC TSO +
//! reassembly + decryption, end to end in memory), driven through the unified
//! endpoint API so the message and stream stacks are measured by the same loop.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use smt_crypto::cert::CertificateAuthority;
use smt_crypto::handshake::{establish, ClientConfig, ServerConfig, SessionKeys};
use smt_transport::{drive_pair, take_delivered, Endpoint, PairFabric, SecureEndpoint, StackKind};

fn keys() -> (SessionKeys, SessionKeys) {
    let ca = CertificateAuthority::new("ca");
    let id = ca.issue_identity("server");
    establish(
        ClientConfig::new(ca.verifying_key(), "server"),
        ServerConfig::new(id, ca.verifying_key()),
    )
    .unwrap()
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end_message");
    for size in [64usize, 1024, 8192, 65_536] {
        let data = vec![5u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        for (name, stack) in [("smt_sw", StackKind::SmtSw), ("ktls_sw", StackKind::KtlsSw)] {
            group.bench_with_input(BenchmarkId::new(name, size), &data, |b, d| {
                let (ck, sk) = keys();
                let (mut tx, mut rx) = Endpoint::builder()
                    .stack(stack)
                    .pair(&ck, &sk, 1, 2)
                    .unwrap();
                let mut link = PairFabric::reliable();
                b.iter(|| {
                    tx.send(d, link.now()).unwrap();
                    drive_pair(&mut tx, &mut rx, &mut link, 1_000_000);
                    let delivered = take_delivered(&mut rx);
                    assert_eq!(delivered.len(), 1);
                    delivered
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
