//! AES block cipher, encryption direction only (GCM runs AES exclusively in
//! counter mode, so the inverse cipher is never needed).
//!
//! Table-driven implementation: the classic four 1 KB T-tables, derived at
//! first use from the S-box. This trades the cache-timing resistance of a
//! bitsliced implementation for simplicity; acceptable for a simulation
//! workspace that never handles third-party secrets.
//!
//! The multi-block CTR keystream generator ([`Aes::ctr8_keystream`]) has two
//! backends selected once at key-expansion time:
//!
//! * an **AES-NI** path (x86-64 with the `aes` feature, runtime-detected) that
//!   keeps all eight counter blocks in flight through the hardware round
//!   instructions — this is the only `unsafe` code in the crate, confined to
//!   the [`ni`] module;
//! * a **portable interleaved T-table** path that advances eight independent
//!   block states through the table rounds together so their (serially
//!   dependent) lookups overlap in the memory pipeline.

const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

const RCON: [u8; 11] = [
    0x00, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36,
];

fn xtime(x: u8) -> u8 {
    (x << 1) ^ (((x >> 7) & 1) * 0x1b)
}

/// T-table for the MixColumns ⊕ SubBytes combination: entry `i` is the column
/// `[2·S(i), S(i), S(i), 3·S(i)]` packed big-endian; the other three tables are
/// byte rotations of this one.
fn t0(i: usize) -> u32 {
    let s = SBOX[i];
    let s2 = xtime(s);
    let s3 = s2 ^ s;
    u32::from_be_bytes([s2, s, s, s3])
}

/// Number of independent block states scheduled together by the interleaved
/// CTR keystream generator ([`Aes::ctr8_keystream`]).
pub const CTR_LANES: usize = 8;

/// Number of counter blocks produced per [`Aes::ctr16_keystream`] call — the
/// keystream half of the 256-byte wide stride used by the CLMUL tier.
pub const WIDE_LANES: usize = 16;

/// Error returned for AES key lengths other than 16 or 32 bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnsupportedKeyLength(pub usize);

impl std::fmt::Display for UnsupportedKeyLength {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unsupported AES key length {}", self.0)
    }
}

impl std::error::Error for UnsupportedKeyLength {}

/// AES encryption key schedule: expanded round keys as big-endian words.
#[derive(Clone)]
pub struct Aes {
    round_keys: Vec<u32>,
    rounds: usize,
    /// Hardware AES available for the multi-block path (detected once here,
    /// so the per-record hot loop never re-probes CPU features).
    ni: bool,
    /// VAES + AVX2 available: the 16-block keystream runs two AES blocks per
    /// instruction in ymm registers. Only ever set when `ni` is set.
    vaes: bool,
}

#[cfg(target_arch = "x86_64")]
fn detect_ni() -> bool {
    std::arch::is_x86_feature_detected!("aes") && std::arch::is_x86_feature_detected!("sse4.1")
}

#[cfg(not(target_arch = "x86_64"))]
fn detect_ni() -> bool {
    false
}

impl Aes {
    /// Expands a 16- or 32-byte key; other lengths are an error, not a panic.
    /// The keystream backend is pinned by `tier` (capped by what the CPU
    /// supports), so tests and the forced-portable CI run can cross-check
    /// tiers in-process without touching the process-global selection.
    pub fn new_with_tier(
        key: &[u8],
        tier: crate::tier::CryptoTier,
    ) -> Result<Self, UnsupportedKeyLength> {
        let nk = match key.len() {
            16 => 4,
            32 => 8,
            n => return Err(UnsupportedKeyLength(n)),
        };
        let rounds = nk + 6;
        let total_words = 4 * (rounds + 1);
        let mut w = Vec::with_capacity(total_words);
        for chunk in key.chunks_exact(4) {
            w.push(u32::from_be_bytes(chunk.try_into().expect("4 bytes")));
        }
        for i in nk..total_words {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                temp = sub_word(temp.rotate_left(8)) ^ ((RCON[i / nk] as u32) << 24);
            } else if nk > 6 && i % nk == 4 {
                temp = sub_word(temp);
            }
            w.push(w[i - nk] ^ temp);
        }
        use crate::tier::CryptoTier;
        let ni = tier != CryptoTier::Portable && detect_ni();
        let vaes = ni && tier == CryptoTier::WideClmul && crate::tier::detect_vaes();
        Ok(Self {
            round_keys: w,
            rounds,
            ni,
            vaes,
        })
    }

    /// Whether the AES-NI keystream backend was selected at key expansion.
    pub fn has_ni(&self) -> bool {
        self.ni
    }

    /// Whether the VAES ymm keystream backend was selected at key expansion.
    pub fn has_vaes(&self) -> bool {
        self.vaes
    }

    /// Encrypts one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        let rk = &self.round_keys;
        let mut s0 = u32::from_be_bytes(block[0..4].try_into().unwrap()) ^ rk[0];
        let mut s1 = u32::from_be_bytes(block[4..8].try_into().unwrap()) ^ rk[1];
        let mut s2 = u32::from_be_bytes(block[8..12].try_into().unwrap()) ^ rk[2];
        let mut s3 = u32::from_be_bytes(block[12..16].try_into().unwrap()) ^ rk[3];

        let tables = tables();
        for round in 1..self.rounds {
            let (t0, t1, t2, t3) = tables;
            let n0 = t0[(s0 >> 24) as usize]
                ^ t1[((s1 >> 16) & 0xff) as usize]
                ^ t2[((s2 >> 8) & 0xff) as usize]
                ^ t3[(s3 & 0xff) as usize]
                ^ rk[4 * round];
            let n1 = t0[(s1 >> 24) as usize]
                ^ t1[((s2 >> 16) & 0xff) as usize]
                ^ t2[((s3 >> 8) & 0xff) as usize]
                ^ t3[(s0 & 0xff) as usize]
                ^ rk[4 * round + 1];
            let n2 = t0[(s2 >> 24) as usize]
                ^ t1[((s3 >> 16) & 0xff) as usize]
                ^ t2[((s0 >> 8) & 0xff) as usize]
                ^ t3[(s1 & 0xff) as usize]
                ^ rk[4 * round + 2];
            let n3 = t0[(s3 >> 24) as usize]
                ^ t1[((s0 >> 16) & 0xff) as usize]
                ^ t2[((s1 >> 8) & 0xff) as usize]
                ^ t3[(s2 & 0xff) as usize]
                ^ rk[4 * round + 3];
            (s0, s1, s2, s3) = (n0, n1, n2, n3);
        }

        // Final round: SubBytes + ShiftRows + AddRoundKey (no MixColumns).
        let fr = 4 * self.rounds;
        let o0 = final_word(s0, s1, s2, s3) ^ rk[fr];
        let o1 = final_word(s1, s2, s3, s0) ^ rk[fr + 1];
        let o2 = final_word(s2, s3, s0, s1) ^ rk[fr + 2];
        let o3 = final_word(s3, s0, s1, s2) ^ rk[fr + 3];
        block[0..4].copy_from_slice(&o0.to_be_bytes());
        block[4..8].copy_from_slice(&o1.to_be_bytes());
        block[8..12].copy_from_slice(&o2.to_be_bytes());
        block[12..16].copy_from_slice(&o3.to_be_bytes());
    }

    /// Generates [`CTR_LANES`] consecutive GCM counter-mode keystream blocks
    /// (`nonce ‖ counter + lane` for `lane` in `0..CTR_LANES`) into `ks`.
    ///
    /// The eight block states advance through the T-table rounds together: each
    /// round loads its four round-key words once and feeds all eight lanes, so
    /// the (independent) table lookups of different lanes overlap in the memory
    /// pipeline instead of serializing on one block's dependency chain. This is
    /// where the multi-block engine's AES throughput comes from.
    #[allow(unsafe_code)]
    pub fn ctr8_keystream(&self, nonce: &[u8; 12], counter: u32, ks: &mut [u8; 16 * CTR_LANES]) {
        #[cfg(target_arch = "x86_64")]
        if self.ni {
            // SAFETY: `self.ni` is only set when `is_x86_feature_detected!`
            // confirmed the `aes` and `sse4.1` features at key expansion.
            unsafe { ni::ctr8_keystream(&self.round_keys, self.rounds, nonce, counter, ks) };
            return;
        }
        self.ctr8_keystream_portable(nonce, counter, ks);
    }

    /// Generates [`WIDE_LANES`] consecutive GCM counter-mode keystream blocks
    /// (`nonce ‖ counter + lane`) into `ks` — the wide-stride companion of
    /// [`Self::ctr8_keystream`] used by the CLMUL tier's 256-byte loop.
    ///
    /// With VAES + AVX2 the sixteen block states live in eight ymm registers,
    /// two blocks per `vaesenc`; otherwise the call decomposes into two
    /// 8-block runs of the existing backend, so the keystream bytes are
    /// identical regardless of generator width.
    #[allow(unsafe_code)]
    pub fn ctr16_keystream(&self, nonce: &[u8; 12], counter: u32, ks: &mut [u8; 16 * WIDE_LANES]) {
        #[cfg(target_arch = "x86_64")]
        if self.vaes {
            // SAFETY: `self.vaes` is only set when `is_x86_feature_detected!`
            // confirmed `vaes` + `avx2` (and `ni` confirmed `aes` + `sse4.1`)
            // at key expansion.
            unsafe { ni::ctr16_keystream_vaes(&self.round_keys, self.rounds, nonce, counter, ks) };
            return;
        }
        let (lo, hi) = ks.split_at_mut(16 * CTR_LANES);
        self.ctr8_keystream(nonce, counter, lo.try_into().expect("128 bytes"));
        self.ctr8_keystream(
            nonce,
            counter.wrapping_add(CTR_LANES as u32),
            hi.try_into().expect("128 bytes"),
        );
    }

    /// The portable interleaved T-table backend of [`Self::ctr8_keystream`]
    /// (public within the crate so tests can cross-check it against the
    /// hardware path regardless of what the dispatcher picks).
    pub fn ctr8_keystream_portable(
        &self,
        nonce: &[u8; 12],
        counter: u32,
        ks: &mut [u8; 16 * CTR_LANES],
    ) {
        let w0 = u32::from_be_bytes(nonce[0..4].try_into().expect("4 bytes"));
        let w1 = u32::from_be_bytes(nonce[4..8].try_into().expect("4 bytes"));
        let w2 = u32::from_be_bytes(nonce[8..12].try_into().expect("4 bytes"));
        let (half0, half1) = ks.split_at_mut(64);
        self.ctr_quad(w0, w1, w2, counter, half0.try_into().expect("64 bytes"));
        self.ctr_quad(
            w0,
            w1,
            w2,
            counter.wrapping_add(4),
            half1.try_into().expect("64 bytes"),
        );
    }

    /// Four interleaved CTR lanes: the quad of block states (16 live words)
    /// approximately fits the scalar register file, and the per-round table
    /// lookups of the four independent lanes issue back to back, hiding each
    /// other's load latency. States are held in explicit scalar locals (no
    /// arrays) so the whole round body stays in SSA form.
    fn ctr_quad(&self, w0: u32, w1: u32, w2: u32, counter: u32, ks: &mut [u8; 64]) {
        let rk = &self.round_keys;
        let (t0, t1, t2, t3) = tables();

        /// One AES round for one lane: four T-table lookups per word.
        macro_rules! round_lane {
            ($s0:expr, $s1:expr, $s2:expr, $s3:expr, $r0:expr, $r1:expr, $r2:expr, $r3:expr) => {
                (
                    t0[($s0 >> 24) as usize]
                        ^ t1[(($s1 >> 16) & 0xff) as usize]
                        ^ t2[(($s2 >> 8) & 0xff) as usize]
                        ^ t3[($s3 & 0xff) as usize]
                        ^ $r0,
                    t0[($s1 >> 24) as usize]
                        ^ t1[(($s2 >> 16) & 0xff) as usize]
                        ^ t2[(($s3 >> 8) & 0xff) as usize]
                        ^ t3[($s0 & 0xff) as usize]
                        ^ $r1,
                    t0[($s2 >> 24) as usize]
                        ^ t1[(($s3 >> 16) & 0xff) as usize]
                        ^ t2[(($s0 >> 8) & 0xff) as usize]
                        ^ t3[($s1 & 0xff) as usize]
                        ^ $r2,
                    t0[($s3 >> 24) as usize]
                        ^ t1[(($s0 >> 16) & 0xff) as usize]
                        ^ t2[(($s1 >> 8) & 0xff) as usize]
                        ^ t3[($s2 & 0xff) as usize]
                        ^ $r3,
                )
            };
        }

        // Words 0..2 are the nonce, identical across lanes; only the counter
        // word differs per lane.
        let i0 = w0 ^ rk[0];
        let i1 = w1 ^ rk[1];
        let i2 = w2 ^ rk[2];
        let (mut a0, mut a1, mut a2, mut a3) = (i0, i1, i2, counter ^ rk[3]);
        let (mut b0, mut b1, mut b2, mut b3) = (i0, i1, i2, counter.wrapping_add(1) ^ rk[3]);
        let (mut c0, mut c1, mut c2, mut c3) = (i0, i1, i2, counter.wrapping_add(2) ^ rk[3]);
        let (mut d0, mut d1, mut d2, mut d3) = (i0, i1, i2, counter.wrapping_add(3) ^ rk[3]);

        for r in rk[4..4 * self.rounds].chunks_exact(4) {
            let (r0, r1, r2, r3) = (r[0], r[1], r[2], r[3]);
            (a0, a1, a2, a3) = round_lane!(a0, a1, a2, a3, r0, r1, r2, r3);
            (b0, b1, b2, b3) = round_lane!(b0, b1, b2, b3, r0, r1, r2, r3);
            (c0, c1, c2, c3) = round_lane!(c0, c1, c2, c3, r0, r1, r2, r3);
            (d0, d1, d2, d3) = round_lane!(d0, d1, d2, d3, r0, r1, r2, r3);
        }

        let fr = 4 * self.rounds;
        let (k0, k1, k2, k3) = (rk[fr], rk[fr + 1], rk[fr + 2], rk[fr + 3]);
        let store = |s0: u32, s1: u32, s2: u32, s3: u32, out: &mut [u8]| {
            out[0..4].copy_from_slice(&(final_word(s0, s1, s2, s3) ^ k0).to_be_bytes());
            out[4..8].copy_from_slice(&(final_word(s1, s2, s3, s0) ^ k1).to_be_bytes());
            out[8..12].copy_from_slice(&(final_word(s2, s3, s0, s1) ^ k2).to_be_bytes());
            out[12..16].copy_from_slice(&(final_word(s3, s0, s1, s2) ^ k3).to_be_bytes());
        };
        store(a0, a1, a2, a3, &mut ks[0..16]);
        store(b0, b1, b2, b3, &mut ks[16..32]);
        store(c0, c1, c2, c3, &mut ks[32..48]);
        store(d0, d1, d2, d3, &mut ks[48..64]);
    }
}

/// Hardware AES-NI backend for the multi-block CTR keystream. The only
/// `unsafe` code in the crate: every function here is gated on the runtime
/// feature detection performed in [`Aes::new`].
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod ni {
    use core::arch::x86_64::*;

    /// Generates 8 CTR keystream blocks with the AES round instructions,
    /// keeping all eight block states in xmm registers.
    ///
    /// # Safety
    ///
    /// Requires the `aes` and `sse4.1` CPU features (the caller checks via
    /// `is_x86_feature_detected!` at key expansion).
    #[target_feature(enable = "aes,sse4.1")]
    pub unsafe fn ctr8_keystream(
        rk: &[u32],
        rounds: usize,
        nonce: &[u8; 12],
        counter: u32,
        ks: &mut [u8; 128],
    ) {
        // Round keys: word i's big-endian bytes are block bytes 4i..4i+4, so a
        // byte-swapped word is the little-endian lane value.
        let key = |i: usize| -> __m128i {
            _mm_set_epi32(
                rk[4 * i + 3].swap_bytes() as i32,
                rk[4 * i + 2].swap_bytes() as i32,
                rk[4 * i + 1].swap_bytes() as i32,
                rk[4 * i].swap_bytes() as i32,
            )
        };
        let n0 = u32::from_le_bytes(nonce[0..4].try_into().expect("4 bytes")) as i32;
        let n1 = u32::from_le_bytes(nonce[4..8].try_into().expect("4 bytes")) as i32;
        let n2 = u32::from_le_bytes(nonce[8..12].try_into().expect("4 bytes")) as i32;

        let k0 = key(0);
        let mut x = [_mm_setzero_si128(); 8];
        for (lane, slot) in x.iter_mut().enumerate() {
            let ctr = counter.wrapping_add(lane as u32).swap_bytes() as i32;
            *slot = _mm_xor_si128(_mm_set_epi32(ctr, n2, n1, n0), k0);
        }
        for r in 1..rounds {
            let k = key(r);
            for slot in x.iter_mut() {
                *slot = _mm_aesenc_si128(*slot, k);
            }
        }
        let k = key(rounds);
        for slot in x.iter_mut() {
            *slot = _mm_aesenclast_si128(*slot, k);
        }
        for (slot, out) in x.iter().zip(ks.chunks_exact_mut(16)) {
            let lo = _mm_cvtsi128_si64(*slot) as u64;
            let hi = _mm_extract_epi64::<1>(*slot) as u64;
            out[0..8].copy_from_slice(&lo.to_le_bytes());
            out[8..16].copy_from_slice(&hi.to_le_bytes());
        }
    }

    /// Generates 16 CTR keystream blocks with the VAES ymm round
    /// instructions: eight 256-bit states, each carrying two counter blocks,
    /// so every `vaesenc` advances two blocks at once.
    ///
    /// # Safety
    ///
    /// Requires the `vaes` and `avx2` CPU features in addition to `aes` and
    /// `sse4.1` (the caller checks via `is_x86_feature_detected!` at key
    /// expansion).
    #[target_feature(enable = "vaes,avx2,aes,sse4.1")]
    pub unsafe fn ctr16_keystream_vaes(
        rk: &[u32],
        rounds: usize,
        nonce: &[u8; 12],
        counter: u32,
        ks: &mut [u8; 256],
    ) {
        // Same lane layout as the xmm path, broadcast to both ymm halves.
        let key = |i: usize| -> __m256i {
            _mm256_broadcastsi128_si256(_mm_set_epi32(
                rk[4 * i + 3].swap_bytes() as i32,
                rk[4 * i + 2].swap_bytes() as i32,
                rk[4 * i + 1].swap_bytes() as i32,
                rk[4 * i].swap_bytes() as i32,
            ))
        };
        let n0 = u32::from_le_bytes(nonce[0..4].try_into().expect("4 bytes")) as i32;
        let n1 = u32::from_le_bytes(nonce[4..8].try_into().expect("4 bytes")) as i32;
        let n2 = u32::from_le_bytes(nonce[8..12].try_into().expect("4 bytes")) as i32;

        let k0 = key(0);
        let mut x = [_mm256_setzero_si256(); 8];
        for (pair, slot) in x.iter_mut().enumerate() {
            // Low 128-bit lane holds block 2·pair, high lane block 2·pair+1,
            // matching the storeu byte order below.
            let c_lo = counter.wrapping_add(2 * pair as u32).swap_bytes() as i32;
            let c_hi = counter.wrapping_add(2 * pair as u32 + 1).swap_bytes() as i32;
            let ctrs = _mm256_set_epi32(c_hi, n2, n1, n0, c_lo, n2, n1, n0);
            *slot = _mm256_xor_si256(ctrs, k0);
        }
        for r in 1..rounds {
            let k = key(r);
            for slot in x.iter_mut() {
                *slot = _mm256_aesenc_epi128(*slot, k);
            }
        }
        let k = key(rounds);
        for slot in x.iter_mut() {
            *slot = _mm256_aesenclast_epi128(*slot, k);
        }
        for (slot, out) in x.iter().zip(ks.chunks_exact_mut(32)) {
            _mm256_storeu_si256(out.as_mut_ptr() as *mut __m256i, *slot);
        }
    }
}

fn final_word(a: u32, b: u32, c: u32, d: u32) -> u32 {
    u32::from_be_bytes([
        SBOX[(a >> 24) as usize],
        SBOX[((b >> 16) & 0xff) as usize],
        SBOX[((c >> 8) & 0xff) as usize],
        SBOX[(d & 0xff) as usize],
    ])
}

fn sub_word(w: u32) -> u32 {
    u32::from_be_bytes([
        SBOX[(w >> 24) as usize],
        SBOX[((w >> 16) & 0xff) as usize],
        SBOX[((w >> 8) & 0xff) as usize],
        SBOX[(w & 0xff) as usize],
    ])
}

type TTables = ([u32; 256], [u32; 256], [u32; 256], [u32; 256]);

fn tables() -> (
    &'static [u32; 256],
    &'static [u32; 256],
    &'static [u32; 256],
    &'static [u32; 256],
) {
    use std::sync::OnceLock;
    static TABLES: OnceLock<Box<TTables>> = OnceLock::new();
    let t = TABLES.get_or_init(|| {
        let mut a = [0u32; 256];
        let mut b = [0u32; 256];
        let mut c = [0u32; 256];
        let mut d = [0u32; 256];
        for i in 0..256 {
            let v = t0(i);
            a[i] = v;
            b[i] = v.rotate_right(8);
            c[i] = v.rotate_right(16);
            d[i] = v.rotate_right(24);
        }
        Box::new((a, b, c, d))
    });
    (&t.0, &t.1, &t.2, &t.3)
}

#[cfg(test)]
mod tests {
    use super::Aes;
    use crate::tier::CryptoTier;

    #[test]
    fn fips197_aes128_vector() {
        // FIPS-197 Appendix B.
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let mut block = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        Aes::new_with_tier(&key, crate::tier::active_tier())
            .unwrap()
            .encrypt_block(&mut block);
        assert_eq!(
            block,
            [
                0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
                0x0b, 0x32
            ]
        );
    }

    #[test]
    fn fips197_aes256_vector() {
        // FIPS-197 Appendix C.3.
        let key: Vec<u8> = (0u8..32).collect();
        let mut block: [u8; 16] = core::array::from_fn(|i| (i as u8) * 0x11);
        Aes::new_with_tier(&key, crate::tier::active_tier())
            .unwrap()
            .encrypt_block(&mut block);
        assert_eq!(
            block,
            [
                0x8e, 0xa2, 0xb7, 0xca, 0x51, 0x67, 0x45, 0xbf, 0xea, 0xfc, 0x49, 0x90, 0x4b, 0x49,
                0x60, 0x89
            ]
        );
    }

    #[test]
    fn bad_key_lengths_are_errors_not_panics() {
        for len in [0usize, 15, 17, 24, 31, 33] {
            match Aes::new_with_tier(&vec![0u8; len], CryptoTier::Portable) {
                Err(e) => assert_eq!(e, super::UnsupportedKeyLength(len)),
                Ok(_) => panic!("length {len} accepted"),
            }
        }
    }

    #[test]
    fn interleaved_ctr_matches_single_block_cipher() {
        // Each of the 8 lanes must equal an independent encrypt_block of the
        // corresponding counter block, for both key sizes, across a counter
        // that differs per lane, through both backends.
        for key in [(0u8..16).collect::<Vec<u8>>(), (0u8..32).collect()] {
            let aes = Aes::new_with_tier(&key, crate::tier::active_tier()).unwrap();
            let nonce: [u8; 12] = core::array::from_fn(|i| (i as u8) ^ 0x5a);
            for start in [0u32, 1, 2, 1000, u32::MAX - 3] {
                let mut ks = [0u8; 16 * super::CTR_LANES];
                aes.ctr8_keystream(&nonce, start, &mut ks);
                let mut ks_portable = [0u8; 16 * super::CTR_LANES];
                aes.ctr8_keystream_portable(&nonce, start, &mut ks_portable);
                assert_eq!(ks, ks_portable, "backends disagree");
                for lane in 0..super::CTR_LANES {
                    let mut block = [0u8; 16];
                    block[..12].copy_from_slice(&nonce);
                    block[12..].copy_from_slice(&start.wrapping_add(lane as u32).to_be_bytes());
                    aes.encrypt_block(&mut block);
                    assert_eq!(&ks[lane * 16..lane * 16 + 16], &block, "lane {lane}");
                }
            }
        }
    }

    #[test]
    fn wide_ctr_matches_single_block_cipher_on_every_tier() {
        // The 16-lane keystream must be byte-identical to 16 independent
        // encrypt_block calls on every tier the CPU supports (VAES ymm,
        // AES-NI xmm pairs, portable T-table quads), including across a
        // counter wrap.
        for key in [(0u8..16).collect::<Vec<u8>>(), (0u8..32).collect()] {
            let nonce: [u8; 12] = core::array::from_fn(|i| (i as u8).wrapping_mul(37));
            for tier in [
                CryptoTier::WideClmul,
                CryptoTier::AesNiShoup,
                CryptoTier::Portable,
            ] {
                let aes = Aes::new_with_tier(&key, tier).unwrap();
                for start in [0u32, 3, 0xdead_beef, u32::MAX - 7] {
                    let mut ks = [0u8; 16 * super::WIDE_LANES];
                    aes.ctr16_keystream(&nonce, start, &mut ks);
                    for lane in 0..super::WIDE_LANES {
                        let mut block = [0u8; 16];
                        block[..12].copy_from_slice(&nonce);
                        block[12..].copy_from_slice(&start.wrapping_add(lane as u32).to_be_bytes());
                        aes.encrypt_block(&mut block);
                        assert_eq!(
                            &ks[lane * 16..lane * 16 + 16],
                            &block,
                            "tier {} lane {lane}",
                            tier.name()
                        );
                    }
                }
            }
        }
    }
}
