//! Integration tests of the discrete-event network harness: every evaluated
//! stack survives the acceptance scenarios (incast under loss, Poisson load),
//! and the whole simulation is bit-deterministic per seed.

use proptest::prelude::*;
use smt::crypto::cert::CertificateAuthority;
use smt::crypto::handshake::SmtTicketIssuer;
use smt::sim::net::{
    incast_scenario, poisson_pair_scenario, run_scenario, FaultConfig, LinkConfig, Scenario,
    ScenarioReport, SizeMix,
};
use smt::transport::{
    handshake_scenario_endpoints, scenario_endpoints, StackKind, ZeroRttAcceptor,
};
use smt_bench::scenarios::scenario_keys;

fn run_stack(scenario: &Scenario, stack: StackKind) -> ScenarioReport {
    let keys = scenario_keys();
    let mut endpoints = scenario_endpoints(scenario, stack, &keys.0, &keys.1);
    run_scenario(scenario, &mut endpoints, |_, _, _, _| None)
}

/// The acceptance criterion: under 1% injected loss, every one of the eight
/// stacks still delivers every incast message (recovering via RESENDs,
/// sender-timeout retransmissions or go-back-N).
#[test]
fn one_percent_loss_loses_no_messages_on_any_stack() {
    let scenario = incast_scenario(
        8,
        16 * 1024,
        2,
        LinkConfig::default(),
        FaultConfig::lossy(0.01, 90125),
    );
    for stack in StackKind::all() {
        let report = run_stack(&scenario, stack);
        assert_eq!(
            report.messages_sent,
            16,
            "stack {}: send refused",
            stack.label()
        );
        assert_eq!(
            report.messages_delivered,
            16,
            "stack {} lost messages: {report:?}",
            stack.label()
        );
        assert!(!report.truncated, "stack {}", stack.label());
    }
}

/// Open-loop Poisson load delivers everything and produces sane percentiles
/// on every stack.
#[test]
fn poisson_load_point_is_sane_on_every_stack() {
    let scenario = poisson_pair_scenario(
        100_000.0,
        smt::sim::time::MILLISECOND,
        &SizeMix::rpc_small(),
        31,
        LinkConfig::default(),
        FaultConfig::none(),
    );
    for stack in StackKind::all() {
        let report = run_stack(&scenario, stack);
        assert_eq!(report.messages_sent, report.messages_delivered);
        assert!(report.latency.p50_us > 0.0, "stack {}", stack.label());
        assert!(
            report.latency.p99_us >= report.latency.p50_us,
            "stack {}",
            stack.label()
        );
        assert!(report.goodput_gbps > 0.0);
        assert_eq!(report.retransmissions, 0, "lossless: {}", stack.label());
    }
}

/// The in-band handshake drops into the multi-host scenario harness: a lossy
/// incast where every flow is its own connection — cold first, then resumed
/// (0-RTT) through the same listener — and no workload message is lost even
/// though the handshake flights themselves ride the same faulty fabric.
#[test]
fn incast_with_in_band_handshakes_under_loss() {
    let ca = CertificateAuthority::new("hs-scenario-ca");
    let identity = ca.issue_identity("scenario.dc.local");
    let acceptor = ZeroRttAcceptor::new(SmtTicketIssuer::new(identity.clone(), 3600), 1 << 12);
    let scenario = incast_scenario(
        4,
        16 * 1024,
        2,
        LinkConfig::default(),
        FaultConfig::lossy(0.01, 424242),
    );
    let mut dropped_total = 0;
    for stack in [StackKind::SmtSw, StackKind::KtlsSw] {
        for ticket in [None, Some(acceptor.ticket(10))] {
            let resumed = ticket.is_some();
            let mut endpoints = handshake_scenario_endpoints(
                &scenario,
                stack,
                &ca.verifying_key(),
                "scenario.dc.local",
                &identity,
                &acceptor,
                ticket.as_ref(),
            );
            let report = run_scenario(&scenario, &mut endpoints, |_, _, _, _| None);
            assert_eq!(
                report.messages_sent,
                report.messages_delivered,
                "{} resumed={resumed}: lost messages: {report:?}",
                stack.label()
            );
            assert!(!report.truncated, "{} resumed={resumed}", stack.label());
            dropped_total += report.fabric.dropped_faults;
        }
    }
    assert!(dropped_total > 0, "the fault model did inject loss");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// Determinism: the same scenario seed produces a bit-identical event
    /// trace and `ScenarioReport` across two runs, for all eight stacks.
    #[test]
    fn same_seed_same_trace_for_all_stacks(seed in any::<u64>()) {
        let scenario = incast_scenario(
            3,
            2048,
            2,
            LinkConfig::default(),
            FaultConfig {
                loss: 0.05,
                duplicate: 0.05,
                reorder: 0.2,
                seed,
                ..FaultConfig::none()
            },
        );
        for stack in StackKind::all() {
            let a = run_stack(&scenario, stack);
            let b = run_stack(&scenario, stack);
            prop_assert_eq!(
                a.trace_hash, b.trace_hash,
                "stack {} produced diverging event traces", stack.label()
            );
            prop_assert_eq!(&a, &b, "stack {} reports diverge", stack.label());
            prop_assert_eq!(a.messages_delivered, 6, "stack {}", stack.label());
        }
    }
}
