//! Errors produced by the SMT protocol engine.

use thiserror::Error;

/// Errors from segmentation, reassembly, replay protection and session handling.
#[derive(Debug, Error)]
pub enum SmtError {
    /// The message exceeds the negotiated or configured maximum size.
    #[error("message too large: {size} bytes exceeds limit {limit}")]
    MessageTooLarge {
        /// Attempted message size.
        size: usize,
        /// Maximum allowed.
        limit: usize,
    },

    /// The per-session message-ID space is exhausted (a new handshake / key
    /// update is required, §4.5.2).
    #[error("message identifier space exhausted")]
    MessageIdExhausted,

    /// A replayed message ID was detected and the message was discarded.
    #[error("replayed message id {0}")]
    ReplayedMessage(u64),

    /// A packet did not parse or carried inconsistent metadata.
    #[error("malformed packet: {0}")]
    MalformedPacket(String),

    /// Cryptographic failure (authentication, sequence misuse, handshake).
    #[error(transparent)]
    Crypto(#[from] smt_crypto::CryptoError),

    /// Wire-format error.
    #[error(transparent)]
    Wire(#[from] smt_wire::WireError),

    /// The session was used in a way that violates its state machine.
    #[error("session error: {0}")]
    Session(String),
}

impl SmtError {
    /// Convenience constructor for malformed-packet errors.
    pub fn malformed(msg: impl Into<String>) -> Self {
        SmtError::MalformedPacket(msg.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e = SmtError::MessageTooLarge { size: 10, limit: 5 };
        assert!(e.to_string().contains("10"));
        let c: SmtError = smt_crypto::CryptoError::AuthenticationFailed.into();
        assert!(matches!(c, SmtError::Crypto(_)));
        let w: SmtError = smt_wire::WireError::UnknownPacketType(1).into();
        assert!(matches!(w, SmtError::Wire(_)));
    }
}
