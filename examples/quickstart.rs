//! Quickstart: establish a secure SMT session and exchange encrypted messages
//! through the unified endpoint API.
//!
//! Run with: `cargo run --example quickstart`

use smt::crypto::cert::CertificateAuthority;
use smt::crypto::handshake::{establish, ClientConfig, ServerConfig};
use smt::transport::{drive_pair, Endpoint, Event, PairFabric, SecureEndpoint, StackKind};

fn main() {
    // The datacenter operates an internal CA; every endpoint pre-installs its key.
    let ca = CertificateAuthority::new("dc-internal-ca");
    let server_identity = ca.issue_identity("storage.dc.local");

    // 1. TLS 1.3 handshake performed by the application (paper §4.2).
    let (client_keys, server_keys) = establish(
        ClientConfig::new(ca.verifying_key(), "storage.dc.local"),
        ServerConfig::new(server_identity, ca.verifying_key()),
    )
    .expect("handshake");
    println!(
        "session established: suite={:?}, forward_secret={}, msg-id bits={}",
        client_keys.suite, client_keys.forward_secret, client_keys.seqno_layout.msg_id_bits
    );

    // 2. Register the keys with secure endpoints on both ends.  The same
    //    builder serves every evaluated stack; swap SmtSw for KtlsSw (or any
    //    other StackKind) and nothing below changes.
    let (mut client, mut server) = Endpoint::builder()
        .stack(StackKind::SmtSw)
        .pair(&client_keys, &server_keys, 4000, 5201)
        .expect("endpoints");

    // 3. Send three concurrent messages; they may complete in any order.
    let payloads: Vec<Vec<u8>> = vec![
        b"PUT /blob/alpha".to_vec(),
        vec![0x42u8; 200_000], // a large message spanning many records
        b"GET /blob/beta".to_vec(),
    ];
    for p in &payloads {
        client.send(p, 0).expect("send");
    }

    // 4. Move packets over a two-host fabric in simulated time until the
    //    pair quiesces (here lossless; the same loop recovers from loss).
    let mut link = PairFabric::reliable();
    drive_pair(&mut client, &mut server, &mut link, 1_000_000);
    println!("pair quiesced at t={} ns (virtual)", link.now());

    // 5. Consume delivery events.
    let mut delivered = 0;
    while let Some(event) = server.poll_event() {
        match event {
            Event::HandshakeComplete { peer_identity, .. } => {
                println!("server ready (peer identity: {peer_identity:?})");
            }
            Event::MessageDelivered { id, data } => {
                println!("delivered {id} ({} bytes)", data.len());
                delivered += 1;
            }
            Event::MessageAcked(_) | Event::TicketReceived(_) | Event::Error(_) => {}
        }
    }
    assert_eq!(delivered, payloads.len());
    println!(
        "stats: sent={} delivered={} wire-bytes rx={} replay-rejected={}",
        client.stats().messages_sent,
        server.stats().messages_delivered,
        server.stats().wire_bytes_received,
        server.stats().replays_rejected,
    );
}
