//! # smt-apps — applications driving the SMT evaluation
//!
//! The paper evaluates SMT with three applications; this crate rebuilds each of
//! them on top of the SMT engine and the simulation substrate:
//!
//! * [`rpc`] — the custom RPC echo client/server used for the unloaded-RTT and
//!   throughput experiments (Figs. 6, 7, 10, 11);
//! * [`kv`] — a Redis-like in-memory key-value store with a single-threaded
//!   event loop, plus the YCSB A–E workload generator used in Fig. 8;
//! * [`blockstore`] — an NVMe-oF-like remote block store with a simulated SSD
//!   and an FIO-style random-read generator with configurable iodepth (Fig. 9).
//!
//! Each application exposes (a) a *functional* implementation that runs requests
//! through the real SMT engine (used by examples and integration tests), and
//! (b) a *workload model* (request/response sizes and server compute) that the
//! benches combine with the transport profiles to regenerate the paper's
//! figures.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod blockstore;
pub mod host;
pub mod kv;
pub mod rpc;
pub mod ycsb;

pub use blockstore::{BlockRequest, BlockStore, BlockStoreConfig, FioGenerator};
pub use host::{BlockHost, KvHost, RpcApp};
pub use kv::{KvRequest, KvResponse, KvStore};
pub use rpc::{EchoPair, EchoServer};
pub use ycsb::{YcsbConfig, YcsbGenerator, YcsbOp, YcsbWorkload, ZipfianSampler};
