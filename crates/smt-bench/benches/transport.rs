//! Criterion benchmarks of the packet-level datapath (segmentation + NIC TSO +
//! reassembly + decryption, end to end in memory).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use smt_core::segment::PathInfo;
use smt_core::SmtConfig;
use smt_crypto::cert::CertificateAuthority;
use smt_crypto::handshake::{establish, ClientConfig, ServerConfig};

fn bench_end_to_end(c: &mut Criterion) {
    let ca = CertificateAuthority::new("ca");
    let id = ca.issue_identity("server");
    let (ck, sk) = establish(
        ClientConfig::new(ca.verifying_key(), "server"),
        ServerConfig::new(id, ca.verifying_key()),
    )
    .unwrap();
    let mut group = c.benchmark_group("end_to_end_message");
    for size in [64usize, 1024, 8192, 65_536] {
        let data = vec![5u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("smt_sw", size), &data, |b, d| {
            let (mut tx, mut rx) =
                smt_core::session::session_pair(&ck, &sk, SmtConfig::software(), 1, 2).unwrap();
            let _ = PathInfo::loopback(1, 2);
            b.iter(|| {
                let out = tx.send_message(d, 0).unwrap();
                let mut delivered = None;
                for seg in &out.segments {
                    for pkt in seg.packetize(1500).unwrap() {
                        if let Some(m) = rx.receive_packet(&pkt).unwrap() {
                            delivered = Some(m);
                        }
                    }
                }
                delivered.unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
