//! The SMT-ticket 0-RTT handshake (paper §4.5.2/§4.5.3; "Init" and "Init-FS" in
//! Fig. 12).
//!
//! Datacenter transports such as Homa and NDP send an RPC in the very first RTT
//! without a transport-level handshake.  To let SMT do the same with encryption,
//! the server's long-term ECDH public share is pre-distributed (in the paper: via
//! the internal DNS resolver, which the cloud provider can co-locate with its
//! internal CA) inside a signed **SMT-ticket**.  A client that holds a valid
//! ticket can:
//!
//! 1. verify the ticket offline (certificate chain + ticket signature),
//! 2. derive an *SMT-key* from the server's long-term share and a fresh client
//!    ephemeral share, and
//! 3. send its ClientHello **and encrypted application data** in the first flight.
//!
//! Without forward secrecy ("Init"), the SMT-key protects the whole session.
//! With forward secrecy enabled ("Init-FS"), the server replies with an ephemeral
//! share; both sides then derive an *fs-key* and switch to it for subsequent data.
//! 0-RTT data itself is never forward secret (§4.5.3); the mitigations are a short
//! ticket lifetime (≤ 1 hour) and server-side tracking of ClientHello randoms.

use super::keys::EcdhKeyPair;
use super::messages::*;
use super::timing::{HandshakeTimings, OpId};
use super::{layout_from_extension, SessionKeys};
use crate::cert::{random_bytes, validate_chain, Identity, VerifyingKey};
use crate::key_schedule::{hkdf_extract, transcript_hash, KeySchedule, Secret};
use crate::record::RecordProtector;
use crate::suite::CipherSuite;
use crate::{CryptoError, CryptoResult};
use smt_wire::ContentType;
use std::collections::HashSet;

/// Server-side manager of the long-term SMT-ticket key.
///
/// Production deployments rotate this hourly (§4.5.3, following Cloudflare's
/// practice for 0-RTT session-ticket keys); [`SmtTicketIssuer::rotate`] models
/// that rotation.
pub struct SmtTicketIssuer {
    identity: Identity,
    long_term: EcdhKeyPair,
    ticket_id: u64,
    validity_secs: u32,
}

impl std::fmt::Debug for SmtTicketIssuer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SmtTicketIssuer")
            .field("ticket_id", &self.ticket_id)
            .field("validity_secs", &self.validity_secs)
            .finish_non_exhaustive()
    }
}

impl SmtTicketIssuer {
    /// Creates an issuer for the given server identity.
    pub fn new(identity: Identity, validity_secs: u32) -> Self {
        Self {
            identity,
            long_term: EcdhKeyPair::generate(),
            ticket_id: u64::from_be_bytes(random_bytes(8).try_into().expect("8 bytes")),
            validity_secs,
        }
    }

    /// The current ticket identity.
    pub fn ticket_id(&self) -> u64 {
        self.ticket_id
    }

    /// Mints the SMT-ticket to publish via the internal DNS resolver.
    pub fn ticket(&self, now: u64) -> SmtTicket {
        let mut t = SmtTicket {
            ticket_id: self.ticket_id,
            server_dh_public: self.long_term.public_bytes(),
            chain: self.identity.chain.clone(),
            validity_secs: self.validity_secs,
            issued_at: now,
            signature: Vec::new(),
        };
        t.signature = self.identity.key.sign(&t.to_be_signed());
        t
    }

    /// Rotates the long-term key (hourly in production), invalidating old tickets.
    pub fn rotate(&mut self) {
        self.long_term = EcdhKeyPair::generate();
        self.ticket_id = u64::from_be_bytes(random_bytes(8).try_into().expect("8 bytes"));
    }

    fn shared_with(&self, client_share: &[u8]) -> CryptoResult<Vec<u8>> {
        self.long_term.diffie_hellman(client_share)
    }
}

/// Server-side record of recently seen ClientHello randoms (anti-replay for 0-RTT
/// data, §4.5.3 / RFC 8446 §8).
///
/// The cache is bounded: once `capacity` randoms are tracked, each new insert
/// evicts the *oldest* tracked random (insertion order) rather than resetting
/// the whole window, so an attacker flooding the cache can only shrink the
/// replay window gradually and the eviction shows up in [`ReplayCache::evictions`].
#[derive(Debug, Default)]
pub struct ReplayCache {
    seen: HashSet<[u8; 32]>,
    order: std::collections::VecDeque<[u8; 32]>,
    capacity: usize,
    evictions: u64,
}

impl ReplayCache {
    /// Creates a cache bounded to `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Self {
            seen: HashSet::with_capacity(capacity.min(1 << 20)),
            order: std::collections::VecDeque::with_capacity(capacity.min(1 << 20)),
            capacity,
            evictions: 0,
        }
    }

    /// Records `random`; returns `false` if it was already present (replay).
    pub fn check_and_insert(&mut self, random: &[u8; 32]) -> bool {
        if self.seen.contains(random) {
            return false;
        }
        while self.seen.len() >= self.capacity.max(1) {
            // Evict the oldest tracked random. Ticket rotation bounds the
            // replay window; counted eviction keeps memory bounded without
            // discarding the whole window at once.
            if let Some(oldest) = self.order.pop_front() {
                self.seen.remove(&oldest);
                self.evictions += 1;
            } else {
                break;
            }
        }
        self.order.push_back(*random);
        self.seen.insert(*random)
    }

    /// Number of randoms currently tracked.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// True when no randoms are tracked.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// Number of randoms evicted to stay within the capacity bound.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

fn smt_key_from_shared(shared: &[u8]) -> Secret {
    // SMT-key = HKDF-Extract(0, ECDH(long-term server share, client ephemeral)).
    hkdf_extract(&Secret::zero(), shared)
}

/// Client side of the 0-RTT handshake.
pub struct ZeroRttClientHandshake {
    suite: CipherSuite,
    forward_secrecy: bool,
    ephemeral: EcdhKeyPair,
    smt_key: Secret,
    transcript: Vec<u8>,
    extensions: SmtExtensions,
    server_name: String,
    timings: HandshakeTimings,
}

impl ZeroRttClientHandshake {
    /// Verifies `ticket`, derives the SMT-key and builds the first flight:
    /// ClientHello plus `early_data` already encrypted under the client early
    /// traffic secret.  `now` is the client's clock for ticket expiry.
    ///
    /// `pregenerated_key` removes C1.1 from the critical path (§4.5.1); the
    /// ticket's certificate chain is assumed to have been verified when the ticket
    /// was fetched from DNS, which is why C3.1/C3.2 do not appear here (§5.6).
    #[allow(clippy::too_many_arguments)]
    pub fn start(
        suite: CipherSuite,
        ca_key: &VerifyingKey,
        server_name: &str,
        ticket: &SmtTicket,
        extensions: SmtExtensions,
        early_data: &[u8],
        forward_secrecy: bool,
        pregenerated_key: Option<EcdhKeyPair>,
        now: u64,
    ) -> CryptoResult<(Self, Vec<u8>)> {
        let mut timings = HandshakeTimings::new();

        // Ticket verification happens ahead of time in deployment; validate here
        // anyway (outside the timed C-rows) so misuse is caught.
        if ticket.expired(now) {
            return Err(CryptoError::Certificate("SMT-ticket expired".into()));
        }
        let leaf_key = validate_chain(&ticket.chain, ca_key, Some(server_name))?;
        leaf_key
            .verify(&ticket.to_be_signed(), &ticket.signature)
            .map_err(|_| CryptoError::Certificate("SMT-ticket signature invalid".into()))?;

        // C1.1 — ephemeral key (pre-generated in the common case).
        let ephemeral = timings.time(OpId::C1_1KeyGen, || {
            pregenerated_key.unwrap_or_else(EcdhKeyPair::generate)
        });

        // C2.2 — ECDH against the server's long-term share (the 0-RTT exchange).
        let shared = timings.time(OpId::C2_2EcdhExchange, || {
            ephemeral.diffie_hellman(&ticket.server_dh_public)
        })?;
        let smt_key = smt_key_from_shared(&shared);

        // C1.2 — ClientHello.
        let hello = timings.time(OpId::C1_2OthersGen, || ClientHello {
            random: random_bytes(32).try_into().expect("32 bytes"),
            key_share: ephemeral.public_bytes(),
            cipher_suites: vec![suite.code()],
            extensions,
            psk_identity: None,
            psk_binder: None,
            smt_ticket_id: Some(ticket.ticket_id),
            early_data: !early_data.is_empty(),
            offer_client_auth: false,
        });
        let ch_encoded = HandshakeMessage::ClientHello(hello).encode();
        let transcript = ch_encoded.clone();

        // C2.3 — derive the early traffic secret and protect the 0-RTT data.
        let mut flight = ch_encoded;
        if !early_data.is_empty() {
            let early_secret = timings.time(OpId::C2_3SecretDerive, || {
                KeySchedule::new(suite, Some(&smt_key))
                    .early_traffic_secret(&transcript_hash(&transcript))
            })?;
            let cipher = RecordProtector::from_secret(suite, &early_secret)?;
            let record = cipher.encrypt_record(0, ContentType::ApplicationData, early_data)?;
            flight.extend_from_slice(&record);
        }

        Ok((
            Self {
                suite,
                forward_secrecy,
                ephemeral,
                smt_key,
                transcript,
                extensions,
                server_name: server_name.to_string(),
                timings,
            },
            flight,
        ))
    }

    /// Processes the server flight and completes the handshake, returning the
    /// client's Finished flight and the session keys.
    pub fn process_server_flight(mut self, flight: &[u8]) -> CryptoResult<(Vec<u8>, SessionKeys)> {
        let mut timings = std::mem::take(&mut self.timings);

        // C2.1 — ServerHello.
        let (sh, encrypted_rest) = timings.time(OpId::C2_1ProcessShlo, || {
            let mut r = crate::codec::Reader::new(flight);
            let msg = HandshakeMessage::decode_from(&mut r)?;
            let HandshakeMessage::ServerHello(sh) = msg else {
                return Err(CryptoError::handshake("expected ServerHello"));
            };
            Ok::<_, CryptoError>((sh, flight[flight.len() - r.remaining()..].to_vec()))
        })?;
        if !sh.early_data_accepted {
            return Err(CryptoError::handshake("server rejected 0-RTT data"));
        }
        self.transcript
            .extend_from_slice(&HandshakeMessage::ServerHello(sh.clone()).encode());

        // C2.2 — optional forward-secrecy ECDHE with the server's ephemeral share.
        let dhe = timings.time(OpId::C2_2EcdhExchange, || {
            match (&sh.key_share, self.forward_secrecy) {
                (Some(share), true) => self.ephemeral.diffie_hellman(share),
                (None, false) => Ok(Vec::new()),
                (Some(_), false) => Ok(Vec::new()),
                (None, true) => Err(CryptoError::handshake(
                    "forward secrecy requested but server omitted its key share",
                )),
            }
        })?;

        // C2.3 — derive handshake and application secrets from the SMT-key ladder.
        let mut ks = KeySchedule::new(self.suite, Some(&self.smt_key));
        let hs_secrets = timings.time(OpId::C2_3SecretDerive, || {
            ks.into_handshake(&dhe, &transcript_hash(&self.transcript))
        })?;

        // Decrypt EncryptedExtensions + Finished.
        let mut server_hs_cipher = RecordProtector::from_secret(self.suite, &hs_secrets.server)?;
        let (inner, _) = server_hs_cipher.decrypt_record(0, &encrypted_rest)?;
        let msgs = decode_flight(&inner.plaintext)?;
        let mut iter = msgs.into_iter();
        let Some(HandshakeMessage::EncryptedExtensions(ee)) = iter.next() else {
            return Err(CryptoError::handshake("expected EncryptedExtensions"));
        };
        self.transcript
            .extend_from_slice(&HandshakeMessage::EncryptedExtensions(ee).encode());
        let Some(HandshakeMessage::Finished(server_fin)) = iter.next() else {
            return Err(CryptoError::handshake("expected server Finished"));
        };

        // C5 — verify the server Finished (possession of the long-term key),
        // derive the application secrets, emit the client Finished.
        let (client_flight, app) = timings.time(OpId::C5ProcessFinished, || {
            let expected =
                KeySchedule::finished_mac(&hs_secrets.server, &transcript_hash(&self.transcript));
            if expected != server_fin.verify_data {
                return Err(CryptoError::handshake(
                    "server Finished verification failed",
                ));
            }
            self.transcript
                .extend_from_slice(&HandshakeMessage::Finished(server_fin).encode());
            let app = ks.into_application(&transcript_hash(&self.transcript))?;
            let fin = Finished {
                verify_data: KeySchedule::finished_mac(
                    &hs_secrets.client,
                    &transcript_hash(&self.transcript),
                ),
            };
            let inner_flight = encode_flight(&[HandshakeMessage::Finished(fin)]);
            let cipher = RecordProtector::from_secret(self.suite, &hs_secrets.client)?;
            let protected = cipher.encrypt_record(0, ContentType::Handshake, &inner_flight)?;
            Ok::<_, CryptoError>((protected, app))
        })?;

        let keys = SessionKeys {
            suite: self.suite,
            is_client: true,
            send_secret: app.client,
            recv_secret: app.server,
            resumption_master: app.resumption,
            seqno_layout: layout_from_extension(self.extensions.msg_id_bits)?,
            max_message_size: self.extensions.max_message_size,
            peer_identity: Some(self.server_name),
            early_data_accepted: true,
            resumed: true,
            forward_secret: self.forward_secrecy,
            timings,
            issued_ticket: None,
        };
        Ok((client_flight, keys))
    }
}

/// Server side of the 0-RTT handshake.
pub struct ZeroRttServerHandshake {
    suite: CipherSuite,
    transcript: Vec<u8>,
    client_hs_secret: Secret,
    app_client: Secret,
    app_server: Secret,
    resumption_master: Secret,
    extensions: SmtExtensions,
    forward_secret: bool,
    timings: HandshakeTimings,
}

/// Output of the server's first processing step: its response flight and the
/// decrypted 0-RTT application data (delivered to the application immediately,
/// which is the whole point of the exchange).
pub struct ZeroRttServerResponse {
    /// The in-flight server state (complete with [`ZeroRttServerHandshake::finish`]).
    pub state: ZeroRttServerHandshake,
    /// The server's flight to send back.
    pub flight: Vec<u8>,
    /// Decrypted 0-RTT application data, if any was attached.
    pub early_data: Option<Vec<u8>>,
}

impl ZeroRttServerHandshake {
    /// Processes a 0-RTT ClientHello flight.
    pub fn respond(
        suite: CipherSuite,
        issuer: &SmtTicketIssuer,
        extensions: SmtExtensions,
        forward_secrecy: bool,
        replay: &mut ReplayCache,
        flight: &[u8],
        pregenerated_key: Option<EcdhKeyPair>,
    ) -> CryptoResult<ZeroRttServerResponse> {
        let mut timings = HandshakeTimings::new();

        // S1 — parse the ClientHello (and locate any trailing early-data record).
        let (ch, early_record) = timings.time(OpId::S1ProcessChlo, || {
            let mut r = crate::codec::Reader::new(flight);
            let msg = HandshakeMessage::decode_from(&mut r)?;
            let HandshakeMessage::ClientHello(ch) = msg else {
                return Err(CryptoError::handshake("expected ClientHello"));
            };
            let rest = flight[flight.len() - r.remaining()..].to_vec();
            Ok::<_, CryptoError>((ch, rest))
        })?;
        if ch.smt_ticket_id != Some(issuer.ticket_id()) {
            return Err(CryptoError::handshake("unknown or rotated SMT-ticket id"));
        }
        // §4.5.3: reject replayed ClientHello randoms.
        if !replay.check_and_insert(&ch.random) {
            return Err(CryptoError::Replay("repeated ClientHello random".into()));
        }

        // S2.2 — ECDH between the long-term key and the client's ephemeral share.
        let shared = timings.time(OpId::S2_2EcdhExchange, || issuer.shared_with(&ch.key_share))?;
        let smt_key = smt_key_from_shared(&shared);

        let mut transcript = HandshakeMessage::ClientHello(ch.clone()).encode();

        // Decrypt 0-RTT data under the client early traffic secret.
        let early_data = if ch.early_data && !early_record.is_empty() {
            let early_secret = KeySchedule::new(suite, Some(&smt_key))
                .early_traffic_secret(&transcript_hash(&transcript))?;
            let mut cipher = RecordProtector::from_secret(suite, &early_secret)?;
            let (plain, _) = cipher.decrypt_record(0, &early_record)?;
            Some(plain.plaintext)
        } else {
            None
        };

        // S2.1 — ephemeral key generation (only for forward secrecy).
        let ephemeral = timings.time(OpId::S2_1KeyGen, || {
            if forward_secrecy {
                Some(pregenerated_key.unwrap_or_else(EcdhKeyPair::generate))
            } else {
                None
            }
        });
        // S2.2 (continued) — forward-secrecy ECDHE.
        let dhe = timings.time(OpId::S2_2EcdhExchange, || match &ephemeral {
            Some(e) => e.diffie_hellman(&ch.key_share),
            None => Ok(Vec::new()),
        })?;

        // S2.3 — ServerHello.
        let sh = timings.time(OpId::S2_3ShloGen, || ServerHello {
            random: random_bytes(32).try_into().expect("32 bytes"),
            key_share: ephemeral.as_ref().map(|e| e.public_bytes()),
            cipher_suite: suite.code(),
            psk_accepted: true,
            early_data_accepted: early_data.is_some() || !ch.early_data,
        });
        let sh_encoded = HandshakeMessage::ServerHello(sh).encode();
        transcript.extend_from_slice(&sh_encoded);

        // S2.6 — secrets.
        let mut ks = KeySchedule::new(suite, Some(&smt_key));
        let hs_secrets = timings.time(OpId::S2_6SecretDerive, || {
            ks.into_handshake(&dhe, &transcript_hash(&transcript))
        })?;

        // S2.4 — EncryptedExtensions (no certificate: the ticket authenticated us).
        let negotiated = SmtExtensions {
            msg_id_bits: ch.extensions.msg_id_bits.min(extensions.msg_id_bits),
            max_message_size: ch
                .extensions
                .max_message_size
                .min(extensions.max_message_size),
        };
        let ee = timings.time(OpId::S2_4EeCertEncode, || {
            HandshakeMessage::EncryptedExtensions(EncryptedExtensions {
                extensions: negotiated,
                request_client_auth: false,
            })
        });
        transcript.extend_from_slice(&ee.encode());

        // Finished + application secrets (S2.6 continued).
        let (fin, app) = timings.time(OpId::S2_6SecretDerive, || {
            let fin = Finished {
                verify_data: KeySchedule::finished_mac(
                    &hs_secrets.server,
                    &transcript_hash(&transcript),
                ),
            };
            transcript.extend_from_slice(&HandshakeMessage::Finished(fin).encode());
            let app = ks.into_application(&transcript_hash(&transcript))?;
            Ok::<_, CryptoError>((fin, app))
        })?;

        let inner_flight = encode_flight(&[ee, HandshakeMessage::Finished(fin)]);
        let server_hs_cipher = RecordProtector::from_secret(suite, &hs_secrets.server)?;
        let protected =
            server_hs_cipher.encrypt_record(0, ContentType::Handshake, &inner_flight)?;
        let mut flight_out = sh_encoded;
        flight_out.extend_from_slice(&protected);

        Ok(ZeroRttServerResponse {
            state: Self {
                suite,
                transcript,
                client_hs_secret: hs_secrets.client,
                app_client: app.client,
                app_server: app.server,
                resumption_master: app.resumption,
                extensions: negotiated,
                forward_secret: forward_secrecy,
                timings,
            },
            flight: flight_out,
            early_data,
        })
    }

    /// Verifies the client Finished and returns the server's session keys.
    pub fn finish(mut self, client_flight: &[u8]) -> CryptoResult<SessionKeys> {
        let mut timings = std::mem::take(&mut self.timings);
        let mut cipher = RecordProtector::from_secret(self.suite, &self.client_hs_secret)?;
        let (inner, _) = cipher.decrypt_record(0, client_flight)?;
        let msgs = decode_flight(&inner.plaintext)?;
        let Some(HandshakeMessage::Finished(fin)) = msgs.into_iter().next() else {
            return Err(CryptoError::handshake("expected client Finished"));
        };
        timings.time(OpId::S3ProcessFinished, || {
            let expected = KeySchedule::finished_mac(
                &self.client_hs_secret,
                &transcript_hash(&self.transcript),
            );
            if expected != fin.verify_data {
                return Err(CryptoError::handshake(
                    "client Finished verification failed",
                ));
            }
            Ok(())
        })?;
        Ok(SessionKeys {
            suite: self.suite,
            is_client: false,
            send_secret: self.app_server,
            recv_secret: self.app_client,
            resumption_master: self.resumption_master,
            seqno_layout: layout_from_extension(self.extensions.msg_id_bits)?,
            max_message_size: self.extensions.max_message_size,
            peer_identity: None,
            early_data_accepted: true,
            resumed: true,
            forward_secret: self.forward_secret,
            timings,
            issued_ticket: None,
        })
    }
}

/// Drives a complete in-memory 0-RTT exchange, returning
/// `(client_keys, server_keys, early_data_received_by_server)`.
#[allow(clippy::too_many_arguments)]
pub fn establish_zero_rtt(
    suite: CipherSuite,
    ca_key: &VerifyingKey,
    server_name: &str,
    issuer: &SmtTicketIssuer,
    replay: &mut ReplayCache,
    early_data: &[u8],
    forward_secrecy: bool,
    now: u64,
) -> CryptoResult<(SessionKeys, SessionKeys, Option<Vec<u8>>)> {
    let ticket = issuer.ticket(now);
    let (client, flight) = ZeroRttClientHandshake::start(
        suite,
        ca_key,
        server_name,
        &ticket,
        SmtExtensions::default(),
        early_data,
        forward_secrecy,
        None,
        now,
    )?;
    let resp = ZeroRttServerHandshake::respond(
        suite,
        issuer,
        SmtExtensions::default(),
        forward_secrecy,
        replay,
        &flight,
        None,
    )?;
    let (client_fin, client_keys) = client.process_server_flight(&resp.flight)?;
    let server_keys = resp.state.finish(&client_fin)?;
    Ok((client_keys, server_keys, resp.early_data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::CertificateAuthority;
    use crate::record::RecordProtectorPair;

    fn setup() -> (CertificateAuthority, SmtTicketIssuer) {
        let ca = CertificateAuthority::new("dc-ca");
        let identity = ca.issue_identity("server.dc.local");
        (ca, SmtTicketIssuer::new(identity, 3600))
    }

    fn check_keys_work(client: &SessionKeys, server: &SessionKeys) {
        let c = RecordProtectorPair::derive(client.suite, &client.send_secret, &client.recv_secret)
            .unwrap();
        let mut s =
            RecordProtectorPair::derive(server.suite, &server.send_secret, &server.recv_secret)
                .unwrap();
        let wire = c
            .sender
            .encrypt_record(9, ContentType::ApplicationData, b"post-handshake")
            .unwrap();
        assert_eq!(
            s.receiver.decrypt_record(9, &wire).unwrap().0.plaintext,
            b"post-handshake"
        );
    }

    #[test]
    fn zero_rtt_delivers_early_data() {
        let (ca, issuer) = setup();
        let mut replay = ReplayCache::new(1024);
        for fs in [false, true] {
            let (ck, sk, early) = establish_zero_rtt(
                CipherSuite::Aes128GcmSha256,
                &ca.verifying_key(),
                "server.dc.local",
                &issuer,
                &mut replay,
                b"GET /object/42",
                fs,
                1_000_000,
            )
            .unwrap();
            assert_eq!(early.as_deref(), Some(&b"GET /object/42"[..]));
            assert!(ck.early_data_accepted && sk.early_data_accepted);
            assert_eq!(ck.forward_secret, fs);
            check_keys_work(&ck, &sk);
        }
    }

    #[test]
    fn replayed_client_hello_rejected() {
        let (ca, issuer) = setup();
        let mut replay = ReplayCache::new(1024);
        let ticket = issuer.ticket(0);
        let (_, flight) = ZeroRttClientHandshake::start(
            CipherSuite::Aes128GcmSha256,
            &ca.verifying_key(),
            "server.dc.local",
            &ticket,
            SmtExtensions::default(),
            b"withdraw $100",
            false,
            None,
            0,
        )
        .unwrap();
        // First delivery is accepted ...
        ZeroRttServerHandshake::respond(
            CipherSuite::Aes128GcmSha256,
            &issuer,
            SmtExtensions::default(),
            false,
            &mut replay,
            &flight,
            None,
        )
        .unwrap();
        // ... a byte-for-byte replay is rejected.
        let err = ZeroRttServerHandshake::respond(
            CipherSuite::Aes128GcmSha256,
            &issuer,
            SmtExtensions::default(),
            false,
            &mut replay,
            &flight,
            None,
        )
        .err()
        .expect("replay must be rejected");
        assert!(matches!(err, CryptoError::Replay(_)));
    }

    #[test]
    fn expired_ticket_rejected() {
        let (ca, issuer) = setup();
        let ticket = issuer.ticket(1000);
        let err = ZeroRttClientHandshake::start(
            CipherSuite::Aes128GcmSha256,
            &ca.verifying_key(),
            "server.dc.local",
            &ticket,
            SmtExtensions::default(),
            b"x",
            false,
            None,
            1000 + 3601,
        )
        .err()
        .expect("expired ticket must be rejected");
        assert!(matches!(err, CryptoError::Certificate(_)));
    }

    #[test]
    fn forged_ticket_rejected() {
        let (ca, issuer) = setup();
        let mut ticket = issuer.ticket(0);
        // Swap in an attacker-controlled DH share without a valid signature.
        ticket.server_dh_public = EcdhKeyPair::generate().public_bytes();
        assert!(ZeroRttClientHandshake::start(
            CipherSuite::Aes128GcmSha256,
            &ca.verifying_key(),
            "server.dc.local",
            &ticket,
            SmtExtensions::default(),
            b"x",
            false,
            None,
            0,
        )
        .is_err());
    }

    #[test]
    fn rotated_ticket_id_rejected_by_server() {
        let (ca, mut issuer) = setup();
        let old_ticket = issuer.ticket(0);
        let (_, flight) = ZeroRttClientHandshake::start(
            CipherSuite::Aes128GcmSha256,
            &ca.verifying_key(),
            "server.dc.local",
            &old_ticket,
            SmtExtensions::default(),
            b"x",
            false,
            None,
            0,
        )
        .unwrap();
        issuer.rotate();
        let mut replay = ReplayCache::new(16);
        assert!(ZeroRttServerHandshake::respond(
            CipherSuite::Aes128GcmSha256,
            &issuer,
            SmtExtensions::default(),
            false,
            &mut replay,
            &flight,
            None,
        )
        .is_err());
    }

    #[test]
    fn wrong_ca_rejected() {
        let (_, issuer) = setup();
        let other_ca = CertificateAuthority::new("other");
        let ticket = issuer.ticket(0);
        assert!(ZeroRttClientHandshake::start(
            CipherSuite::Aes128GcmSha256,
            &other_ca.verifying_key(),
            "server.dc.local",
            &ticket,
            SmtExtensions::default(),
            b"x",
            false,
            None,
            0,
        )
        .is_err());
    }

    #[test]
    fn zero_rtt_without_early_data() {
        let (ca, issuer) = setup();
        let mut replay = ReplayCache::new(16);
        let (ck, sk, early) = establish_zero_rtt(
            CipherSuite::Aes128GcmSha256,
            &ca.verifying_key(),
            "server.dc.local",
            &issuer,
            &mut replay,
            b"",
            false,
            0,
        )
        .unwrap();
        assert!(early.is_none());
        check_keys_work(&ck, &sk);
    }

    #[test]
    fn replay_cache_bounds_memory() {
        let mut cache = ReplayCache::new(2);
        assert!(cache.check_and_insert(&[1u8; 32]));
        assert!(cache.check_and_insert(&[2u8; 32]));
        assert!(!cache.check_and_insert(&[1u8; 32]));
        // Inserting beyond capacity evicts the oldest random, counted.
        assert!(cache.check_and_insert(&[3u8; 32]));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        // [1; 32] was the oldest and is no longer tracked; [3; 32] still is.
        assert!(cache.check_and_insert(&[1u8; 32]));
        assert!(!cache.check_and_insert(&[3u8; 32]));
        assert_eq!(cache.evictions(), 2);
    }

    #[test]
    fn timings_reflect_skipped_operations() {
        let (ca, issuer) = setup();
        let mut replay = ReplayCache::new(16);
        let (ck, sk, _) = establish_zero_rtt(
            CipherSuite::Aes128GcmSha256,
            &ca.verifying_key(),
            "server.dc.local",
            &issuer,
            &mut replay,
            b"hello",
            false,
            0,
        )
        .unwrap();
        // No certificate processing on the client (verified from the ticket in
        // advance) and no CertificateVerify generation on the server.
        assert!(ck.timings.get(OpId::C3_2VerifyCert).is_none());
        assert!(ck.timings.get(OpId::C4_2VerifyCertVerify).is_none());
        assert!(sk.timings.get(OpId::S2_5CertVerifyGen).is_none());
    }
}
