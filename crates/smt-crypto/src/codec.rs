//! Tiny binary codec helpers used to serialize handshake messages.
//!
//! Handshake flights are exchanged inside CONTROL packets; their encoding only has
//! to be unambiguous and length-prefixed (it is not byte-compatible with RFC 8446
//! handshake framing — see DESIGN.md).  Each helper mirrors the TLS convention of
//! length-prefixed opaque vectors.

use crate::{CryptoError, CryptoResult};

/// Incrementally writes length-prefixed fields into a byte vector.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a big-endian u16.
    pub fn put_u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a big-endian u32.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a big-endian u64.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a u16-length-prefixed opaque vector.
    pub fn put_vec16(&mut self, v: &[u8]) -> &mut Self {
        debug_assert!(v.len() <= u16::MAX as usize);
        self.put_u16(v.len() as u16);
        self.buf.extend_from_slice(v);
        self
    }

    /// Appends a u32-length-prefixed opaque vector.
    pub fn put_vec32(&mut self, v: &[u8]) -> &mut Self {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
        self
    }

    /// Consumes the writer, returning the accumulated bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Current length of the accumulated bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Incrementally reads length-prefixed fields from a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> CryptoResult<&'a [u8]> {
        if self.at + n > self.buf.len() {
            return Err(CryptoError::handshake(format!(
                "truncated field: wanted {n} bytes, {} remain",
                self.buf.len() - self.at
            )));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    /// Reads exactly `N` bytes into an array, without any panicking
    /// conversion on the untrusted-input path.
    fn take_n<const N: usize>(&mut self) -> CryptoResult<[u8; N]> {
        let mut out = [0u8; N];
        out.copy_from_slice(self.take(N)?);
        Ok(out)
    }

    /// Reads a single byte.
    pub fn get_u8(&mut self) -> CryptoResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a boolean flag byte, requiring the canonical encodings 0 or 1.
    ///
    /// Handshake transcripts are rebuilt from *re-encoded* messages, so a lax
    /// `!= 0` reading would canonicalize a tampered flag byte (e.g. 2 → true
    /// → re-encoded as 1) and let the modification escape the Finished MAC
    /// and signature checks (found by fuzzing).
    pub fn get_bool(&mut self) -> CryptoResult<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CryptoError::handshake(format!(
                "non-canonical boolean byte {other:#04x}"
            ))),
        }
    }

    /// Reads a big-endian u16.
    pub fn get_u16(&mut self) -> CryptoResult<u16> {
        Ok(u16::from_be_bytes(self.take_n()?))
    }

    /// Reads a big-endian u32.
    pub fn get_u32(&mut self) -> CryptoResult<u32> {
        Ok(u32::from_be_bytes(self.take_n()?))
    }

    /// Reads a big-endian u64.
    pub fn get_u64(&mut self) -> CryptoResult<u64> {
        Ok(u64::from_be_bytes(self.take_n()?))
    }

    /// Reads a u16-length-prefixed opaque vector.
    pub fn get_vec16(&mut self) -> CryptoResult<Vec<u8>> {
        let n = self.get_u16()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    /// Reads a u32-length-prefixed opaque vector.
    pub fn get_vec32(&mut self) -> CryptoResult<Vec<u8>> {
        let n = self.get_u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    /// Number of unread bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    /// Errors unless every byte has been consumed.
    pub fn expect_end(&self) -> CryptoResult<()> {
        if self.remaining() != 0 {
            return Err(CryptoError::handshake(format!(
                "{} trailing bytes after message",
                self.remaining()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_field_types() {
        let mut w = Writer::new();
        w.put_u8(7)
            .put_u16(512)
            .put_u32(70_000)
            .put_u64(1 << 40)
            .put_vec16(b"hello")
            .put_vec32(&[9u8; 300]);
        let bytes = w.finish();

        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 512);
        assert_eq!(r.get_u32().unwrap(), 70_000);
        assert_eq!(r.get_u64().unwrap(), 1 << 40);
        assert_eq!(r.get_vec16().unwrap(), b"hello");
        assert_eq!(r.get_vec32().unwrap(), vec![9u8; 300]);
        r.expect_end().unwrap();
    }

    #[test]
    fn truncated_reads_error() {
        let mut r = Reader::new(&[0x01]);
        assert!(r.get_u32().is_err());
        let mut r = Reader::new(&[0x00, 0x05, b'a']);
        assert!(r.get_vec16().is_err());
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = Writer::new();
        w.put_u8(1).put_u8(2);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        r.get_u8().unwrap();
        assert!(r.expect_end().is_err());
    }
}
